// Experiment C12 — commit-on-commute verification.
//
// Claim: when a service op's reply is provably dead or boolean-only in the
// speculator's continuation, a guess mismatch need not abort — the
// commutativity summaries license committing with the guessed value.  On
// the contended registry workload the order-sensitive Stamp total makes
// every speculative guess wrong under exact verification, so relaxing the
// verifier converts those value-fault aborts into commits; the abelian
// variant goes further and upgrades every streamed fork to SAFE via the
// cross-process widening.  Both runs must still satisfy Theorem 1 against
// the pessimistic baseline (per-client, with registry reply data compared
// by truthiness — the exact totals are interleaving-dependent and the
// programs only ever branch on them).
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::CommuteRegistryParams params_for(int clients, bool commute) {
  core::CommuteRegistryParams p;
  p.clients = clients;
  p.iterations = 6;
  p.net.latency = sim::microseconds(300);
  p.spec.commute_verification = commute;
  return p;
}

/// Replace registry reply payloads with their truthiness: the clients only
/// ever branch on them (or drop them), so this is exactly the observable
/// part of a kCallReturn from the registry.
trace::CommittedTrace project_registry_replies(const trace::CommittedTrace& t,
                                               ProcessId registry) {
  trace::CommittedTrace out;
  for (ProcessId p : t.processes()) {
    for (trace::ObservableEvent ev : t.for_process(p)) {
      if (ev.kind == trace::ObservableEvent::Kind::kCallReturn &&
          ev.peer == registry) {
        ev.data = csp::Value(ev.data.truthy());
      }
      out.append(std::move(ev));
    }
  }
  return out;
}

bool clients_match(const baseline::RunResult& pess,
                   const baseline::RunResult& opt, int clients,
                   ProcessId registry, bool project) {
  const trace::CommittedTrace a =
      project ? project_registry_replies(pess.trace, registry) : pess.trace;
  const trace::CommittedTrace b =
      project ? project_registry_replies(opt.trace, registry) : opt.trace;
  bool ok = true;
  for (int c = 0; c < clients; ++c) {
    std::string why;
    if (!trace::compare_process_trace(a, b, static_cast<ProcessId>(c),
                                      &why)) {
      std::printf("  client %d trace mismatch: %s\n", c, why.c_str());
      ok = false;
    }
  }
  return ok;
}

void report() {
  print_header(
      "C12 — commit-on-commute verification",
      "Claim: exact guess verification aborts on every order-sensitive\n"
      "reply; use-class-relaxed verification (dead / boolean-only) commits\n"
      "the same joins, cutting aborts without changing any client's\n"
      "observable trace.");

  util::Table table({"clients", "mode", "virt_ms", "aborts",
                     "commute commits", "oracle viol", "trace ok"});
  const std::vector<int> sweep = smoke_mode() ? std::vector<int>{2, 3}
                                              : std::vector<int>{2, 3, 4};
  for (int clients : sweep) {
    const ProcessId registry = static_cast<ProcessId>(clients);
    auto pess = baseline::run_scenario(
        core::commute_registry_scenario(params_for(clients, true)), false);
    auto exact = baseline::run_scenario(
        core::commute_registry_scenario(params_for(clients, false)), true);
    auto commute = baseline::run_scenario(
        core::commute_registry_scenario(params_for(clients, true)), true);

    const bool exact_ok =
        clients_match(pess, exact, clients, registry, /*project=*/true);
    const bool commute_ok =
        clients_match(pess, commute, clients, registry, /*project=*/true);
    table.row(clients, "exact", sim::to_millis(exact.last_completion),
              exact.stats.total_aborts(), exact.stats.commute_commits,
              exact.stats.commute_oracle_violations, exact_ok);
    table.row(clients, "commute", sim::to_millis(commute.last_completion),
              commute.stats.total_aborts(), commute.stats.commute_commits,
              commute.stats.commute_oracle_violations, commute_ok);

    // The acceptance gates: Theorem 1 holds in both modes, the relaxation
    // actually fires, never trips the runtime use-class oracle, and cuts
    // aborts by at least 30% under contention.
    OCSP_CHECK(exact_ok && commute_ok);
    OCSP_CHECK(exact.stats.commute_oracle_violations == 0);
    OCSP_CHECK(commute.stats.commute_oracle_violations == 0);
    OCSP_CHECK(commute.stats.commute_commits > 0);
    OCSP_CHECK(exact.stats.total_aborts() > 0);
    OCSP_CHECK(static_cast<double>(commute.stats.total_aborts()) <=
               0.7 * static_cast<double>(exact.stats.total_aborts()));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Abelian variant: with only commuting ops in play the cross-process
  // widening upgrades every streamed fork to SAFE — no guesses to verify
  // at all, and the full (unprojected) per-client traces match.
  core::CommuteRegistryParams ab = params_for(2, true);
  ab.mutate_ops = false;
  auto ab_pess =
      baseline::run_scenario(core::commute_registry_scenario(ab), false);
  auto ab_opt =
      baseline::run_scenario(core::commute_registry_scenario(ab), true);
  const bool ab_ok = clients_match(ab_pess, ab_opt, ab.clients,
                                   static_cast<ProcessId>(ab.clients),
                                   /*project=*/false);
  OCSP_CHECK(ab_ok);
  OCSP_CHECK(ab_opt.stats.safe_forks > 0);
  OCSP_CHECK(ab_opt.stats.total_aborts() == 0);
  std::printf(
      "abelian variant: %llu SAFE forks, %llu aborts, traces %s\n\n"
      "Expected shape: exact mode aborts on ~every Stamp reply (the total\n"
      "is order-sensitive); commute mode commits them, so the abort column\n"
      "collapses while every client's projected trace stays identical.\n\n",
      static_cast<unsigned long long>(ab_opt.stats.safe_forks),
      static_cast<unsigned long long>(ab_opt.stats.total_aborts()),
      ab_ok ? "equal" : "MISMATCH");
}

void BM_CommuteVerify(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool commute = state.range(1) != 0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::commute_registry_scenario(params_for(clients, commute)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result,
               std::string("commute_registry/") + std::to_string(clients) +
                   (commute ? "/commute" : "/exact"));
  state.counters["commute_commits"] =
      static_cast<double>(result.stats.commute_commits);
  state.counters["oracle_violations"] =
      static_cast<double>(result.stats.commute_oracle_violations);
}
BENCHMARK(BM_CommuteVerify)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void BM_CommuteAbelianSafe(benchmark::State& state) {
  core::CommuteRegistryParams p = params_for(2, true);
  p.mutate_ops = false;
  baseline::RunResult result;
  for (auto _ : state) {
    result =
        baseline::run_scenario(core::commute_registry_scenario(p), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result, "commute_registry/abelian");
  state.counters["safe_forks"] =
      static_cast<double>(result.stats.safe_forks);
}
BENCHMARK(BM_CommuteAbelianSafe);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
