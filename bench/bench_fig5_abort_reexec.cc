// Experiment F5 — Figure 5: abort and re-execution.
//
// After the Figure 4 time fault, Z rolls back to before the speculative
// write, Y rolls back to before the tainted reply, the orphaned messages
// are discarded, Z re-reads the propagation message (the paper's "Z must
// re-read message C2"), and S2 re-executes in the correct order.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

void report() {
  print_header(
      "F5 — abort and re-execution (paper Figure 5)",
      "Claim: rollback undoes every side effect of the aborted guess;\n"
      "consumed messages are re-delivered and the computation re-executes\n"
      "to the sequential outcome.");

  core::WriteThroughParams p;
  p.force_fault = true;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(10);

  auto scenario = core::write_through_scenario(p);
  auto [pess, opt] = run_both(scenario);
  std::string why;
  const bool match = trace::compare_traces(pess.trace, opt.trace, &why);

  util::Table table({"metric", "value"});
  table.row("time faults detected", opt.stats.aborts_time_fault);
  table.row("rollbacks performed", opt.stats.rollbacks);
  table.row("orphan messages discarded", opt.stats.orphans_discarded);
  table.row("messages re-delivered (re-read)", opt.stats.messages_redelivered);
  table.row("externals discarded before release", opt.stats.externals_discarded);
  table.row("sequential completion ms", sim::to_millis(pess.last_completion));
  table.row("optimistic completion ms", sim::to_millis(opt.last_completion));
  table.row("committed traces identical", match);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Cost of the fault across transaction counts (every "
              "transaction faults):\n");
  util::Table sweep({"transactions", "sequential ms", "optimistic ms",
                     "rollbacks", "redelivered"});
  for (int n : {1, 2, 4, 8}) {
    core::WriteThroughParams q = p;
    q.transactions = n;
    auto [p2, o2] = run_both(core::write_through_scenario(q));
    sweep.row(n, sim::to_millis(p2.last_completion),
              sim::to_millis(o2.last_completion), o2.stats.rollbacks,
              o2.stats.messages_redelivered);
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("Expected shape: with a 100%% fault rate the optimistic run "
              "pays the\nspeculation overhead and lands at/above sequential "
              "time — optimism\nonly wins when guesses usually hold.\n\n");
}

void BM_AbortReexecute(benchmark::State& state) {
  core::WriteThroughParams p;
  p.force_fault = true;
  p.transactions = static_cast<int>(state.range(0));
  p.net.latency = sim::microseconds(200);
  baseline::RunResult result;
  for (auto _ : state) {
    result =
        baseline::run_scenario(core::write_through_scenario(p), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result,
               "BM_AbortReexecute/" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AbortReexecute)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
