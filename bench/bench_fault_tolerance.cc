// Experiment C13 — fault tolerance and graceful degradation.
//
// Claim: under seeded chaos (message drop/duplicate/corrupt on both planes,
// link partitions with heal windows, process crash/restart), the recovery
// stack — ack/retransmit data plane, blind control re-broadcast, crash
// recovery from committed state with incarnation filtering — keeps every
// run's committed trace exactly equal to the fault-free sequential run
// (Theorem 1).  And when sustained faults turn speculation into an abort
// storm, the adaptive governor demotes the storming fork site and cuts the
// wasted (discarded) virtual time, re-enabling speculation once the site
// calms down.
#include "bench_common.h"

#include "exec/parallel.h"
#include "fault/plan.h"

namespace ocsp::bench {
namespace {

core::PutLineParams chaos_params() {
  core::PutLineParams p;
  p.lines = 10;
  p.service_time = sim::microseconds(200);
  p.client_compute = sim::microseconds(100);
  p.net.latency = sim::microseconds(500);
  p.spec.control_retry = true;
  p.spec.control_retry_interval = sim::milliseconds(1);
  p.spec.control_retry_limit = 30;
  p.spec.join_wait_timeout = sim::milliseconds(200);
  return p;
}

fault::ChaosSpec chaos_spec() {
  fault::ChaosSpec s;
  s.horizon = sim::milliseconds(20);
  s.partition_min_len = sim::milliseconds(1);
  s.partition_max_len = sim::milliseconds(5);
  s.crash_min_downtime = sim::milliseconds(1);
  s.crash_max_downtime = sim::milliseconds(4);
  return s;
}

baseline::Scenario chaos_scenario(const fault::FaultPlan& plan) {
  auto scenario = core::putline_scenario(chaos_params());
  scenario.options.fault_plan = plan;
  scenario.options.reliable.enabled = true;
  return scenario;
}

const char* category_name(std::uint64_t seed) {
  switch (seed % 6) {
    case 0: return "drop";
    case 1: return "duplicate";
    case 2: return "corrupt";
    case 3: return "partition";
    case 4: return "crash";
    default: return "mixed";
  }
}

core::AbortStormParams storm_params(bool governed) {
  core::AbortStormParams p;
  p.calls = 60;
  p.hit_period = 3;
  p.spec.governor_enabled = governed;
  return p;
}

std::int64_t wasted_ns_of(const baseline::RunResult& result) {
  if (!result.recorder) return 0;
  return obs::build_attribution(*result.recorder, result.process_names)
      .wasted_total_ns;
}

void report() {
  print_header(
      "C13 — fault tolerance and graceful degradation",
      "Claim: the recovery stack (retransmit + dedup, control re-broadcast,\n"
      "crash recovery with incarnation filtering) keeps the committed trace\n"
      "of every seeded chaos plan equal to the fault-free sequential run;\n"
      "the adaptive governor then bounds the wasted work an abort storm\n"
      "can cause, with hysteresis re-enable.");

  // ---- chaos sweep: Theorem 1 against the fault-free sequential run ------
  const auto reference =
      baseline::run_scenario(core::putline_scenario(chaos_params()), false);
  OCSP_CHECK(reference.all_completed);

  struct Bucket {
    int runs = 0;
    std::uint64_t faults = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t aborts = 0;
    std::uint64_t crashes = 0;
    double virt_ms = 0;
  };
  std::map<std::string, Bucket> buckets;
  const std::uint64_t plans = smoke_mode() ? 18 : 64;
  std::uint64_t divergences = 0;
  for (std::uint64_t seed = 0; seed < plans; ++seed) {
    const fault::FaultPlan plan =
        fault::make_chaos_plan(seed, chaos_spec(), /*num_processes=*/2);
    auto result = baseline::run_scenario(chaos_scenario(plan), true,
                                         sim::seconds(10));
    OCSP_CHECK_MSG(result.all_completed,
                   ("chaos seed " + std::to_string(seed) + " stalled: " +
                    plan.describe()).c_str());
    std::string why;
    if (!trace::compare_traces(reference.trace, result.trace, &why)) {
      std::printf("  DIVERGENCE seed %llu plan %s: %s\n",
                  static_cast<unsigned long long>(seed),
                  plan.describe().c_str(), why.c_str());
      ++divergences;
    }
    Bucket& b = buckets[category_name(seed)];
    ++b.runs;
    b.faults += result.metrics.counter_or("faults_injected") +
                result.network.faults_dropped +
                result.network.faults_corrupted +
                result.network.faults_duplicated;
    b.retransmissions += result.metrics.counter_or("retransmissions");
    b.aborts += result.stats.total_aborts();
    b.crashes += result.stats.crashes;
    b.virt_ms += sim::to_millis(result.last_completion);
  }

  util::Table sweep({"category", "plans", "faults", "retransmits", "aborts",
                     "crashes", "avg_virt_ms"});
  for (const auto& [name, b] : buckets) {
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.3f", b.virt_ms / b.runs);
    sweep.row(name, b.runs, b.faults, b.retransmissions, b.aborts, b.crashes,
              avg);
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("chaos sweep: %llu plans, %llu trace divergences\n\n",
              static_cast<unsigned long long>(plans),
              static_cast<unsigned long long>(divergences));
  OCSP_CHECK(divergences == 0);

  // ---- chaos under sharding: the same oracle at every worker count -------
  // One row per plan, one column per width: faults are injected on the
  // sender's shard from per-link fault streams, so the counters — and the
  // committed trace — must not depend on the worker count.
  {
    const std::vector<int> widths =
        smoke_mode() && workers_override() == 0 ? std::vector<int>{2, 4}
                                                : sweep_workers();
    const std::uint64_t par_plans = smoke_mode() ? 6 : 12;
    std::vector<std::string> headers = {"seed", "category", "faults",
                                        "retransmits"};
    for (int w : widths) headers.push_back("w" + std::to_string(w) + "_ms");
    util::Table par_sweep(headers);
    std::uint64_t par_divergences = 0;
    for (std::uint64_t seed = 0; seed < par_plans; ++seed) {
      const fault::FaultPlan plan =
          fault::make_chaos_plan(seed, chaos_spec(), /*num_processes=*/2);
      const auto scenario = chaos_scenario(plan);
      std::vector<std::string> row = {std::to_string(seed),
                                      category_name(seed), "", ""};
      for (int w : widths) {
        const auto par = exec::run_scenario_parallel(
            scenario, w, /*speculation=*/true, /*compute_scale=*/0.0,
            sim::seconds(10));
        OCSP_CHECK_MSG(par.result.all_completed,
                       ("parallel chaos seed " + std::to_string(seed) +
                        " stalled at workers=" + std::to_string(w))
                           .c_str());
        std::string why;
        if (!trace::compare_traces(reference.trace, par.result.trace, &why)) {
          std::printf("  DIVERGENCE seed %llu workers %d: %s\n",
                      static_cast<unsigned long long>(seed), w, why.c_str());
          ++par_divergences;
        }
        row[2] = std::to_string(
            par.result.metrics.counter_or("faults_injected") +
            par.result.network.faults_dropped +
            par.result.network.faults_corrupted +
            par.result.network.faults_duplicated);
        row[3] = std::to_string(
            par.result.metrics.counter_or("retransmissions"));
        char ms[32];
        std::snprintf(ms, sizeof(ms), "%.3f",
                      sim::to_millis(par.result.last_completion));
        row.push_back(ms);
      }
      par_sweep.add_row(row);
    }
    std::printf("%s\n", par_sweep.to_string().c_str());
    std::printf("parallel chaos sweep: %llu plans x %zu widths, "
                "%llu trace divergences\n\n",
                static_cast<unsigned long long>(par_plans), widths.size(),
                static_cast<unsigned long long>(par_divergences));
    OCSP_CHECK(par_divergences == 0);
  }

  // ---- governor: wasted work before/after under an abort storm ----------
  auto storm_reference = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(false)), false);
  auto off = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(false)), true);
  auto on = baseline::run_scenario(
      core::abort_storm_scenario(storm_params(true)), true);
  OCSP_CHECK(storm_reference.all_completed && off.all_completed &&
             on.all_completed);
  std::string why;
  OCSP_CHECK_MSG(
      trace::compare_traces(storm_reference.trace, off.trace, &why),
      why.c_str());
  OCSP_CHECK_MSG(trace::compare_traces(storm_reference.trace, on.trace, &why),
                 why.c_str());

  const std::int64_t wasted_off = wasted_ns_of(off);
  const std::int64_t wasted_on = wasted_ns_of(on);
  util::Table storm({"governor", "virt_ms", "aborts", "seq_forks",
                     "demotions", "promotions", "wasted_ms"});
  auto ms = [](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  storm.row("off", sim::to_millis(off.last_completion),
            off.stats.total_aborts(), off.stats.sequential_forks,
            off.stats.governor_demotions, off.stats.governor_promotions,
            ms(wasted_off));
  storm.row("on", sim::to_millis(on.last_completion),
            on.stats.total_aborts(), on.stats.sequential_forks,
            on.stats.governor_demotions, on.stats.governor_promotions,
            ms(wasted_on));
  std::printf("%s\n", storm.to_string().c_str());
  std::printf(
      "Expected shape: without the governor the periodic hits keep retry\n"
      "limit L reset, so ~2/3 of the storm's forks abort for the whole run;\n"
      "the governor's EWMA breaker demotes the site after a handful of\n"
      "samples, slashing the wasted (discarded) virtual time, and its\n"
      "hysteresis re-enables speculation whenever the site calms down.\n\n");

  // Acceptance gates: the storm is real, the governor engages, and it
  // strictly cuts both aborts and wasted time.
  OCSP_CHECK(off.stats.total_aborts() >= 20);
  OCSP_CHECK(on.stats.governor_demotions >= 1);
  OCSP_CHECK(on.stats.governor_sequential_forks > 0);
  OCSP_CHECK(on.stats.total_aborts() < off.stats.total_aborts());
  OCSP_CHECK(wasted_on < wasted_off);

  // ---- governor under sharding ------------------------------------------
  // The breaker's EWMA lives in the process, the schedule is the per-link
  // deterministic one, so its demote/promote decisions must be identical
  // to the sequential per-link run — sharding changes nothing.
  {
    const int width = workers_override() > 0 ? workers_override() : 2;
    auto on_seq_scenario = core::abort_storm_scenario(storm_params(true));
    on_seq_scenario.options.per_link_net = true;
    const auto on_seq = baseline::run_scenario(on_seq_scenario, true);
    const auto off_par = exec::run_scenario_parallel(
        core::abort_storm_scenario(storm_params(false)), width, true);
    const auto on_par = exec::run_scenario_parallel(
        core::abort_storm_scenario(storm_params(true)), width, true);
    OCSP_CHECK(off_par.result.all_completed && on_par.result.all_completed);
    OCSP_CHECK_MSG(trace::compare_traces(storm_reference.trace,
                                         off_par.result.trace, &why),
                   why.c_str());
    OCSP_CHECK_MSG(trace::compare_traces(storm_reference.trace,
                                         on_par.result.trace, &why),
                   why.c_str());

    const std::int64_t wasted_off_par = wasted_ns_of(off_par.result);
    const std::int64_t wasted_on_par = wasted_ns_of(on_par.result);
    util::Table sharded({"governor", "workers", "aborts", "seq_forks",
                         "demotions", "promotions", "wasted_ms"});
    sharded.row("off", width, off_par.result.stats.total_aborts(),
                off_par.result.stats.sequential_forks,
                off_par.result.stats.governor_demotions,
                off_par.result.stats.governor_promotions,
                ms(wasted_off_par));
    sharded.row("on", width, on_par.result.stats.total_aborts(),
                on_par.result.stats.sequential_forks,
                on_par.result.stats.governor_demotions,
                on_par.result.stats.governor_promotions,
                ms(wasted_on_par));
    std::printf("%s\n", sharded.to_string().c_str());

    // Same gates as the sequential storm, plus width-invariance of the
    // breaker's decisions (demote and hysteresis re-enable alike).
    OCSP_CHECK(off_par.result.stats.total_aborts() >= 20);
    OCSP_CHECK(on_par.result.stats.governor_demotions >= 1);
    OCSP_CHECK(on_par.result.stats.governor_sequential_forks > 0);
    OCSP_CHECK(on_par.result.stats.total_aborts() <
               off_par.result.stats.total_aborts());
    OCSP_CHECK(wasted_on_par < wasted_off_par);
    OCSP_CHECK(on_par.result.stats.governor_demotions ==
               on_seq.stats.governor_demotions);
    OCSP_CHECK(on_par.result.stats.governor_promotions ==
               on_seq.stats.governor_promotions);
  }
}

void BM_ChaosPutline(benchmark::State& state) {
  const auto seed = static_cast<std::uint64_t>(state.range(0));
  const fault::FaultPlan plan = fault::make_chaos_plan(seed, chaos_spec(), 2);
  baseline::RunResult result;
  for (auto _ : state) {
    result =
        baseline::run_scenario(chaos_scenario(plan), true, sim::seconds(10));
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result,
               std::string("chaos/") + category_name(seed) + "/seed" +
                   std::to_string(seed));
  state.counters["faults_injected"] =
      static_cast<double>(result.metrics.counter_or("faults_injected"));
  state.counters["retransmissions"] =
      static_cast<double>(result.metrics.counter_or("retransmissions"));
  state.counters["crashes"] = static_cast<double>(result.stats.crashes);
}
BENCHMARK(BM_ChaosPutline)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5);

void BM_ParallelChaos(benchmark::State& state) {
  const auto seed = static_cast<std::uint64_t>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  const fault::FaultPlan plan = fault::make_chaos_plan(seed, chaos_spec(), 2);
  const auto scenario = chaos_scenario(plan);
  exec::ParallelRunResult par;
  for (auto _ : state) {
    par = exec::run_scenario_parallel(scenario, workers, /*speculation=*/true,
                                      /*compute_scale=*/0.0, sim::seconds(10));
    benchmark::DoNotOptimize(par.result.last_completion);
  }
  set_counters(state, par.result,
               "parallel_chaos/w" + std::to_string(workers) + "/seed" +
                   std::to_string(seed));
  state.counters["faults_injected"] =
      static_cast<double>(par.result.metrics.counter_or("faults_injected"));
  state.counters["retransmissions"] =
      static_cast<double>(par.result.metrics.counter_or("retransmissions"));
  state.counters["crashes"] = static_cast<double>(par.result.stats.crashes);
  state.counters["gvt_windows"] = static_cast<double>(par.windows.size());
}
BENCHMARK(BM_ParallelChaos)
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({5, 2})
    ->Args({5, 4});

void BM_GovernorStorm(benchmark::State& state) {
  const bool governed = state.range(0) != 0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::abort_storm_scenario(storm_params(governed)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result,
               std::string("storm/governor_") + (governed ? "on" : "off"));
  state.counters["governor_demotions"] =
      static_cast<double>(result.stats.governor_demotions);
  state.counters["governor_sequential_forks"] =
      static_cast<double>(result.stats.governor_sequential_forks);
}
BENCHMARK(BM_GovernorStorm)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
