// Experiment C4 — rollback strategy ablation (section 4.1.3).
//
// "To prepare for rollback, a process may take a state checkpoint at each
// point prior to acquiring a new commit guard predicate [Time Warp].
// Alternatively, a process may take less frequent checkpoints, and log
// input messages, restoring the state by resuming from the checkpoint and
// replaying the logged messages [Optimistic Recovery].  The particular
// technique used for rollback is a performance tuning decision and does
// not affect the correctness of the transformation."
//
// This bench quantifies the trade: full checkpoints per dependency
// acquisition vs one checkpoint plus replay work on each rollback.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::PutLineParams workload(int lines, double fail, std::uint64_t seed,
                             spec::RollbackStrategy strategy) {
  core::PutLineParams p;
  p.lines = lines;
  p.fail_probability = fail;
  p.seed = seed;
  p.net.latency = sim::microseconds(300);
  p.spec.rollback = strategy;
  return p;
}

struct StrategyRow {
  std::uint64_t server_checkpoints = 0;
  std::uint64_t replays = 0;
  std::uint64_t rollbacks = 0;
  sim::Time completion = 0;
  bool trace_match = false;
};

StrategyRow run_one(int lines, double fail, spec::RollbackStrategy strategy) {
  auto scenario = core::putline_scenario(workload(lines, fail, 7, strategy));
  auto rt = baseline::make_runtime(scenario, true);
  rt->run(sim::seconds(120));
  StrategyRow row;
  row.server_checkpoints = rt->process(rt->find("Y")).stats().checkpoints;
  row.replays = rt->total_stats().replays;
  row.rollbacks = rt->total_stats().rollbacks;
  row.completion = rt->last_completion_time();
  auto pess = baseline::run_scenario(scenario, false, sim::seconds(120));
  std::string why;
  row.trace_match =
      trace::compare_traces(pess.trace, rt->committed_trace(), &why);
  return row;
}

void report() {
  print_header(
      "C4 — rollback strategies: checkpoint-per-interval vs replay-from-log",
      "Claim: the rollback technique is a tuning decision; both strategies\n"
      "produce the sequential trace, trading checkpoint storage against\n"
      "replay work on rollback.");

  util::Table table({"workload", "strategy", "server checkpoints", "replays",
                     "rollbacks", "completion ms", "trace match"});
  for (double fail : {0.0, 0.3}) {
    const std::string label =
        "24 calls, " + std::to_string(static_cast<int>(fail * 100)) +
        "% faults";
    auto cp = run_one(24, fail,
                      spec::RollbackStrategy::kCheckpointEveryInterval);
    auto rp = run_one(24, fail, spec::RollbackStrategy::kReplayFromLog);
    table.row(label, "checkpoint", cp.server_checkpoints, cp.replays,
              cp.rollbacks, sim::to_millis(cp.completion), cp.trace_match);
    table.row(label, "replay", rp.server_checkpoints, rp.replays,
              rp.rollbacks, sim::to_millis(rp.completion), rp.trace_match);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the server checkpoints once under replay vs once per\n"
      "tagged request under checkpointing; completion times and committed\n"
      "traces are identical — correctness is strategy-independent.\n\n");
}

void BM_CheckpointStrategy(benchmark::State& state) {
  const double fail = static_cast<double>(state.range(0)) / 100.0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::putline_scenario(workload(
            24, fail, 7, spec::RollbackStrategy::kCheckpointEveryInterval)),
        true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_CheckpointStrategy)->Arg(0)->Arg(30);

void BM_ReplayStrategy(benchmark::State& state) {
  const double fail = static_cast<double>(state.range(0)) / 100.0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::putline_scenario(
            workload(24, fail, 7, spec::RollbackStrategy::kReplayFromLog)),
        true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
  state.counters["replays"] = static_cast<double>(result.stats.replays);
}
BENCHMARK(BM_ReplayStrategy)->Arg(0)->Arg(30);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
