// Shared plumbing for the benchmark binaries.
//
// Every bench binary reproduces one paper figure or claim: it first prints
// a report (the scenario's event series or a parameter-sweep table — the
// "figure"), then runs google-benchmark over the underlying simulation so
// the implementation's own costs are tracked too.  Virtual-time results
// are attached to the google-benchmark runs as counters.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/prof_json.h"
#include "obs/profile.h"
#include "trace/timeline.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/table.h"

namespace ocsp::bench {

/// Print the protocol-relevant slice of a run's timeline (forks, joins,
/// commits, aborts, rollbacks, message sends/deliveries).
inline void print_timeline(const trace::Timeline& timeline,
                           bool include_messages = true,
                           std::size_t max_lines = 80) {
  std::size_t printed = 0;
  for (const auto& e : timeline.entries()) {
    using K = trace::TimelineEntry::Kind;
    const bool is_message =
        e.kind == K::kMsgSend || e.kind == K::kMsgDeliver;
    if (is_message && !include_messages) continue;
    if (e.kind == K::kNote) continue;
    std::printf("  %s\n", trace::to_string(e).c_str());
    if (++printed >= max_lines) {
      std::printf("  ... (%zu more entries)\n",
                  timeline.entries().size() - printed);
      break;
    }
  }
}

/// Run a scenario in both modes and return (pessimistic, optimistic).
inline std::pair<baseline::RunResult, baseline::RunResult> run_both(
    const baseline::Scenario& scenario,
    sim::Time deadline = sim::kTimeNever) {
  return {baseline::run_scenario(scenario, false, deadline),
          baseline::run_scenario(scenario, true, deadline)};
}

inline double speedup(const baseline::RunResult& pessimistic,
                      const baseline::RunResult& optimistic) {
  if (optimistic.last_completion == 0) return 0.0;
  return static_cast<double>(pessimistic.last_completion) /
         static_cast<double>(optimistic.last_completion);
}

/// Collector behind --ocsp_json_out=<path>: every set_counters() call
/// appends the run's metrics snapshot, and OCSP_BENCH_MAIN writes the whole
/// trajectory as one machine-readable JSON document on shutdown.
class MetricsTrajectory {
 public:
  static MetricsTrajectory& instance() {
    static MetricsTrajectory t;
    return t;
  }

  void set_output(std::string path) { path_ = std::move(path); }
  const std::string& path() const { return path_; }
  std::size_t size() const { return entries_.size(); }

  void add(std::string label, const baseline::RunResult& result) {
    Entry e;
    e.label = std::move(label);
    e.virt_ms = sim::to_millis(result.last_completion);
    e.metrics = result.metrics;
    entries_.push_back(std::move(e));
  }

  /// Document format version: bumped to 2 when histogram summaries gained
  /// p99/p999 and this field itself was introduced (absent == version 1).
  static constexpr int kSchemaVersion = 2;

  /// {"schema":"ocsp-bench-v1","schema_version":2,"binary":...,
  /// "benchmarks":[{name, virt_ms,
  /// metrics:{counters,gauges,accumulators,histograms}}]}.
  bool write(const char* binary) const {
    if (path_.empty()) return true;
    util::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.value("ocsp-bench-v1");
    w.key("schema_version");
    w.value(kSchemaVersion);
    w.key("binary");
    w.value(binary);
    w.key("benchmarks");
    w.begin_array();
    for (const auto& e : entries_) {
      w.begin_object();
      w.key("name");
      w.value(e.label);
      w.key("virt_ms");
      w.value(e.virt_ms);
      w.key("metrics");
      e.metrics.write_json(w);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      OCSP_ELOG << "cannot write --ocsp_json_out file " << path_;
      return false;
    }
    const std::string text = w.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("ocsp: wrote metrics snapshot (%zu runs) to %s\n",
                entries_.size(), path_.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string label;
    double virt_ms = 0;
    obs::MetricsRegistry metrics;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

/// Collector behind --ocsp_prof_out=<path>: every set_counters() call
/// post-processes the run's event stream into a causal profile (time
/// accounting, critical path, abort attribution) and the whole set is
/// written as one ocsp-prof-v1 document on shutdown.
class ProfileTrajectory {
 public:
  static ProfileTrajectory& instance() {
    static ProfileTrajectory t;
    return t;
  }

  void set_output(std::string path) { path_ = std::move(path); }
  const std::string& path() const { return path_; }
  std::size_t size() const { return entries_.size(); }

  void add(const std::string& label, const baseline::RunResult& result) {
    if (path_.empty() || !result.recorder) return;
    Entry e;
    e.label = label;
    e.profile = obs::build_profile(*result.recorder, result.process_names);
    e.attribution =
        obs::build_attribution(*result.recorder, result.process_names);
    entries_.push_back(std::move(e));
  }

  /// {"schema":"ocsp-prof-v1","schema_version":...,"binary":...,
  /// "runs":[{name, profile:<full per-run ocsp-prof-v1 object>}]}.
  bool write(const char* binary) const {
    if (path_.empty()) return true;
    util::JsonWriter w;
    w.begin_object();
    w.key("schema");
    w.value("ocsp-prof-v1");
    w.key("schema_version");
    w.value(obs::kProfSchemaVersion);
    w.key("binary");
    w.value(binary);
    w.key("runs");
    w.begin_array();
    for (const auto& e : entries_) {
      w.begin_object();
      w.key("name");
      w.value(e.label);
      w.key("profile");
      obs::write_prof_json(e.profile, e.attribution, w);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      OCSP_ELOG << "cannot write --ocsp_prof_out file " << path_;
      return false;
    }
    const std::string text = w.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("ocsp: wrote causal profiles (%zu runs) to %s\n",
                entries_.size(), path_.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string label;
    obs::RunProfile profile;
    obs::AttributionReport attribution;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

/// Smoke mode (--ocsp_smoke): reports shrink their parameter sweeps so CI
/// can exercise every bench binary end-to-end in seconds.  The claims are
/// still checked — only the swept range is reduced.
inline bool& smoke_mode() {
  static bool smoke = false;
  return smoke;
}

/// Worker-count override (--ocsp_workers=N): report sections that sweep the
/// parallel executor restrict themselves to this single width instead of
/// their default {1, 2, 4, 8}.  0 (default) means sweep.
inline int& workers_override() {
  static int workers = 0;
  return workers;
}

/// The worker counts a report section should sweep: the --ocsp_workers
/// override when given, else the standard width ladder.
inline std::vector<int> sweep_workers() {
  if (workers_override() > 0) return {workers_override()};
  return {1, 2, 4, 8};
}

/// Strip the ocsp-specific flags from argv (google-benchmark would reject
/// them): --ocsp_json_out=<path> arms the metrics collector,
/// --ocsp_prof_out=<path> arms the causal-profile collector,
/// --ocsp_smoke enables smoke mode and --ocsp_workers=N pins the parallel
/// sweep width.
inline void consume_json_out_flag(int* argc, char** argv) {
  const std::string json_prefix = "--ocsp_json_out=";
  const std::string prof_prefix = "--ocsp_prof_out=";
  const std::string workers_prefix = "--ocsp_workers=";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(json_prefix, 0) == 0) {
      MetricsTrajectory::instance().set_output(
          arg.substr(json_prefix.size()));
    } else if (arg.rfind(prof_prefix, 0) == 0) {
      ProfileTrajectory::instance().set_output(
          arg.substr(prof_prefix.size()));
    } else if (arg == "--ocsp_smoke") {
      smoke_mode() = true;
    } else if (arg.rfind(workers_prefix, 0) == 0) {
      workers_override() = std::atoi(arg.c_str() + workers_prefix.size());
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Attach the standard virtual-time counters to a google-benchmark state
/// and feed the --ocsp_json_out trajectory.  `label` names the entry in the
/// JSON output; empty derives run_<index>.
inline void set_counters(benchmark::State& state,
                         const baseline::RunResult& result,
                         std::string label = {}) {
  state.counters["virt_ms"] = sim::to_millis(result.last_completion);
  state.counters["commits"] = static_cast<double>(result.stats.commits);
  state.counters["aborts"] =
      static_cast<double>(result.stats.total_aborts());
  state.counters["rollbacks"] =
      static_cast<double>(result.stats.rollbacks);
  state.counters["control_sent"] =
      static_cast<double>(result.stats.control_sent);
  state.counters["precedence_sent"] =
      static_cast<double>(result.stats.precedence_sent);
  state.counters["messages_redelivered"] =
      static_cast<double>(result.stats.messages_redelivered);
  auto& trajectory = MetricsTrajectory::instance();
  auto& profiles = ProfileTrajectory::instance();
  if (!trajectory.path().empty() || !profiles.path().empty()) {
    if (label.empty()) {
      label = "run_" + std::to_string(
                           std::max(trajectory.size(), profiles.size()));
    }
    profiles.add(label, result);
    if (!trajectory.path().empty()) {
      trajectory.add(std::move(label), result);
    }
  }
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=\n%s\n%s\n============================================="
              "===================\n\n",
              experiment, claim);
}

}  // namespace ocsp::bench

/// Standard main: print the figure/report, then run google-benchmark;
/// --ocsp_json_out=<path> additionally writes a machine-readable metrics
/// snapshot and --ocsp_prof_out=<path> a causal profile of every
/// benchmarked run.
#define OCSP_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    ocsp::bench::consume_json_out_flag(&argc, argv);     \
    report_fn();                                         \
    benchmark::Initialize(&argc, argv);                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    const bool wrote_metrics =                           \
        ocsp::bench::MetricsTrajectory::instance().write(argv[0]); \
    const bool wrote_profiles =                          \
        ocsp::bench::ProfileTrajectory::instance().write(argv[0]); \
    return wrote_metrics && wrote_profiles ? 0 : 1;      \
  }
