// Shared plumbing for the benchmark binaries.
//
// Every bench binary reproduces one paper figure or claim: it first prints
// a report (the scenario's event series or a parameter-sweep table — the
// "figure"), then runs google-benchmark over the underlying simulation so
// the implementation's own costs are tracked too.  Virtual-time results
// are attached to the google-benchmark runs as counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "trace/timeline.h"
#include "util/table.h"

namespace ocsp::bench {

/// Print the protocol-relevant slice of a run's timeline (forks, joins,
/// commits, aborts, rollbacks, message sends/deliveries).
inline void print_timeline(const trace::Timeline& timeline,
                           bool include_messages = true,
                           std::size_t max_lines = 80) {
  std::size_t printed = 0;
  for (const auto& e : timeline.entries()) {
    using K = trace::TimelineEntry::Kind;
    const bool is_message =
        e.kind == K::kMsgSend || e.kind == K::kMsgDeliver;
    if (is_message && !include_messages) continue;
    if (e.kind == K::kNote) continue;
    std::printf("  %s\n", trace::to_string(e).c_str());
    if (++printed >= max_lines) {
      std::printf("  ... (%zu more entries)\n",
                  timeline.entries().size() - printed);
      break;
    }
  }
}

/// Run a scenario in both modes and return (pessimistic, optimistic).
inline std::pair<baseline::RunResult, baseline::RunResult> run_both(
    const baseline::Scenario& scenario,
    sim::Time deadline = sim::kTimeNever) {
  return {baseline::run_scenario(scenario, false, deadline),
          baseline::run_scenario(scenario, true, deadline)};
}

inline double speedup(const baseline::RunResult& pessimistic,
                      const baseline::RunResult& optimistic) {
  if (optimistic.last_completion == 0) return 0.0;
  return static_cast<double>(pessimistic.last_completion) /
         static_cast<double>(optimistic.last_completion);
}

/// Attach the standard virtual-time counters to a google-benchmark state.
inline void set_counters(benchmark::State& state,
                         const baseline::RunResult& result) {
  state.counters["virt_ms"] = sim::to_millis(result.last_completion);
  state.counters["commits"] = static_cast<double>(result.stats.commits);
  state.counters["aborts"] =
      static_cast<double>(result.stats.total_aborts());
  state.counters["rollbacks"] =
      static_cast<double>(result.stats.rollbacks);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=\n%s\n%s\n============================================="
              "===================\n\n",
              experiment, claim);
}

}  // namespace ocsp::bench

/// Standard main: print the figure/report, then run google-benchmark.
#define OCSP_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    benchmark::Initialize(&argc, argv);                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    return 0;                                            \
  }
