// Experiment F6 — Figure 6: successful parallelization of two processes.
//
// X and Z both speculate.  Z's guess z1 inherits X's guess x1 through a
// message, so Z's join publishes PRECEDENCE(z1, {x1}) and waits; when X
// commits x1 the COMMIT cascades and z1 commits too — two processes'
// speculations pipelined with no rollback.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::MutualParams params() {
  core::MutualParams p;
  p.crossing = false;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(20);
  return p;
}

void report() {
  print_header(
      "F6 — two mutually speculating processes, success (paper Figure 6)",
      "Claim: a guess may depend on another process's guess; PRECEDENCE\n"
      "publishes the ordering and the COMMIT cascade resolves the chain.");

  auto rt = baseline::make_runtime(core::mutual_scenario(params()), true);
  rt->run();
  std::printf("Timeline:\n");
  print_timeline(rt->timeline());
  std::printf("\nprotocol: %s\n\n", rt->total_stats().to_string().c_str());

  auto [pess, opt] = run_both(core::mutual_scenario(params()));
  std::string why;
  util::Table table({"metric", "value"});
  table.row("precedence messages", opt.stats.precedence_sent);
  table.row("commits", opt.stats.commits);
  table.row("aborts", opt.stats.total_aborts());
  table.row("sequential completion ms", sim::to_millis(pess.last_completion));
  table.row("optimistic completion ms", sim::to_millis(opt.last_completion));
  table.row("speedup", speedup(pess, opt));
  table.row("traces match", trace::compare_traces(pess.trace, opt.trace, &why));
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: >=1 PRECEDENCE, 2 commits, 0 aborts, and a\n"
              "speedup from overlapping both processes' round trips.\n\n");
}

void BM_Fig6Success(benchmark::State& state) {
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(core::mutual_scenario(params()), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_Fig6Success);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
