// Experiment C5 — control-message distribution (section 4.2.5).
//
// COMMIT/ABORT can be broadcast to every process ("should work well in a
// local-area network where threads are created relatively infrequently")
// or sent only to the recorded dependents ("more appropriate in a
// wide-area network or when the number of threads created is large").
// This bench measures control traffic for both policies as the process
// count grows.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::SharedServerParams params_for(int clients,
                                    spec::ControlPlane policy) {
  core::SharedServerParams p;
  p.clients = clients;
  p.calls_per_client = 8;
  p.net.latency = sim::microseconds(300);
  p.spec.control = policy;
  return p;
}

void report() {
  print_header(
      "C5 — broadcast vs targeted control plane",
      "Claim: broadcast control traffic grows with the process count even\n"
      "for uninvolved processes; targeted distribution sends only to the\n"
      "recorded dependents of each guess.");

  util::Table table({"processes", "broadcast ctl msgs", "targeted ctl msgs",
                     "reduction", "both correct"});
  for (int clients : {2, 4, 8, 12}) {
    auto broadcast = baseline::run_scenario(
        core::shared_server_scenario(
            params_for(clients, spec::ControlPlane::kBroadcast)),
        true);
    auto targeted = baseline::run_scenario(
        core::shared_server_scenario(
            params_for(clients, spec::ControlPlane::kTargeted)),
        true);
    auto pess = baseline::run_scenario(
        core::shared_server_scenario(
            params_for(clients, spec::ControlPlane::kTargeted)),
        false);
    // Per-client sequences must match; the server's interleaving of the
    // causally unrelated clients is free (the partial order of section 6).
    bool ok = true;
    for (int c = 0; c < clients; ++c) {
      std::string why;
      ok &= trace::compare_process_trace(pess.trace, broadcast.trace,
                                         static_cast<ProcessId>(c), &why);
      ok &= trace::compare_process_trace(pess.trace, targeted.trace,
                                         static_cast<ProcessId>(c), &why);
    }
    table.row(clients + 1, broadcast.stats.control_sent,
              targeted.stats.control_sent,
              broadcast.stats.control_sent > 0
                  ? static_cast<double>(broadcast.stats.control_sent) /
                        static_cast<double>(
                            std::max<std::uint64_t>(1,
                                                    targeted.stats
                                                        .control_sent))
                  : 0.0,
              ok);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: broadcast grows ~linearly with the process count;\n"
      "targeted stays ~constant per guess (only the server ever saw the\n"
      "tags), so the reduction factor grows with the system size.\n\n");
}

void BM_ControlPlane(benchmark::State& state) {
  const auto policy = state.range(1) ? spec::ControlPlane::kTargeted
                                     : spec::ControlPlane::kBroadcast;
  const int clients = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::shared_server_scenario(params_for(clients, policy)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
  state.counters["ctl_msgs"] =
      static_cast<double>(result.stats.control_sent);
}
BENCHMARK(BM_ControlPlane)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({12, 0})
    ->Args({12, 1});

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
