// Experiment C9 (extension) — speculative-state footprint over run length.
//
// The paper notes processes must "maintain the ability to roll back state"
// but leaves reclamation open.  This bench measures the retained state
// (checkpoints + logged inputs) of a long-running server as the request
// count grows, with and without faults keeping guesses in doubt, under
// both rollback strategies.  With GC the footprint is bounded by the
// in-doubt window; without it it would grow linearly with uptime.
#include "bench_common.h"
#include "speculation/runtime.h"

namespace ocsp::bench {
namespace {

struct Footprint {
  std::size_t server_checkpoints = 0;
  std::size_t server_log = 0;
  std::uint64_t pruned_checkpoints = 0;
  std::uint64_t pruned_log = 0;
};

Footprint measure(int lines, double fail, spec::RollbackStrategy strategy) {
  core::PutLineParams p;
  p.lines = lines;
  p.fail_probability = fail;
  p.net.latency = sim::microseconds(200);
  p.spec.rollback = strategy;
  p.spec.replay_checkpoint_every = 16;
  auto rt = baseline::make_runtime(core::putline_scenario(p), true);
  rt->run(sim::seconds(120));
  const auto& server = rt->process(rt->find("Y"));
  return Footprint{server.checkpoint_count(), server.input_log_size(),
                   server.stats().checkpoints_pruned,
                   server.stats().log_entries_pruned};
}

void report() {
  print_header(
      "C9 (extension) — retained speculative state vs run length",
      "Claim: with GC, the server's retained checkpoints and input log are\n"
      "bounded by the window of in-doubt guesses, not by the run length.");

  util::Table table({"requests", "strategy", "live checkpoints", "live log",
                     "pruned checkpoints", "pruned log entries"});
  for (int lines : {16, 64, 256}) {
    for (auto [strategy, name] :
         {std::pair{spec::RollbackStrategy::kCheckpointEveryInterval,
                    "checkpoint"},
          std::pair{spec::RollbackStrategy::kReplayFromLog, "replay"}}) {
      auto f = measure(lines, 0.0, strategy);
      table.row(lines, name, f.server_checkpoints, f.server_log,
                f.pruned_checkpoints, f.pruned_log);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the \"live\" columns stay flat from 16 to 256\n"
      "requests while the \"pruned\" columns grow linearly — retained state\n"
      "tracks the in-doubt window, and everything else is reclaimed.\n\n");
}

void BM_FootprintCheckpointStrategy(benchmark::State& state) {
  Footprint f;
  for (auto _ : state) {
    f = measure(static_cast<int>(state.range(0)), 0.0,
                spec::RollbackStrategy::kCheckpointEveryInterval);
    benchmark::DoNotOptimize(f.server_checkpoints);
  }
  state.counters["live_cp"] = static_cast<double>(f.server_checkpoints);
  state.counters["pruned_cp"] = static_cast<double>(f.pruned_checkpoints);
}
BENCHMARK(BM_FootprintCheckpointStrategy)->Arg(64)->Arg(256);

void BM_FootprintReplayStrategy(benchmark::State& state) {
  Footprint f;
  for (auto _ : state) {
    f = measure(static_cast<int>(state.range(0)), 0.0,
                spec::RollbackStrategy::kReplayFromLog);
    benchmark::DoNotOptimize(f.server_log);
  }
  state.counters["live_log"] = static_cast<double>(f.server_log);
  state.counters["pruned_log"] = static_cast<double>(f.pruned_log);
}
BENCHMARK(BM_FootprintReplayStrategy)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
