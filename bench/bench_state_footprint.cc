// Experiment C9 (extension) — speculative-state footprint over run length,
// and C10 — checkpoint cost vs state size under the two state strategies.
//
// The paper notes processes must "maintain the ability to roll back state"
// but leaves reclamation open.  The C9 half measures the retained state
// (checkpoints + logged inputs) of a long-running server as the request
// count grows under both rollback strategies: with GC the footprint is
// bounded by the in-doubt window; without it it would grow linearly with
// uptime.  The C10 half sweeps the size of the environment a process
// carries and compares the bytes materialized per checkpoint under
// kDeepCopy (the historical O(|state|) copy) against kCow (structural
// sharing): COW's copied bytes stay flat while the deep oracle's grow
// linearly with state size.  The sweep double-checks correctness, too —
// the binary aborts if the two strategies commit different traces.
#include "bench_common.h"
#include "speculation/runtime.h"

namespace ocsp::bench {
namespace {

struct Footprint {
  std::size_t server_checkpoints = 0;
  std::size_t server_log = 0;
  std::uint64_t pruned_checkpoints = 0;
  std::uint64_t pruned_log = 0;
};

Footprint measure(int lines, double fail, spec::RollbackStrategy strategy) {
  core::PutLineParams p;
  p.lines = lines;
  p.fail_probability = fail;
  p.net.latency = sim::microseconds(200);
  p.spec.rollback = strategy;
  p.spec.replay_checkpoint_every = 16;
  auto rt = baseline::make_runtime(core::putline_scenario(p), true);
  rt->run(sim::seconds(120));
  const auto& server = rt->process(rt->find("Y"));
  return Footprint{server.checkpoint_count(), server.input_log_size(),
                   server.stats().checkpoints_pruned,
                   server.stats().log_entries_pruned};
}

// --------------------------------------------------------------------------
// C10 — checkpoint cost vs state size: kDeepCopy vs kCow.
// --------------------------------------------------------------------------

/// PutLine workload whose processes carry `pad_vars` extra 64-byte string
/// bindings: inert state that every checkpoint nevertheless has to
/// preserve, which is exactly where deep copying and structural sharing
/// diverge.
baseline::Scenario padded_scenario(int pad_vars, spec::StateStrategy s) {
  core::PutLineParams p;
  p.lines = 24;
  p.fail_probability = 0.15;  // wrong guesses keep rollback restores hot
  p.net.latency = sim::microseconds(200);
  p.spec.state = s;
  auto scenario = core::putline_scenario(p);
  const csp::Value padding(std::string(64, 'p'));
  for (auto& proc : scenario.processes) {
    for (int i = 0; i < pad_vars; ++i) {
      proc.env.set("__pad" + std::to_string(i), padding);
    }
  }
  return scenario;
}

baseline::RunResult run_state_strategy(int pad_vars, spec::StateStrategy s) {
  auto result = baseline::run_scenario(padded_scenario(pad_vars, s), true);
  OCSP_CHECK_MSG(result.all_completed,
                 "state-strategy sweep run did not complete");
  return result;
}

/// The sweep's correctness gate: the strategies may differ only in cost.
/// CHECK-fails (and so fails the binary and any CI job running it) on
/// committed-trace divergence.
void check_strategy_equivalence(const baseline::RunResult& deep,
                                const baseline::RunResult& cow) {
  std::string why;
  OCSP_CHECK_MSG(trace::compare_traces(deep.trace, cow.trace, &why),
                 why.c_str());
  OCSP_CHECK_MSG(deep.stats.commits == cow.stats.commits &&
                     deep.stats.rollbacks == cow.stats.rollbacks &&
                     deep.stats.checkpoints == cow.stats.checkpoints,
                 "strategies disagree on protocol counters");
}

std::vector<int> sweep_sizes() {
  if (smoke_mode()) return {0, 64};
  return {0, 16, 64, 256, 1024};
}

void report_checkpoint_cost() {
  print_header(
      "C10 — checkpoint cost vs state size (deep copy vs COW)",
      "Claim: with structural sharing, the bytes materialized per\n"
      "checkpoint are constant in the size of the carried state; the\n"
      "deep-copy oracle pays the full payload every time.");

  util::Table table({"env vars", "strategy", "checkpoints", "bytes copied",
                     "bytes shared", "restore bytes", "sharing ratio"});
  for (int pad : sweep_sizes()) {
    auto deep = run_state_strategy(pad, spec::StateStrategy::kDeepCopy);
    auto cow = run_state_strategy(pad, spec::StateStrategy::kCow);
    check_strategy_equivalence(deep, cow);
    for (auto [result, name] :
         {std::pair<const baseline::RunResult&, const char*>{deep, "deep"},
          std::pair<const baseline::RunResult&, const char*>{cow, "cow"}}) {
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.3f",
                    result.stats.sharing_ratio());
      table.row(pad, name, result.stats.checkpoints,
                result.stats.checkpoint_bytes_copied,
                result.stats.checkpoint_bytes_shared,
                result.stats.rollback_restore_bytes, ratio);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: \"bytes copied\" grows linearly with env vars under\n"
      "deep and stays flat under cow; cow's \"bytes shared\" matches deep's\n"
      "\"bytes copied\" exactly (same payloads at the same copy sites).\n\n");
}

void report() {
  report_checkpoint_cost();
  print_header(
      "C9 (extension) — retained speculative state vs run length",
      "Claim: with GC, the server's retained checkpoints and input log are\n"
      "bounded by the window of in-doubt guesses, not by the run length.");

  util::Table table({"requests", "strategy", "live checkpoints", "live log",
                     "pruned checkpoints", "pruned log entries"});
  for (int lines : {16, 64, 256}) {
    for (auto [strategy, name] :
         {std::pair{spec::RollbackStrategy::kCheckpointEveryInterval,
                    "checkpoint"},
          std::pair{spec::RollbackStrategy::kReplayFromLog, "replay"}}) {
      auto f = measure(lines, 0.0, strategy);
      table.row(lines, name, f.server_checkpoints, f.server_log,
                f.pruned_checkpoints, f.pruned_log);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the \"live\" columns stay flat from 16 to 256\n"
      "requests while the \"pruned\" columns grow linearly — retained state\n"
      "tracks the in-doubt window, and everything else is reclaimed.\n\n");
}

void BM_FootprintCheckpointStrategy(benchmark::State& state) {
  Footprint f;
  for (auto _ : state) {
    f = measure(static_cast<int>(state.range(0)), 0.0,
                spec::RollbackStrategy::kCheckpointEveryInterval);
    benchmark::DoNotOptimize(f.server_checkpoints);
  }
  state.counters["live_cp"] = static_cast<double>(f.server_checkpoints);
  state.counters["pruned_cp"] = static_cast<double>(f.pruned_checkpoints);
}
BENCHMARK(BM_FootprintCheckpointStrategy)->Arg(64)->Arg(256);

void BM_FootprintReplayStrategy(benchmark::State& state) {
  Footprint f;
  for (auto _ : state) {
    f = measure(static_cast<int>(state.range(0)), 0.0,
                spec::RollbackStrategy::kReplayFromLog);
    benchmark::DoNotOptimize(f.server_log);
  }
  state.counters["live_log"] = static_cast<double>(f.server_log);
  state.counters["pruned_log"] = static_cast<double>(f.pruned_log);
}
BENCHMARK(BM_FootprintReplayStrategy)->Arg(64)->Arg(256);

void run_checkpoint_cost_bench(benchmark::State& state,
                               spec::StateStrategy strategy,
                               const char* name) {
  const int pad = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = run_state_strategy(pad, strategy);
    benchmark::DoNotOptimize(result.stats.checkpoint_bytes_copied);
  }
  state.counters["bytes_copied"] =
      static_cast<double>(result.stats.checkpoint_bytes_copied);
  state.counters["bytes_shared"] =
      static_cast<double>(result.stats.checkpoint_bytes_shared);
  state.counters["restore_bytes"] =
      static_cast<double>(result.stats.rollback_restore_bytes);
  state.counters["sharing_ratio"] = result.stats.sharing_ratio();
  set_counters(state, result,
               std::string(name) + "_pad" + std::to_string(pad));
}

void BM_CheckpointDeepCopy(benchmark::State& state) {
  run_checkpoint_cost_bench(state, spec::StateStrategy::kDeepCopy, "deep");
}
BENCHMARK(BM_CheckpointDeepCopy)->Arg(0)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_CheckpointCow(benchmark::State& state) {
  run_checkpoint_cost_bench(state, spec::StateStrategy::kCow, "cow");
}
BENCHMARK(BM_CheckpointCow)->Arg(0)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
