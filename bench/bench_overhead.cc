// Experiment C7 — transparency overhead.
//
// Section 6 claims the transformation is transparent; the cost of running
// it is the protocol bookkeeping: guard tagging, checkpointing, commit
// histories.  This bench measures (a) the wall-clock cost of simulating
// the same workload with speculation on vs off, and (b) microbenchmarks of
// the hot protocol data structures.
#include "bench_common.h"
#include "speculation/cdg.h"
#include "speculation/guard_set.h"
#include "speculation/history.h"

namespace ocsp::bench {
namespace {

core::PutLineParams workload(int lines) {
  core::PutLineParams p;
  p.lines = lines;
  p.net.latency = sim::microseconds(200);
  return p;
}

void report() {
  print_header(
      "C7 — protocol bookkeeping overhead",
      "Claim: the transformation is transparent to the program; its cost\n"
      "is guard tagging + checkpoints + control messages, paid only where\n"
      "speculation is active.");

  util::Table table({"mode", "messages", "checkpoints", "control msgs",
                     "virtual ms"});
  auto off = baseline::run_scenario(core::putline_scenario(workload(32)),
                                    false);
  auto on = baseline::run_scenario(core::putline_scenario(workload(32)),
                                   true);
  table.row("speculation off", off.network.messages_delivered,
            off.stats.checkpoints, off.stats.control_sent,
            sim::to_millis(off.last_completion));
  table.row("speculation on", on.network.messages_delivered,
            on.stats.checkpoints, on.stats.control_sent,
            sim::to_millis(on.last_completion));
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: speculation adds one COMMIT per fork and one\n"
      "checkpoint per dependency acquisition, and buys a large virtual-\n"
      "time win; the wall-clock per-event costs below bound the\n"
      "implementation overhead.\n\n");
}

void BM_SimulationSpeculationOff(benchmark::State& state) {
  for (auto _ : state) {
    auto r = baseline::run_scenario(
        core::putline_scenario(workload(static_cast<int>(state.range(0)))),
        false);
    benchmark::DoNotOptimize(r.last_completion);
  }
}
BENCHMARK(BM_SimulationSpeculationOff)->Arg(16)->Arg(64);

void BM_SimulationSpeculationOn(benchmark::State& state) {
  for (auto _ : state) {
    auto r = baseline::run_scenario(
        core::putline_scenario(workload(static_cast<int>(state.range(0)))),
        true);
    benchmark::DoNotOptimize(r.last_completion);
  }
}
BENCHMARK(BM_SimulationSpeculationOn)->Arg(16)->Arg(64);

void BM_GuardSetMerge(benchmark::State& state) {
  const int owners = static_cast<int>(state.range(0));
  spec::GuardSet a, b;
  for (int i = 0; i < owners; ++i) {
    a.add(spec::GuessId{static_cast<ProcessId>(i), 0, 5});
    b.add(spec::GuessId{static_cast<ProcessId>(i), 0,
                        static_cast<std::uint32_t>(5 + i % 3)});
  }
  for (auto _ : state) {
    spec::GuardSet c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c.size());
  }
}
BENCHMARK(BM_GuardSetMerge)->Arg(2)->Arg(8)->Arg(32);

void BM_GuardSetMinus(benchmark::State& state) {
  const int owners = static_cast<int>(state.range(0));
  spec::GuardSet tag, local;
  for (int i = 0; i < owners; ++i) {
    tag.add(spec::GuessId{static_cast<ProcessId>(i), 0, 7});
    if (i % 2) local.add(spec::GuessId{static_cast<ProcessId>(i), 0, 9});
  }
  for (auto _ : state) {
    auto fresh = tag.minus(local);
    benchmark::DoNotOptimize(fresh.size());
  }
}
BENCHMARK(BM_GuardSetMinus)->Arg(2)->Arg(8)->Arg(32);

void BM_CdgCycleCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    spec::Cdg cdg;
    for (int i = 0; i + 1 < n; ++i) {
      cdg.add_edge(spec::GuessId{static_cast<ProcessId>(i), 0, 1},
                   spec::GuessId{static_cast<ProcessId>(i + 1), 0, 1});
    }
    state.ResumeTiming();
    auto cycle =
        cdg.add_edge(spec::GuessId{static_cast<ProcessId>(n - 1), 0, 1},
                     spec::GuessId{0, 0, 1});
    benchmark::DoNotOptimize(cycle.size());
  }
}
BENCHMARK(BM_CdgCycleCheck)->Arg(4)->Arg(16)->Arg(64);

void BM_HistoryImplicitAbortQuery(benchmark::State& state) {
  spec::PeerHistory h;
  for (std::uint32_t inc = 1; inc <= 8; ++inc) {
    h.observe_incarnation(inc, inc * 3);
  }
  std::uint32_t idx = 0;
  for (auto _ : state) {
    auto s = h.status(spec::GuessId{1, 3, (idx++ % 40)});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_HistoryImplicitAbortQuery);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
