// Experiment C3 — streaming depth: the right-branching fork structure of
// section 3.2 at scale.  How does completion time scale with the number of
// outstanding speculative calls, and what does the bookkeeping cost?
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::PutLineParams params_for(int lines) {
  core::PutLineParams p;
  p.lines = lines;
  p.net.latency = sim::microseconds(1000);
  p.service_time = sim::microseconds(10);
  p.client_compute = sim::microseconds(2);
  return p;
}

void report() {
  print_header(
      "C3 — streaming depth (outstanding speculative calls)",
      "Claim: the fork chain scales; per-call cost approaches the service\n"
      "time while the speedup approaches RTT/service.");

  util::Table table({"calls in flight", "sequential ms", "streamed ms",
                     "speedup", "checkpoints", "us per call"});
  for (int lines : {1, 2, 4, 8, 16, 32, 64}) {
    auto scenario = core::putline_scenario(params_for(lines));
    auto [pess, opt] = run_both(scenario);
    table.row(lines, sim::to_millis(pess.last_completion),
              sim::to_millis(opt.last_completion), speedup(pess, opt),
              opt.stats.checkpoints,
              sim::to_micros(opt.last_completion) / lines);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: streamed completion ~ 1 RTT + calls x service;\n"
      "us-per-call falls toward the service floor as the chain deepens.\n\n");
}

void BM_StreamDepth(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::putline_scenario(params_for(lines)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
  state.SetItemsProcessed(state.iterations() * lines);
}
BENCHMARK(BM_StreamDepth)->Arg(4)->Arg(16)->Arg(64);

void BM_RelayStreamDepth(benchmark::State& state) {
  core::PipelineParams p;
  p.calls = 12;
  p.chain_depth = static_cast<int>(state.range(0));
  p.net.latency = sim::microseconds(500);
  p.stream_relays = true;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(core::pipeline_scenario(p), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_RelayStreamDepth)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
