// Experiment C8 — the liveness limit L (section 3.3): "we impose a limit L
// specifying the maximum number of times the same computation will be
// re-executed optimistically; when this limit is exceeded, that particular
// computation will be re-executed pessimistically."
//
// An adversarial workload whose guesses are always wrong shows the
// trade-off: small L gives up quickly (few wasted speculations), large L
// keeps paying for aborts.
#include "bench_common.h"
#include "csp/service.h"
#include "transform/transform.h"

namespace ocsp::bench {
namespace {

baseline::Scenario adversarial(int calls, int retry_limit) {
  using csp::lit;
  using csp::Value;
  using csp::var;
  csp::StmtPtr client = csp::seq({
      csp::assign("i", lit(Value(0))),
      csp::assign("r", lit(Value(0))),
      csp::while_(csp::lt(var("i"), lit(Value(calls))),
                  csp::seq({
                      csp::call("S", "Echo", {var("i")}, "r"),
                      csp::assign("i", csp::add(var("i"), lit(Value(1)))),
                  })),
      csp::print(var("r")),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(-1));  // always wrong
  };
  client = transform::stream_calls(client, opts).program;

  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Echo"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return args[0];
  };
  csp::ServiceConfig sc;
  sc.service_time = sim::microseconds(10);

  baseline::Scenario scenario;
  scenario.options.default_link.latency =
      net::fixed_latency(sim::microseconds(300));
  scenario.options.spec.retry_limit = retry_limit;
  scenario.add("X", std::move(client));
  scenario.add("S", csp::native_service(std::move(handlers), sc));
  return scenario;
}

void report() {
  print_header(
      "C8 — retry limit L and the pessimistic fallback",
      "Claim: liveness requires capping optimistic re-execution; after L\n"
      "consecutive aborts of the same fork site the runtime executes it\n"
      "pessimistically, bounding the waste under adversarial guesses.");

  auto sequential = baseline::run_scenario(adversarial(16, 1), false);
  util::Table table({"L", "completion ms", "value faults", "rollbacks",
                     "pessimistic forks", "vs sequential"});
  for (int limit : {1, 2, 4, 8, 16}) {
    auto result = baseline::run_scenario(adversarial(16, limit), true);
    table.row(limit, sim::to_millis(result.last_completion),
              result.stats.aborts_value_fault, result.stats.rollbacks,
              result.stats.sequential_forks,
              static_cast<double>(result.last_completion) /
                  static_cast<double>(sequential.last_completion));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("sequential baseline: %.3f ms\n\n",
              sim::to_millis(sequential.last_completion));
  std::printf(
      "Expected shape: every L costs about L wasted speculations before\n"
      "the site falls back; completion stays within a small constant of\n"
      "sequential for small L and the run always terminates (liveness).\n\n");
}

void BM_AdversarialGuesses(benchmark::State& state) {
  const int limit = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(adversarial(16, limit), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_AdversarialGuesses)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
