// Experiment SA — guard elision at statically-safe fork sites.
//
// The safe-fanout workload's hints all classify SAFE: empty passed sets,
// no anti-dependencies, disjoint communication targets.  The runtime then
// spawns the right thread with no checkpoint, no guess, and no join-time
// verification traffic.  This benchmark compares three executions of the
// identical program: sequential, full speculative machinery (the
// safe-site oracle forces SAFE sites down the guarded path), and the
// elided fast path — same virtual-time win, measurably cheaper to run.
#include "analysis/classify.h"
#include "bench_common.h"
#include "trace/events.h"

namespace ocsp::bench {
namespace {

core::SafeFanoutParams make_params(int servers, bool oracle) {
  core::SafeFanoutParams p;
  p.servers = servers;
  p.net.latency = sim::microseconds(300);
  p.spec.safe_site_oracle = oracle;
  return p;
}

void report() {
  print_header(
      "SA — guard elision at statically-safe fork sites",
      "Claim: when the classifier proves a fork non-interfering, the\n"
      "checkpoint/guess/verification machinery can be elided without\n"
      "changing the committed trace or the virtual-time speedup.");

  // What the classifier says about the program under test.
  core::SafeFanoutParams lint_params = make_params(8, false);
  lint_params.transform = false;
  auto untransformed = core::safe_fanout_scenario(lint_params);
  for (const auto& proc : untransformed.processes) {
    auto rep = analysis::analyze_program(proc.program, proc.name);
    if (!rep.sites.empty()) std::printf("%s\n", rep.to_text().c_str());
  }

  auto elided = baseline::run_scenario(core::safe_fanout_scenario(
                                           make_params(8, false)),
                                       true);
  auto guarded = baseline::run_scenario(core::safe_fanout_scenario(
                                            make_params(8, true)),
                                        true);
  auto sequential = baseline::run_scenario(core::safe_fanout_scenario(
                                               make_params(8, false)),
                                           false);

  std::string why;
  const bool match =
      trace::compare_traces(sequential.trace, elided.trace, &why);

  util::Table table({"metric", "sequential", "guarded", "elided"});
  table.row("completion ms", sim::to_millis(sequential.last_completion),
            sim::to_millis(guarded.last_completion),
            sim::to_millis(elided.last_completion));
  table.row("safe forks taken", sequential.stats.safe_forks,
            guarded.stats.safe_forks, elided.stats.safe_forks);
  table.row("checkpoints", sequential.stats.checkpoints,
            guarded.stats.checkpoints, elided.stats.checkpoints);
  table.row("commits (guess verifications)", sequential.stats.commits,
            guarded.stats.commits, elided.stats.commits);
  table.row("control messages", sequential.stats.control_sent,
            guarded.stats.control_sent, elided.stats.control_sent);
  table.row("oracle violations", sequential.stats.safe_oracle_violations,
            guarded.stats.safe_oracle_violations,
            elided.stats.safe_oracle_violations);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("committed trace matches sequential: %s%s%s\n\n",
              match ? "yes" : "NO", match ? "" : " — ", why.c_str());

  util::Table sweep({"servers", "sequential ms", "elided ms", "speedup",
                     "guarded checkpoints", "elided checkpoints"});
  for (int n : {2, 4, 8, 16}) {
    auto seq_run = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, false)), false);
    auto guard_run = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, true)), true);
    auto fast_run = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, false)), true);
    sweep.row(n, sim::to_millis(seq_run.last_completion),
              sim::to_millis(fast_run.last_completion),
              speedup(seq_run, fast_run), guard_run.stats.checkpoints,
              fast_run.stats.checkpoints);
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("Expected shape: virtual-time speedup grows ~linearly with "
              "the fan-out\nwidth in both speculative modes; the elided "
              "column does it with zero\ncheckpoints and no verification "
              "traffic.\n\n");
}

void BM_SafeElided(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, false)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result, "BM_SafeElided/" + std::to_string(n));
  state.counters["checkpoints"] =
      static_cast<double>(result.stats.checkpoints);
  state.counters["safe_forks"] =
      static_cast<double>(result.stats.safe_forks);
}
BENCHMARK(BM_SafeElided)->Arg(4)->Arg(8)->Arg(16);

void BM_SafeGuarded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, true)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result, "BM_SafeGuarded/" + std::to_string(n));
  state.counters["checkpoints"] =
      static_cast<double>(result.stats.checkpoints);
}
BENCHMARK(BM_SafeGuarded)->Arg(4)->Arg(8)->Arg(16);

void BM_Sequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::safe_fanout_scenario(make_params(n, false)), false);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result, "BM_Sequential/" + std::to_string(n));
}
BENCHMARK(BM_Sequential)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
