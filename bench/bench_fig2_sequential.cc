// Experiment F1/F2 — Figures 1 and 2: the sequential client.
//
// Process X makes blocking PutLine calls to process Y; every call costs a
// full round trip plus service time, so total time grows linearly in
// calls x RTT.  This is the baseline every other experiment is measured
// against.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::PutLineParams params_for(int lines, sim::Time latency) {
  core::PutLineParams p;
  p.lines = lines;
  p.net.latency = latency;
  p.service_time = sim::microseconds(10);
  p.client_compute = sim::microseconds(5);
  p.stream = false;  // untransformed program: Figure 1's code as written
  return p;
}

void report() {
  print_header(
      "F1/F2 — sequential execution (paper Figures 1 and 2)",
      "Claim: without streaming, process X waits a full round trip per "
      "call;\ncompletion time = calls x (RTT + service).");

  std::printf("Scenario timeline (4 calls, 500us one-way latency):\n");
  auto scenario = core::putline_scenario(
      params_for(4, sim::microseconds(500)));
  auto rt = baseline::make_runtime(scenario, false);
  rt->run();
  print_timeline(rt->timeline());

  std::printf("\nCompletion time vs call count (one-way latency 500us):\n");
  util::Table table({"calls", "completion ms", "ms per call", "messages"});
  for (int lines : {1, 2, 4, 8, 16, 32}) {
    auto result = baseline::run_scenario(
        core::putline_scenario(params_for(lines, sim::microseconds(500))),
        false);
    table.row(lines, sim::to_millis(result.last_completion),
              sim::to_millis(result.last_completion) / lines,
              result.network.messages_delivered);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: ms/call constant at ~RTT (1.0ms) + "
              "service — linear blocking cost.\n\n");
}

void BM_SequentialPutLine(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::putline_scenario(params_for(lines, sim::microseconds(500))),
        false);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_SequentialPutLine)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
