// Experiment C6 — the section 5 comparison with Time Warp.
//
// Two causally unrelated clients stream requests into a shared server.
// Time Warp imposes a single total order (virtual receive times): when one
// client's events arrive late, the server must roll back work it did for
// the *other* client.  The OCSP protocol tracks only the partial order
// determined by communication, so either interleaving is legal and no
// rollbacks occur.
#include "baseline/timewarp.h"
#include "bench_common.h"

namespace ocsp::bench {
namespace {

struct TwOutcome {
  std::uint64_t rollbacks = 0;
  std::uint64_t events_rolled_back = 0;
  std::uint64_t antimessages = 0;
};

TwOutcome run_timewarp(int calls_per_client, int skew_rounds) {
  using namespace baseline::tw;
  Engine eng(1);
  LpId server = -1;
  server = eng.add_lp("S", [](csp::Env& state, const Event&) {
    state.set("n", csp::Value(state.get_or("n", csp::Value(0)).as_int() + 1));
    return std::vector<Emit>{};
  });
  const LpId c0 = eng.add_lp("C0", [server](csp::Env&, const Event&) {
    return std::vector<Emit>{Emit{server, 1, "req", csp::Value(0)}};
  });
  const LpId c1 = eng.add_lp("C1", [server](csp::Env&, const Event&) {
    return std::vector<Emit>{Emit{server, 1, "req", csp::Value(1)}};
  });
  eng.set_wall_delay(c1, server, skew_rounds);
  for (int i = 0; i < calls_per_client; ++i) {
    // Interleaved virtual times: the total order demands alternation.
    eng.inject(c0, 10 + 20 * i, "tick", csp::Value());
    eng.inject(c1, 20 + 20 * i, "tick", csp::Value());
  }
  eng.run();
  return TwOutcome{eng.stats().rollbacks, eng.stats().events_rolled_back,
                   eng.stats().antimessages_sent};
}

baseline::RunResult run_ocsp(int calls_per_client, sim::Time skew) {
  core::SharedServerParams p;
  p.clients = 2;
  p.calls_per_client = calls_per_client;
  p.net.latency = sim::microseconds(100);
  p.client_skew = skew;
  return baseline::run_scenario(core::shared_server_scenario(p), true);
}

void report() {
  print_header(
      "C6 — partial order (this paper) vs total order (Time Warp)",
      "Claim (section 5): Time Warp must process a shared server's inputs\n"
      "in global virtual-time order and rolls back when unrelated clients'\n"
      "events arrive skewed; the dynamically determined partial order\n"
      "accepts either interleaving with zero rollbacks.");

  util::Table table({"calls/client", "skew", "TW rollbacks",
                     "TW events undone", "TW antimessages",
                     "OCSP rollbacks", "OCSP aborts"});
  for (int calls : {4, 8, 16}) {
    for (int skew : {2, 6, 12}) {
      auto tw = run_timewarp(calls, skew);
      auto ocsp = run_ocsp(calls, sim::microseconds(100) * skew);
      table.row(calls, skew, tw.rollbacks, tw.events_rolled_back,
                tw.antimessages, ocsp.stats.rollbacks,
                ocsp.stats.total_aborts());
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: Time Warp rollbacks grow with both load and skew;\n"
      "the OCSP columns stay at zero because the clients never\n"
      "communicate with each other and no ordering guess is ever made\n"
      "between them.\n\n");
}

void BM_TimeWarpSharedServer(benchmark::State& state) {
  TwOutcome out;
  for (auto _ : state) {
    out = run_timewarp(static_cast<int>(state.range(0)), 6);
    benchmark::DoNotOptimize(out.rollbacks);
  }
  state.counters["rollbacks"] = static_cast<double>(out.rollbacks);
}
BENCHMARK(BM_TimeWarpSharedServer)->Arg(8)->Arg(16);

void BM_OcspSharedServer(benchmark::State& state) {
  baseline::RunResult result;
  for (auto _ : state) {
    result = run_ocsp(static_cast<int>(state.range(0)),
                      sim::microseconds(600));
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_OcspSharedServer)->Arg(8)->Arg(16);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
