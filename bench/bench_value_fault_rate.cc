// Experiment C2 — section 1's bargain: "provided we usually guess right,
// we still obtain a performance improvement ... if a bad guess is made,
// the program still runs correctly, but the average performance will be
// worse because of excessive rollbacks."
//
// Sweeps the probability that the guessed value is wrong and locates the
// crossover where optimism stops paying.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::DbFsParams params_for(double fail_probability, std::uint64_t seed) {
  core::DbFsParams p;
  p.transactions = 12;
  p.update_fail_probability = fail_probability;
  p.net.latency = sim::microseconds(500);
  p.db_service_time = sim::microseconds(20);
  p.fs_service_time = sim::microseconds(20);
  p.seed = seed;
  return p;
}

void report() {
  print_header(
      "C2 — speedup vs guess failure rate (value faults)",
      "Claim: correctness never depends on the guess; performance degrades\n"
      "smoothly with the abort rate and crosses below 1x only when guesses\n"
      "are mostly wrong.");

  util::Table table({"P[guess wrong]", "sequential ms", "optimistic ms",
                     "speedup", "value faults", "rollbacks",
                     "traces match"});
  for (int pct : {0, 5, 10, 25, 50, 75, 90, 100}) {
    // Average over a few seeds to smooth the Bernoulli draws.
    double seq_ms = 0, opt_ms = 0, faults = 0, rb = 0;
    bool all_match = true;
    const int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      auto sc = core::db_fs_scenario(
          params_for(pct / 100.0, static_cast<std::uint64_t>(s) * 97 + 5));
      auto [pess, opt] = run_both(sc);
      seq_ms += sim::to_millis(pess.last_completion);
      opt_ms += sim::to_millis(opt.last_completion);
      faults += static_cast<double>(opt.stats.aborts_value_fault);
      rb += static_cast<double>(opt.stats.rollbacks);
      std::string why;
      all_match &= trace::compare_traces(pess.trace, opt.trace, &why);
    }
    table.row(std::to_string(pct) + "%", seq_ms / kSeeds, opt_ms / kSeeds,
              seq_ms / opt_ms, faults / kSeeds, rb / kSeeds, all_match);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: ~2x at 0%% (the Write overlaps the Update), decaying\n"
      "toward ~1x at 100%% — a wrong guess costs a rollback but the work\n"
      "was off the critical path, so optimism degrades gracefully.\n\n");
}

void BM_ValueFaultRate(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(core::db_fs_scenario(params_for(p, 11)),
                                    true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_ValueFaultRate)->Arg(0)->Arg(25)->Arg(75);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
