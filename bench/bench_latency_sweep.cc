// Experiment C1 — the paper's central performance claim (sections 1, 6):
// call streaming "is extremely valuable when bandwidth is high but
// round-trip delays are long", i.e. the speedup grows with network latency
// relative to local compute.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::PutLineParams params_for(sim::Time latency) {
  core::PutLineParams p;
  p.lines = 16;
  p.net.latency = latency;
  p.service_time = sim::microseconds(10);
  p.client_compute = sim::microseconds(10);
  return p;
}

void report() {
  print_header(
      "C1 — speedup vs round-trip latency",
      "Claim: optimism wins big when RTT >> compute; at near-zero latency\n"
      "the transformation costs little and gains little.");

  util::Table table({"one-way latency", "sequential ms", "streamed ms",
                     "speedup", "aborts"});
  for (sim::Time lat :
       {sim::microseconds(1), sim::microseconds(10), sim::microseconds(100),
        sim::microseconds(1000), sim::microseconds(10000),
        sim::microseconds(100000)}) {
    auto scenario = core::putline_scenario(params_for(lat));
    auto [pess, opt] = run_both(scenario);
    char lat_label[32];
    std::snprintf(lat_label, sizeof lat_label, "%gus", sim::to_micros(lat));
    table.row(lat_label,
              sim::to_millis(pess.last_completion),
              sim::to_millis(opt.last_completion), speedup(pess, opt),
              opt.stats.total_aborts());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: speedup ~1x at 1us, rising monotonically and\n"
      "saturating near `lines` (16x) once the RTT dominates everything.\n\n");
}

void BM_LatencySweep(benchmark::State& state) {
  const sim::Time lat = sim::microseconds(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result =
        baseline::run_scenario(core::putline_scenario(params_for(lat)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_LatencySweep)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
