// Experiment F7 — Figure 7: aborted parallelization of two processes.
//
// The two speculative sends cross: X's guess ends up depending on Z's and
// vice versa.  The PRECEDENCE exchange closes the cycle x1 -> z1 -> x1 in
// the commit dependency graphs; both processes abort their guesses, the
// contaminated servers roll back, and both sides re-execute pessimistically.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::MutualParams params() {
  core::MutualParams p;
  p.crossing = true;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(20);
  return p;
}

void report() {
  print_header(
      "F7 — mutual speculation cycle, both abort (paper Figure 7)",
      "Claim: crossing speculations create a causal cycle; every guess on\n"
      "the cycle aborts and the system converges to a valid sequential\n"
      "outcome.");

  auto rt = baseline::make_runtime(core::mutual_scenario(params()), true);
  rt->run();
  std::printf("Timeline (protocol events only):\n");
  print_timeline(rt->timeline(), /*include_messages=*/false);
  std::printf("\nprotocol: %s\n\n", rt->total_stats().to_string().c_str());

  auto [pess, opt] = run_both(core::mutual_scenario(params()));
  util::Table table({"metric", "pessimistic", "optimistic"});
  table.row("time-fault aborts", pess.stats.aborts_time_fault,
            opt.stats.aborts_time_fault);
  table.row("rollbacks", pess.stats.rollbacks, opt.stats.rollbacks);
  table.row("precedence messages", pess.stats.precedence_sent,
            opt.stats.precedence_sent);
  table.row("completion ms", sim::to_millis(pess.last_completion),
            sim::to_millis(opt.last_completion));
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: both guesses abort (2 time faults), several\n"
      "rollbacks across the four processes, and the optimistic run pays a\n"
      "penalty relative to sequential — the price of guessing wrong, paid\n"
      "only when the cycle actually occurs.\n\n");
}

void BM_Fig7Cycle(benchmark::State& state) {
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(core::mutual_scenario(params()), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_Fig7Cycle);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
