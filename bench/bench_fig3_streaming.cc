// Experiment F3 — Figure 3: successful optimistic call streaming.
//
// The same PutLine workload with the call streaming transformation: the
// runtime forks a guess-guarded thread per call, the calls leave back to
// back, and the guard sets on the wire show the dependency tracking
// ({x1} on the second call, etc.).  Every guess commits; the committed
// trace equals the sequential one.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::PutLineParams params_for(int lines, sim::Time latency) {
  core::PutLineParams p;
  p.lines = lines;
  p.net.latency = latency;
  p.service_time = sim::microseconds(10);
  p.client_compute = sim::microseconds(5);
  return p;
}

void report() {
  print_header(
      "F3 — successful call streaming (paper Figure 3)",
      "Claim: the transformed client overlaps all round trips; guard sets\n"
      "propagate on messages and every guess commits without rollback.");

  std::printf("Scenario timeline (4 calls, 500us one-way latency) — note\n"
              "the guard tags {g(P0.0.n)} on the streamed calls:\n");
  auto scenario = core::putline_scenario(
      params_for(4, sim::microseconds(500)));
  auto rt = baseline::make_runtime(scenario, true);
  rt->run();
  print_timeline(rt->timeline());
  std::printf("\nprotocol: %s\n", rt->total_stats().to_string().c_str());

  std::printf("\nSequential vs streamed completion:\n");
  util::Table table({"calls", "sequential ms", "streamed ms", "speedup",
                     "commits", "aborts"});
  for (int lines : {1, 2, 4, 8, 16, 32}) {
    auto scen = core::putline_scenario(
        params_for(lines, sim::microseconds(500)));
    auto [pess, opt] = run_both(scen);
    table.row(lines, sim::to_millis(pess.last_completion),
              sim::to_millis(opt.last_completion), speedup(pess, opt),
              opt.stats.commits, opt.stats.total_aborts());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: streamed time ~ 1 RTT + calls x service; "
              "speedup grows\nwith call count toward RTT/service.\n\n");
}

void BM_StreamedPutLine(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::putline_scenario(params_for(lines, sim::microseconds(500))),
        true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_StreamedPutLine)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
