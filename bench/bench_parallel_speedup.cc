// Experiment C14 — real wall-clock speedup from the parallel executor.
//
// Every other benchmark measures *virtual* time: the simulator proves the
// protocol wins round trips, but runs on one thread.  This one runs the
// same speculation protocol on exec::ParallelRuntime's sharded worker
// threads, turns each Compute statement into real wall time
// (ParallelOptions::compute_scale), and reports how the wall clock scales
// at 1/2/4/8 workers.
//
// Two burn modes, two claims:
//   - overlap (sleep burn): a worker emulating compute yields its core, so
//     the curve isolates how well the executor overlaps independent
//     shards' work.  Meaningful on any host, including single-core CI.
//   - CPU scaling (spin burn): a worker occupies its core, so the curve
//     shows raw multicore scaling and flattens at the core count.
//
// Methodology split (EXPERIMENTS.md C14): everything deterministic —
// committed traces, commits, aborts, GVT windows — is CHECKed here and
// gated in CI via the committed JSON snapshot; wall-clock numbers are
// printed and attached as google-benchmark counters but never gated,
// because they depend on the machine.
#include "bench_common.h"

#include <thread>

#include "exec/parallel.h"
#include "trace/events.h"
#include "util/check.h"

namespace ocsp::bench {
namespace {

core::ComputeFanoutParams curve_params(int miss_period) {
  core::ComputeFanoutParams p;
  p.pairs = 8;
  p.calls = 8;
  p.compute = sim::microseconds(200);
  p.miss_period = miss_period;
  return p;
}

/// Wall-ns of emulated compute per virtual ns of Compute.  Smoke keeps CI
/// fast; the scale changes only the wall clock, never a gated counter.
double sleep_scale() { return smoke_mode() ? 2.0 : 20.0; }
double spin_scale() { return smoke_mode() ? 0.05 : 5.0; }

void curve_report(const char* title, int miss_period, bool sleep_burn,
                  double scale) {
  const auto scenario =
      core::compute_fanout_scenario(curve_params(miss_period));
  baseline::Scenario seq = scenario;
  seq.options.per_link_net = true;
  const baseline::RunResult ref = baseline::run_scenario(seq, true);
  OCSP_CHECK(ref.all_completed);

  std::printf("%s\n", title);
  util::Table table({"workers", "wall ms", "speedup", "virt ms", "commits",
                     "aborts", "gvt windows", "fossil"});
  double wall_1 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    const auto par = exec::run_scenario_parallel(
        scenario, workers, true, scale, sim::kTimeNever, sleep_burn);
    // The speedup claim is only worth reporting if the parallel run is the
    // *same computation*: exact committed-trace equality with the
    // deterministic simulator, at every worker count.
    std::string why;
    OCSP_CHECK_MSG(trace::compare_traces(ref.trace, par.result.trace, &why),
                   why.c_str());
    OCSP_CHECK(par.result.all_completed);
    const double wall_ms = static_cast<double>(par.wall_ns) / 1e6;
    if (workers == 1) wall_1 = wall_ms;
    table.row(workers, wall_ms, wall_ms > 0 ? wall_1 / wall_ms : 0.0,
              sim::to_millis(par.result.last_completion),
              par.result.stats.commits, par.result.stats.total_aborts(),
              par.windows.size(),
              par.result.stats.checkpoints_fossil_collected);
  }
  std::printf("%s\n", table.to_string().c_str());
}

void report() {
  print_header(
      "C14 — wall-clock speedup of the sharded speculation executor",
      "Claim: the GVT-fenced parallel executor turns the protocol's\n"
      "virtual-time wins into real wall-clock speedup (> 1.5x at 4 workers\n"
      "on the overlap curve), while committing exactly the simulator's\n"
      "trace at every worker count.");

  std::printf("Host cores: %u\n\n", std::thread::hardware_concurrency());
  curve_report("Overlap curve (sleep burn, all guesses verify):", 0,
               /*sleep_burn=*/true, sleep_scale());
  curve_report("Overlap curve, every 4th guess misses (aborts discard real "
               "work):",
               4, /*sleep_burn=*/true, sleep_scale());
  curve_report("CPU-scaling curve (spin burn; flattens at the core count):",
               0, /*sleep_burn=*/false, spin_scale());
  std::printf(
      "Expected shape: near-linear overlap scaling to 8 workers (one shard\n"
      "per client/server pair); the miss curve pays for re-executed compute\n"
      "but stays exact; the spin curve tracks min(workers, cores).  Wall\n"
      "columns are machine-dependent and never gated; every other column is\n"
      "deterministic and snapshotted in the CI bench gate.\n\n");
}

void BM_ParallelSpeedup(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto scenario = core::compute_fanout_scenario(curve_params(0));
  exec::ParallelRunResult par;
  for (auto _ : state) {
    par = exec::run_scenario_parallel(scenario, workers, true, sleep_scale(),
                                      sim::kTimeNever, /*compute_sleep=*/true);
    benchmark::DoNotOptimize(par.result.last_completion);
  }
  set_counters(state, par.result, "parallel_w" + std::to_string(workers));
  // Wall-clock numbers ride on the google-benchmark report only (ungated).
  state.counters["wall_ms"] = static_cast<double>(par.wall_ns) / 1e6;
  state.counters["gvt_windows"] = static_cast<double>(par.windows.size());
}
BENCHMARK(BM_ParallelSpeedup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelSpeedupWithMisses(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto scenario = core::compute_fanout_scenario(curve_params(4));
  exec::ParallelRunResult par;
  for (auto _ : state) {
    par = exec::run_scenario_parallel(scenario, workers, true, sleep_scale(),
                                      sim::kTimeNever, /*compute_sleep=*/true);
    benchmark::DoNotOptimize(par.result.last_completion);
  }
  set_counters(state, par.result,
               "parallel_miss_w" + std::to_string(workers));
  state.counters["wall_ms"] = static_cast<double>(par.wall_ns) / 1e6;
  state.counters["gvt_windows"] = static_cast<double>(par.windows.size());
}
BENCHMARK(BM_ParallelSpeedupWithMisses)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
