// Experiment F4 — Figure 4: a time fault.
//
// X updates server Y (which writes through to Z) and speculatively writes
// to Z directly.  The speculative write overtakes Y's propagation at Z,
// the reply chain carries X's own guess back to X's left thread, and the
// join detects the happens-before cycle: x1 is aborted.
#include "bench_common.h"

namespace ocsp::bench {
namespace {

core::WriteThroughParams params_for(bool fault) {
  core::WriteThroughParams p;
  p.force_fault = fault;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(10);
  return p;
}

void report() {
  print_header(
      "F4 — time fault detection (paper Figure 4)",
      "Claim: when X's speculative call reaches Z before the causally\n"
      "earlier Y->Z message, the cycle in happens-before is detected\n"
      "dynamically and the guess aborts.");

  std::printf("Faulting timeline (X->Z fast, Y->Z slow):\n");
  auto rt = baseline::make_runtime(
      core::write_through_scenario(params_for(true)), true);
  rt->run();
  print_timeline(rt->timeline());
  std::printf("\nprotocol: %s\n\n", rt->total_stats().to_string().c_str());

  util::Table table({"ordering", "time faults", "rollbacks", "orphans",
                     "completion ms", "traces match"});
  for (bool fault : {false, true}) {
    auto scenario = core::write_through_scenario(params_for(fault));
    auto [pess, opt] = run_both(scenario);
    std::string why;
    table.row(fault ? "violated (Fig 4)" : "holds",
              opt.stats.aborts_time_fault, opt.stats.rollbacks,
              opt.stats.orphans_discarded,
              sim::to_millis(opt.last_completion),
              trace::compare_traces(pess.trace, opt.trace, &why));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: exactly the violated ordering produces the "
              "time fault,\nand the run still converges to the sequential "
              "trace.\n\n");
}

void BM_TimeFaultScenario(benchmark::State& state) {
  const bool fault = state.range(0) != 0;
  baseline::RunResult result;
  for (auto _ : state) {
    result = baseline::run_scenario(
        core::write_through_scenario(params_for(fault)), true);
    benchmark::DoNotOptimize(result.last_completion);
  }
  set_counters(state, result);
}
BENCHMARK(BM_TimeFaultScenario)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ocsp::bench

OCSP_BENCH_MAIN(ocsp::bench::report)
