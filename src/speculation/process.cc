// Core of SpeculativeProcess: construction, cooperative scheduling, effect
// handling, message sending, logs, and completion tracking.  Fork/join live
// in process_fork.cc, arrival/delivery in process_arrival.cc, and control
// message processing plus rollback in process_control.cc.
#include "speculation/process.h"

#include <algorithm>

#include "speculation/runtime.h"
#include "util/check.h"
#include "util/logging.h"

namespace ocsp::spec {

SpeculativeProcess::SpeculativeProcess(ExecContext& runtime, ProcessId id,
                                       std::string name, csp::StmtPtr program,
                                       csp::Env initial_env, SpecConfig config,
                                       util::Rng rng)
    : runtime_(runtime),
      id_(id),
      name_(std::move(name)),
      config_(config),
      rng_(rng) {
  ThreadCtx t;
  t.index = 0;
  t.machine = csp::Machine(std::move(program), std::move(initial_env),
                           rng_.split());
  t.created_at = StateIndex{0, 0, 0};
  threads_.emplace(0u, std::move(t));
}

void SpeculativeProcess::start() {
  ThreadCtx& t0 = threads_.at(0);
  take_checkpoint(t0);
  // Move past the checkpoint's interval so no acceptance rollback point can
  // collide with the creation checkpoint key (the two restore paths differ:
  // a full-checkpoint key restores verbatim, an acceptance key may rebuild
  // by replay).
  ++t0.interval;
  schedule_step(0);
}

trace::Timeline& SpeculativeProcess::timeline() { return runtime_.timeline(); }

obs::RunRecorder& SpeculativeProcess::recorder() { return runtime_.recorder(); }

obs::GuessRef SpeculativeProcess::guess_ref(const GuessId& g) {
  return obs::GuessRef{g.owner, g.incarnation, g.index};
}

obs::ControlType SpeculativeProcess::obs_control(ControlKind kind) {
  switch (kind) {
    case ControlKind::kCommit:
      return obs::ControlType::kCommit;
    case ControlKind::kAbort:
      return obs::ControlType::kAbort;
    case ControlKind::kPrecedence:
      return obs::ControlType::kPrecedence;
  }
  return obs::ControlType::kNone;
}

obs::Event SpeculativeProcess::make_event(obs::EventKind kind) const {
  obs::Event ev;
  ev.kind = kind;
  ev.when = runtime_.scheduler().now();
  ev.process = id_;
  ev.incarnation = incarnation_;
  return ev;
}

void SpeculativeProcess::record_abort(const GuessId& g,
                                      obs::AbortReason reason,
                                      const char* detail,
                                      const GuessId& cause) {
  obs::Event ev = make_event(obs::EventKind::kAbort);
  ev.guess = guess_ref(g);
  ev.thread = g.index;
  ev.reason = reason;
  ev.detail = detail;
  if (cause.valid() && !(cause == g)) ev.guess_from = guess_ref(cause);
  recorder().record(std::move(ev));
  // Soundness oracle: a SAFE-classified site must never raise a value or
  // time fault (timeouts and cascades are liveness/collateral, not
  // interference at the site itself).
  if ((reason == obs::AbortReason::kValueFault ||
       reason == obs::AbortReason::kTimeFault) &&
      safe_claimed_.count(g) > 0) {
    ++stats_.safe_oracle_violations;
#ifndef NDEBUG
    OCSP_CHECK_MSG(false, "SAFE-classified fork site raised a fault");
#endif
  }
}

void SpeculativeProcess::record_work_discarded(const ThreadCtx& t,
                                               sim::Time discarded_ns,
                                               const GuessId& cause) {
  if (discarded_ns <= 0) return;
  obs::Event ev = make_event(obs::EventKind::kWorkDiscarded);
  ev.thread = t.index;
  ev.interval = t.interval;
  ev.a = static_cast<std::uint64_t>(discarded_ns);
  if (t.has_own_guess) {
    ev.guess = guess_ref(t.own_guess);
    ev.detail = t.own_site;
  }
  if (cause.valid()) ev.guess_from = guess_ref(cause);
  recorder().record(std::move(ev));
}

obs::MetricsRegistry SpeculativeProcess::metrics_view() const {
  obs::MetricsRegistry m = live_metrics_;
  stats_.export_to(m);
  obs::update_sharing_ratio_gauge(m);
  for (const auto& [key, acc] : predictors_.accuracy()) {
    const std::string base =
        "predictor/" + key.first + "." + key.second + "/";
    m.counter(base + "hits") += acc.hits;
    m.counter(base + "misses") += acc.misses;
  }
  const std::uint64_t verified = m.counter_or("guesses_verified");
  const std::uint64_t failed = m.counter_or("guesses_failed");
  if (verified + failed > 0) {
    m.gauge("guess_accuracy") = static_cast<double>(verified) /
                                static_cast<double>(verified + failed);
  }
  return m;
}

ProcessId SpeculativeProcess::resolve(const std::string& target) const {
  return runtime_.find(target);
}

StateIndex SpeculativeProcess::current_index(const ThreadCtx& t) const {
  return StateIndex{incarnation_, t.index, t.interval};
}

std::vector<std::pair<StateIndex, csp::Env>>
SpeculativeProcess::checkpoint_envs() const {
  std::vector<std::pair<StateIndex, csp::Env>> out;
  out.reserve(checkpoints_.size());
  for (const auto& [key, snapshot] : checkpoints_) {
    out.emplace_back(key, snapshot.machine.env());
  }
  return out;
}

std::size_t SpeculativeProcess::live_thread_count() const {
  std::size_t n = 0;
  for (const auto& [idx, t] : threads_) {
    if (t.phase != ThreadCtx::Phase::kTerminated) ++n;
  }
  return n;
}

const ThreadCtx* SpeculativeProcess::thread(std::uint32_t index) const {
  auto it = threads_.find(index);
  return it == threads_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void SpeculativeProcess::schedule_step(std::uint32_t thread_index) {
  if (step_scheduled_[thread_index]) return;
  step_scheduled_[thread_index] = true;
  runtime_.scheduler().after(0, [this, thread_index]() {
    step_scheduled_[thread_index] = false;
    run_thread(thread_index);
  });
}

void SpeculativeProcess::run_thread(std::uint32_t thread_index) {
  if (crashed_) return;  // down; restart() reschedules every runnable thread
  auto it = threads_.find(thread_index);
  if (it == threads_.end()) return;  // killed before the step fired
  if (it->second.phase != ThreadCtx::Phase::kRunning) return;
  OCSP_CHECK_MSG(!stepping_, "re-entrant run_thread");
  stepping_ = true;
  bool keep_going = true;
  while (keep_going) {
    // Re-look-up: effects (fork, join, rollback) mutate threads_.
    auto cur = threads_.find(thread_index);
    if (cur == threads_.end() ||
        cur->second.phase != ThreadCtx::Phase::kRunning) {
      break;
    }
    csp::Effect effect = cur->second.machine.step();
    keep_going = handle_effect(cur->second, std::move(effect));
  }
  stepping_ = false;
}

bool SpeculativeProcess::handle_effect(ThreadCtx& t, csp::Effect effect) {
  using K = csp::Effect::Kind;
  switch (effect.kind) {
    case K::kCall: {
      const std::int64_t reqid = next_reqid_++;
      t.outstanding_reqid = reqid;
      t.phase = ThreadCtx::Phase::kAwaitReply;
      outstanding_calls_[reqid] = t.index;
      trace::ObservableEvent ev;
      ev.kind = trace::ObservableEvent::Kind::kSend;
      ev.process = id_;
      ev.peer = resolve(effect.target);
      ev.op = effect.op;
      ev.data = csp::Value(effect.args);
      record_event(t, std::move(ev));
      send_data(t, DataKind::kCall, effect.target, std::move(effect.op),
                std::move(effect.args), csp::Value(), reqid);
      return false;
    }
    case K::kSend: {
      trace::ObservableEvent ev;
      ev.kind = trace::ObservableEvent::Kind::kSend;
      ev.process = id_;
      ev.peer = resolve(effect.target);
      ev.op = effect.op;
      ev.data = csp::Value(effect.args);
      record_event(t, std::move(ev));
      send_data(t, DataKind::kSend, effect.target, std::move(effect.op),
                std::move(effect.args), csp::Value(), -1);
      return true;
    }
    case K::kReceive: {
      t.phase = ThreadCtx::Phase::kAwaitMessage;
      process_arrivals();
      return false;
    }
    case K::kReply: {
      send_data(t, DataKind::kReturn, "",
                /*op=*/"", {}, std::move(effect.value), effect.reply_reqid);
      return true;
    }
    case K::kPrint: {
      trace::ObservableEvent ev;
      ev.kind = trace::ObservableEvent::Kind::kExternalOutput;
      ev.process = id_;
      ev.data = effect.value;
      if (!flush_ready(t)) {
        ++stats_.externals_buffered;
        const std::size_t pos = t.event_log.size();
        external_buffered_at_[{t.index, pos}] = runtime_.scheduler().now();
        obs::Event oe = make_event(obs::EventKind::kExternalBuffered);
        oe.thread = t.index;
        oe.interval = t.interval;
        oe.a = pos;
        oe.detail = effect.value.to_string();
        recorder().record(std::move(oe));
      }
      record_event(t, std::move(ev));
      return true;
    }
    case K::kCompute: {
      t.phase = ThreadCtx::Phase::kAwaitCompute;
      const std::uint32_t idx = t.index;
      const sim::Time duration = effect.duration;
      runtime_.on_compute(id_, duration);
      compute_timers_[idx] =
          runtime_.scheduler().after(duration, [this, idx, duration]() {
            auto it = threads_.find(idx);
            if (it == threads_.end()) return;
            ThreadCtx& th = it->second;
            if (th.phase != ThreadCtx::Phase::kAwaitCompute) return;
            th.compute_ns += duration;
            obs::Event ev = make_event(obs::EventKind::kComputeDone);
            ev.thread = idx;
            ev.interval = th.interval;
            ev.a = static_cast<std::uint64_t>(duration);
            if (th.has_own_guess) {
              ev.guess = guess_ref(th.own_guess);
              ev.detail = th.own_site;
            }
            recorder().record(std::move(ev));
            th.machine.resume();
            th.phase = ThreadCtx::Phase::kRunning;
            schedule_step(idx);
          });
      return false;
    }
    case K::kFork: {
      do_fork(t, *effect.fork);
      return true;
    }
    case K::kDone: {
      if (t.has_pending_join) {
        do_join(t);
      } else {
        t.phase = ThreadCtx::Phase::kDoneWaitGuard;
        obs::Event ev = make_event(obs::EventKind::kThreadBlocked);
        ev.thread = t.index;
        ev.interval = t.interval;
        ev.a = t.guard.size();
        recorder().record(std::move(ev));
        after_guard_change();
      }
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Sending (section 4.2.2: tag every outgoing message with the guard set)
// ---------------------------------------------------------------------------

void SpeculativeProcess::send_data(ThreadCtx& t, DataKind kind,
                                   const std::string& target_name,
                                   std::string op, csp::ValueList args,
                                   csp::Value result, std::int64_t reqid) {
  ++t.sent_count;
  if (replaying_) {
    // Deterministic replay re-produces sends that already went out on the
    // first execution; suppress them (section 4.1.3's log-based rollback).
    return;
  }
  auto msg = std::make_shared<DataMessage>();
  msg->data_kind = kind;
  msg->op = std::move(op);
  msg->args = std::move(args);
  msg->result = std::move(result);
  msg->reqid = reqid;
  msg->guard = t.guard;

  ProcessId dst;
  if (kind == DataKind::kReturn) {
    dst = static_cast<ProcessId>(t.machine.env().get("__caller").as_int());
  } else {
    dst = resolve(target_name);
  }

  // Record recipients per guess for the targeted control plane (4.2.5).
  if (config_.control == ControlPlane::kTargeted) {
    for (const auto& g : t.guard) {
      auto& v = spread_[g];
      if (std::find(v.begin(), v.end(), dst) == v.end()) v.push_back(dst);
    }
  }

  timeline().record({trace::TimelineEntry::Kind::kMsgSend,
                     runtime_.scheduler().now(), id_, dst, msg->describe()});
  // Data plane goes through the reliable transport (a plain network send
  // when it is disabled); the control plane keeps its own liveness story.
  runtime_.transport_send(id_, dst, std::move(msg));
}

// ---------------------------------------------------------------------------
// Logs, externals, completion
// ---------------------------------------------------------------------------

void SpeculativeProcess::record_event(ThreadCtx& t,
                                      trace::ObservableEvent event) {
  t.event_log.push_back(std::move(event));
  // Committed immediately when program order allows it.  During replay the
  // flush point is restored from ReplayMeta afterwards.
  if (!replaying_ && flush_ready(t)) flush_events(t);
}

bool SpeculativeProcess::flush_ready(const ThreadCtx& t) const {
  if (!t.guard.empty()) return false;
  for (const auto& [idx, other] : threads_) {
    if (idx >= t.index) break;
    if (other.phase != ThreadCtx::Phase::kTerminated ||
        other.flushed_count < other.event_log.size()) {
      return false;
    }
  }
  return true;
}

void SpeculativeProcess::flush_events(ThreadCtx& t) {
  while (t.flushed_count < t.event_log.size()) {
    const trace::ObservableEvent& e = t.event_log[t.flushed_count];
    committed_log_.push_back(e);
    if (e.kind == trace::ObservableEvent::Kind::kExternalOutput) {
      // Flushing commits the event; external outputs are released to the
      // outside world at this moment (section 3.1's buffering rule).
      ++stats_.externals_released;
      obs::Event oe = make_event(obs::EventKind::kExternalReleased);
      oe.thread = t.index;
      oe.a = t.flushed_count;
      auto buffered = external_buffered_at_.find({t.index, t.flushed_count});
      if (buffered != external_buffered_at_.end()) {
        const sim::Time dwell =
            runtime_.scheduler().now() - buffered->second;
        oe.b = static_cast<std::uint64_t>(dwell);
        obs::external_dwell_hist(live_metrics_)
            .add(static_cast<double>(dwell) / 1000.0);
        external_buffered_at_.erase(buffered);
      }
      oe.detail = e.data.to_string();
      recorder().record(std::move(oe));
      timeline().record({trace::TimelineEntry::Kind::kExternalRelease,
                         runtime_.scheduler().now(), id_, kNoProcess,
                         e.data.to_string()});
    }
    ++t.flushed_count;
  }
}

void SpeculativeProcess::flush_logs() {
  // Ascending thread order preserves the program order of the final trace:
  // thread n's events all precede thread n+1's.  Stop at the first thread
  // that is not fully done — later threads' events must stay buffered even
  // when their own guard is empty (a SAFE fork's right thread runs
  // unguarded while the left thread is still producing events).
  for (auto& [idx, t] : threads_) {
    if (!t.guard.empty()) break;
    flush_events(t);
    if (t.phase != ThreadCtx::Phase::kTerminated) break;
  }
}

void SpeculativeProcess::check_completion() {
  if (completed_) return;
  for (auto& [idx, t] : threads_) {
    if (t.phase == ThreadCtx::Phase::kDoneWaitGuard && t.guard.empty()) {
      t.phase = ThreadCtx::Phase::kTerminated;
      program_finished_ = true;
      obs::Event ev = make_event(obs::EventKind::kThreadResolved);
      ev.thread = t.index;
      ev.interval = t.interval;
      recorder().record(std::move(ev));
    }
  }
  if (!program_finished_) return;
  // The program body finished; completion needs every thread terminated.
  // Under speculation that is already true (join guesses committed, which
  // is what emptied the final thread's guard), but a SAFE fork's left
  // thread may still be running S1 and joins later.
  for (const auto& [idx, t] : threads_) {
    if (t.phase != ThreadCtx::Phase::kTerminated) return;
  }
  completed_ = true;
  completion_time_ = runtime_.scheduler().now();
  recorder().record(make_event(obs::EventKind::kProcessCompleted));
  timeline().note(completion_time_, id_, "process completed");
}

void SpeculativeProcess::apply_state_strategy(csp::Machine& copy) {
  const std::uint64_t payload = copy.state_bytes();
  if (config_.state == StateStrategy::kDeepCopy) {
    copy.deep_copy_state();
    stats_.checkpoint_bytes_copied += payload;
  } else {
    // The copy already happened (a shared handle); only account it.
    stats_.checkpoint_bytes_copied += sizeof(csp::Env);
    stats_.checkpoint_bytes_shared += payload;
  }
}

std::uint64_t SpeculativeProcess::restore_cost_bytes(
    const csp::Machine& m) const {
  return config_.state == StateStrategy::kDeepCopy
             ? m.state_bytes()
             : sizeof(csp::Env);
}

void SpeculativeProcess::take_checkpoint(const ThreadCtx& t) {
  ++stats_.checkpoints;
  ThreadCtx snapshot = t;
  snapshot.checkpointed_at = runtime_.scheduler().now();
  const std::uint64_t payload = snapshot.machine.state_bytes();
  apply_state_strategy(snapshot.machine);
  {
    obs::Event ev = make_event(obs::EventKind::kCheckpointTaken);
    ev.thread = t.index;
    ev.interval = t.interval;
    const bool deep = config_.state == StateStrategy::kDeepCopy;
    ev.a = deep ? payload : sizeof(csp::Env);
    ev.b = deep ? 0 : payload;
    recorder().record(std::move(ev));
  }
  checkpoints_.insert_or_assign(current_index(t), std::move(snapshot));
}

}  // namespace ocsp::spec
