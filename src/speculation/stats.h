// Counters describing what the protocol did during a run.
#pragma once

#include <cstdint>
#include <string>

namespace ocsp::obs {
class MetricsRegistry;
}

namespace ocsp::spec {

struct SpecStats {
  std::uint64_t forks = 0;
  std::uint64_t sequential_forks = 0;  ///< forks run pessimistically (L hit
                                       ///< or speculation disabled)
  std::uint64_t safe_forks = 0;  ///< statically-SAFE forks run with the
                                 ///< guard machinery elided
  std::uint64_t safe_oracle_violations = 0;  ///< value/time faults raised by
                                             ///< SAFE-classified sites under
                                             ///< the debug oracle
  std::uint64_t joins = 0;
  std::uint64_t commits = 0;
  /// Joins whose guess verification failed exact equality but committed
  /// anyway under commit-on-commute (every mismatched variable's VerifyMode
  /// forgave it).  Subset of `commits`.
  std::uint64_t commute_commits = 0;
  /// Mismatched variables forgiven across all commute commits.
  std::uint64_t commute_forgiven_vars = 0;
  /// VerifyMode annotations rejected by the fork-time use-class oracle
  /// (SpecConfig::commute_oracle): the static proof no longer holds.
  std::uint64_t commute_oracle_violations = 0;
  std::uint64_t aborts_value_fault = 0;
  std::uint64_t aborts_time_fault = 0;
  std::uint64_t aborts_timeout = 0;
  std::uint64_t aborts_crash = 0;    ///< own guesses discarded restoring the
                                     ///< committed state after a crash
  std::uint64_t aborts_cascade = 0;  ///< rollbacks caused by remote aborts
  std::uint64_t rollbacks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t replays = 0;
  std::uint64_t orphans_discarded = 0;
  std::uint64_t messages_redelivered = 0;
  std::uint64_t externals_buffered = 0;
  std::uint64_t externals_released = 0;
  std::uint64_t externals_discarded = 0;
  std::uint64_t control_sent = 0;
  std::uint64_t precedence_sent = 0;
  std::uint64_t checkpoints_pruned = 0;
  std::uint64_t log_entries_pruned = 0;
  /// Checkpoints freed by the parallel executor's GVT fossil collector
  /// (disjoint from checkpoints_pruned, which counts gc_resolved_state).
  std::uint64_t checkpoints_fossil_collected = 0;

  /// State-copy accounting (checkpoints, fork-time machine copies, and
  /// join re-execution state adoption).  Under StateStrategy::kDeepCopy
  /// every copy materializes the whole Env, so `copied` grows with
  /// O(|state|) per event; under kCow a copy is a shared handle, so
  /// `copied` stays at handle size and the payload lands in `shared`.
  std::uint64_t checkpoint_bytes_copied = 0;
  std::uint64_t checkpoint_bytes_shared = 0;
  /// Bytes materialized while restoring a thread from a checkpoint (or a
  /// replay base) during rollback.
  std::uint64_t rollback_restore_bytes = 0;

  /// Robustness accounting (fault plans, crash recovery, governor).
  std::uint64_t crashes = 0;
  std::uint64_t crash_recoveries = 0;
  /// Messages that arrived while the process was crashed and were dropped
  /// (control plane; framed data is parked by the transport instead).
  std::uint64_t crash_messages_dropped = 0;
  std::uint64_t governor_demotions = 0;
  std::uint64_t governor_promotions = 0;
  /// Forks run sequentially because the governor had the site demoted
  /// (subset of sequential_forks).
  std::uint64_t governor_sequential_forks = 0;

  std::uint64_t total_aborts() const {
    return aborts_value_fault + aborts_time_fault + aborts_timeout +
           aborts_crash;
  }

  /// Fraction of state-copy bytes that were shared instead of
  /// materialized; 0 when nothing was copied yet.
  double sharing_ratio() const {
    const std::uint64_t total = checkpoint_bytes_copied +
                                checkpoint_bytes_shared;
    return total == 0 ? 0.0
                      : static_cast<double>(checkpoint_bytes_shared) /
                            static_cast<double>(total);
  }

  friend bool operator==(const SpecStats&, const SpecStats&) = default;

  void merge(const SpecStats& o) {
    forks += o.forks;
    sequential_forks += o.sequential_forks;
    safe_forks += o.safe_forks;
    safe_oracle_violations += o.safe_oracle_violations;
    joins += o.joins;
    commits += o.commits;
    commute_commits += o.commute_commits;
    commute_forgiven_vars += o.commute_forgiven_vars;
    commute_oracle_violations += o.commute_oracle_violations;
    aborts_value_fault += o.aborts_value_fault;
    aborts_time_fault += o.aborts_time_fault;
    aborts_timeout += o.aborts_timeout;
    aborts_crash += o.aborts_crash;
    aborts_cascade += o.aborts_cascade;
    rollbacks += o.rollbacks;
    checkpoints += o.checkpoints;
    replays += o.replays;
    orphans_discarded += o.orphans_discarded;
    messages_redelivered += o.messages_redelivered;
    externals_buffered += o.externals_buffered;
    externals_released += o.externals_released;
    externals_discarded += o.externals_discarded;
    control_sent += o.control_sent;
    precedence_sent += o.precedence_sent;
    checkpoints_pruned += o.checkpoints_pruned;
    log_entries_pruned += o.log_entries_pruned;
    checkpoints_fossil_collected += o.checkpoints_fossil_collected;
    checkpoint_bytes_copied += o.checkpoint_bytes_copied;
    checkpoint_bytes_shared += o.checkpoint_bytes_shared;
    rollback_restore_bytes += o.rollback_restore_bytes;
    crashes += o.crashes;
    crash_recoveries += o.crash_recoveries;
    crash_messages_dropped += o.crash_messages_dropped;
    governor_demotions += o.governor_demotions;
    governor_promotions += o.governor_promotions;
    governor_sequential_forks += o.governor_sequential_forks;
  }

  std::string to_string() const;

  /// Add every counter to `m` under its field name (obs snapshot format).
  void export_to(obs::MetricsRegistry& m) const;
};

}  // namespace ocsp::spec
