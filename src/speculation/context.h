// ExecContext: the narrow surface a SpeculativeProcess needs from whatever
// runtime hosts it.
//
// The speculation protocol (process.cc and friends) is executor-agnostic:
// it needs an event kernel, a way to put messages on the wire, name/id
// resolution, and the observability sinks.  spec::Runtime implements this
// over one global scheduler and network (the deterministic simulator);
// exec::ParallelRuntime implements it per shard, with cross-shard sends
// funneled through MPSC inboxes.  Keeping the interface this small is what
// lets the same protocol code be the subject of the Theorem 1 oracle on
// both executors.
#pragma once

#include <string>
#include <vector>

#include "net/message.h"
#include "obs/recorder.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "trace/timeline.h"
#include "util/ids.h"

namespace ocsp::spec {

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Event kernel this process's steps, timers, and deliveries run on.
  virtual sim::Scheduler& scheduler() = 0;

  /// Rollback/abort timeline (diagnostics).
  virtual trace::Timeline& timeline() = 0;

  /// Structured event sink.
  virtual obs::RunRecorder& recorder() = 0;

  /// Name -> id resolution (must agree across all hosts of a run).
  virtual ProcessId find(const std::string& name) const = 0;
  virtual std::vector<ProcessId> all_process_ids() const = 0;

  /// Control-plane send: straight to the network, bypassing the reliable
  /// transport (the control plane's liveness story is the blind
  /// re-broadcast of section 4.2.5, which retransmission would duplicate).
  virtual MsgId net_send(ProcessId src, ProcessId dst,
                         net::MessagePtr payload) = 0;

  /// Data-plane send (through the reliable transport when enabled).
  virtual MsgId transport_send(ProcessId src, ProcessId dst,
                               net::MessagePtr payload) = 0;

  /// Hook fired when a thread starts a Compute effect of `duration`
  /// virtual nanoseconds.  The parallel executor burns real CPU here so
  /// wall-clock speedup curves measure genuine work; the simulator ignores
  /// it and stays instantaneous.
  virtual void on_compute(ProcessId process, sim::Time duration) {
    (void)process;
    (void)duration;
  }
};

}  // namespace ocsp::spec
