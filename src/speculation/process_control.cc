// Control-message processing and rollback (sections 4.1.3, 4.2.5-4.2.8).
//
// COMMIT removes a guess (and its implied-committed CDG predecessors) from
// every thread; ABORT computes the Abortset per thread, finds the earliest
// rollback point, kills every thread created after it, restores the target
// thread from its checkpoint, cascades ABORTs for our own guesses that died,
// and requeues the non-orphan input messages that were consumed after the
// restore point (Figure 5: "Z must re-read message C2 after rolling back").
// PRECEDENCE adds CDG edges and aborts our own guesses on any cycle (time
// fault, Figures 4 and 7).
#include <algorithm>

#include "speculation/process.h"
#include "speculation/runtime.h"
#include "util/check.h"
#include "util/logging.h"

namespace ocsp::spec {

// ---------------------------------------------------------------------------
// Distribution
// ---------------------------------------------------------------------------

void SpeculativeProcess::distribute_control(ControlKind kind,
                                            const GuessId& subject,
                                            const GuardSet& guard) {
  auto msg = std::make_shared<ControlMessage>();
  msg->control = kind;
  msg->subject = subject;
  msg->guard = guard;

  std::vector<ProcessId> recipients;
  if (config_.control == ControlPlane::kBroadcast ||
      kind == ControlKind::kPrecedence) {
    // PRECEDENCE is always broadcast: cycle detection needs every involved
    // owner to learn the ordering constraint (Figure 7 has both X and Z
    // discover the cycle independently).
    recipients = runtime_.all_process_ids();
  } else {
    auto it = spread_.find(subject);
    if (it != spread_.end()) recipients = it->second;
  }
  {
    std::uint64_t fanout = 0;
    for (ProcessId dst : recipients) {
      if (dst != id_) ++fanout;
    }
    obs::Event ev = make_event(obs::EventKind::kControlSent);
    ev.guess = guess_ref(subject);
    ev.control = obs_control(kind);
    ev.a = fanout;
    recorder().record(std::move(ev));
    obs::control_fanout_hist(live_metrics_).add(static_cast<double>(fanout));
  }
  const int repeats =
      config_.control_retry ? config_.control_retry_limit : 1;
  for (ProcessId dst : recipients) {
    if (dst == id_) continue;  // local processing already happened
    for (int i = 0; i < repeats; ++i) {
      const sim::Time delay =
          static_cast<sim::Time>(i) * config_.control_retry_interval;
      if (i == 0) {
        ++stats_.control_sent;
        runtime_.net_send(id_, dst, msg);
      } else {
        runtime_.scheduler().after(delay, [this, dst, msg]() {
          ++stats_.control_sent;
          runtime_.net_send(id_, dst, msg);
        });
      }
    }
  }
}

// ---------------------------------------------------------------------------
// COMMIT (4.2.6)
// ---------------------------------------------------------------------------

void SpeculativeProcess::on_commit_msg(const GuessId& g) {
  commit_guess_local(g);
}

void SpeculativeProcess::commit_guess_local(const GuessId& g) {
  std::vector<GuessId> queue{g};
  while (!queue.empty()) {
    GuessId h = queue.back();
    queue.pop_back();
    if (history_.status(h) == GuessStatus::kCommitted) {
      // Already processed — but still scrub any lingering CDG/guard entry.
    }
    history_.peer(h.owner).set_status(h, GuessStatus::kCommitted);
    for (auto& [idx, t] : threads_) {
      if (t.cdg.has_node(h)) {
        // Predecessors of a committed guess must have committed too: a
        // guess only commits after everything in its guard resolved.
        for (const auto& p : t.cdg.predecessors(h)) {
          if (history_.status(p) != GuessStatus::kCommitted) queue.push_back(p);
        }
        t.cdg.remove_node(h);
      }
      t.guard.erase(h);
      t.rollbacks.erase(h);
    }
  }
}

// ---------------------------------------------------------------------------
// ABORT (4.2.7) and rollback (4.1.3)
// ---------------------------------------------------------------------------

void SpeculativeProcess::on_abort_msg(const GuessId& g) {
  if (history_.status(g) == GuessStatus::kAborted) return;
  ++stats_.aborts_cascade;
  record_abort(g, obs::AbortReason::kCascade, "remote-abort");
  abort_guess_local(g);
}

void SpeculativeProcess::abort_guess_local(const GuessId& g) {
  // Everything the abort-processing loop below destroys is collateral
  // damage of `g`; stamp the cause so attribution can walk it back.
  const GuessId saved_cause = rollback_cause_;
  rollback_cause_ = g;
  history_.peer(g.owner).set_status(g, GuessStatus::kAborted);
  // The abort of x_{i,n} starts incarnation i+1 at index n: every guess
  // x_{i,m} with m >= n is implicitly aborted (4.1.2).
  history_.peer(g.owner).observe_incarnation(g.incarnation + 1, g.index);

  timeline().record({trace::TimelineEntry::Kind::kAbort,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     g.to_string()});

  rollback_aborted_dependencies();
  // Scrub CDG nodes of the aborted guess from untouched threads.
  for (auto& [idx, t] : threads_) t.cdg.remove_node(g);
  rollback_cause_ = saved_cause;
}

void SpeculativeProcess::rollback_aborted_dependencies() {
  // Abortset per thread: guard members now aborted, plus guard members
  // that follow an aborted guess in the CDG.  Roll back to the earliest
  // rollback point among them (4.2.7).  Several threads may have acquired
  // the dependency independently, and a rollback only scrubs the threads it
  // touches, so iterate until no thread carries an aborted dependency.
  for (int pass = 0;; ++pass) {
    OCSP_CHECK_MSG(pass < 1024, "abort rollback did not converge");
    bool found = false;
    StateIndex target{};
    for (auto& [idx, t] : threads_) {
      std::vector<GuessId> abortset;
      // Walk the full acquisition record, not just the guard set: the
      // one-guess-per-owner subsumption (4.1.5) may have replaced an
      // earlier aborted guess, but the state became contaminated at the
      // earlier acquisition point.
      for (const auto& [a, rb] : t.rollbacks) {
        if (history_.status(a) == GuessStatus::kAborted) {
          abortset.push_back(a);
        }
      }
      // Followers of aborted guesses in the CDG also roll back.
      for (std::size_t i = 0; i < abortset.size(); ++i) {
        for (const auto& f : t.cdg.closure_from(abortset[i])) {
          if (t.guard.contains(f) &&
              std::find(abortset.begin(), abortset.end(), f) ==
                  abortset.end()) {
            abortset.push_back(f);
          }
        }
      }
      for (const auto& a : abortset) {
        auto rb = t.rollbacks.find(a);
        OCSP_CHECK_MSG(rb != t.rollbacks.end(),
                       "guard member without rollback");
        if (!found || rb->second < target) {
          found = true;
          target = rb->second;
        }
      }
    }
    if (!found) break;
    rollback_to(target, /*kill_target_thread=*/false);
  }
}

void SpeculativeProcess::abort_own_guess(const GuessId& g,
                                         const char* reason) {
  if (history_.status(g) != GuessStatus::kUnknown) return;
  OCSP_CHECK(g.owner == id_);
  history_.peer(id_).set_status(g, GuessStatus::kAborted);
  history_.peer(id_).observe_incarnation(g.incarnation + 1, g.index);
  timeline().record({trace::TimelineEntry::Kind::kAbort,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     g.to_string() + std::string(" (") + reason + ")"});

  // Track consecutive failures of the fork site for the liveness limit L.
  auto site_of = [this](std::uint32_t index) -> std::string {
    auto it = threads_.find(index);
    return it != threads_.end() && it->second.has_own_guess
               ? it->second.own_site
               : std::string();
  };
  if (auto site = site_of(g.index); !site.empty()) {
    ++site_aborts_[site];
    governor_outcome(site, /*aborted=*/true);
  }

  // Kill the guarded thread and everything the chain forked after it.
  const GuessId saved_cause = rollback_cause_;
  rollback_cause_ = g;
  std::vector<GuessId> cascade;
  std::vector<std::uint32_t> doomed;
  for (auto& [idx, t] : threads_) {
    if (idx >= g.index) doomed.push_back(idx);
  }
  for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
    kill_thread(*it, cascade);
  }
  rollback_cause_ = saved_cause;
  if (!doomed.empty()) {
    ++incarnation_;
    incarnation_start_ = g.index;
    max_thread_ = g.index == 0 ? 0 : g.index - 1;
  }
  distribute_control(ControlKind::kAbort, g, {});
  std::uint64_t cascaded = 0;
  for (const auto& c : cascade) {
    if (c == g) continue;
    if (history_.status(c) == GuessStatus::kUnknown) {
      history_.peer(id_).set_status(c, GuessStatus::kAborted);
      history_.peer(id_).observe_incarnation(c.incarnation + 1, c.index);
      ++stats_.aborts_cascade;
      ++cascaded;
      record_abort(c, obs::AbortReason::kCascade, "killed-with-thread", g);
      distribute_control(ControlKind::kAbort, c, {});
    }
  }
  obs::abort_cascade_depth_hist(live_metrics_)
      .add(static_cast<double>(cascaded));

  // Threads below g.index may have been contaminated by g through message
  // tags (the Figure 4 time fault); run the generic abort machinery.
  abort_guess_local(g);
  for (const auto& c : cascade) {
    if (!(c == g)) abort_guess_local(c);
  }

  // Mark the parent join so the left thread re-executes S2 when it
  // completes; if it is already waiting at the join, re-execute now.
  for (auto& [idx, t] : threads_) {
    if (t.has_pending_join && t.join_guess == g) {
      t.join_guess_aborted = true;
      cancel_fork_timer(g);
      if (t.phase == ThreadCtx::Phase::kJoinWait) {
        OCSP_CHECK(threads_.count(t.join_right_index) == 0);
        reexecute_right(t);
      }
      break;
    }
  }
  process_arrivals();
}

void SpeculativeProcess::kill_thread(std::uint32_t index,
                                     std::vector<GuessId>& own_aborted,
                                     bool emit_discard) {
  auto it = threads_.find(index);
  if (it == threads_.end()) return;
  ThreadCtx& t = it->second;
  if (emit_discard) {
    record_work_discarded(t, t.compute_ns, rollback_cause_);
  }
  if (t.phase == ThreadCtx::Phase::kDoneWaitGuard) {
    obs::Event ev = make_event(obs::EventKind::kThreadResolved);
    ev.thread = t.index;
    ev.interval = t.interval;
    ev.detail = "killed";
    recorder().record(std::move(ev));
  }
  if (t.has_own_guess) own_aborted.push_back(t.own_guess);
  if (t.has_pending_join && t.join_guess.valid()) {
    own_aborted.push_back(t.join_guess);
    cancel_fork_timer(t.join_guess);
  }
  auto timer = compute_timers_.find(index);
  if (timer != compute_timers_.end()) {
    runtime_.scheduler().cancel(timer->second);
    compute_timers_.erase(timer);
  }
  if (t.phase == ThreadCtx::Phase::kAwaitReply && t.outstanding_reqid >= 0) {
    outstanding_calls_.erase(t.outstanding_reqid);
  }
  for (std::size_t i = t.flushed_count; i < t.event_log.size(); ++i) {
    if (t.event_log[i].kind == trace::ObservableEvent::Kind::kExternalOutput) {
      ++stats_.externals_discarded;
      obs::Event ev = make_event(obs::EventKind::kExternalDiscarded);
      ev.thread = t.index;
      ev.a = i;
      ev.detail = t.event_log[i].data.to_string();
      recorder().record(std::move(ev));
      external_buffered_at_.erase({t.index, i});
    }
  }
  threads_.erase(it);
}

void SpeculativeProcess::rollback_to(const StateIndex& target,
                                     bool kill_target_thread) {
  ++stats_.rollbacks;
  timeline().record({trace::TimelineEntry::Kind::kRollback,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     target.to_string()});

  // Rollback distance: how many intervals the target thread is wound back.
  std::uint32_t pre_interval = target.interval;
  if (auto tgt = threads_.find(target.thread); tgt != threads_.end()) {
    pre_interval = std::max(pre_interval, tgt->second.interval);
  }

  // Kill every thread created after the restore point; the target thread
  // itself is restored (or killed too, for an own-guess abort at creation).
  std::vector<std::uint32_t> doomed;
  for (auto& [idx, t] : threads_) {
    if (t.created_at > target) {
      doomed.push_back(idx);
    } else if (idx == target.thread) {
      doomed.push_back(idx);  // replaced by the checkpoint (or killed)
    }
  }

  // State recorded after the target by the rolled-back threads belongs to
  // the abandoned timeline; a later replay-base search must never pick it
  // up.  Threads that survive (forked before the restore point) keep
  // theirs.  The post-rollback re-execution records fresh state under the
  // bumped incarnation, created after this purge.
  auto abandoned = [&](const StateIndex& key) {
    if (!(target < key)) return false;
    if (key.thread == target.thread) return true;
    return std::find(doomed.begin(), doomed.end(), key.thread) !=
           doomed.end();
  };
  for (auto it = checkpoints_.upper_bound(target);
       it != checkpoints_.end();) {
    it = abandoned(it->first) ? checkpoints_.erase(it) : std::next(it);
  }
  for (auto it = replay_meta_.upper_bound(target);
       it != replay_meta_.end();) {
    it = abandoned(it->first) ? replay_meta_.erase(it) : std::next(it);
  }
  // The rollback target is restored from a checkpoint, not killed outright:
  // its discarded compute is whatever it accumulated beyond what the
  // restored checkpoint retains, so defer the accounting until after the
  // restore.  (If the target is killed too, or the checkpoint turns out to
  // be a zombie and gets dropped, the retained amount is simply zero.)
  sim::Time target_pre_compute = 0;
  ThreadCtx target_snapshot{};
  bool have_target = false;
  if (auto tgt = threads_.find(target.thread); tgt != threads_.end()) {
    target_pre_compute = tgt->second.compute_ns;
    target_snapshot.index = tgt->second.index;
    target_snapshot.interval = tgt->second.interval;
    target_snapshot.has_own_guess = tgt->second.has_own_guess;
    target_snapshot.own_guess = tgt->second.own_guess;
    target_snapshot.own_site = tgt->second.own_site;
    have_target = true;
  }
  std::vector<GuessId> cascade;
  for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
    const bool is_target = *it == target.thread && !kill_target_thread;
    kill_thread(*it, cascade, /*emit_discard=*/!is_target);
  }
  if (!doomed.empty()) ++incarnation_;

  if (!kill_target_thread) {
    restore_thread(target);
    if (have_target) {
      sim::Time retained = 0;
      if (auto tgt = threads_.find(target.thread); tgt != threads_.end()) {
        retained = tgt->second.compute_ns;
      }
      if (target_pre_compute > retained) {
        record_work_discarded(target_snapshot, target_pre_compute - retained,
                              rollback_cause_);
      }
    }
  }
  max_thread_ = threads_.empty() ? 0 : threads_.rbegin()->first;

  // Cascade aborts for our own guesses that died with the killed threads.
  std::uint64_t cascaded = 0;
  for (const auto& c : cascade) {
    if (history_.status(c) == GuessStatus::kUnknown) {
      history_.peer(id_).set_status(c, GuessStatus::kAborted);
      history_.peer(id_).observe_incarnation(c.incarnation + 1, c.index);
      ++stats_.aborts_cascade;
      ++cascaded;
      record_abort(c, obs::AbortReason::kCascade, "killed-by-rollback",
                   rollback_cause_);
      distribute_control(ControlKind::kAbort, c, {});
    }
  }
  obs::abort_cascade_depth_hist(live_metrics_)
      .add(static_cast<double>(cascaded));
  // Parents whose speculative child died must re-execute S2 at their join.
  for (auto& [idx, t] : threads_) {
    if (!t.has_pending_join || t.join_guess_aborted) continue;
    if (!t.join_guess.valid()) continue;
    if (history_.status(t.join_guess) == GuessStatus::kAborted) {
      t.join_guess_aborted = true;
      cancel_fork_timer(t.join_guess);
      if (t.phase == ThreadCtx::Phase::kJoinWait &&
          threads_.count(t.join_right_index) == 0) {
        reexecute_right(t);
      }
    }
  }

  // Requeue inputs consumed after the restore point (Figure 5); the orphan
  // filter runs again when they are re-delivered.
  std::vector<LoggedInput> kept;
  kept.reserve(input_log_.size());
  std::deque<net::Envelope> requeued;
  for (auto& entry : input_log_) {
    // Only the rolled-back threads' consumptions are undone; messages a
    // surviving thread consumed stay consumed.
    const bool undone = target < entry.at &&
                        (entry.at.thread == target.thread ||
                         std::find(doomed.begin(), doomed.end(),
                                   entry.at.thread) != doomed.end());
    if (undone) {
      requeued.push_back(entry.env);
      ++stats_.messages_redelivered;
    } else {
      kept.push_back(std::move(entry));
    }
  }
  input_log_ = std::move(kept);
  {
    obs::Event ev = make_event(obs::EventKind::kRollback);
    ev.thread = target.thread;
    ev.interval = target.interval;
    ev.a = doomed.size();
    ev.b = requeued.size();
    ev.detail = target.to_string();
    recorder().record(std::move(ev));
    obs::rollback_distance_hist(live_metrics_)
        .add(static_cast<double>(pre_interval - target.interval));
  }
  for (auto it = requeued.rbegin(); it != requeued.rend(); ++it) {
    pending_.push_front(*it);
  }

  process_arrivals();
}

ThreadCtx SpeculativeProcess::rebuild_by_replay(const StateIndex& base,
                                                const StateIndex& target) {
  ++stats_.replays;
  ThreadCtx t = checkpoints_.at(base);
  stats_.rollback_restore_bytes += restore_cost_bytes(t.machine);
  if (config_.state == StateStrategy::kDeepCopy) {
    t.machine.deep_copy_state();
  }
  auto meta_it = replay_meta_.find(target);
  OCSP_CHECK_MSG(meta_it != replay_meta_.end(),
                 ("missing replay metadata at " + target.to_string() +
                  " base " + base.to_string() + " in " + name_)
                     .c_str());
  const ReplayMeta meta = meta_it->second;

  replaying_ = true;
  for (const auto& entry : input_log_) {
    if (entry.at.thread != target.thread) continue;
    if (!(base < entry.at) || target < entry.at) continue;
    // A periodic (mid-wait) checkpoint base starts out already blocked at
    // the receive/reply the first logged entry answers.
    if (t.machine.state() == csp::MachineState::kReady) {
      replay_until_blocked(t);
    }
    replay_feed(t, entry);
  }
  if (t.machine.state() == csp::MachineState::kReady) {
    replay_until_blocked(t);
  }
  replaying_ = false;

  // Deterministic replay must land exactly where the original execution
  // was when the dependency arrived.
  OCSP_CHECK_MSG(t.sent_count == meta.sent_count,
                 ("replay diverged: sent=" + std::to_string(t.sent_count) +
                  " expected=" + std::to_string(meta.sent_count) + " base=" +
                  base.to_string() + " target=" + target.to_string() +
                  " in " + name_)
                     .c_str());
  OCSP_CHECK(t.event_log.size() >= meta.flushed_count);
  t.flushed_count = meta.flushed_count;
  t.outstanding_reqid = meta.outstanding_reqid;
  return t;
}

void SpeculativeProcess::replay_until_blocked(ThreadCtx& t) {
  using K = csp::Effect::Kind;
  for (;;) {
    csp::Effect e = t.machine.step();
    switch (e.kind) {
      case K::kCall: {
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kSend;
        ev.process = id_;
        ev.peer = resolve(e.target);
        ev.op = e.op;
        ev.data = csp::Value(e.args);
        record_event(t, std::move(ev));
        ++t.sent_count;  // the original send already went out
        t.phase = ThreadCtx::Phase::kAwaitReply;
        return;
      }
      case K::kSend: {
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kSend;
        ev.process = id_;
        ev.peer = resolve(e.target);
        ev.op = e.op;
        ev.data = csp::Value(e.args);
        record_event(t, std::move(ev));
        ++t.sent_count;
        break;
      }
      case K::kReply:
        ++t.sent_count;
        break;
      case K::kPrint: {
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kExternalOutput;
        ev.process = id_;
        ev.data = e.value;
        record_event(t, std::move(ev));
        break;
      }
      case K::kCompute:
        // State reconstruction is instantaneous; the original already paid
        // the virtual time.  The replayed durations re-enter compute_ns so
        // the rebuilt thread accounts for the same useful work the original
        // had done by the target point (see ThreadCtx::compute_ns).
        t.compute_ns += e.duration;
        t.machine.resume();
        break;
      case K::kReceive:
        t.phase = ThreadCtx::Phase::kAwaitMessage;
        return;
      case K::kFork:
      case K::kDone:
        // Fork checkpoints bound every replay segment, and rollback targets
        // are always pre-acceptance states of a live thread.
        OCSP_CHECK_MSG(false, "unexpected effect during replay");
        return;
    }
  }
}

void SpeculativeProcess::replay_feed(ThreadCtx& t, const LoggedInput& entry) {
  const net::Envelope& env = entry.env;
  const auto msg = std::static_pointer_cast<const DataMessage>(env.payload);

  // Reproduce the original acceptance bookkeeping verbatim: the rebuilt
  // state must carry the *original* state indexes (incarnations included),
  // because rollback entries, replay metadata, and the input log are all
  // keyed by them.
  for (const auto& g : msg->guard.minus(t.guard)) {
    // Keep aborted guesses too: the original state at this point carried
    // them, and the abort-processing loop uses their presence to decide to
    // roll back even further.  Only committed guesses stopped being
    // dependencies.
    if (history_.status(g) == GuessStatus::kCommitted) continue;
    t.guard.add(g);
    t.cdg.add_node(g);
    t.rollbacks[g] = entry.pre;
  }
  t.interval = entry.at.interval;

  if (msg->data_kind == DataKind::kReturn) {
    OCSP_CHECK(t.phase == ThreadCtx::Phase::kAwaitReply);
    t.machine.resume_with_value(msg->result);
    t.phase = ThreadCtx::Phase::kRunning;
    t.outstanding_reqid = -1;
    trace::ObservableEvent ev;
    ev.kind = trace::ObservableEvent::Kind::kCallReturn;
    ev.process = id_;
    ev.peer = env.src;
    ev.data = msg->result;
    record_event(t, std::move(ev));
  } else {
    OCSP_CHECK(t.phase == ThreadCtx::Phase::kAwaitMessage);
    t.machine.deliver(msg->op, msg->args, static_cast<std::int64_t>(env.src),
                      msg->reqid,
                      /*is_call=*/msg->data_kind == DataKind::kCall);
    t.phase = ThreadCtx::Phase::kRunning;
    trace::ObservableEvent ev;
    ev.kind = trace::ObservableEvent::Kind::kReceive;
    ev.process = id_;
    ev.peer = env.src;
    ev.op = msg->op;
    ev.data = csp::Value(msg->args);
    record_event(t, std::move(ev));
  }
}

void SpeculativeProcess::restore_thread(const StateIndex& target) {
  ThreadCtx restored;
  auto cp = checkpoints_.find(target);
  if (cp != checkpoints_.end()) {
    restored = cp->second;  // copy: the checkpoint stays usable
    stats_.rollback_restore_bytes += restore_cost_bytes(restored.machine);
    if (config_.state == StateStrategy::kDeepCopy) {
      restored.machine.deep_copy_state();
    }
  } else {
    // Replay strategy: no per-interval checkpoint exists.  Find the latest
    // full checkpoint of this thread at or before the target (its creation
    // or a post-fork snapshot) and replay the logged inputs on top of it.
    OCSP_CHECK_MSG(config_.rollback == RollbackStrategy::kReplayFromLog,
                   "missing rollback checkpoint");
    StateIndex base{};
    bool found = false;
    for (auto it = checkpoints_.upper_bound(target);
         it != checkpoints_.begin();) {
      --it;
      if (it->first.thread == target.thread) {
        base = it->first;
        found = true;
        break;
      }
    }
    OCSP_CHECK_MSG(found, "no replay base checkpoint");
    restored = rebuild_by_replay(base, target);
  }
  const std::uint32_t idx = restored.index;

  if (restored.has_own_guess &&
      history_.status(restored.own_guess) == GuessStatus::kAborted) {
    // Zombie checkpoint: the guess guarding this thread's very existence
    // has aborted, so the parent's re-execution of S2 supersedes the whole
    // thread — restoring it would resurrect an aborted computation and the
    // abort-processing loop would never converge.  Make sure any guess this
    // state forked is dead too, then drop it.
    if (restored.has_pending_join && restored.join_guess.valid() &&
        history_.status(restored.join_guess) == GuessStatus::kUnknown) {
      history_.peer(id_).set_status(restored.join_guess,
                                    GuessStatus::kAborted);
      history_.peer(id_).observe_incarnation(
          restored.join_guess.incarnation + 1, restored.join_guess.index);
      ++stats_.aborts_cascade;
      record_abort(restored.join_guess, obs::AbortReason::kCascade,
                   "zombie-checkpoint", rollback_cause_);
      distribute_control(ControlKind::kAbort, restored.join_guess, {});
    }
    return;
  }

  // The checkpoint predates everything we have since learned: scrub guard
  // members that have committed in the meantime (leaving aborted ones for
  // the abort-processing loop, which must roll back further for those).
  std::vector<GuessId> committed_since;
  for (const auto& g : restored.guard) {
    if (history_.status(g) == GuessStatus::kCommitted) {
      committed_since.push_back(g);
    }
  }
  for (const auto& g : committed_since) {
    restored.guard.erase(g);
    restored.cdg.remove_node(g);
    restored.rollbacks.erase(g);
  }

  switch (restored.phase) {
    case ThreadCtx::Phase::kRunning:
      schedule_step(idx);
      break;
    case ThreadCtx::Phase::kAwaitReply:
      OCSP_CHECK(restored.outstanding_reqid >= 0);
      outstanding_calls_[restored.outstanding_reqid] = idx;
      break;
    case ThreadCtx::Phase::kAwaitMessage:
      break;  // process_arrivals() follows the rollback
    default:
      OCSP_CHECK_MSG(false, "checkpoint captured an unexpected phase");
  }
  // Re-arm the fork timer if the restored state has an unresolved join
  // pending (conservatively with the full timeout).
  if (restored.has_pending_join && restored.join_guess.valid() &&
      !restored.join_guess_aborted) {
    if (history_.status(restored.join_guess) == GuessStatus::kUnknown) {
      arm_fork_timer(restored.join_guess, config_.fork_timeout);
    } else if (history_.status(restored.join_guess) ==
               GuessStatus::kAborted) {
      restored.join_guess_aborted = true;
    }
  }
  threads_.insert_or_assign(idx, std::move(restored));
}

// ---------------------------------------------------------------------------
// PRECEDENCE (4.2.8)
// ---------------------------------------------------------------------------

void SpeculativeProcess::on_precedence_msg(const GuessId& subject,
                                           const GuardSet& guard) {
  history_.peer(subject.owner).set_status(subject, GuessStatus::kUnknown);

  // Collect cycles first: aborting mutates threads_ under our feet.
  std::vector<GuessId> own_to_abort;
  for (auto& [idx, t] : threads_) {
    for (const auto& h : guard) {
      if (!t.cdg.has_node(h) && !t.cdg.has_node(subject)) continue;
      if (t.cdg.has_edge(h, subject)) continue;
      std::vector<GuessId> cycle = t.cdg.add_edge(h, subject);
      {
        obs::Event ev = make_event(obs::EventKind::kCdgEdgeAdded);
        ev.thread = idx;
        ev.guess = guess_ref(subject);
        ev.guess_from = guess_ref(h);
        recorder().record(std::move(ev));
      }
      if (!cycle.empty()) {
        obs::Event ev = make_event(obs::EventKind::kCdgCycleDetected);
        ev.thread = idx;
        ev.guess = guess_ref(subject);
        ev.guess_from = guess_ref(h);
        ev.a = cycle.size();
        recorder().record(std::move(ev));
      }
      for (const auto& c : cycle) {
        if (c.owner == id_ &&
            history_.status(c) == GuessStatus::kUnknown &&
            std::find(own_to_abort.begin(), own_to_abort.end(), c) ==
                own_to_abort.end()) {
          own_to_abort.push_back(c);
        }
      }
    }
  }
  for (const auto& c : own_to_abort) {
    ++stats_.aborts_time_fault;
    record_abort(c, obs::AbortReason::kTimeFault, "precedence-cycle");
    abort_own_guess(c, "precedence-cycle");
  }
}

// ---------------------------------------------------------------------------
// Post-change resolution: joins that can now commit, logs, completion
// ---------------------------------------------------------------------------

void SpeculativeProcess::after_guard_change() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [idx, t] : threads_) {
      if (t.phase != ThreadCtx::Phase::kJoinWait) continue;
      if (t.join_guess_aborted) {
        if (threads_.count(t.join_right_index) == 0) {
          reexecute_right(t);
          progressed = true;
          break;
        }
        continue;
      }
      if (t.guard.empty()) {
        finalize_join_commit(t);
        progressed = true;
        break;
      }
    }
  }
  flush_logs();
  gc_resolved_state();
  check_completion();
}

void SpeculativeProcess::gc_resolved_state() {
  // The earliest state a future rollback can target is the minimum
  // rollback point over every still-unresolved dependency.
  StateIndex low{~0u, ~0u, ~0u};
  bool any_unresolved = false;
  for (const auto& [idx, t] : threads_) {
    for (const auto& [g, rb] : t.rollbacks) {
      if (history_.status(g) == GuessStatus::kUnknown) {
        any_unresolved = true;
        if (rb < low) low = rb;
      }
    }
  }

  // Per thread, the replay strategy rebuilds from the latest full
  // checkpoint at or before the rollback target, so keep the greatest
  // checkpoint key <= low (or the greatest overall when nothing is in
  // doubt) and discard everything strictly older, along with the logged
  // inputs and replay metadata those checkpoints subsume.
  std::map<std::uint32_t, StateIndex> keep_from;
  for (const auto& [key, snapshot] : checkpoints_) {
    if (any_unresolved && low < key) continue;
    auto [it, inserted] = keep_from.try_emplace(key.thread, key);
    if (!inserted && it->second < key) it->second = key;
  }
  // Threads that are dead (terminated or gone) and targeted by no
  // unresolved rollback entry can never be resurrected; drop their state
  // wholesale.
  std::set<std::uint32_t> rollback_targets;
  for (const auto& [idx, t] : threads_) {
    for (const auto& [g, rb] : t.rollbacks) {
      if (history_.status(g) == GuessStatus::kUnknown) {
        rollback_targets.insert(rb.thread);
      }
    }
  }
  auto thread_dead = [&](std::uint32_t idx) {
    auto it = threads_.find(idx);
    return it == threads_.end() ||
           it->second.phase == ThreadCtx::Phase::kTerminated;
  };
  auto prunable = [&](const StateIndex& key) {
    if (thread_dead(key.thread) && rollback_targets.count(key.thread) == 0) {
      return true;
    }
    auto keep = keep_from.find(key.thread);
    return keep != keep_from.end() && key < keep->second;
  };
  for (auto it = checkpoints_.begin(); it != checkpoints_.end();) {
    if (prunable(it->first)) {
      it = checkpoints_.erase(it);
      ++stats_.checkpoints_pruned;
    } else {
      ++it;
    }
  }
  for (auto it = replay_meta_.begin(); it != replay_meta_.end();) {
    if (prunable(it->first)) {
      it = replay_meta_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<LoggedInput> kept_inputs;
  kept_inputs.reserve(input_log_.size());
  for (auto& entry : input_log_) {
    if (prunable(entry.at)) {
      ++stats_.log_entries_pruned;
    } else {
      kept_inputs.push_back(std::move(entry));
    }
  }
  input_log_ = std::move(kept_inputs);

  // Resolved guesses need no targeted-control bookkeeping either.
  for (auto it = spread_.begin(); it != spread_.end();) {
    if (history_.status(it->first) != GuessStatus::kUnknown) {
      it = spread_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- GVT fossil collection --------------------------------------------

namespace {

/// The checkpoint restore_thread would rebuild `target` from: the exact
/// entry at the target, or the nearest earlier same-thread checkpoint (the
/// replay base).  Null when neither exists.
const ThreadCtx* restore_base(
    const std::map<StateIndex, ThreadCtx>& checkpoints,
    const StateIndex& target, StateIndex* base_key) {
  auto cp = checkpoints.find(target);
  if (cp != checkpoints.end()) {
    if (base_key != nullptr) *base_key = cp->first;
    return &cp->second;
  }
  for (auto it = checkpoints.upper_bound(target);
       it != checkpoints.begin();) {
    --it;
    if (it->first.thread == target.thread) {
      if (base_key != nullptr) *base_key = it->first;
      return &it->second;
    }
  }
  return nullptr;
}

}  // namespace

sim::Time SpeculativeProcess::speculation_floor() const {
  sim::Time floor = sim::kTimeNever;
  for (const auto& [idx, t] : threads_) {
    for (const auto& [g, rb] : t.rollbacks) {
      if (history_.status(g) != GuessStatus::kUnknown) continue;
      const ThreadCtx* base = restore_base(checkpoints_, rb, nullptr);
      // A missing base means the rollback would fail anyway (it cannot in
      // a correct run); be conservative and pin the floor at zero.
      floor = std::min(floor, base ? base->checkpointed_at : sim::Time{0});
    }
  }
  return floor;
}

std::size_t SpeculativeProcess::fossil_collect(sim::Time gvt) {
  // Checkpoints a future rollback can still restore from:  the replay base
  // of every unresolved rollback target (exactly restore_thread's lookup),
  // plus the latest checkpoint of each live thread — a dependency acquired
  // later replays from there, whatever its target turns out to be.
  std::set<StateIndex> needed;
  for (const auto& [idx, t] : threads_) {
    for (const auto& [g, rb] : t.rollbacks) {
      if (history_.status(g) != GuessStatus::kUnknown) continue;
      StateIndex base_key{};
      if (restore_base(checkpoints_, rb, &base_key) != nullptr) {
        needed.insert(base_key);
      }
    }
  }
  std::map<std::uint32_t, StateIndex> latest;
  for (const auto& [key, snapshot] : checkpoints_) {
    auto th = threads_.find(key.thread);
    if (th == threads_.end() ||
        th->second.phase == ThreadCtx::Phase::kTerminated) {
      continue;
    }
    auto [it, inserted] = latest.try_emplace(key.thread, key);
    if (!inserted && it->second < key) it->second = key;
  }
  for (const auto& [thread, key] : latest) needed.insert(key);

  std::size_t freed = 0;
  for (auto it = checkpoints_.begin(); it != checkpoints_.end();) {
    if (it->second.checkpointed_at < gvt && needed.count(it->first) == 0) {
      it = checkpoints_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  stats_.checkpoints_fossil_collected += freed;
  return freed;
}

std::vector<sim::Time> SpeculativeProcess::checkpoint_times() const {
  std::vector<sim::Time> times;
  times.reserve(checkpoints_.size());
  for (const auto& [key, snapshot] : checkpoints_) {
    times.push_back(snapshot.checkpointed_at);
  }
  return times;
}

}  // namespace ocsp::spec
