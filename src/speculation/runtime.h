// Runtime: wires processes, the simulated network, and the event kernel.
//
// A Runtime owns everything a run needs; benchmarks construct one per data
// point, run it to completion on virtual time, and read the stats,
// committed trace, and timeline back out.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "csp/env.h"
#include "csp/program.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/scheduler.h"
#include "speculation/config.h"
#include "speculation/context.h"
#include "speculation/process.h"
#include "speculation/stats.h"
#include "trace/events.h"
#include "trace/timeline.h"
#include "util/rng.h"

namespace ocsp::spec {

struct RuntimeOptions {
  std::uint64_t seed = 42;
  net::LinkConfig default_link;
  SpecConfig spec;
  /// Deterministic fault schedule (disabled by default).  Crash plans
  /// force the reliable transport on — committed data must survive
  /// downtime via its parked-delivery NIC model.
  fault::FaultPlan fault_plan;
  /// Data-plane ack/retransmit transport (disabled by default).
  net::ReliableConfig reliable;
  /// Deterministic per-link network streams (net::Network's per-link
  /// mode).  Off by default — enabling it changes latency/loss draws and
  /// same-time delivery ordering, so existing seeds keep their schedules.
  /// The parallel executor always runs per-link; turn this on to obtain
  /// the sequential run it must match trace-for-trace.
  bool per_link_net = false;
};

class Runtime final : public ExecContext {
 public:
  explicit Runtime(RuntimeOptions options = {});

  /// Register a process.  `spec_override` (if given) replaces the global
  /// SpecConfig for this process only.
  ProcessId add_process(std::string name, csp::StmtPtr program,
                        csp::Env initial_env = {},
                        std::optional<SpecConfig> spec_override = {});

  /// Run until the event queue drains or virtual time reaches `deadline`.
  /// Returns the virtual time at the end of the run.
  sim::Time run(sim::Time deadline = sim::kTimeNever);

  net::Network& network() { return network_; }
  sim::Scheduler& scheduler() override { return scheduler_; }
  trace::Timeline& timeline() override { return timeline_; }
  net::ReliableTransport& transport() { return transport_; }
  const fault::Injector* injector() const { return injector_.get(); }

  /// Data-plane send through the reliable transport (a plain network send
  /// when the transport is disabled).  Control messages bypass this and go
  /// straight to the network — their liveness story is the blind
  /// re-broadcast of section 4.2.5, which retransmission would duplicate.
  MsgId transport_send(ProcessId src, ProcessId dst,
                       net::MessagePtr payload) override;

  /// Control-plane send: straight onto the network.
  MsgId net_send(ProcessId src, ProcessId dst,
                 net::MessagePtr payload) override;

  /// Fault-plan crash orchestration: take the process (and its transport
  /// endpoint) down, and later restart it from its last committed state.
  void crash_process(ProcessId id);
  void restart_process(ProcessId id);

  SpeculativeProcess& process(ProcessId id);
  const SpeculativeProcess& process(ProcessId id) const;
  ProcessId find(const std::string& name) const override;
  std::size_t process_count() const { return processes_.size(); }
  std::vector<ProcessId> all_process_ids() const override;

  /// Committed observable events of every process (Theorem 1 oracle).
  trace::CommittedTrace committed_trace() const;

  /// Sum of all processes' protocol counters.  Legacy view; metrics()
  /// carries the same counters plus histograms and derived gauges.
  SpecStats total_stats() const;

  /// Structured event sink shared by every process, the network tracers,
  /// and (via RunResult) the exporters.
  obs::RunRecorder& recorder() override { return *recorder_; }
  const obs::RunRecorder& recorder() const { return *recorder_; }
  std::shared_ptr<obs::RunRecorder> shared_recorder() const {
    return recorder_;
  }

  /// Process names indexed by ProcessId (for trace export).
  std::vector<std::string> process_names() const;

  /// Metrics of one process: SpecStats counters + live histograms.
  obs::MetricsRegistry process_metrics(ProcessId id) const;

  /// Run-wide metrics: per-process registries merged, plus kernel and
  /// network counters and the recomputed guess_accuracy gauge.
  obs::MetricsRegistry metrics() const;

  /// Latest completion time among processes that completed (clients).
  sim::Time last_completion_time() const;

  /// True if every process whose program terminates has completed.
  bool all_clients_completed() const;

  const RuntimeOptions& options() const { return options_; }

 private:
  void record_msg_event(obs::EventKind kind, const net::Envelope& env);

  RuntimeOptions options_;
  util::Rng rng_;
  sim::Scheduler scheduler_;
  net::Network network_;
  net::ReliableTransport transport_;
  std::unique_ptr<fault::Injector> injector_;
  trace::Timeline timeline_;
  std::shared_ptr<obs::RunRecorder> recorder_;
  std::vector<std::unique_ptr<SpeculativeProcess>> processes_;
  std::map<std::string, ProcessId> names_;
  bool started_ = false;
};

}  // namespace ocsp::spec
