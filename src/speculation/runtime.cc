#include "speculation/runtime.h"

#include "util/check.h"

namespace ocsp::spec {

namespace {

RuntimeOptions normalize(RuntimeOptions o) {
  // Crash recovery relies on the transport's parked-delivery NIC model to
  // keep committed data durable across downtime; force it on.
  if (o.fault_plan.has_crashes()) o.reliable.enabled = true;
  return o;
}

}  // namespace

Runtime::Runtime(RuntimeOptions options)
    : options_(normalize(std::move(options))),
      rng_(options_.seed),
      network_(scheduler_, rng_.split()),
      transport_(network_, scheduler_, options_.reliable),
      recorder_(std::make_shared<obs::RunRecorder>()) {
  network_.set_default_link(options_.default_link);
  if (options_.per_link_net) network_.enable_per_link_streams();
  network_.set_send_tracer([this](const net::Envelope& env) {
    record_msg_event(obs::EventKind::kMsgSent, env);
  });
  network_.set_tracer([this](const net::Envelope& env) {
    record_msg_event(obs::EventKind::kMsgDelivered, env);
  });
  if (options_.fault_plan.enabled) {
    injector_ = std::make_unique<fault::Injector>(options_.fault_plan);
    injector_->set_observer([this](const net::Envelope& env,
                                   const net::FaultDecision& fd) {
      obs::Event ev;
      ev.kind = obs::EventKind::kFaultInjected;
      ev.when = scheduler_.now();
      ev.process = env.src;
      ev.peer = env.dst;
      ev.msg_id = env.id;
      ev.a = fd.drop ? 1 : (fd.corrupt ? 2 : 3);
      ev.detail = fd.cause;
      recorder_->record(std::move(ev));
    });
    network_.set_fault_hook([this](const net::Envelope& env, util::Rng& rng) {
      return injector_->decide(env, rng);
    });
  }
  transport_.set_retransmit_observer(
      [this](ProcessId src, ProcessId dst, std::uint64_t seq, int attempt) {
        obs::Event ev;
        ev.kind = obs::EventKind::kRetransmit;
        ev.when = scheduler_.now();
        ev.process = src;
        ev.peer = dst;
        ev.msg_id = seq;
        ev.a = static_cast<std::uint64_t>(attempt);
        recorder_->record(std::move(ev));
      });
  transport_.set_duplicate_observer(
      [this](ProcessId dst, ProcessId src, std::uint64_t seq) {
        obs::Event ev;
        ev.kind = obs::EventKind::kDuplicateSuppressed;
        ev.when = scheduler_.now();
        ev.process = dst;
        ev.peer = src;
        ev.msg_id = seq;
        recorder_->record(std::move(ev));
      });
}

MsgId Runtime::transport_send(ProcessId src, ProcessId dst,
                              net::MessagePtr payload) {
  return transport_.send(src, dst, std::move(payload));
}

MsgId Runtime::net_send(ProcessId src, ProcessId dst,
                        net::MessagePtr payload) {
  return network_.send(src, dst, std::move(payload));
}

void Runtime::crash_process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  transport_.set_down(id, true);
  processes_[id]->crash();
}

void Runtime::restart_process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  processes_[id]->restart();
  transport_.set_down(id, false);
}

void Runtime::record_msg_event(obs::EventKind kind,
                               const net::Envelope& env) {
  recorder_->record(make_msg_event(kind, env, scheduler_.now()));
}

ProcessId Runtime::add_process(std::string name, csp::StmtPtr program,
                               csp::Env initial_env,
                               std::optional<SpecConfig> spec_override) {
  OCSP_CHECK_MSG(!started_, "add_process after run() started");
  OCSP_CHECK_MSG(names_.count(name) == 0, "duplicate process name");
  const ProcessId id = static_cast<ProcessId>(processes_.size());
  const SpecConfig spec = spec_override.value_or(options_.spec);
  processes_.push_back(std::make_unique<SpeculativeProcess>(
      *this, id, name, std::move(program), std::move(initial_env), spec,
      rng_.split()));
  names_.emplace(std::move(name), id);
  transport_.register_endpoint(
      id,
      [this, id](const net::Envelope& env) { processes_[id]->on_message(env); },
      [this, id]() { return processes_[id]->incarnation_tag(); },
      [this, id](ProcessId src, net::IncarnationTag tag) {
        processes_[id]->observe_peer_incarnation(src, tag.incarnation,
                                                 tag.start_index);
      });
  return id;
}

sim::Time Runtime::run(sim::Time deadline) {
  if (!started_) {
    started_ = true;
    for (auto& p : processes_) p->start();
    if (options_.fault_plan.enabled) {
      for (const auto& c : options_.fault_plan.crashes) {
        OCSP_CHECK_MSG(c.process < processes_.size(),
                       "crash event for unknown process");
        OCSP_CHECK_MSG(c.restart_at > c.at, "crash restart precedes crash");
        scheduler_.at(c.at, [this, c]() { crash_process(c.process); });
        scheduler_.at(c.restart_at, [this, c]() {
          restart_process(c.process);
        });
      }
    }
  }
  if (deadline == sim::kTimeNever) {
    scheduler_.run();
  } else {
    scheduler_.run_until(deadline);
  }
  return scheduler_.now();
}

SpeculativeProcess& Runtime::process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

const SpeculativeProcess& Runtime::process(ProcessId id) const {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

ProcessId Runtime::find(const std::string& name) const {
  auto it = names_.find(name);
  OCSP_CHECK_MSG(it != names_.end(), ("unknown process: " + name).c_str());
  return it->second;
}

std::vector<ProcessId> Runtime::all_process_ids() const {
  std::vector<ProcessId> out;
  out.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    out.push_back(static_cast<ProcessId>(i));
  }
  return out;
}

trace::CommittedTrace Runtime::committed_trace() const {
  trace::CommittedTrace trace;
  for (const auto& p : processes_) {
    for (const auto& e : p->committed_events()) trace.append(e);
  }
  return trace;
}

SpecStats Runtime::total_stats() const {
  SpecStats total;
  for (const auto& p : processes_) total.merge(p->stats());
  return total;
}

std::vector<std::string> Runtime::process_names() const {
  std::vector<std::string> names;
  names.reserve(processes_.size());
  for (const auto& p : processes_) names.push_back(p->name());
  return names;
}

obs::MetricsRegistry Runtime::process_metrics(ProcessId id) const {
  return process(id).metrics_view();
}

obs::MetricsRegistry Runtime::metrics() const {
  obs::MetricsRegistry m;
  for (const auto& p : processes_) m.merge(p->metrics_view());
  // Gauges are derived, not merged: recompute from the merged counters.
  const std::uint64_t verified = m.counter_or("guesses_verified");
  const std::uint64_t failed = m.counter_or("guesses_failed");
  if (verified + failed > 0) {
    m.gauge("guess_accuracy") = static_cast<double>(verified) /
                                static_cast<double>(verified + failed);
  }
  obs::update_sharing_ratio_gauge(m);
  m.counter("sim_events_fired") += scheduler_.fired_count();
  m.gauge("sim_peak_pending") =
      static_cast<double>(scheduler_.peak_pending());
  m.counter("net_messages_sent") += network_.stats().messages_sent;
  m.counter("net_messages_delivered") += network_.stats().messages_delivered;
  m.counter("net_messages_dropped") += network_.stats().messages_dropped;
  m.counter("net_bytes_sent") += network_.stats().bytes_sent;
  m.counter("net_faults_dropped") += network_.stats().faults_dropped;
  m.counter("net_faults_corrupted") += network_.stats().faults_corrupted;
  m.counter("net_faults_duplicated") += network_.stats().faults_duplicated;
  if (options_.reliable.enabled) {
    const net::ReliableStats& rs = transport_.stats();
    m.counter("reliable_frames_sent") += rs.frames_sent;
    m.counter("retransmissions") += rs.retransmissions;
    m.counter("retransmit_exhausted") += rs.retransmit_exhausted;
    m.counter("acks_sent") += rs.acks_sent;
    m.counter("duplicates_suppressed") += rs.duplicates_suppressed;
    m.counter("parked_deliveries") += rs.parked_deliveries;
  }
  if (injector_) {
    const fault::InjectorStats& fs = injector_->stats();
    m.counter("faults_injected") += fs.total();
    m.counter("fault_partition_drops") += fs.partition_drops;
  }
  return m;
}

sim::Time Runtime::last_completion_time() const {
  sim::Time latest = 0;
  for (const auto& p : processes_) {
    if (p->completed()) latest = std::max(latest, p->completion_time());
  }
  return latest;
}

bool Runtime::all_clients_completed() const {
  bool any = false;
  for (const auto& p : processes_) {
    if (p->completed()) any = true;
  }
  return any;
}

}  // namespace ocsp::spec
