#include "speculation/runtime.h"

#include "util/check.h"

namespace ocsp::spec {

Runtime::Runtime(RuntimeOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      network_(scheduler_, rng_.split()) {
  network_.set_default_link(options_.default_link);
}

ProcessId Runtime::add_process(std::string name, csp::StmtPtr program,
                               csp::Env initial_env,
                               std::optional<SpecConfig> spec_override) {
  OCSP_CHECK_MSG(!started_, "add_process after run() started");
  OCSP_CHECK_MSG(names_.count(name) == 0, "duplicate process name");
  const ProcessId id = static_cast<ProcessId>(processes_.size());
  const SpecConfig spec = spec_override.value_or(options_.spec);
  processes_.push_back(std::make_unique<SpeculativeProcess>(
      *this, id, name, std::move(program), std::move(initial_env), spec,
      rng_.split()));
  names_.emplace(std::move(name), id);
  network_.register_endpoint(id, [this, id](const net::Envelope& env) {
    processes_[id]->on_message(env);
  });
  return id;
}

sim::Time Runtime::run(sim::Time deadline) {
  if (!started_) {
    started_ = true;
    for (auto& p : processes_) p->start();
  }
  if (deadline == sim::kTimeNever) {
    scheduler_.run();
  } else {
    scheduler_.run_until(deadline);
  }
  return scheduler_.now();
}

SpeculativeProcess& Runtime::process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

const SpeculativeProcess& Runtime::process(ProcessId id) const {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

ProcessId Runtime::find(const std::string& name) const {
  auto it = names_.find(name);
  OCSP_CHECK_MSG(it != names_.end(), ("unknown process: " + name).c_str());
  return it->second;
}

std::vector<ProcessId> Runtime::all_process_ids() const {
  std::vector<ProcessId> out;
  out.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    out.push_back(static_cast<ProcessId>(i));
  }
  return out;
}

trace::CommittedTrace Runtime::committed_trace() const {
  trace::CommittedTrace trace;
  for (const auto& p : processes_) {
    for (const auto& e : p->committed_events()) trace.append(e);
  }
  return trace;
}

SpecStats Runtime::total_stats() const {
  SpecStats total;
  for (const auto& p : processes_) total.merge(p->stats());
  return total;
}

sim::Time Runtime::last_completion_time() const {
  sim::Time latest = 0;
  for (const auto& p : processes_) {
    if (p->completed()) latest = std::max(latest, p->completion_time());
  }
  return latest;
}

bool Runtime::all_clients_completed() const {
  bool any = false;
  for (const auto& p : processes_) {
    if (p->completed()) any = true;
  }
  return any;
}

}  // namespace ocsp::spec
