#include "speculation/predictor.h"

#include "util/check.h"

namespace ocsp::spec {

const char* predictor_kind_name(csp::PredictorSpec::Kind kind) {
  using Kind = csp::PredictorSpec::Kind;
  switch (kind) {
    case Kind::kConstant:
      return "constant";
    case Kind::kExpr:
      return "expr";
    case Kind::kLastCommitted:
      return "last-committed";
    case Kind::kStride:
      return "stride";
  }
  return "?";
}

csp::Value PredictorState::guess(const std::string& site,
                                 const std::string& variable,
                                 const csp::PredictorSpec& spec,
                                 const csp::Env& fork_env) {
  using Kind = csp::PredictorSpec::Kind;
  accuracy_[{site, variable}].predictor = predictor_kind_name(spec.kind);
  switch (spec.kind) {
    case Kind::kConstant:
      return spec.constant;
    case Kind::kExpr:
      OCSP_CHECK(spec.expr != nullptr);
      return spec.expr->eval(fork_env);
    case Kind::kLastCommitted: {
      auto it = last_actual_.find({site, variable});
      return it == last_actual_.end() ? spec.constant : it->second;
    }
    case Kind::kStride: {
      auto it = last_actual_.find({site, variable});
      if (it == last_actual_.end()) return spec.constant;
      return csp::Value(it->second.as_int() + spec.stride);
    }
  }
  return csp::Value();
}

void PredictorState::observe(const std::string& site,
                             const std::string& variable,
                             const csp::Value& actual) {
  last_actual_[{site, variable}] = actual;
}

void PredictorState::record_result(const std::string& site,
                                   const std::string& variable, bool hit) {
  Accuracy& acc = accuracy_[{site, variable}];
  if (hit) {
    ++acc.hits;
  } else {
    ++acc.misses;
  }
}

}  // namespace ocsp::spec
