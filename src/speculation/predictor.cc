#include "speculation/predictor.h"

#include "util/check.h"

namespace ocsp::spec {

csp::Value PredictorState::guess(const std::string& site,
                                 const std::string& variable,
                                 const csp::PredictorSpec& spec,
                                 const csp::Env& fork_env) const {
  using Kind = csp::PredictorSpec::Kind;
  switch (spec.kind) {
    case Kind::kConstant:
      return spec.constant;
    case Kind::kExpr:
      OCSP_CHECK(spec.expr != nullptr);
      return spec.expr->eval(fork_env);
    case Kind::kLastCommitted: {
      auto it = last_actual_.find({site, variable});
      return it == last_actual_.end() ? spec.constant : it->second;
    }
    case Kind::kStride: {
      auto it = last_actual_.find({site, variable});
      if (it == last_actual_.end()) return spec.constant;
      return csp::Value(it->second.as_int() + spec.stride);
    }
  }
  return csp::Value();
}

void PredictorState::observe(const std::string& site,
                             const std::string& variable,
                             const csp::Value& actual) {
  last_actual_[{site, variable}] = actual;
}

}  // namespace ocsp::spec
