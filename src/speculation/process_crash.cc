// Crash / recovery and the adaptive speculation governor.
//
// Crash model: fail-stop with stable storage.  A crashed process neither
// steps nor accepts messages; the reliable transport parks framed data for
// it and unframed traffic is lost at the NIC (process_arrival.cc).  On
// restart the process resumes from its last committed state by aborting
// every uncommitted own guess through the normal cascade machinery — the
// incarnation bump plus frame-carried incarnation tags make every message
// the dead incarnations sent filterable at the receivers.
//
// The governor is the robustness counterpart of the retry limit L: L stops
// a site that keeps failing *consecutively*, while the governor's abort-rate
// EWMA demotes a site whose speculation merely loses on average (an abort
// storm), and its hysteresis band re-enables speculation once governed
// sequential passes show the site has calmed down.
#include "speculation/process.h"
#include "speculation/runtime.h"
#include "util/check.h"
#include "util/logging.h"

namespace ocsp::spec {

void SpeculativeProcess::crash() {
  if (crashed_) return;  // overlapping crash windows: first one wins
  crashed_ = true;
  ++stats_.crashes;
  recorder().record(make_event(obs::EventKind::kCrash));
  timeline().note(runtime_.scheduler().now(), id_, "crash");
  OCSP_DLOG << name_ << ": crashed at t=" << runtime_.scheduler().now();
}

void SpeculativeProcess::restart() {
  if (!crashed_) return;
  crashed_ = false;

  // Resume from the last committed state: every own guess that is still
  // unresolved dies with the old incarnation.  Abort the earliest such
  // guess; abort_own_guess kills all threads at or past its index and
  // cascades the rest, so the scan repeats until a fixpoint.
  std::uint64_t root_aborts = 0;
  for (;;) {
    const ThreadCtx* victim = nullptr;
    for (const auto& [idx, t] : threads_) {
      if (t.phase == ThreadCtx::Phase::kTerminated) continue;
      if (!t.has_own_guess) continue;
      if (history_.status(t.own_guess) != GuessStatus::kUnknown) continue;
      victim = &t;
      break;  // ascending map order: earliest uncommitted guess
    }
    if (victim == nullptr) break;
    const GuessId g = victim->own_guess;
    ++stats_.aborts_crash;
    record_abort(g, obs::AbortReason::kCrash, "crash-recovery");
    abort_own_guess(g, "crash-recovery");
    ++root_aborts;
  }

  ++stats_.crash_recoveries;
  {
    obs::Event ev = make_event(obs::EventKind::kRecovery);
    ev.a = root_aborts;
    recorder().record(std::move(ev));
  }
  timeline().note(runtime_.scheduler().now(), id_, "restart");
  OCSP_DLOG << name_ << ": restarted at t=" << runtime_.scheduler().now()
            << " (aborted " << root_aborts << " own guesses)";

  // Threads whose compute timers fired during the downtime are kRunning but
  // their steps were swallowed by the crashed_ gate; re-arm them.
  for (auto& [idx, t] : threads_) {
    if (t.phase == ThreadCtx::Phase::kRunning) schedule_step(idx);
  }
  // The transport flushes parked frames right after this returns
  // (Runtime::restart_process); locally-queued messages can go now.
  process_arrivals();
  after_guard_change();
  check_completion();
}

void SpeculativeProcess::observe_peer_incarnation(ProcessId src,
                                                  std::uint32_t inc,
                                                  std::uint32_t start) {
  if (crashed_ || src == id_) return;
  PeerHistory& peer = history_.peer(src);
  if (inc <= peer.latest_incarnation()) return;  // nothing new
  peer.observe_incarnation(inc, start);
  OCSP_DLOG << name_ << ": observed " << src << " incarnation " << inc
            << " from index " << start;
  // The implicit-abort rule just flipped guesses to kAborted without an
  // explicit ABORT; on_abort_msg would early-return on them, so run the
  // rollback fixpoint here or dependent threads never roll back.
  rollback_aborted_dependencies();
  after_guard_change();
  process_arrivals();
}

bool SpeculativeProcess::governor_blocks(const std::string& site) {
  if (!config_.governor_enabled) return false;
  auto it = governor_.find(site);
  return it != governor_.end() && it->second.demoted;
}

void SpeculativeProcess::governor_outcome(const std::string& site,
                                          bool aborted) {
  if (!config_.governor_enabled) return;
  GovernorSite& s = governor_[site];
  const double sample = aborted ? 1.0 : 0.0;
  s.ewma = (1.0 - config_.governor_alpha) * s.ewma +
           config_.governor_alpha * sample;
  ++s.samples;
  if (!s.demoted &&
      s.samples >= static_cast<std::uint64_t>(config_.governor_min_samples) &&
      s.ewma >= config_.governor_demote_threshold) {
    s.demoted = true;
    ++stats_.governor_demotions;
    obs::Event ev = make_event(obs::EventKind::kGovernorDemote);
    ev.detail = site;
    recorder().record(std::move(ev));
    OCSP_DLOG << name_ << ": governor demoted site " << site
              << " (ewma=" << s.ewma << ")";
  } else if (s.demoted && s.ewma <= config_.governor_promote_threshold) {
    s.demoted = false;
    ++stats_.governor_promotions;
    obs::Event ev = make_event(obs::EventKind::kGovernorPromote);
    ev.detail = site;
    recorder().record(std::move(ev));
    OCSP_DLOG << name_ << ": governor promoted site " << site
              << " (ewma=" << s.ewma << ")";
  }
}

}  // namespace ocsp::spec
