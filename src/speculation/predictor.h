// Value predictors for fork guesses.
//
// Section 3.2: the guessed values {b_i} for the passed variables {v_i} come
// from a compiler-determined predictor function applied to the fork-point
// state.  PredictorState additionally implements the history-based kinds
// (last-committed, stride), which need a per-site cache of actual values
// observed at successful joins.
#pragma once

#include <map>
#include <string>

#include "csp/env.h"
#include "csp/program.h"

namespace ocsp::spec {

class PredictorState {
 public:
  /// Guess the value of `variable` at fork site `site` given the fork-point
  /// environment.
  csp::Value guess(const std::string& site, const std::string& variable,
                   const csp::PredictorSpec& spec,
                   const csp::Env& fork_env) const;

  /// Feed back the actual value observed when the left thread completed.
  /// Called at every join (commit or value fault) so the next instance of
  /// the site predicts from fresh history.
  void observe(const std::string& site, const std::string& variable,
               const csp::Value& actual);

 private:
  // (site, variable) -> last actual value seen
  std::map<std::pair<std::string, std::string>, csp::Value> last_actual_;
};

}  // namespace ocsp::spec
