// Value predictors for fork guesses.
//
// Section 3.2: the guessed values {b_i} for the passed variables {v_i} come
// from a compiler-determined predictor function applied to the fork-point
// state.  PredictorState additionally implements the history-based kinds
// (last-committed, stride), which need a per-site cache of actual values
// observed at successful joins, and tracks per-(site, variable) hit/miss
// counts so the observability layer can report guess accuracy broken down
// by predictor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "csp/env.h"
#include "csp/program.h"

namespace ocsp::spec {

/// Human-readable name of a predictor kind ("constant", "expr", ...).
const char* predictor_kind_name(csp::PredictorSpec::Kind kind);

class PredictorState {
 public:
  /// Guess the value of `variable` at fork site `site` given the fork-point
  /// environment.  Remembers which predictor kind produced the guess so
  /// record_result() can attribute the outcome.
  csp::Value guess(const std::string& site, const std::string& variable,
                   const csp::PredictorSpec& spec, const csp::Env& fork_env);

  /// Feed back the actual value observed when the left thread completed.
  /// Called at every join (commit or value fault) so the next instance of
  /// the site predicts from fresh history.
  void observe(const std::string& site, const std::string& variable,
               const csp::Value& actual);

  /// Per-(site, variable) prediction outcome, fed by the join verifier.
  struct Accuracy {
    std::string predictor;  ///< kind name of the most recent guess
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Record whether the guess for (site, variable) matched the actual
  /// value at the join.
  void record_result(const std::string& site, const std::string& variable,
                     bool hit);

  const std::map<std::pair<std::string, std::string>, Accuracy>& accuracy()
      const {
    return accuracy_;
  }

 private:
  // (site, variable) -> last actual value seen
  std::map<std::pair<std::string, std::string>, csp::Value> last_actual_;
  std::map<std::pair<std::string, std::string>, Accuracy> accuracy_;
};

}  // namespace ocsp::spec
