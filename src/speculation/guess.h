// Guess identifiers and state indexes (sections 4.1.1-4.1.2).
//
// A guess x_n names the optimistic predicate created by the n-th fork of a
// process: "the left thread of fork n will complete with no value fault and
// no time fault".  Guesses are (incarnation, index) pairs per owner; the
// incarnation number increments each time the process aborts one of its own
// threads, so a stale guess from a dead incarnation can be recognized (and
// implicitly aborted) without ever receiving an explicit ABORT for it.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/ids.h"

namespace ocsp::spec {

struct GuessId {
  ProcessId owner = kNoProcess;
  std::uint32_t incarnation = 0;
  std::uint32_t index = 0;  ///< thread index n of the fork's right thread

  auto operator<=>(const GuessId&) const = default;

  bool valid() const { return owner != kNoProcess; }

  /// Rendered like the paper: "x3" with owner/incarnation detail.
  std::string to_string() const;
};

/// State index (section 4.1.1) extended with the incarnation so checkpoint
/// keys stay unambiguous across aborts of the process's own threads.
/// Lexicographic order matches logical time within a process.
struct StateIndex {
  std::uint32_t incarnation = 0;
  std::uint32_t thread = 0;
  std::uint32_t interval = 0;

  auto operator<=>(const StateIndex&) const = default;

  std::string to_string() const;
};

}  // namespace ocsp::spec
