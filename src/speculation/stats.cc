#include "speculation/stats.h"

#include <sstream>

#include "obs/metrics.h"

namespace ocsp::spec {

std::string SpecStats::to_string() const {
  std::ostringstream os;
  os << "forks=" << forks << " (seq=" << sequential_forks
     << " safe=" << safe_forks << ")"
     << " joins=" << joins << " commits=" << commits
     << " commute[commits=" << commute_commits
     << " vars=" << commute_forgiven_vars
     << " oracle=" << commute_oracle_violations << "]"
     << " aborts[value=" << aborts_value_fault
     << " time=" << aborts_time_fault << " timeout=" << aborts_timeout
     << " crash=" << aborts_crash << " cascade=" << aborts_cascade << "]"
     << " rollbacks=" << rollbacks << " checkpoints=" << checkpoints
     << " fossil=" << checkpoints_fossil_collected
     << " replays=" << replays << " orphans=" << orphans_discarded
     << " redelivered=" << messages_redelivered
     << " externals[buf=" << externals_buffered
     << " rel=" << externals_released << " drop=" << externals_discarded
     << "]"
     << " control=" << control_sent << " precedence=" << precedence_sent
     << " state_bytes[copied=" << checkpoint_bytes_copied
     << " shared=" << checkpoint_bytes_shared
     << " restored=" << rollback_restore_bytes << "]"
     << " crashes=" << crashes << "/" << crash_recoveries
     << " governor[demote=" << governor_demotions
     << " promote=" << governor_promotions
     << " seq=" << governor_sequential_forks << "]";
  return os.str();
}

void SpecStats::export_to(obs::MetricsRegistry& m) const {
  m.counter("forks") += forks;
  m.counter("sequential_forks") += sequential_forks;
  m.counter("safe_forks") += safe_forks;
  m.counter("safe_oracle_violations") += safe_oracle_violations;
  m.counter("joins") += joins;
  m.counter("commits") += commits;
  m.counter("commute_commits") += commute_commits;
  m.counter("commute_forgiven_vars") += commute_forgiven_vars;
  m.counter("commute_oracle_violations") += commute_oracle_violations;
  m.counter("aborts_value_fault") += aborts_value_fault;
  m.counter("aborts_time_fault") += aborts_time_fault;
  m.counter("aborts_timeout") += aborts_timeout;
  m.counter("aborts_crash") += aborts_crash;
  m.counter("aborts_cascade") += aborts_cascade;
  m.counter("rollbacks") += rollbacks;
  m.counter("checkpoints") += checkpoints;
  m.counter("replays") += replays;
  m.counter("orphans_discarded") += orphans_discarded;
  m.counter("messages_redelivered") += messages_redelivered;
  m.counter("externals_buffered") += externals_buffered;
  m.counter("externals_released") += externals_released;
  m.counter("externals_discarded") += externals_discarded;
  m.counter("control_sent") += control_sent;
  m.counter("precedence_sent") += precedence_sent;
  m.counter("checkpoints_pruned") += checkpoints_pruned;
  m.counter("log_entries_pruned") += log_entries_pruned;
  m.counter("checkpoints_fossil_collected") += checkpoints_fossil_collected;
  m.counter("checkpoint_bytes_copied") += checkpoint_bytes_copied;
  m.counter("checkpoint_bytes_shared") += checkpoint_bytes_shared;
  m.counter("rollback_restore_bytes") += rollback_restore_bytes;
  m.counter("crashes") += crashes;
  m.counter("crash_recoveries") += crash_recoveries;
  m.counter("crash_messages_dropped") += crash_messages_dropped;
  m.counter("governor_demotions") += governor_demotions;
  m.counter("governor_promotions") += governor_promotions;
  m.counter("governor_sequential_forks") += governor_sequential_forks;
}

}  // namespace ocsp::spec
