#include "speculation/stats.h"

#include <sstream>

namespace ocsp::spec {

std::string SpecStats::to_string() const {
  std::ostringstream os;
  os << "forks=" << forks << " (seq=" << sequential_forks << ")"
     << " joins=" << joins << " commits=" << commits
     << " aborts[value=" << aborts_value_fault
     << " time=" << aborts_time_fault << " timeout=" << aborts_timeout
     << " cascade=" << aborts_cascade << "]"
     << " rollbacks=" << rollbacks << " checkpoints=" << checkpoints
     << " replays=" << replays << " orphans=" << orphans_discarded
     << " redelivered=" << messages_redelivered
     << " externals[buf=" << externals_buffered
     << " rel=" << externals_released << " drop=" << externals_discarded
     << "]"
     << " control=" << control_sent << " precedence=" << precedence_sent;
  return os.str();
}

}  // namespace ocsp::spec
