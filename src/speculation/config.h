// Runtime configuration of the speculation machinery.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ocsp::spec {

/// How a process restores state on rollback (section 4.1.3 — "the
/// particular technique used for rollback is a performance tuning decision
/// and does not affect the correctness of the transformation").
enum class RollbackStrategy {
  /// Time Warp style: checkpoint the whole thread state before every new
  /// dependency acquisition; rollback = restore the snapshot.
  kCheckpointEveryInterval,
  /// Optimistic Recovery style: checkpoint only at thread start, log input
  /// messages, and roll back by replaying inputs from the thread start.
  kReplayFromLog,
};

/// How checkpoint/fork/rollback state copies are materialized.  Either way
/// the observable semantics are identical (csp::Value payloads are
/// immutable, so aliasing is never visible); the strategies differ only in
/// cost, which is why kDeepCopy survives as a differential-testing oracle
/// for the structural-sharing fast path.
enum class StateStrategy {
  /// Detach every state copy into fresh storage: the historical
  /// O(|state|) cost per checkpoint / fork / rollback restore.
  kDeepCopy,
  /// Copy-on-write: a state copy is a shared handle (O(1)); a write
  /// path-copies only the touched tree path (O(log n)).  This is the
  /// analogue of the paper's §3.2 copy elision — speculation stays cheap
  /// no matter how large the environment grows.
  kCow,
};

/// How COMMIT/ABORT control messages are distributed (section 4.2.5).
enum class ControlPlane {
  /// Broadcast to every process ("should work well in a LAN where threads
  /// are created relatively infrequently").
  kBroadcast,
  /// Send only to processes known to depend on the guess, recorded during
  /// message send processing ("more appropriate in a WAN or when the number
  /// of threads created is large").
  kTargeted,
};

struct SpecConfig {
  /// Master switch: false executes every fork sequentially, giving the
  /// pessimistic baseline with identical program semantics.
  bool speculation_enabled = true;

  /// Soundness oracle for statically-SAFE fork sites (src/analysis): when
  /// true, ForkMode::kSafe sites run through the full speculative machinery
  /// (empty passed set, guards, join-time verification) instead of the
  /// guard-elided fast path, and any value/time fault raised by such a site
  /// increments stats.safe_oracle_violations — a classifier bug.  Defaults
  /// on in debug builds so the whole test suite doubles as the oracle.
#ifndef NDEBUG
  bool safe_site_oracle = true;
#else
  bool safe_site_oracle = false;
#endif

  /// Commit-on-commute verification: honor the per-variable VerifyModes the
  /// reclassifier attached to fork sites (ForkStmt::verify).  A guess
  /// mismatch on a variable proven dead in the right thread always
  /// forgives; a boolean-only variable forgives when guess and actual agree
  /// on truthiness.  Defaults on — without annotations (the default
  /// program shape) the flag is inert and semantics are the paper's exact
  /// equality.
  bool commute_verification = true;

  /// Soundness oracle for commit-on-commute: re-derive each annotated
  /// variable's use class over the fork's right thread at fork time and
  /// drop (count in stats.commute_oracle_violations) any annotation the
  /// static proof no longer supports — a stale or forged VerifyMode after
  /// a program rewrite.  The trace-level half of the oracle lives in
  /// tests/commute_oracle_test: every run with forgiven joins must match
  /// the sequential replay's observable trace.  Defaults on in debug
  /// builds, like safe_site_oracle.
#ifndef NDEBUG
  bool commute_oracle = true;
#else
  bool commute_oracle = false;
#endif

  /// Left-thread timeout guarding against S1 divergence (section 3.3).
  sim::Time fork_timeout = sim::milliseconds(1000);

  /// How long a join may wait on PRECEDENCE resolution before the process
  /// unilaterally aborts its guess (keeps runs live under message loss).
  sim::Time join_wait_timeout = sim::milliseconds(4000);

  /// Liveness limit L (section 3.3): after this many aborts of the same
  /// fork site, the site executes pessimistically.
  int retry_limit = 8;

  RollbackStrategy rollback = RollbackStrategy::kCheckpointEveryInterval;

  /// How checkpoint/fork/rollback state copies are materialized; kDeepCopy
  /// is the differential-testing oracle for the COW fast path.
  StateStrategy state = StateStrategy::kCow;

  /// Replay strategy only: take a full checkpoint every N dependency-
  /// introducing acceptances ("less frequent checkpoints" — the classic
  /// Optimistic Recovery recipe).  Bounds both replay length and the
  /// retained input log.
  int replay_checkpoint_every = 32;

  ControlPlane control = ControlPlane::kBroadcast;

  /// Re-send unacknowledged control messages (needed only on lossy links;
  /// section 4.2.5's "repeated broadcasts" liveness requirement).
  bool control_retry = false;
  sim::Time control_retry_interval = sim::milliseconds(20);
  int control_retry_limit = 25;

  /// Adaptive speculation governor: a per-fork-site abort-rate EWMA circuit
  /// breaker.  A site whose EWMA abort rate reaches governor_demote_threshold
  /// (after governor_min_samples outcomes) is demoted to sequential
  /// execution; each governed sequential pass decays the EWMA, and once it
  /// falls to governor_promote_threshold the site speculates again
  /// (hysteresis re-enable).  Unlike retry limit L — which is per-site,
  /// monotone, and resets only on commit — the governor bounds wasted work
  /// under sustained fault pressure while staying able to recover when the
  /// storm passes.  Off by default: zero behavioural drift.
  bool governor_enabled = false;
  double governor_alpha = 0.25;
  double governor_demote_threshold = 0.65;
  double governor_promote_threshold = 0.25;
  int governor_min_samples = 4;
};

}  // namespace ocsp::spec
