#include "speculation/guess.h"

#include <sstream>

namespace ocsp::spec {

std::string GuessId::to_string() const {
  std::ostringstream os;
  os << "g(P" << owner << "." << incarnation << "." << index << ")";
  return os.str();
}

std::string StateIndex::to_string() const {
  std::ostringstream os;
  os << "(" << incarnation << "," << thread << "," << interval << ")";
  return os.str();
}

}  // namespace ocsp::spec
