#include "speculation/history.h"

#include <algorithm>
#include <sstream>

namespace ocsp::spec {

const char* to_string(GuessStatus s) {
  switch (s) {
    case GuessStatus::kUnknown:
      return "unknown";
    case GuessStatus::kCommitted:
      return "committed";
    case GuessStatus::kAborted:
      return "aborted";
  }
  return "?";
}

void PeerHistory::set_status(const GuessId& g, GuessStatus status) {
  const auto key = std::pair(g.incarnation, g.index);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Committed/aborted are final; unknown (from PRECEDENCE) never
    // overwrites a final state.
    if (it->second != GuessStatus::kUnknown &&
        status == GuessStatus::kUnknown) {
      return;
    }
    it->second = status;
  } else {
    entries_[key] = status;
  }
  // Seeing any guess from incarnation i implies i exists; its start is at
  // most the index seen (refined further by observe_incarnation).
  auto start = incarnation_start_.find(g.incarnation);
  if (start == incarnation_start_.end()) {
    incarnation_start_[g.incarnation] = g.index;
  } else {
    start->second = std::min(start->second, g.index);
  }
}

GuessStatus PeerHistory::status(const GuessId& g) const {
  auto it = entries_.find(std::pair(g.incarnation, g.index));
  if (it != entries_.end()) return it->second;
  // Implicit abort: a later incarnation whose start index is <= g.index
  // means the thread g guarded was re-executed — g was abandoned.
  for (auto jt = incarnation_start_.upper_bound(g.incarnation);
       jt != incarnation_start_.end(); ++jt) {
    if (jt->second <= g.index) return GuessStatus::kAborted;
  }
  return GuessStatus::kUnknown;
}

void PeerHistory::observe_incarnation(std::uint32_t inc,
                                      std::uint32_t start_index) {
  auto it = incarnation_start_.find(inc);
  if (it == incarnation_start_.end()) {
    incarnation_start_[inc] = start_index;
  } else {
    it->second = std::min(it->second, start_index);
  }
}

std::uint32_t PeerHistory::latest_incarnation() const {
  if (incarnation_start_.empty()) return 0;
  return incarnation_start_.rbegin()->first;
}

std::string PeerHistory::to_string() const {
  std::ostringstream os;
  os << "starts{";
  for (const auto& [inc, start] : incarnation_start_) {
    os << " i" << inc << "@" << start;
  }
  os << " } entries{";
  for (const auto& [key, st] : entries_) {
    os << " (" << key.first << "," << key.second << ")=" << spec::to_string(st);
  }
  os << " }";
  return os.str();
}

const PeerHistory* HistoryTable::find_peer(ProcessId id) const {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : &it->second;
}

GuessStatus HistoryTable::status(const GuessId& g) const {
  const PeerHistory* h = find_peer(g.owner);
  return h ? h->status(g) : GuessStatus::kUnknown;
}

bool HistoryTable::any_aborted(const GuardSet& guard) const {
  for (const auto& g : guard) {
    if (status(g) == GuessStatus::kAborted) return true;
  }
  return false;
}

std::vector<GuessId> HistoryTable::unresolved_of(const GuardSet& guard) const {
  std::vector<GuessId> out;
  for (const auto& g : guard) {
    if (status(g) != GuessStatus::kCommitted) out.push_back(g);
  }
  return out;
}

}  // namespace ocsp::spec
