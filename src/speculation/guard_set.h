// Commit guard sets (sections 3.1 and 4.1.2).
//
// A guard set carries the uncommitted guesses a computation depends on.
// Following section 4.1.5's optimization, at most one guess per owning
// process is stored: a dependence on x_5 subsumes a dependence on x_3
// because same-incarnation thread indexes are totally ordered, and the
// incarnation start table (history.h) resolves the cross-incarnation cases.
#pragma once

#include <string>
#include <vector>

#include "speculation/guess.h"

namespace ocsp::spec {

class GuardSet {
 public:
  GuardSet() = default;
  GuardSet(std::initializer_list<GuessId> init) {
    for (const auto& g : init) add(g);
  }

  /// Insert a dependency.  If a guess by the same owner is present, the
  /// later one (higher incarnation, then higher index) wins.  Returns true
  /// if the set changed.
  bool add(const GuessId& g);

  /// Union with another guard set under the same subsumption rule.
  /// Returns true if this set changed.
  bool merge(const GuardSet& other);

  /// Exact-member test.
  bool contains(const GuessId& g) const;

  /// Is `g` covered by this set, i.e. would add(g) be a no-op?  True when
  /// the set holds a guess by the same owner that subsumes g.
  bool covers(const GuessId& g) const;

  bool contains_owner(ProcessId owner) const;

  /// The stored guess for `owner`, or an invalid GuessId.
  GuessId for_owner(ProcessId owner) const;

  /// Remove an exact member.  Returns true if removed.
  bool erase(const GuessId& g);
  bool erase_owner(ProcessId owner);

  /// Members of this set that are not covered by `other` — the Newguards
  /// computation of section 4.2.3.
  std::vector<GuessId> minus(const GuardSet& other) const;

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  friend bool operator==(const GuardSet&, const GuardSet&) = default;

  std::string to_string() const;

 private:
  // Sorted by owner; at most one entry per owner.
  std::vector<GuessId> items_;
};

}  // namespace ocsp::spec
