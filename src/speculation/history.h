// Commit histories and incarnation start tables (sections 4.1.2, 4.1.5).
//
// Each process maintains, per peer, what it knows about the peer's guesses:
// committed, aborted, or unknown.  Storage is sparse — most guesses commit,
// so only the exceptions are recorded (util::SparseVector rationale).  The
// incarnation start table turns "I saw incarnation 2 begin at index 3" into
// implicit aborts of incarnation-1 guesses with index >= 3 without any
// explicit ABORT message.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "speculation/guard_set.h"
#include "speculation/guess.h"

namespace ocsp::spec {

enum class GuessStatus { kUnknown, kCommitted, kAborted };

const char* to_string(GuessStatus s);

/// What one process knows about one peer's guesses.
class PeerHistory {
 public:
  /// Record an explicit COMMIT/ABORT (or an "unknown" from PRECEDENCE).
  void set_status(const GuessId& g, GuessStatus status);

  /// Current knowledge; applies the implicit-abort rule: a guess from
  /// incarnation i with index >= start(i') for some observed i' > i is
  /// aborted even without an explicit entry.
  GuessStatus status(const GuessId& g) const;

  /// Note that incarnation `inc` of the peer begins at thread index
  /// `start_index` (learned from an ABORT, which names the aborted thread).
  void observe_incarnation(std::uint32_t inc, std::uint32_t start_index);

  /// Highest incarnation observed so far.
  std::uint32_t latest_incarnation() const;

  std::size_t explicit_entries() const { return entries_.size(); }

  std::string to_string() const;

 private:
  // incarnation -> smallest known start index
  std::map<std::uint32_t, std::uint32_t> incarnation_start_;
  // (incarnation, index) -> explicit status
  std::map<std::pair<std::uint32_t, std::uint32_t>, GuessStatus> entries_;
};

/// All peers' histories plus convenience queries over guard sets.
class HistoryTable {
 public:
  PeerHistory& peer(ProcessId id) { return peers_[id]; }
  const PeerHistory* find_peer(ProcessId id) const;

  GuessStatus status(const GuessId& g) const;

  /// Orphan test of section 4.2.3: true if any guess in `guard` is aborted.
  bool any_aborted(const GuardSet& guard) const;

  /// Strip guesses already known committed (they are no longer
  /// dependencies); used when merging an incoming tag.
  std::vector<GuessId> unresolved_of(const GuardSet& guard) const;

 private:
  std::map<ProcessId, PeerHistory> peers_;
};

}  // namespace ocsp::spec
