#include "speculation/guard_set.h"

#include <algorithm>
#include <sstream>

namespace ocsp::spec {

namespace {
/// Later guesses by the same owner subsume earlier ones (section 4.1.5).
bool subsumes(const GuessId& a, const GuessId& b) {
  return a.owner == b.owner &&
         std::pair(a.incarnation, a.index) >= std::pair(b.incarnation, b.index);
}
}  // namespace

bool GuardSet::add(const GuessId& g) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), g,
      [](const GuessId& a, const GuessId& b) { return a.owner < b.owner; });
  if (it != items_.end() && it->owner == g.owner) {
    if (subsumes(*it, g)) return false;  // existing entry is newer
    *it = g;
    return true;
  }
  items_.insert(it, g);
  return true;
}

bool GuardSet::merge(const GuardSet& other) {
  bool changed = false;
  for (const auto& g : other.items_) changed |= add(g);
  return changed;
}

bool GuardSet::contains(const GuessId& g) const {
  const GuessId mine = for_owner(g.owner);
  return mine.valid() && mine == g;
}

bool GuardSet::covers(const GuessId& g) const {
  const GuessId mine = for_owner(g.owner);
  return mine.valid() && subsumes(mine, g);
}

bool GuardSet::contains_owner(ProcessId owner) const {
  return for_owner(owner).valid();
}

GuessId GuardSet::for_owner(ProcessId owner) const {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), owner,
      [](const GuessId& a, ProcessId o) { return a.owner < o; });
  if (it != items_.end() && it->owner == owner) return *it;
  return GuessId{};
}

bool GuardSet::erase(const GuessId& g) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), g,
      [](const GuessId& a, const GuessId& b) { return a.owner < b.owner; });
  if (it != items_.end() && *it == g) {
    items_.erase(it);
    return true;
  }
  return false;
}

bool GuardSet::erase_owner(ProcessId owner) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), owner,
      [](const GuessId& a, ProcessId o) { return a.owner < o; });
  if (it != items_.end() && it->owner == owner) {
    items_.erase(it);
    return true;
  }
  return false;
}

std::vector<GuessId> GuardSet::minus(const GuardSet& other) const {
  std::vector<GuessId> out;
  for (const auto& g : items_) {
    if (!other.covers(g)) out.push_back(g);
  }
  return out;
}

std::string GuardSet::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& g : items_) {
    if (!first) os << ", ";
    first = false;
    os << g.to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace ocsp::spec
