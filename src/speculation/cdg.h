// Commit dependency graph (sections 4.1.4, 4.2.8).
//
// Nodes are guesses; an edge g -> h records "g precedes h": h can commit
// only after g.  PRECEDENCE messages add edges; a cycle means a causal
// chain runs backwards through a fork — a time fault — and every guess on
// the cycle must abort (Figure 4 / Figure 7).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "speculation/guess.h"
#include "util/flat_set.h"

namespace ocsp::spec {

class Cdg {
 public:
  bool has_node(const GuessId& g) const;
  void add_node(const GuessId& g);

  /// Remove a resolved guess and all its edges.
  void remove_node(const GuessId& g);

  /// Add edge from -> to (creating missing nodes).  If this closes a cycle,
  /// returns the nodes on one such cycle (in order, starting at `to`);
  /// otherwise returns an empty vector.  The edge is added either way — the
  /// caller aborts the cycle members, which removes them.
  std::vector<GuessId> add_edge(const GuessId& from, const GuessId& to);

  bool has_edge(const GuessId& from, const GuessId& to) const;

  /// Direct predecessors of g (guesses that must commit before g).
  std::vector<GuessId> predecessors(const GuessId& g) const;

  /// g plus all transitive successors — the set invalidated when g aborts.
  std::vector<GuessId> closure_from(const GuessId& g) const;

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const;

  std::vector<GuessId> nodes() const;

  std::string to_string() const;

 private:
  /// Find a path from `from` back to `target` (DFS); fills `path`.
  bool find_path(const GuessId& from, const GuessId& target,
                 std::vector<GuessId>& path,
                 util::FlatSet<GuessId>& visited) const;

  std::map<GuessId, util::FlatSet<GuessId>> out_;
};

}  // namespace ocsp::spec
