// Wire messages of the speculation protocol.
//
// Data messages (calls, one-way sends, returns) carry the sender's commit
// guard set as a tag (section 3.1: "Each message carries with it a tag
// containing the commit guard set of the computation which sent it").
// Control messages implement section 4.2.5: COMMIT, ABORT, PRECEDENCE.
#pragma once

#include <cstdint>
#include <string>

#include "csp/value.h"
#include "net/envelope.h"
#include "net/message.h"
#include "obs/events.h"
#include "sim/time.h"
#include "speculation/guard_set.h"

namespace ocsp::spec {

enum class DataKind { kCall, kSend, kReturn };

class DataMessage final : public net::Message {
 public:
  DataKind data_kind = DataKind::kSend;
  std::string op;        ///< operation (Call/Send)
  csp::ValueList args;   ///< arguments (Call/Send)
  csp::Value result;     ///< reply value (Return)
  std::int64_t reqid = -1;  ///< matches a Return to its Call
  GuardSet guard;           ///< commit guard tag

  std::string kind() const override;
  std::size_t wire_size() const override;
  std::string describe() const override;
};

enum class ControlKind { kCommit, kAbort, kPrecedence };

class ControlMessage final : public net::Message {
 public:
  ControlKind control = ControlKind::kCommit;
  GuessId subject;  ///< the guess being committed/aborted/constrained
  GuardSet guard;   ///< PRECEDENCE only: the guesses preceding `subject`

  std::string kind() const override;
  std::size_t wire_size() const override;
  std::string describe() const override;
  bool control_plane() const override { return true; }
};

/// Structured kMsgSent / kMsgDelivered event for one envelope, exactly as
/// every executor must record it (the shards=1 bit-for-bit oracle compares
/// these field by field): process/peer by direction, a = wire size, b = 1
/// on a dropped send, control type and guess ref from control payloads.
obs::Event make_msg_event(obs::EventKind kind, const net::Envelope& env,
                          sim::Time now);

}  // namespace ocsp::spec
