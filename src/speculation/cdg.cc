#include "speculation/cdg.h"

#include <sstream>

namespace ocsp::spec {

bool Cdg::has_node(const GuessId& g) const { return out_.count(g) > 0; }

void Cdg::add_node(const GuessId& g) { out_[g]; }

void Cdg::remove_node(const GuessId& g) {
  out_.erase(g);
  for (auto& [node, succs] : out_) succs.erase(g);
}

bool Cdg::has_edge(const GuessId& from, const GuessId& to) const {
  auto it = out_.find(from);
  return it != out_.end() && it->second.contains(to);
}

std::vector<GuessId> Cdg::add_edge(const GuessId& from, const GuessId& to) {
  add_node(from);
  add_node(to);
  out_[from].insert(to);
  if (from == to) return {from};
  // A new cycle through (from -> to) exists iff `from` is reachable from
  // `to`.
  std::vector<GuessId> path;
  util::FlatSet<GuessId> visited;
  if (find_path(to, from, path, visited)) {
    // path = to ... from; the cycle is exactly these nodes.
    return path;
  }
  return {};
}

bool Cdg::find_path(const GuessId& from, const GuessId& target,
                    std::vector<GuessId>& path,
                    util::FlatSet<GuessId>& visited) const {
  if (!visited.insert(from)) return false;
  path.push_back(from);
  if (from == target) return true;
  auto it = out_.find(from);
  if (it != out_.end()) {
    for (const auto& next : it->second) {
      if (find_path(next, target, path, visited)) return true;
    }
  }
  path.pop_back();
  return false;
}

std::vector<GuessId> Cdg::predecessors(const GuessId& g) const {
  std::vector<GuessId> out;
  for (const auto& [node, succs] : out_) {
    if (succs.contains(g)) out.push_back(node);
  }
  return out;
}

std::vector<GuessId> Cdg::closure_from(const GuessId& g) const {
  std::vector<GuessId> result;
  if (!has_node(g)) return result;
  util::FlatSet<GuessId> visited;
  std::vector<GuessId> work{g};
  while (!work.empty()) {
    GuessId cur = work.back();
    work.pop_back();
    if (!visited.insert(cur)) continue;
    result.push_back(cur);
    auto it = out_.find(cur);
    if (it != out_.end()) {
      for (const auto& next : it->second) work.push_back(next);
    }
  }
  return result;
}

std::size_t Cdg::edge_count() const {
  std::size_t n = 0;
  for (const auto& [node, succs] : out_) n += succs.size();
  return n;
}

std::vector<GuessId> Cdg::nodes() const {
  std::vector<GuessId> out;
  for (const auto& [node, succs] : out_) out.push_back(node);
  return out;
}

std::string Cdg::to_string() const {
  std::ostringstream os;
  for (const auto& [node, succs] : out_) {
    os << node.to_string() << " ->";
    for (const auto& s : succs) os << " " << s.to_string();
    os << "\n";
  }
  return os.str();
}

}  // namespace ocsp::spec
