#include "speculation/messages.h"

#include <sstream>

namespace ocsp::spec {

std::string DataMessage::kind() const {
  switch (data_kind) {
    case DataKind::kCall:
      return "CALL";
    case DataKind::kSend:
      return "SEND";
    case DataKind::kReturn:
      return "RETURN";
  }
  return "?";
}

std::size_t DataMessage::wire_size() const {
  // Rough model: header + op + 16 bytes per argument + 8 per guard entry.
  std::size_t n = 48 + op.size() + 16 * args.size() + 8 * guard.size();
  return n;
}

std::string DataMessage::describe() const {
  std::ostringstream os;
  os << kind();
  if (data_kind == DataKind::kReturn) {
    os << "#" << reqid << " " << result.to_string();
  } else {
    os << " " << op << "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) os << ", ";
      os << args[i].to_string();
    }
    os << ")";
    if (data_kind == DataKind::kCall) os << "#" << reqid;
  }
  os << " " << guard.to_string();
  return os.str();
}

std::string ControlMessage::kind() const {
  switch (control) {
    case ControlKind::kCommit:
      return "COMMIT";
    case ControlKind::kAbort:
      return "ABORT";
    case ControlKind::kPrecedence:
      return "PRECEDENCE";
  }
  return "?";
}

std::size_t ControlMessage::wire_size() const {
  return 32 + 8 * guard.size();
}

std::string ControlMessage::describe() const {
  std::ostringstream os;
  os << kind() << "(" << subject.to_string();
  if (control == ControlKind::kPrecedence) os << ", " << guard.to_string();
  os << ")";
  return os.str();
}

obs::Event make_msg_event(obs::EventKind kind, const net::Envelope& env,
                          sim::Time now) {
  const bool sent = kind == obs::EventKind::kMsgSent;
  obs::Event ev;
  ev.kind = kind;
  ev.when = now;
  ev.process = sent ? env.src : env.dst;
  ev.peer = sent ? env.dst : env.src;
  ev.msg_id = env.id;
  ev.a = env.payload->wire_size();
  // A send observed with delivered_at == 0 was dropped by the link.
  ev.b = sent && env.delivered_at == 0 ? 1 : 0;
  if (auto ctl =
          std::dynamic_pointer_cast<const ControlMessage>(env.payload)) {
    switch (ctl->control) {
      case ControlKind::kCommit:
        ev.control = obs::ControlType::kCommit;
        break;
      case ControlKind::kAbort:
        ev.control = obs::ControlType::kAbort;
        break;
      case ControlKind::kPrecedence:
        ev.control = obs::ControlType::kPrecedence;
        break;
    }
    ev.guess = obs::GuessRef{ctl->subject.owner, ctl->subject.incarnation,
                             ctl->subject.index};
  }
  ev.detail = env.payload->kind();
  return ev;
}

}  // namespace ocsp::spec
