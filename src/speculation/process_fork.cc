// Fork and join (sections 4.2.1 and 4.2.5).
//
// The fork always records enough to re-execute S2 from the left thread's
// final state (join_right_initial + wholesale env adoption), which unifies
// three paths: the pessimistic fallback (speculation disabled or retry
// limit L exhausted), re-execution after a value/time fault, and
// re-execution after a timeout abort.  The right thread's RNG is split from
// the parent's at the fork point in every mode, so optimistic and
// pessimistic executions of the same program observe identical random
// draws (a prerequisite for the Theorem 1 trace-equality tests).
#include "analysis/commute.h"
#include "speculation/process.h"
#include "speculation/runtime.h"
#include "util/check.h"
#include "util/logging.h"

namespace ocsp::spec {

void SpeculativeProcess::arm_fork_timer(const GuessId& guess,
                                        sim::Time timeout) {
  if (timeout <= 0) return;
  cancel_fork_timer(guess);
  fork_timers_[guess] =
      runtime_.scheduler().after(timeout, [this, guess]() {
        fork_timers_.erase(guess);
        on_fork_timeout(guess);
      });
}

void SpeculativeProcess::cancel_fork_timer(const GuessId& guess) {
  auto it = fork_timers_.find(guess);
  if (it == fork_timers_.end()) return;
  runtime_.scheduler().cancel(it->second);
  fork_timers_.erase(it);
}

void SpeculativeProcess::do_fork(ThreadCtx& t, const csp::ForkStmt& f) {
  ++stats_.forks;
  // The governor's circuit breaker sits beside the liveness limit L: L is
  // monotone per site (reset on commit), the breaker is an EWMA with
  // hysteresis so a storming site comes back once the storm passes.
  const bool governed = governor_blocks(f.site);
  if (governed) ++stats_.governor_sequential_forks;
  const bool speculate =
      config_.speculation_enabled && !governed &&
      site_aborts_[f.site] < config_.retry_limit;
  // Statically-SAFE site (src/analysis): run both threads with the guess /
  // guard / commit machinery elided.  Under the soundness oracle the site
  // takes the full speculative path instead, so the classifier's claim is
  // checked at every join (record_abort flags any value/time fault).
  const bool safe_fast_path =
      f.mode == csp::ForkMode::kSafe && speculate && !config_.safe_site_oracle;

  // Prepare the right thread's start machine: a copy of the fork-point
  // state positioned at S2 with a split RNG stream.  Under the COW state
  // strategy this copy is the paper's §3.2 elision made literal: it is a
  // shared handle, and only the guessed-variable writes below materialize
  // anything.  Under kDeepCopy the whole Env detaches here (the oracle's
  // O(|state|) cost).
  csp::Machine right_machine = t.machine;
  apply_state_strategy(right_machine);
  right_machine.take_fork_branch(/*left=*/false);
  right_machine.rng() = t.machine.rng().split();

  // The left thread drops the continuation and runs S1 only.
  t.machine.take_fork_branch(/*left=*/true);

  t.has_pending_join = true;
  t.join_right_index = max_thread_ + 1;
  t.join_site = f.site;
  t.join_passed = f.passed;
  t.join_guessed.clear();
  t.join_verify = f.verify;
  t.join_forgiven = 0;
  t.join_guess_aborted = false;
  t.join_safe = false;

  // Commit-on-commute oracle: re-derive each annotated variable's use class
  // over the right thread's ACTUAL remaining program — the S2 branch plus
  // every statement the enclosing continuation will still run, straight off
  // the machine's frame stack — and drop any VerifyMode the static proof no
  // longer supports (a stale annotation after a rewrite would make
  // forgiveness unsound).  Checking f.right alone is not enough: a forgiven
  // commit leaves the guessed value in the surviving env, so a variable the
  // right branch never touches but the post-fork continuation value-reads
  // is exactly the unsound-annotation shape the oracle exists to catch.
  // The dropped variable falls back to exact verification, so the run
  // itself stays correct either way.
  if (config_.commute_oracle && !t.join_verify.empty()) {
    const std::vector<const csp::Stmt*> right_path =
        right_machine.pending_stmts();
    for (auto it = t.join_verify.begin(); it != t.join_verify.end();) {
      const analysis::UseClass uc = analysis::use_of(right_path, it->first);
      const bool supported =
          (it->second == csp::VerifyMode::kDead &&
           uc == analysis::UseClass::kUnused) ||
          (it->second == csp::VerifyMode::kBoolean &&
           uc != analysis::UseClass::kValueUsed);
      if (supported) {
        ++it;
      } else {
        ++stats_.commute_oracle_violations;
        OCSP_WLOG << "commute oracle: annotation verify="
                  << csp::to_string(it->second) << " for '" << it->first
                  << "' at site " << f.site << " is unsupported (use class "
                  << analysis::to_string(uc) << "); reverting to exact";
        it = t.join_verify.erase(it);
      }
    }
  }

  if (safe_fast_path) {
    ++stats_.safe_forks;
    const std::uint32_t new_index = ++max_thread_;
    t.join_safe = true;
    t.join_guess = GuessId{};  // no guess: nothing to verify at the join

    ThreadCtx r;
    r.index = new_index;
    r.interval = 0;
    r.machine = std::move(right_machine);
    // A SAFE fork adds no guess of its own, but any enclosing speculation
    // still guards both threads: inherit the parent's dependencies.
    r.guard = t.guard;
    r.cdg = t.cdg;
    r.rollbacks = t.rollbacks;
    r.has_own_guess = false;
    r.created_at = current_index(t);

    timeline().record({trace::TimelineEntry::Kind::kFork,
                       runtime_.scheduler().now(), id_, kNoProcess,
                       "safe site=" + f.site});
    {
      obs::Event fe = make_event(obs::EventKind::kFork);
      fe.thread = t.index;
      fe.interval = t.interval;
      fe.a = 2;  // SAFE fast path
      fe.detail = f.site;
      recorder().record(std::move(fe));
      obs::Event ie = make_event(obs::EventKind::kIntervalBegin);
      ie.thread = new_index;
      ie.a = 2;
      ie.detail = f.site;
      recorder().record(std::move(ie));
      // The scorecard's zero-cost entry: state bytes a speculative fork
      // would have snapshotted here, elided along with the guess/guard/
      // verification machinery.
      obs::Event se = make_event(obs::EventKind::kSafeForkElided);
      se.thread = new_index;
      se.interval = t.interval;
      se.a = r.machine.state_bytes();
      se.detail = f.site;
      recorder().record(std::move(se));
    }

    auto [it, inserted] = threads_.emplace(new_index, std::move(r));
    OCSP_CHECK_MSG(inserted, "thread index reuse without kill");
    schedule_step(new_index);

    // No fork timer (S1 cannot fault), no predictor work, no creation
    // checkpoint for the right thread (no rollback ever targets it: it has
    // no guess, and an enclosing abort kills it outright and re-runs the
    // fork).  The left thread keeps the usual interval/replay discipline.
    ++t.interval;
    if (config_.rollback == RollbackStrategy::kReplayFromLog) {
      take_checkpoint(t);
      ++t.interval;
    }
    return;
  }

  if (!speculate) {
    ++stats_.sequential_forks;
    // A governed sequential pass cannot abort; feeding the success into the
    // EWMA is what decays a demoted site back toward promotion (hysteresis
    // re-enable).
    if (governed) governor_outcome(f.site, /*aborted=*/false);
    // Keep the right thread dormant until the join supplies the actual
    // state.
    max_thread_ = t.join_right_index;
    t.join_guess = GuessId{};  // invalid: sequential join
    t.join_right_initial = std::move(right_machine);
    timeline().record({trace::TimelineEntry::Kind::kFork,
                       runtime_.scheduler().now(), id_, kNoProcess,
                       "sequential site=" + f.site});
    {
      obs::Event fe = make_event(obs::EventKind::kFork);
      fe.thread = t.index;
      fe.interval = t.interval;
      fe.detail = f.site;
      recorder().record(std::move(fe));
      obs::Event ie = make_event(obs::EventKind::kIntervalBegin);
      ie.thread = t.join_right_index;
      ie.detail = f.site;
      recorder().record(std::move(ie));
    }
    ++t.interval;  // give the post-fork state its own index
    if (config_.rollback == RollbackStrategy::kReplayFromLog) {
      take_checkpoint(t);
      ++t.interval;
    }
    return;
  }

  const std::uint32_t new_index = ++max_thread_;
  const GuessId guess{id_, incarnation_, new_index};
  t.join_guess = guess;
  if (f.mode == csp::ForkMode::kSafe) {
    // Oracle mode: remember that this guess belongs to a SAFE claim.
    safe_claimed_.insert(guess);
  }

  // Apply the compiler-chosen predictor to each passed variable (3.2).
  for (const auto& v : f.passed) {
    auto spec_it = f.predictors.find(v);
    OCSP_CHECK_MSG(spec_it != f.predictors.end(), "missing predictor");
    csp::Value b =
        predictors_.guess(f.site, v, spec_it->second, t.machine.env());
    right_machine.env().set(v, b);
    t.join_guessed[v] = std::move(b);
  }
  t.join_right_initial = right_machine;  // kept for re-execution
  apply_state_strategy(t.join_right_initial);

  ThreadCtx r;
  r.index = new_index;
  r.interval = 0;
  r.machine = std::move(right_machine);
  r.guard = t.guard;
  r.guard.add(guess);
  r.cdg = t.cdg;
  r.cdg.add_node(guess);
  r.rollbacks = t.rollbacks;
  r.rollbacks[guess] = StateIndex{incarnation_, new_index, 0};
  r.has_own_guess = true;
  r.own_guess = guess;
  r.own_site = f.site;
  r.created_at = current_index(t);

  history_.peer(id_).set_status(guess, GuessStatus::kUnknown);

  timeline().record({trace::TimelineEntry::Kind::kFork,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     guess.to_string() + " site=" + f.site});
  {
    obs::Event fe = make_event(obs::EventKind::kFork);
    fe.thread = t.index;
    fe.interval = t.interval;
    fe.guess = guess_ref(guess);
    fe.a = 1;  // speculative
    fe.detail = f.site;
    recorder().record(std::move(fe));
    obs::Event ie = make_event(obs::EventKind::kIntervalBegin);
    ie.thread = new_index;
    ie.guess = guess_ref(guess);
    ie.a = 1;
    ie.detail = f.site;
    recorder().record(std::move(ie));
    obs::Event ge = make_event(obs::EventKind::kGuessMade);
    ge.thread = new_index;
    ge.guess = guess_ref(guess);
    ge.a = f.passed.size();
    ge.detail = f.site;
    recorder().record(std::move(ge));
    ++live_metrics_.counter("guesses_made");
  }

  auto [it, inserted] = threads_.emplace(new_index, std::move(r));
  OCSP_CHECK_MSG(inserted, "thread index reuse without kill");
  obs::speculation_depth_hist(live_metrics_)
      .add(static_cast<double>(it->second.guard.size()));
  take_checkpoint(it->second);
  ++it->second.interval;  // keep the creation checkpoint key unique
  schedule_step(new_index);

  // The parent continues as the left thread; give its post-fork state its
  // own index, and under the replay strategy take a full checkpoint here so
  // replay segments never have to reconstruct fork bookkeeping.  The extra
  // bump keeps the checkpoint key distinct from any later acceptance
  // rollback point.
  ++t.interval;
  if (config_.rollback == RollbackStrategy::kReplayFromLog) {
    take_checkpoint(t);
    ++t.interval;
  }

  const sim::Time timeout =
      f.timeout > 0 ? f.timeout : config_.fork_timeout;
  arm_fork_timer(guess, timeout);
}

void SpeculativeProcess::do_join(ThreadCtx& left) {
  do_join_inner(left);
  after_guard_change();
}

void SpeculativeProcess::do_join_inner(ThreadCtx& left) {
  ++stats_.joins;
  const bool safe_join = left.join_safe;
  const bool sequential = !safe_join && !left.join_guess.valid();
  timeline().record({trace::TimelineEntry::Kind::kJoin,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     safe_join    ? "safe site=" + left.join_site
                     : sequential ? "sequential"
                                  : left.join_guess.to_string()});
  {
    obs::Event je = make_event(obs::EventKind::kJoin);
    je.thread = left.index;
    je.interval = left.interval;
    if (!sequential && !safe_join) je.guess = guess_ref(left.join_guess);
    je.detail = sequential ? "sequential" : left.join_site;
    recorder().record(std::move(je));
  }

  if (safe_join) {
    // Nothing was guessed and nothing needs verifying or re-executing: the
    // right thread has been running the true continuation all along.  The
    // caller's after_guard_change() drains the right thread's buffered
    // events (flush order requires this thread terminated first) and
    // re-checks completion.
    left.phase = ThreadCtx::Phase::kTerminated;
    left.has_pending_join = false;
    left.join_safe = false;
    return;
  }

  if (!sequential) cancel_fork_timer(left.join_guess);

  // Feed the predictor caches with the actual values, and verify the
  // guesses (the verifier of section 4.2.5).  Accuracy is recorded even
  // when the guess already died from a timeout or cascade: prediction
  // quality is independent of the guess's fate.
  //
  // Commit-on-commute relaxation: a mismatch on a variable whose VerifyMode
  // proves it dead in the right thread always forgives; a boolean-only
  // variable forgives when guess and actual agree on truthiness (the right
  // thread took the same branches either way).  Raw mismatches still feed
  // the predictor caches and the guess-failed event — prediction quality is
  // a property of the predictor, not of what the verifier tolerates.
  bool value_fault = false;
  std::uint64_t forgiven = 0;
  for (const auto& v : left.join_passed) {
    const csp::Value actual = left.machine.env().get_or(v, csp::Value());
    predictors_.observe(left.join_site, v, actual);
    if (!sequential) {
      const csp::Value& guessed = left.join_guessed.at(v);
      const bool hit = actual == guessed;
      predictors_.record_result(left.join_site, v, hit);
      if (hit) continue;
      csp::VerifyMode mode = csp::VerifyMode::kExact;
      if (config_.commute_verification) {
        auto vm = left.join_verify.find(v);
        if (vm != left.join_verify.end()) mode = vm->second;
      }
      const bool forgive =
          mode == csp::VerifyMode::kDead ||
          (mode == csp::VerifyMode::kBoolean &&
           actual.truthy() == guessed.truthy());
      if (forgive) {
        ++forgiven;
      } else {
        value_fault = true;
      }
    }
  }
  if (!sequential) {
    const bool raw_fault = value_fault || forgiven != 0;
    obs::Event ge = make_event(raw_fault ? obs::EventKind::kGuessFailed
                                         : obs::EventKind::kGuessVerified);
    ge.thread = left.index;
    ge.guess = guess_ref(left.join_guess);
    ge.detail = left.join_site;
    recorder().record(std::move(ge));
    ++live_metrics_.counter(raw_fault ? "guesses_failed"
                                      : "guesses_verified");
    left.join_forgiven = value_fault ? 0 : forgiven;
  }

  if (sequential || left.join_guess_aborted) {
    // Pessimistic release, or the guess died earlier (timeout / cascade):
    // start S2 from the left thread's final state.
    reexecute_right(left);
    return;
  }

  const GuessId guess = left.join_guess;
  const std::uint32_t left_index = left.index;
  // A helper for the fault paths: abort processing may roll the left thread
  // itself back (time fault: it acquired its own guess through a tainted
  // return, Figures 4/5), in which case it resumes S1 and will re-reach the
  // join; only if it is still terminated at the join do we re-execute now.
  auto abort_and_maybe_reexecute = [this, left_index, guess](
                                       const char* reason) {
    abort_own_guess(guess, reason);
    auto it = threads_.find(left_index);
    if (it == threads_.end()) return;
    ThreadCtx& l = it->second;
    if (l.has_pending_join && l.join_guess_aborted && l.machine.done() &&
        threads_.count(l.join_right_index) == 0) {
      reexecute_right(l);
    }
  };

  if (value_fault) {
    ++stats_.aborts_value_fault;
    record_abort(guess, obs::AbortReason::kValueFault, "value-fault");
    abort_and_maybe_reexecute("value-fault");
    return;
  }

  // Time-fault self check: if our own guess is in the guard set at the
  // termination point, S1 causally follows S2 (Figure 4).
  if (left.guard.covers(guess)) {
    ++stats_.aborts_time_fault;
    record_abort(guess, obs::AbortReason::kTimeFault, "time-fault");
    abort_and_maybe_reexecute("time-fault");
    return;
  }

  if (left.guard.empty()) {
    finalize_join_commit(left);
    return;
  }

  // In doubt: publish "guard precedes guess" and wait (section 3.3).
  ++stats_.precedence_sent;
  GuardSet published = left.guard;
  on_precedence_msg(guess, published);  // local CDG update + cycle check
  auto it = threads_.find(left_index);
  if (it == threads_.end()) return;
  ThreadCtx& l = it->second;
  if (l.join_guess_aborted) {
    // The local precedence processing closed a cycle through our guess.
    if (l.machine.done() && threads_.count(l.join_right_index) == 0) {
      reexecute_right(l);
    }
    return;
  }
  distribute_control(ControlKind::kPrecedence, guess, published);
  l.phase = ThreadCtx::Phase::kJoinWait;
  fork_timers_[guess] = runtime_.scheduler().after(
      config_.join_wait_timeout, [this, guess]() {
        fork_timers_.erase(guess);
        on_join_wait_timeout(guess);
      });
}

void SpeculativeProcess::finalize_join_commit(ThreadCtx& left) {
  const GuessId guess = left.join_guess;
  OCSP_CHECK(guess.valid());
  cancel_fork_timer(guess);
  ++stats_.commits;
  {
    obs::Event ce = make_event(obs::EventKind::kCommit);
    ce.thread = left.index;
    ce.guess = guess_ref(guess);
    ce.detail = left.join_site;
    recorder().record(std::move(ce));
  }
  if (left.join_forgiven != 0) {
    // The verifier found mismatched guesses but every one was forgiven by
    // its VerifyMode: this commit exists only because of the relaxation.
    ++stats_.commute_commits;
    stats_.commute_forgiven_vars += left.join_forgiven;
    obs::Event ce = make_event(obs::EventKind::kCommuteCommit);
    ce.thread = left.index;
    ce.guess = guess_ref(guess);
    ce.a = left.join_forgiven;
    ce.detail = left.join_site;
    recorder().record(std::move(ce));
    ++live_metrics_.counter("commute_commits");
    left.join_forgiven = 0;
  }
  site_aborts_[left.join_site] = 0;
  governor_outcome(left.join_site, /*aborted=*/false);
  left.phase = ThreadCtx::Phase::kTerminated;
  left.has_pending_join = false;
  timeline().record({trace::TimelineEntry::Kind::kCommit,
                     runtime_.scheduler().now(), id_, kNoProcess,
                     guess.to_string()});
  commit_guess_local(guess);
  distribute_control(ControlKind::kCommit, guess, {});
}

void SpeculativeProcess::reexecute_right(ThreadCtx& left) {
  const std::uint32_t right_index = left.join_right_index;
  OCSP_CHECK_MSG(threads_.count(right_index) == 0,
                 "re-execution while the right thread is still alive");

  ThreadCtx r;
  r.index = right_index;
  r.interval = 0;
  r.machine = left.join_right_initial;
  // Adopt the left thread's full final state: sequential semantics say S2
  // sees every write S1 made, not only the passed variables.
  r.machine.env() = left.machine.env();
  apply_state_strategy(r.machine);
  // Keep only the still-relevant dependencies of the left thread.
  for (const auto& g : left.guard) {
    if (history_.status(g) == GuessStatus::kUnknown) {
      r.guard.add(g);
      auto rb = left.rollbacks.find(g);
      OCSP_CHECK_MSG(rb != left.rollbacks.end(), "guard without rollback");
      r.rollbacks[g] = rb->second;
      r.cdg.add_node(g);
    }
  }
  r.has_own_guess = false;
  r.created_at = current_index(left);

  left.phase = ThreadCtx::Phase::kTerminated;
  left.has_pending_join = false;

  auto [it, inserted] = threads_.emplace(right_index, std::move(r));
  OCSP_CHECK(inserted);
  max_thread_ = std::max(max_thread_, right_index);
  take_checkpoint(it->second);
  ++it->second.interval;  // keep the creation checkpoint key unique
  schedule_step(right_index);
  flush_logs();
}

void SpeculativeProcess::on_fork_timeout(GuessId guess) {
  if (crashed_) return;  // restart() aborts uncommitted guesses itself
  if (history_.status(guess) != GuessStatus::kUnknown) return;
  // The left thread exceeded its budget for S1 (divergence suspicion,
  // section 3.3): the guess aborts, the left thread keeps running, and S2
  // re-executes pessimistically once S1 eventually completes.
  ++stats_.aborts_timeout;
  record_abort(guess, obs::AbortReason::kTimeout, "timeout");
  abort_own_guess(guess, "timeout");
  after_guard_change();
}

void SpeculativeProcess::on_join_wait_timeout(GuessId guess) {
  if (crashed_) return;  // restart() aborts uncommitted guesses itself
  if (history_.status(guess) != GuessStatus::kUnknown) return;
  ++stats_.aborts_timeout;
  record_abort(guess, obs::AbortReason::kTimeout, "join-wait-timeout");
  abort_own_guess(guess, "join-wait-timeout");
  after_guard_change();
}

}  // namespace ocsp::spec
