// SpeculativeProcess: one CSP process under the optimistic protocol.
//
// Implements section 4.2 of the paper end-to-end:
//   * Fork (4.2.1): split into left (S1) and right (S2 + continuation)
//     threads, guess the passed values, guard the right thread.
//   * Send (4.2.2): tag outgoing data messages with the commit guard set.
//   * Message arrival (4.2.3): orphan rejection, future-thread detection,
//     delivery-choice optimization (fewest new dependencies), checkpointing
//     before each new dependency acquisition.
//   * Receive (4.2.4): deliver to waiting threads.
//   * Join (4.2.5): verifier, COMMIT / ABORT / PRECEDENCE emission.
//   * Commit/Abort/Precedence processing (4.2.6-4.2.8) including CDG cycle
//     detection (time faults) and multi-thread rollback.
//   * Liveness (3.3): left-thread timeouts, join-wait timeouts, and the
//     retry limit L with pessimistic fallback.
//
// A process may host several logical threads (the right-branching fork
// structure); they are cooperatively scheduled on the discrete-event kernel
// and never run concurrently with each other, mirroring the sequential
// process semantics of CSP.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "csp/machine.h"
#include "net/envelope.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/scheduler.h"
#include "speculation/cdg.h"
#include "speculation/config.h"
#include "speculation/context.h"
#include "speculation/guard_set.h"
#include "speculation/guess.h"
#include "speculation/history.h"
#include "speculation/messages.h"
#include "speculation/predictor.h"
#include "speculation/stats.h"
#include "trace/events.h"
#include "trace/timeline.h"
#include "util/rng.h"

namespace ocsp::exec {
class ParallelRuntime;
}  // namespace ocsp::exec

namespace ocsp::spec {

class Runtime;

/// One logical thread of a process.  Copyable: a checkpoint is a copy of
/// the whole ThreadCtx (machine, guards, CDG, rollback map, event log).
struct ThreadCtx {
  enum class Phase {
    kRunning,       ///< machine is ready; a step is (or will be) scheduled
    kAwaitReply,    ///< blocked in a two-way call
    kAwaitMessage,  ///< blocked in a receive
    kAwaitCompute,  ///< burning virtual time
    kJoinWait,      ///< left thread done; waiting for guard to resolve
    kDoneWaitGuard, ///< program finished but guard still non-empty
    kTerminated,    ///< finished for good (committed or superseded)
  };

  std::uint32_t index = 0;
  std::uint32_t interval = 0;
  Phase phase = Phase::kRunning;
  csp::Machine machine;

  GuardSet guard;
  Cdg cdg;
  std::map<GuessId, StateIndex> rollbacks;

  /// Guess guarding this thread's start (right threads only).
  bool has_own_guess = false;
  GuessId own_guess;
  std::string own_site;

  /// Join bookkeeping, set on the thread that executed the fork (the left
  /// thread keeps running S1 and joins when it completes).
  bool has_pending_join = false;
  GuessId join_guess;
  std::uint32_t join_right_index = 0;
  std::string join_site;
  std::vector<std::string> join_passed;
  std::map<std::string, csp::Value> join_guessed;
  /// Per-variable verification relaxation of the forked site
  /// (ForkStmt::verify), honored by the join when
  /// SpecConfig::commute_verification is on.
  std::map<std::string, csp::VerifyMode> join_verify;
  /// Mismatched-but-forgiven variables found by this join's verification;
  /// counted as a commute commit only if the guess actually commits.
  std::uint64_t join_forgiven = 0;
  csp::Machine join_right_initial;  ///< right thread's start machine, for
                                    ///< re-execution after an abort
  bool join_guess_aborted = false;
  /// The pending join belongs to a ForkMode::kSafe fork running the
  /// guard-elided fast path: no guess, nothing to verify, the right thread
  /// is already running unguarded.
  bool join_safe = false;

  /// Outstanding two-way call (phase == kAwaitReply).
  std::int64_t outstanding_reqid = -1;

  /// Logical observable-event log of this thread; events with position
  /// < flushed_count are already in the process's committed log (and, for
  /// external outputs, physically released).
  std::vector<trace::ObservableEvent> event_log;
  std::size_t flushed_count = 0;

  /// Outgoing data messages this thread has produced (calls, sends,
  /// replies).  Used by the replay rollback strategy to suppress the
  /// re-sends a deterministic replay would otherwise duplicate.
  std::uint64_t sent_count = 0;

  /// Dependency acquisitions since the last full checkpoint (replay
  /// strategy's periodic-checkpoint counter).
  std::uint32_t accepts_since_checkpoint = 0;

  /// Virtual nanoseconds of Compute this thread has burned.  Checkpointed
  /// with the thread (a restore rolls it back), replayed replays re-add the
  /// replayed durations — so kill-time `compute_ns` minus restored
  /// `compute_ns` is exactly the compute an abort threw away, which the
  /// profiler's time accounting and per-site scorecards consume via
  /// kWorkDiscarded events.
  sim::Time compute_ns = 0;

  /// Where (in the parent) this thread was created; used to decide which
  /// threads a rollback kills.
  StateIndex created_at;

  /// Virtual time at which this ThreadCtx was snapshotted into the
  /// checkpoint store (meaningful only on checkpoint copies).  The parallel
  /// executor's fossil collector frees checkpoints whose time is below the
  /// GVT-derived speculation floor.
  sim::Time checkpointed_at = 0;
};

class SpeculativeProcess {
 public:
  SpeculativeProcess(ExecContext& runtime, ProcessId id, std::string name,
                     csp::StmtPtr program, csp::Env initial_env,
                     SpecConfig config, util::Rng rng);

  SpeculativeProcess(const SpeculativeProcess&) = delete;
  SpeculativeProcess& operator=(const SpeculativeProcess&) = delete;

  /// Schedule the first step of thread 0.
  void start();

  /// Network delivery handler.
  void on_message(const net::Envelope& env);

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// True once the program ran to completion with an empty guard set.
  bool completed() const { return completed_; }
  sim::Time completion_time() const { return completion_time_; }

  const SpecStats& stats() const { return stats_; }
  const HistoryTable& history() const { return history_; }
  const PredictorState& predictors() const { return predictors_; }

  /// Snapshot of this process's metrics: the SpecStats counters, the live
  /// histograms (speculation depth, rollback distance, cascade depth,
  /// control fan-out, external dwell), guess counters, per-site predictor
  /// accuracy, and the per-process guess_accuracy gauge.
  obs::MetricsRegistry metrics_view() const;

  /// Committed observable events in logical (program) order.
  const std::vector<trace::ObservableEvent>& committed_events() const {
    return committed_log_;
  }

  /// Introspection for tests.
  std::size_t live_thread_count() const;
  const ThreadCtx* thread(std::uint32_t index) const;
  std::uint32_t current_incarnation() const { return incarnation_; }
  bool crashed() const { return crashed_; }
  std::size_t pending_message_count() const { return pending_.size(); }
  std::size_t checkpoint_count() const { return checkpoints_.size(); }
  std::size_t input_log_size() const { return input_log_.size(); }
  /// Env of every retained checkpoint, keyed by state index (deterministic
  /// order; Env copies are O(1)).  Differential tests compare these across
  /// state strategies.
  std::vector<std::pair<StateIndex, csp::Env>> checkpoint_envs() const;

  // ---- GVT fossil collection (parallel executor) --------------------------

  /// Earliest virtual time any still-possible rollback of this process can
  /// restore to: the minimum, over every unresolved guess in any live
  /// thread's rollback map, of the checkpoint time of the restore base
  /// (the exact checkpoint at the rollback target, or the nearest earlier
  /// same-thread checkpoint a replay would rebuild from — the same lookup
  /// restore_thread performs).  kTimeNever when nothing is in doubt.
  /// Checkpoints strictly below the run-wide minimum of this value can
  /// never be restored again and are safe to fossil-collect.
  sim::Time speculation_floor() const;

  /// Free checkpoints taken strictly before `gvt` that no future rollback
  /// can need: replay bases of unresolved rollback targets and the latest
  /// checkpoint of each live thread are always retained.  Returns the
  /// number freed (also counted in stats().checkpoints_fossil_collected).
  std::size_t fossil_collect(sim::Time gvt);

  /// Times of every retained checkpoint (fossil-collection tests).
  std::vector<sim::Time> checkpoint_times() const;

 private:
  friend class Runtime;
  // The parallel executor orchestrates crash/restart and incarnation
  // observation exactly as Runtime does, per shard.
  friend class ocsp::exec::ParallelRuntime;

  // ---- scheduling -----------------------------------------------------
  void schedule_step(std::uint32_t thread_index);
  void run_thread(std::uint32_t thread_index);
  bool handle_effect(ThreadCtx& t, csp::Effect effect);

  // ---- fork / join (4.2.1, 4.2.5) --------------------------------------
  void do_fork(ThreadCtx& t, const csp::ForkStmt& f);
  void do_join(ThreadCtx& left);
  void do_join_inner(ThreadCtx& left);
  void finalize_join_commit(ThreadCtx& left);
  void reexecute_right(ThreadCtx& left);
  void on_fork_timeout(GuessId guess);
  void on_join_wait_timeout(GuessId guess);
  void arm_fork_timer(const GuessId& guess, sim::Time timeout);
  void cancel_fork_timer(const GuessId& guess);

  // ---- sending (4.2.2) --------------------------------------------------
  void send_data(ThreadCtx& t, DataKind kind, const std::string& target_name,
                 std::string op, csp::ValueList args, csp::Value result,
                 std::int64_t reqid);

  // ---- arrival / receive (4.2.3, 4.2.4) ---------------------------------
  void process_arrivals();
  bool try_deliver(const net::Envelope& env);
  void accept_message(ThreadCtx& t, const net::Envelope& env);

  // ---- control plane (4.2.5-4.2.8) --------------------------------------
  void distribute_control(ControlKind kind, const GuessId& subject,
                          const GuardSet& guard);
  void forward_control(ControlKind kind, const GuessId& subject,
                       ProcessId from);
  void on_commit_msg(const GuessId& g);
  void on_abort_msg(const GuessId& g);
  void on_precedence_msg(const GuessId& subject, const GuardSet& guard);
  void commit_guess_local(const GuessId& g);
  void abort_guess_local(const GuessId& g);
  void abort_own_guess(const GuessId& g, const char* reason);
  void after_guard_change();
  /// Roll back every thread depending on a history-aborted guess to a
  /// fixpoint (the body of abort_guess_local, also run after incarnation
  /// observations mark guesses implicitly aborted).
  void rollback_aborted_dependencies();

  // ---- crash / recovery (fault plans) -------------------------------------
  /// Take the process down at the current virtual time: no stepping, no
  /// message processing until restart().  Called by Runtime::crash_process.
  void crash();
  /// Bring the process back up from its last committed state: abort every
  /// uncommitted own guess (bumping the incarnation via the normal cascade
  /// machinery) and resume.  Called by Runtime::restart_process.
  void restart();
  /// Current incarnation tag stamped on outgoing reliable frames.
  net::IncarnationTag incarnation_tag() const {
    return {incarnation_, incarnation_start_};
  }
  /// A reliable frame from `src` carried incarnation `inc` starting at
  /// thread index `start`: implicitly abort the dead incarnations' guesses
  /// without waiting for the explicit ABORT (section 4.2.7's incarnation
  /// rule, piggybacked on the data plane).
  void observe_peer_incarnation(ProcessId src, std::uint32_t inc,
                                std::uint32_t start);

  // ---- adaptive speculation governor --------------------------------------
  /// True when the governor currently has `site` demoted to sequential.
  bool governor_blocks(const std::string& site);
  /// Feed one fork outcome (abort or commit/sequential pass) into the
  /// site's EWMA; demotes / promotes across the hysteresis thresholds.
  void governor_outcome(const std::string& site, bool aborted);

  // ---- state strategy -----------------------------------------------------
  /// Account — and, under StateStrategy::kDeepCopy, materialize — the
  /// state copy that was just made into `copy`.  Under kCow the copy stays
  /// a shared handle and only the byte counters move.
  void apply_state_strategy(csp::Machine& copy);
  /// Bytes materialized when a state copy is restored during rollback.
  std::uint64_t restore_cost_bytes(const csp::Machine& m) const;

  // ---- rollback (4.1.3) ---------------------------------------------------
  void take_checkpoint(const ThreadCtx& t);
  void rollback_to(const StateIndex& target, bool kill_target_thread);
  /// `emit_discard` is false only for a rollback target that is about to be
  /// restored: its discarded compute is the kill-time total minus whatever
  /// the restored checkpoint retains, emitted by rollback_to afterwards.
  void kill_thread(std::uint32_t index, std::vector<GuessId>& own_aborted,
                   bool emit_discard = true);
  void restore_thread(const StateIndex& target);
  /// Replay strategy: reconstruct the thread state at `target` from the
  /// nearest earlier full checkpoint plus the logged inputs.
  ThreadCtx rebuild_by_replay(const StateIndex& checkpoint_key,
                              const StateIndex& target);
  /// Drive a replaying machine until it blocks, suppressing already-
  /// performed side effects.
  void replay_until_blocked(ThreadCtx& t);
  /// Apply one logged input to a replaying thread.
  struct LoggedInput;
  void replay_feed(ThreadCtx& t, const LoggedInput& entry);

  // ---- bookkeeping ---------------------------------------------------------
  StateIndex current_index(const ThreadCtx& t) const;
  /// Discard checkpoints, replay metadata, and logged inputs that no
  /// possible future rollback can reach (everything strictly before the
  /// earliest rollback point of any still-unresolved dependency).  Keeps a
  /// long-running server's speculative state bounded by the window of
  /// in-doubt guesses instead of the run length.
  void gc_resolved_state();
  void record_event(ThreadCtx& t, trace::ObservableEvent event);
  void flush_events(ThreadCtx& t);
  void flush_logs();
  /// A thread's events may enter the committed log only when nothing
  /// speculative guards it AND every lower-index thread has terminated and
  /// fully flushed — committed traces must follow sequential program order.
  /// (Speculative-mode guards imply the second condition; the SAFE fast
  /// path, whose right thread runs unguarded beside the left, does not.)
  bool flush_ready(const ThreadCtx& t) const;
  void check_completion();
  ProcessId resolve(const std::string& name) const;
  trace::Timeline& timeline();

  // ---- observability -------------------------------------------------------
  obs::RunRecorder& recorder();
  /// Event pre-filled with kind, virtual time, process id, incarnation.
  obs::Event make_event(obs::EventKind kind) const;
  static obs::GuessRef guess_ref(const GuessId& g);
  static obs::ControlType obs_control(ControlKind kind);
  /// Record the kAbort event adjacent to the ++stats_.aborts_* increment.
  /// `cause` (when valid) names the aborted guess that triggered this one —
  /// the cascade edge abort attribution walks back to the original
  /// mis-guess; root aborts (value/time fault, timeout) leave it invalid.
  void record_abort(const GuessId& g, obs::AbortReason reason,
                    const char* detail, const GuessId& cause = GuessId{});
  /// Record the compute a killed/rolled-back thread loses.
  void record_work_discarded(const ThreadCtx& t, sim::Time discarded_ns,
                             const GuessId& cause);

  ExecContext& runtime_;
  ProcessId id_;
  std::string name_;
  SpecConfig config_;
  util::Rng rng_;

  std::map<std::uint32_t, ThreadCtx> threads_;  // ascending thread index
  std::uint32_t max_thread_ = 0;
  std::uint32_t incarnation_ = 0;
  /// Thread index at which incarnation_ began (0 for the first); stamped on
  /// reliable frames so receivers can filter dead-incarnation traffic.
  std::uint32_t incarnation_start_ = 0;
  /// Crashed by the fault plan; cleared by restart().
  bool crashed_ = false;

  HistoryTable history_;
  PredictorState predictors_;
  SpecStats stats_;

  /// Histograms and guess counters that need per-event resolution; the
  /// SpecStats counters are joined in by metrics_view().
  obs::MetricsRegistry live_metrics_;
  /// (thread index, event-log position) -> buffering time, feeding the
  /// external-output dwell histogram at release.
  std::map<std::pair<std::uint32_t, std::size_t>, sim::Time>
      external_buffered_at_;

  /// Consecutive own-guess aborts per fork site (liveness limit L).
  std::map<std::string, int> site_aborts_;

  /// Adaptive governor state per fork site (SpecConfig::governor_*).
  struct GovernorSite {
    double ewma = 0.0;
    std::uint64_t samples = 0;
    bool demoted = false;
  };
  std::map<std::string, GovernorSite> governor_;

  /// Guesses created for SAFE-classified sites under the soundness oracle;
  /// a value/time fault on one of these is a classifier bug.
  std::set<GuessId> safe_claimed_;

  /// reqid -> thread index of the caller awaiting the return.
  std::map<std::int64_t, std::uint32_t> outstanding_calls_;
  std::int64_t next_reqid_ = 1;

  /// Messages accepted but not yet deliverable (no eligible waiting thread).
  std::deque<net::Envelope> pending_;

  struct LoggedInput {
    StateIndex at;   ///< receiving thread's state index after acceptance
    StateIndex pre;  ///< state index just before acceptance (rollback point)
    net::Envelope env;
  };  // (declared above for replay_feed)
  std::vector<LoggedInput> input_log_;

  std::map<StateIndex, ThreadCtx> checkpoints_;

  /// Replay strategy bookkeeping, keyed by rollback point (the state index
  /// just before a dependency-introducing acceptance).
  struct ReplayMeta {
    std::uint64_t sent_count = 0;
    std::size_t flushed_count = 0;
    std::int64_t outstanding_reqid = -1;
  };
  std::map<StateIndex, ReplayMeta> replay_meta_;
  bool replaying_ = false;

  /// The aborted guess whose processing is currently driving rollbacks;
  /// threaded into kWorkDiscarded / cascade kAbort events so attribution
  /// can trace collateral damage back to the originating mis-guess.
  GuessId rollback_cause_{};

  /// Fork/join-wait timers keyed by guess (not checkpointed; re-armed).
  std::map<GuessId, sim::Scheduler::Handle> fork_timers_;

  /// Targeted control plane: which processes saw each guess in a tag.
  std::map<GuessId, std::vector<ProcessId>> spread_;
  /// (guess, control-kind) pairs already forwarded (loop prevention).
  std::set<std::pair<GuessId, int>> control_forwarded_;

  std::vector<trace::ObservableEvent> committed_log_;

  bool completed_ = false;
  /// The program body finished (some thread left kDoneWaitGuard); completion
  /// is declared once every thread has terminated, which may happen later
  /// (a SAFE fork's left thread can still be running S1 at that point).
  bool program_finished_ = false;
  sim::Time completion_time_ = 0;
  bool stepping_ = false;             ///< re-entrancy guard for run_thread
  bool in_process_arrivals_ = false;  ///< re-entrancy guard for delivery
  std::map<std::uint32_t, bool> step_scheduled_;
  std::map<std::uint32_t, sim::Scheduler::Handle> compute_timers_;
};

}  // namespace ocsp::spec
