// Message arrival and receive processing (sections 4.2.3 and 4.2.4).
//
// Arriving data messages sit in a pending queue until a thread can accept
// them.  Each delivery attempt re-checks the orphan test (a queued message
// may become an orphan when an abort lands), enforces the future-thread
// rule, and picks the waiting thread that acquires the fewest new
// dependencies.  Accepting a message that introduces new dependencies
// checkpoints the thread first and starts a new interval.
#include "speculation/process.h"
#include "speculation/runtime.h"
#include "util/check.h"
#include "util/logging.h"

namespace ocsp::spec {

void SpeculativeProcess::on_message(const net::Envelope& env) {
  if (crashed_) {
    // Down.  Framed data never reaches this point (the transport parks it);
    // whatever does — control traffic, unframed data — is genuinely lost,
    // exactly like a dead machine's NIC.  Control liveness rests on the
    // blind re-broadcast (SpecConfig::control_retry).
    ++stats_.crash_messages_dropped;
    return;
  }
  if (auto ctl = std::dynamic_pointer_cast<const ControlMessage>(env.payload)) {
    {
      obs::Event ev = make_event(obs::EventKind::kControlReceived);
      ev.peer = env.src;
      ev.guess = guess_ref(ctl->subject);
      ev.control = obs_control(ctl->control);
      ev.msg_id = env.id;
      recorder().record(std::move(ev));
    }
    switch (ctl->control) {
      case ControlKind::kCommit:
        on_commit_msg(ctl->subject);
        break;
      case ControlKind::kAbort:
        on_abort_msg(ctl->subject);
        break;
      case ControlKind::kPrecedence:
        on_precedence_msg(ctl->subject, ctl->guard);
        break;
    }
    // Targeted control plane (4.2.5): the guess's owner only knows its own
    // direct dependents; anyone who propagated the guess onward (recorded
    // at data-send time) must forward the resolution along the same edges.
    if (config_.control == ControlPlane::kTargeted &&
        ctl->control != ControlKind::kPrecedence) {
      forward_control(ctl->control, ctl->subject, env.src);
    }
    after_guard_change();
    return;
  }
  pending_.push_back(env);
  process_arrivals();
}

void SpeculativeProcess::forward_control(ControlKind kind,
                                         const GuessId& subject,
                                         ProcessId from) {
  const auto key = std::pair(subject, static_cast<int>(kind));
  if (!control_forwarded_.insert(key).second) return;  // already forwarded
  auto it = spread_.find(subject);
  if (it == spread_.end()) return;
  auto msg = std::make_shared<ControlMessage>();
  msg->control = kind;
  msg->subject = subject;
  std::uint64_t fanout = 0;
  for (ProcessId dst : it->second) {
    if (dst == id_ || dst == from || dst == subject.owner) continue;
    ++stats_.control_sent;
    ++fanout;
    runtime_.net_send(id_, dst, msg);
  }
  if (fanout > 0) {
    obs::Event ev = make_event(obs::EventKind::kControlSent);
    ev.guess = guess_ref(subject);
    ev.control = obs_control(kind);
    ev.a = fanout;
    ev.detail = "forward";
    recorder().record(std::move(ev));
    obs::control_fanout_hist(live_metrics_).add(static_cast<double>(fanout));
  }
}

void SpeculativeProcess::process_arrivals() {
  // Delivery can trigger aborts and rollbacks that requeue messages and
  // call back into this function; the guard makes the nested call a no-op
  // (the outer loop rescans anyway).
  if (in_process_arrivals_) return;
  in_process_arrivals_ = true;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const net::Envelope env = pending_[i];  // copy: delivery mutates
      const auto msg =
          std::static_pointer_cast<const DataMessage>(env.payload);
      // Orphan test (4.2.3): discard messages from aborted computations.
      if (history_.any_aborted(msg->guard)) {
        ++stats_.orphans_discarded;
        OCSP_DLOG << name_ << ": orphan discarded " << msg->describe();
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        break;  // indices shifted; rescan
      }
      // Remove before delivering: try_deliver may abort/roll back, which
      // requeues other messages and would invalidate any saved position.
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_deliver(env)) {
        progressed = true;
        break;
      }
      // Not deliverable right now; put it back where it was (try_deliver
      // without a delivery does not mutate the queue).
      pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(i), env);
    }
  }
  in_process_arrivals_ = false;
}

bool SpeculativeProcess::try_deliver(const net::Envelope& env) {
  const auto msg = std::static_pointer_cast<const DataMessage>(env.payload);

  // Which of OUR guesses does this message depend on?  A tag mentioning our
  // own future guess means the sender interacted with a speculative thread
  // of ours.
  const GuessId own_in_tag = msg->guard.for_owner(id_);

  if (msg->data_kind == DataKind::kReturn) {
    auto call_it = outstanding_calls_.find(msg->reqid);
    if (call_it == outstanding_calls_.end()) {
      // The caller thread was rolled back; its re-issued call has a fresh
      // reqid and the server will answer that one.  This return is stale.
      ++stats_.orphans_discarded;
      return true;  // consume (drop)
    }
    const std::uint32_t tidx = call_it->second;
    auto th = threads_.find(tidx);
    OCSP_CHECK_MSG(th != threads_.end(), "outstanding call without thread");
    ThreadCtx& t = th->second;
    if (t.phase != ThreadCtx::Phase::kAwaitReply ||
        t.outstanding_reqid != msg->reqid) {
      return false;  // should not happen, but stay safe: keep queued
    }
    // Future-thread detection (4.2.3): a return that depends on one of our
    // later speculative threads would make that thread causally precede
    // itself.  Abort the future guess; the return then becomes an orphan
    // (the server will roll back and re-reply untainted).
    if (own_in_tag.valid() && own_in_tag.incarnation == incarnation_ &&
        own_in_tag.index > tidx &&
        history_.status(own_in_tag) == GuessStatus::kUnknown) {
      ++stats_.aborts_time_fault;
      record_abort(own_in_tag, obs::AbortReason::kTimeFault,
                   "future-thread-return");
      abort_own_guess(own_in_tag, "future-thread-return");
      after_guard_change();
      ++stats_.orphans_discarded;
      return true;  // consume: it now depends on an aborted guess
    }
    accept_message(t, env);
    t.machine.resume_with_value(msg->result);
    t.phase = ThreadCtx::Phase::kRunning;
    t.outstanding_reqid = -1;
    outstanding_calls_.erase(msg->reqid);
    trace::ObservableEvent ev;
    ev.kind = trace::ObservableEvent::Kind::kCallReturn;
    ev.process = id_;
    ev.peer = env.src;
    ev.data = msg->result;
    record_event(t, std::move(ev));
    schedule_step(t.index);
    return true;
  }

  // Requests and one-way sends go to a thread blocked in Receive.  Eligible
  // threads must not logically precede a guess the message depends on.
  ThreadCtx* best = nullptr;
  std::size_t best_new_deps = 0;
  for (auto& [idx, t] : threads_) {
    if (t.phase != ThreadCtx::Phase::kAwaitMessage) continue;
    if (own_in_tag.valid() && own_in_tag.incarnation == incarnation_ &&
        idx < own_in_tag.index) {
      continue;  // would make our own guess depend on itself
    }
    const std::size_t new_deps = [&] {
      std::size_t n = 0;
      for (const auto& g : msg->guard.minus(t.guard)) {
        if (history_.status(g) == GuessStatus::kUnknown) ++n;
      }
      return n;
    }();
    // Minimize new dependencies; tie-break on the earliest thread.
    if (best == nullptr || new_deps < best_new_deps) {
      best = &t;
      best_new_deps = new_deps;
    }
  }
  if (best == nullptr) return false;

  ThreadCtx& t = *best;
  accept_message(t, env);
  t.machine.deliver(msg->op, msg->args, static_cast<std::int64_t>(env.src),
                    msg->reqid,
                    /*is_call=*/msg->data_kind == DataKind::kCall);
  t.phase = ThreadCtx::Phase::kRunning;
  trace::ObservableEvent ev;
  ev.kind = trace::ObservableEvent::Kind::kReceive;
  ev.process = id_;
  ev.peer = env.src;
  ev.op = msg->op;
  ev.data = csp::Value(msg->args);
  record_event(t, std::move(ev));
  schedule_step(t.index);
  return true;
}

void SpeculativeProcess::accept_message(ThreadCtx& t,
                                        const net::Envelope& env) {
  const auto msg = std::static_pointer_cast<const DataMessage>(env.payload);

  // New dependencies = tag members not covered locally and not already
  // resolved (a committed guess is no dependency at all).
  std::vector<GuessId> newguards;
  for (const auto& g : msg->guard.minus(t.guard)) {
    if (history_.status(g) == GuessStatus::kUnknown) newguards.push_back(g);
  }

  // The pre-acceptance state index is the rollback point if any of the new
  // guesses aborts (4.1.3).  Intervals advance on *every* acceptance so
  // state indexes identify acceptances uniquely (which the replay strategy
  // depends on); checkpoints/metadata are only taken for the acceptances
  // that actually introduce dependencies.
  OCSP_CHECK_MSG(!replaying_, "accept_message during replay");
  const StateIndex rollback_point = current_index(t);
  if (!newguards.empty()) {
    if (config_.rollback == RollbackStrategy::kCheckpointEveryInterval ||
        ++t.accepts_since_checkpoint >=
            static_cast<std::uint32_t>(
                std::max(1, config_.replay_checkpoint_every))) {
      take_checkpoint(t);
      t.accepts_since_checkpoint = 0;
    } else {
      replay_meta_[rollback_point] =
          ReplayMeta{t.sent_count, t.flushed_count, t.outstanding_reqid};
    }
  }
  ++t.interval;
  for (const auto& g : newguards) {
    t.guard.add(g);
    t.cdg.add_node(g);
    t.rollbacks[g] = rollback_point;
    history_.peer(g.owner).set_status(g, GuessStatus::kUnknown);
  }
  if (!newguards.empty()) {
    obs::speculation_depth_hist(live_metrics_)
        .add(static_cast<double>(t.guard.size()));
  }

  input_log_.push_back(LoggedInput{current_index(t), rollback_point, env});
  timeline().record({trace::TimelineEntry::Kind::kMsgDeliver,
                     env.delivered_at, id_, env.src, msg->describe()});
}

}  // namespace ocsp::spec
