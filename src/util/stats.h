// Statistics accumulators used by the benchmark harness and runtime counters.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ocsp::util {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains every sample; supports exact percentiles.  Use for bench series
/// where sample counts are modest (<= a few million).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }
  double percentile(double p);  ///< p in [0,100]; 0 if empty.
  double median() { return percentile(50.0); }
  double mean() const;

 private:
  std::vector<double> values_;
  bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// end buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// True when `other` covers the same range with the same bucket count —
  /// the precondition for merge().
  bool same_shape(const Histogram& other) const;

  /// Accumulate another histogram's counts.  CHECKs same_shape().
  void merge(const Histogram& other);

  /// Approximate percentile (p in [0,100]) by linear interpolation inside
  /// the bucket containing the target rank; 0 if empty.  Exact percentiles
  /// need `Samples`; this is the summary companion for fixed-bucket series.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  /// Render a summary line (total, p50/p99/p999) followed by one
  /// "[lo, hi)  count" line per non-empty bucket.
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ocsp::util
