#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace ocsp::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already emitted the separator
  }
  if (!stack_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_.push_back('o');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OCSP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o',
                 "end_object without matching begin_object");
  OCSP_CHECK_MSG(!pending_key_, "object key without a value");
  out_ += '}';
  stack_.pop_back();
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_.push_back('a');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OCSP_CHECK_MSG(!stack_.empty() && stack_.back() == 'a',
                 "end_array without matching begin_array");
  out_ += ']';
  stack_.pop_back();
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  OCSP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o',
                 "key() outside an object");
  OCSP_CHECK_MSG(!pending_key_, "two keys in a row");
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  OCSP_CHECK_MSG(stack_.empty(), "unclosed JSON container");
  return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  JsonValue fail() {
    failed = true;
    return {};
  }

  JsonValue parse_string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    ++pos;  // opening quote
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\') {
        if (pos + 1 >= text.size()) return fail();
        char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case '/':
            v.string += '/';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 'r':
            v.string += '\r';
            break;
          case 't':
            v.string += '\t';
            break;
          case 'b':
            v.string += '\b';
            break;
          case 'f':
            v.string += '\f';
            break;
          case 'u': {
            if (pos + 4 > text.size()) return fail();
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail();
              }
            }
            pos += 4;
            // UTF-8 encode (no surrogate-pair handling; the exporters only
            // escape control characters).
            if (code < 0x80) {
              v.string += static_cast<char>(code);
            } else if (code < 0x800) {
              v.string += static_cast<char>(0xC0 | (code >> 6));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              v.string += static_cast<char>(0xE0 | (code >> 12));
              v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              v.string += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail();
        }
      } else {
        v.string += c;
        ++pos;
      }
    }
    if (pos >= text.size()) return fail();
    ++pos;  // closing quote
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      eat_digits();
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      eat_digits();
    }
    if (!digits) return fail();
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                           nullptr);
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > 256) return fail();
    skip_ws();
    if (pos >= text.size()) return fail();
    char c = text[pos];
    if (c == '{') {
      ++pos;
      JsonValue v;
      v.type = JsonValue::Type::kObject;
      skip_ws();
      if (eat('}')) return v;
      for (;;) {
        skip_ws();
        if (pos >= text.size() || text[pos] != '"') return fail();
        JsonValue k = parse_string();
        if (failed) return {};
        if (!eat(':')) return fail();
        JsonValue val = parse_value(depth + 1);
        if (failed) return {};
        v.object.emplace(std::move(k.string), std::move(val));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return fail();
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue v;
      v.type = JsonValue::Type::kArray;
      skip_ws();
      if (eat(']')) return v;
      for (;;) {
        JsonValue val = parse_value(depth + 1);
        if (failed) return {};
        v.array.push_back(std::move(val));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return fail();
      }
    }
    if (c == '"') return parse_string();
    if (literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (literal("null")) return {};
    return parse_number();
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parse_value(0);
  if (p.failed) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace ocsp::util
