// Deterministic random number generation.
//
// Every source of randomness in the library flows through Rng so that a run
// is a pure function of its seeds.  The engine is xoshiro256** seeded via
// splitmix64; it is small enough to checkpoint by value, which matters
// because a speculative rollback must also roll back the process's RNG
// (otherwise replayed computations would diverge from the original).
#pragma once

#include <cstdint>

namespace ocsp::util {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine.  Copyable, comparable, 32 bytes of state.
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() : Rng(kDefaultSeed) {}
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Derive an independent child stream (e.g. one per process).
  Rng split();

  friend bool operator==(const Rng&, const Rng&) = default;

 private:
  static constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ull;
  std::uint64_t s_[4];
};

}  // namespace ocsp::util
