// Minimal leveled logger.
//
// Logging is off by default (level = Warn) so tests and benchmarks stay
// quiet; protocol debugging flips the level to Debug and gets a full
// message-by-message account of guard propagation, forks, and rollbacks.
#pragma once

#include <sstream>
#include <string>

namespace ocsp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line (appends '\n').  Thread-safe via a single mutex.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct NullLog {
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail
}  // namespace ocsp::util

#define OCSP_LOG(level)                                        \
  if (::ocsp::util::LogLevel::level < ::ocsp::util::log_level()) \
    ;                                                          \
  else                                                         \
    ::ocsp::util::detail::LogMessage(::ocsp::util::LogLevel::level)

#define OCSP_DLOG OCSP_LOG(kDebug)
#define OCSP_ILOG OCSP_LOG(kInfo)
#define OCSP_WLOG OCSP_LOG(kWarn)
#define OCSP_ELOG OCSP_LOG(kError)
