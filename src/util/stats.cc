#include "util/stats.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace ocsp::util {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::percentile(double p) {
  OCSP_CHECK(p >= 0.0 && p <= 100.0);
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  OCSP_CHECK(hi > lo);
  OCSP_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double pos = (x - lo_) / span * static_cast<double>(counts_.size());
  std::size_t i;
  if (pos < 0) {
    i = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(pos);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

bool Histogram::same_shape(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  OCSP_CHECK_MSG(same_shape(other), "Histogram::merge shape mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::percentile(double p) const {
  OCSP_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  // Target rank in [0, total]; walk buckets until the cumulative count
  // reaches it, then interpolate linearly within the bucket.  Out-of-range
  // samples were clamped into the end buckets at add() time, so the result
  // is bounded by [lo_, hi_].
  const double rank = p / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= rank) {
      const double b_lo = bucket_lo(i);
      const double b_hi = i + 1 == counts_.size() ? hi_ : bucket_lo(i + 1);
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (rank - before) / static_cast<double>(counts_[i]);
      return b_lo + (b_hi - b_lo) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return hi_;
}

std::string Histogram::to_string() const {
  std::string out;
  char line[96];
  if (total_ > 0) {
    std::snprintf(line, sizeof line,
                  "total=%llu p50=%g p99=%g p999=%g\n",
                  static_cast<unsigned long long>(total_), p50(), p99(),
                  p999());
    out += line;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double b_lo = bucket_lo(i);
    const double b_hi = i + 1 == counts_.size() ? hi_ : bucket_lo(i + 1);
    std::snprintf(line, sizeof line, "[%g, %g)  %llu\n", b_lo, b_hi,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  if (out.empty()) out = "(empty)\n";
  return out;
}

}  // namespace ocsp::util
