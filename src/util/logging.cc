#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ocsp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  std::scoped_lock lock(g_mutex);
  // Warnings and errors go to stderr so they survive stdout redirection of
  // report output; debug/info chatter stays on stdout.
  std::FILE* out = level >= LogLevel::kWarn ? stderr : stdout;
  std::fprintf(out, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace ocsp::util
