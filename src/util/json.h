// Dependency-free JSON support for the observability exporters.
//
// JsonWriter is a streaming writer with correct string escaping and
// nesting checks; exporters use it to emit Chrome trace-event files and
// metrics snapshots without pulling in a third-party library.  The parser
// half (JsonValue / json_parse) exists so tests can round-trip exported
// files and assert structure instead of string-matching.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ocsp::util {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming JSON writer.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("n").value(3);
///   w.key("xs").begin_array().value(1.5).value("two").end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// The finished document.  CHECKs that every container was closed.
  const std::string& str() const;

 private:
  void comma();

  std::string out_;
  /// One frame per open container: 'o' (object) / 'a' (array), and whether
  /// a value has been emitted at the current level (comma needed).
  std::vector<char> stack_;
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

/// Parsed JSON document.  Numbers are stored as double (sufficient for the
/// exporters' 53-bit-safe values); objects keep key order via std::map.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parse a complete JSON document; std::nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace ocsp::util
