// Checked assertions that stay on in release builds.
//
// Protocol invariants (guard-set consistency, CDG acyclicity after abort,
// rollback-point existence) are cheap to test relative to simulated work,
// so we keep them enabled in all build types.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ocsp::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "OCSP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace ocsp::detail

#define OCSP_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ocsp::detail::check_failed(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define OCSP_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::ocsp::detail::check_failed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                                  \
  } while (0)
