#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace ocsp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OCSP_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  OCSP_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_number(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace ocsp::util
