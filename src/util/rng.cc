#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace ocsp::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OCSP_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  OCSP_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  OCSP_CHECK(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next() ^ 0xa0761d6478bd642full); }

}  // namespace ocsp::util
