// ASCII table printer for the benchmark harness.
//
// Each bench binary reproduces one paper figure/claim and prints its series
// as an aligned table before google-benchmark's own output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ocsp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with operator<<.
  template <typename... Args>
  void row(const Args&... args) {
    add_row({to_cell(args)...});
  }

  /// Render with column alignment; includes a header separator.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return format_number(static_cast<double>(v));
  }
  static std::string format_number(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ocsp::util
