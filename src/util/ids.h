// Common identifier types shared by every layer of the library.
#pragma once

#include <cstdint>

namespace ocsp {

/// Identifies a process (an independently executing CSP entity).
/// Process ids are assigned densely by the Runtime starting at 0.
using ProcessId = std::uint32_t;

/// Sentinel meaning "no process".
inline constexpr ProcessId kNoProcess = ~ProcessId{0};

/// Globally unique message identifier, assigned by the network at send time.
using MsgId = std::uint64_t;

}  // namespace ocsp
