// Sorted-vector set: cache-friendly for the small sets that dominate the
// protocol (commit guard sets typically hold one guess per peer process).
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace ocsp::util {

template <typename T, typename Compare = std::less<T>>
class FlatSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;

  FlatSet() = default;
  FlatSet(std::initializer_list<T> init) {
    for (const T& v : init) insert(v);
  }

  bool insert(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value, cmp_);
    if (it != items_.end() && !cmp_(value, *it)) return false;
    items_.insert(it, value);
    return true;
  }

  bool erase(const T& value) {
    auto it = std::lower_bound(items_.begin(), items_.end(), value, cmp_);
    if (it == items_.end() || cmp_(value, *it)) return false;
    items_.erase(it);
    return true;
  }

  bool contains(const T& value) const {
    return std::binary_search(items_.begin(), items_.end(), value, cmp_);
  }

  /// Find the element equal to `value` under the comparator, or end().
  const_iterator find(const T& value) const {
    auto it = std::lower_bound(items_.begin(), items_.end(), value, cmp_);
    if (it != items_.end() && !cmp_(value, *it)) return it;
    return items_.end();
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.items_ == b.items_;
  }

 private:
  std::vector<T> items_;
  Compare cmp_{};
};

}  // namespace ocsp::util
