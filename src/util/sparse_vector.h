// Sparse vector with a default value for missing elements.
//
// Section 4.1.5 of the paper: "Since most guesses are assumed to commit,
// this should be implemented as a sparse vector with missing elements
// assumed to be commits."  Commit histories store only the exceptions
// (aborted / unknown guesses); everything else reads back as the default.
#pragma once

#include <cstddef>
#include <map>

namespace ocsp::util {

template <typename T>
class SparseVector {
 public:
  explicit SparseVector(T default_value) : default_(std::move(default_value)) {}

  /// Read element i; returns the default when no explicit entry exists.
  const T& get(std::size_t i) const {
    auto it = entries_.find(i);
    return it == entries_.end() ? default_ : it->second;
  }

  /// Write element i.  Writing the default erases the explicit entry so the
  /// structure stays sparse under commit-heavy workloads.
  void set(std::size_t i, T value) {
    if (value == default_) {
      entries_.erase(i);
    } else {
      entries_[i] = std::move(value);
    }
  }

  bool has_explicit(std::size_t i) const { return entries_.count(i) > 0; }

  /// Number of non-default entries currently stored.
  std::size_t explicit_count() const { return entries_.size(); }

  const T& default_value() const { return default_; }

  /// Iterate explicit (index, value) pairs in index order.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  T default_;
  std::map<std::size_t, T> entries_;
};

}  // namespace ocsp::util
