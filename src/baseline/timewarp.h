// A compact Time Warp engine (Jefferson, "Virtual Time") for the related-
// work comparison of section 5.
//
// The paper contrasts its dynamically-determined partial order with Time
// Warp's single, totally ordered global virtual time: under Time Warp,
// "if two clients call a server then the server must process the calls in
// the total order, or else roll back" even when the clients are causally
// unrelated.  This engine implements the classic machinery — optimistic
// event processing, state saving, stragglers, rollback, antimessages —
// over application-assigned virtual receive times, so the benchmark can
// count the rollbacks the total order forces on a shared-server workload
// and compare them with the (zero) rollbacks the OCSP protocol performs on
// the same workload.
//
// Wall-clock skew is modelled by per-link delivery delays measured in
// engine rounds: a message sent in round r becomes visible to its
// destination in round r + delay, which is what makes stragglers possible
// in a sequential simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "csp/env.h"
#include "csp/value.h"
#include "sim/time.h"

namespace ocsp::baseline::tw {

using LpId = int;

struct Event {
  sim::Time recv_time = 0;  ///< virtual receive time (total order key)
  sim::Time send_time = 0;
  std::uint64_t id = 0;     ///< pairs a message with its antimessage
  LpId src = -1;
  LpId dst = -1;
  std::string op;
  csp::Value data;
  bool anti = false;
};

/// An outgoing message produced by a handler: delivered to `dst` at
/// virtual time `now + vt_delay`.
struct Emit {
  LpId dst = -1;
  sim::Time vt_delay = 1;
  std::string op;
  csp::Value data;
};

/// Handler: mutate the LP state for one event and return messages to send.
using Handler =
    std::function<std::vector<Emit>(csp::Env& state, const Event& event)>;

struct TimeWarpStats {
  std::uint64_t events_processed = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t events_rolled_back = 0;
  std::uint64_t antimessages_sent = 0;
  std::uint64_t state_saves = 0;
};

class Engine {
 public:
  /// `wall_delay_rounds`: engine rounds before a sent message becomes
  /// visible at its destination (per-LP-pair overrides available).
  explicit Engine(int default_wall_delay_rounds = 1);

  LpId add_lp(std::string name, Handler handler, csp::Env initial_state = {});

  void set_wall_delay(LpId src, LpId dst, int rounds);

  /// Inject an initial event (visible immediately).
  void inject(LpId dst, sim::Time recv_time, std::string op, csp::Value data);

  /// Round-robin the LPs until no work remains (or the round limit hits).
  /// Returns true if the run drained normally.
  bool run(std::uint64_t max_rounds = 1u << 22);

  const TimeWarpStats& stats() const { return stats_; }
  const csp::Env& state_of(LpId id) const;
  sim::Time lvt_of(LpId id) const;
  /// Global virtual time: minimum of LP LVTs and in-flight send times.
  sim::Time gvt() const;

 private:
  struct Lp {
    std::string name;
    Handler handler;
    csp::Env state;
    sim::Time lvt = -1;
    /// Processed events (ascending recv_time) with pre-state snapshots and
    /// the ids of messages each one emitted.
    struct Processed {
      Event event;
      csp::Env pre_state;
      std::vector<Event> sent;  ///< copies, for antimessage generation
    };
    std::vector<Processed> processed;
    /// Pending input events ordered by (recv_time, id).
    std::vector<Event> pending;
  };

  struct InFlight {
    std::uint64_t visible_round;
    Event event;
  };

  void deliver_visible();
  void enqueue(Lp& lp, const Event& event);
  void rollback(Lp& lp, sim::Time to_before, std::uint64_t straggler_id);
  bool step_lp(Lp& lp);
  void send(const Event& event);

  int default_delay_;
  std::map<std::pair<LpId, LpId>, int> delays_;
  std::vector<Lp> lps_;
  std::vector<InFlight> in_flight_;
  std::uint64_t round_ = 0;
  std::uint64_t next_id_ = 1;
  TimeWarpStats stats_;
};

}  // namespace ocsp::baseline::tw
