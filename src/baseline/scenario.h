// Scenario harness: run the same program set optimistically and
// pessimistically and compare.
//
// The pessimistic baseline is not a separate engine: it is the identical
// runtime with speculation disabled, which executes every fork sequentially
// (left thread, then right thread seeded with the left's final state).
// This guarantees the two runs differ only in the protocol under test,
// which is exactly what Theorem 1's trace comparison and every benchmark's
// speedup column need.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "csp/env.h"
#include "csp/program.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "speculation/runtime.h"
#include "trace/events.h"

namespace ocsp::baseline {

struct ScenarioProcess {
  std::string name;
  csp::StmtPtr program;
  csp::Env env;
  /// Declared commutativity summaries for this process *as a target*
  /// (analysis-side only: consumed by analysis::build_commute_context;
  /// the runtime never reads them).  Empty means "infer from the program".
  csp::CommDecls commute;
};

struct Scenario {
  std::vector<ScenarioProcess> processes;
  spec::RuntimeOptions options;

  /// Per-pair link overrides applied after construction.
  struct LinkOverride {
    std::string src;
    std::string dst;
    net::LinkConfig config;
  };
  std::vector<LinkOverride> links;

  void add(std::string name, csp::StmtPtr program, csp::Env env = {},
           csp::CommDecls commute = {});
};

struct RunResult {
  sim::Time finished_at = 0;        ///< virtual time when the run drained
  sim::Time last_completion = 0;    ///< latest client completion time
  bool all_completed = false;
  spec::SpecStats stats;
  trace::CommittedTrace trace;
  net::NetworkStats network;
  std::size_t timeline_rollbacks = 0;

  /// Merged run-wide metrics snapshot (counters, gauges, histograms).
  obs::MetricsRegistry metrics;
  /// Structured event log of the run; survives the runtime's teardown so
  /// exporters (chrome_trace_json) can run on the result.
  std::shared_ptr<obs::RunRecorder> recorder;
  /// Process names indexed by ProcessId, for trace export.
  std::vector<std::string> process_names;
};

/// Build a runtime for the scenario; `speculation` toggles the protocol.
std::unique_ptr<spec::Runtime> make_runtime(const Scenario& scenario,
                                            bool speculation);

/// Run to completion (or deadline) and collect the results.
RunResult run_scenario(const Scenario& scenario, bool speculation,
                       sim::Time deadline = sim::kTimeNever);

}  // namespace ocsp::baseline
