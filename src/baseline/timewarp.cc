#include "baseline/timewarp.h"

#include <algorithm>

#include "util/check.h"

namespace ocsp::baseline::tw {

Engine::Engine(int default_wall_delay_rounds)
    : default_delay_(default_wall_delay_rounds) {
  OCSP_CHECK(default_wall_delay_rounds >= 0);
}

LpId Engine::add_lp(std::string name, Handler handler,
                    csp::Env initial_state) {
  OCSP_CHECK(handler != nullptr);
  Lp lp;
  lp.name = std::move(name);
  lp.handler = std::move(handler);
  lp.state = std::move(initial_state);
  lps_.push_back(std::move(lp));
  return static_cast<LpId>(lps_.size() - 1);
}

void Engine::set_wall_delay(LpId src, LpId dst, int rounds) {
  OCSP_CHECK(rounds >= 0);
  delays_[{src, dst}] = rounds;
}

void Engine::inject(LpId dst, sim::Time recv_time, std::string op,
                    csp::Value data) {
  Event e;
  e.recv_time = recv_time;
  e.send_time = 0;
  e.id = next_id_++;
  e.dst = dst;
  e.op = std::move(op);
  e.data = std::move(data);
  OCSP_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < lps_.size());
  enqueue(lps_[static_cast<std::size_t>(dst)], e);
}

void Engine::send(const Event& event) {
  auto it = delays_.find({event.src, event.dst});
  const int delay = it == delays_.end() ? default_delay_ : it->second;
  in_flight_.push_back(
      InFlight{round_ + static_cast<std::uint64_t>(delay), event});
}

void Engine::deliver_visible() {
  std::vector<InFlight> later;
  later.reserve(in_flight_.size());
  for (auto& f : in_flight_) {
    if (f.visible_round <= round_) {
      Lp& lp = lps_[static_cast<std::size_t>(f.event.dst)];
      enqueue(lp, f.event);
    } else {
      later.push_back(std::move(f));
    }
  }
  in_flight_ = std::move(later);
}

void Engine::enqueue(Lp& lp, const Event& event) {
  if (event.anti) {
    // Annihilate with the matching positive message, wherever it is.
    auto pending_it =
        std::find_if(lp.pending.begin(), lp.pending.end(),
                     [&](const Event& e) { return e.id == event.id; });
    if (pending_it != lp.pending.end()) {
      lp.pending.erase(pending_it);
      return;
    }
    auto proc_it = std::find_if(
        lp.processed.begin(), lp.processed.end(),
        [&](const Lp::Processed& p) { return p.event.id == event.id; });
    if (proc_it != lp.processed.end()) {
      // The positive copy was already processed: straggler annihilation —
      // roll back to just before it, then drop it.
      rollback(lp, proc_it->event.recv_time, event.id);
      auto again =
          std::find_if(lp.pending.begin(), lp.pending.end(),
                       [&](const Event& e) { return e.id == event.id; });
      OCSP_CHECK(again != lp.pending.end());
      lp.pending.erase(again);
      return;
    }
    // Antimessage beat the message: remember it to annihilate on arrival.
    lp.pending.push_back(event);
    return;
  }
  // Positive message: check for a waiting antimessage.
  auto anti_it = std::find_if(
      lp.pending.begin(), lp.pending.end(),
      [&](const Event& e) { return e.anti && e.id == event.id; });
  if (anti_it != lp.pending.end()) {
    lp.pending.erase(anti_it);
    return;
  }
  if (event.recv_time <= lp.lvt) {
    // Straggler: roll back to before its receive time.
    rollback(lp, event.recv_time, event.id);
  }
  lp.pending.push_back(event);
  std::sort(lp.pending.begin(), lp.pending.end(),
            [](const Event& a, const Event& b) {
              if (a.recv_time != b.recv_time) return a.recv_time < b.recv_time;
              return a.id < b.id;
            });
}

void Engine::rollback(Lp& lp, sim::Time to_before, std::uint64_t) {
  ++stats_.rollbacks;
  // Pop processed events with recv_time >= to_before, newest first:
  // restore the oldest popped pre-state, requeue their events, and send
  // antimessages for everything they emitted.
  bool restored_any = false;
  csp::Env restore;
  while (!lp.processed.empty() &&
         lp.processed.back().event.recv_time >= to_before) {
    Lp::Processed p = std::move(lp.processed.back());
    lp.processed.pop_back();
    ++stats_.events_rolled_back;
    for (const Event& sent : p.sent) {
      Event anti = sent;
      anti.anti = true;
      ++stats_.antimessages_sent;
      send(anti);
    }
    lp.pending.push_back(p.event);
    restore = std::move(p.pre_state);
    restored_any = true;
  }
  if (restored_any) {
    lp.state = std::move(restore);
  }
  lp.lvt = lp.processed.empty() ? -1 : lp.processed.back().event.recv_time;
  std::sort(lp.pending.begin(), lp.pending.end(),
            [](const Event& a, const Event& b) {
              if (a.recv_time != b.recv_time) return a.recv_time < b.recv_time;
              return a.id < b.id;
            });
}

bool Engine::step_lp(Lp& lp) {
  // Skip any orphaned antimessages waiting for positives (they cannot be
  // processed); process the earliest positive pending event.
  auto it = std::find_if(lp.pending.begin(), lp.pending.end(),
                         [](const Event& e) { return !e.anti; });
  if (it == lp.pending.end()) return false;
  Event event = *it;
  lp.pending.erase(it);

  ++stats_.state_saves;
  Lp::Processed record;
  record.event = event;
  record.pre_state = lp.state;

  ++stats_.events_processed;
  std::vector<Emit> emits = lp.handler(lp.state, event);
  lp.lvt = event.recv_time;
  for (auto& emit : emits) {
    Event out;
    out.recv_time = event.recv_time + std::max<sim::Time>(1, emit.vt_delay);
    out.send_time = event.recv_time;
    out.id = next_id_++;
    out.src = static_cast<LpId>(&lp - lps_.data());
    out.dst = emit.dst;
    out.op = std::move(emit.op);
    out.data = std::move(emit.data);
    record.sent.push_back(out);
    send(out);
  }
  lp.processed.push_back(std::move(record));
  return true;
}

bool Engine::run(std::uint64_t max_rounds) {
  for (; round_ < max_rounds; ++round_) {
    deliver_visible();
    bool any = false;
    for (auto& lp : lps_) any |= step_lp(lp);
    if (!any && in_flight_.empty()) return true;
    if (!any) continue;  // wait for in-flight messages to become visible
  }
  return false;
}

const csp::Env& Engine::state_of(LpId id) const {
  OCSP_CHECK(id >= 0 && static_cast<std::size_t>(id) < lps_.size());
  return lps_[static_cast<std::size_t>(id)].state;
}

sim::Time Engine::lvt_of(LpId id) const {
  OCSP_CHECK(id >= 0 && static_cast<std::size_t>(id) < lps_.size());
  return lps_[static_cast<std::size_t>(id)].lvt;
}

sim::Time Engine::gvt() const {
  sim::Time g = sim::kTimeNever;
  for (const auto& lp : lps_) {
    for (const auto& e : lp.pending) g = std::min(g, e.recv_time);
  }
  for (const auto& f : in_flight_) g = std::min(g, f.event.recv_time);
  return g;
}

}  // namespace ocsp::baseline::tw
