#include "baseline/scenario.h"

namespace ocsp::baseline {

void Scenario::add(std::string name, csp::StmtPtr program, csp::Env env,
                   csp::CommDecls commute) {
  processes.push_back(ScenarioProcess{std::move(name), std::move(program),
                                      std::move(env), std::move(commute)});
}

std::unique_ptr<spec::Runtime> make_runtime(const Scenario& scenario,
                                            bool speculation) {
  spec::RuntimeOptions options = scenario.options;
  options.spec.speculation_enabled = speculation;
  auto rt = std::make_unique<spec::Runtime>(options);
  for (const auto& p : scenario.processes) {
    rt->add_process(p.name, p.program, p.env);
  }
  for (const auto& link : scenario.links) {
    rt->network().set_link(rt->find(link.src), rt->find(link.dst),
                           link.config);
  }
  return rt;
}

RunResult run_scenario(const Scenario& scenario, bool speculation,
                       sim::Time deadline) {
  auto rt = make_runtime(scenario, speculation);
  RunResult result;
  result.finished_at = rt->run(deadline);
  result.last_completion = rt->last_completion_time();
  result.all_completed = rt->all_clients_completed();
  result.stats = rt->total_stats();
  result.trace = rt->committed_trace();
  result.network = rt->network().stats();
  result.timeline_rollbacks =
      rt->timeline().count(trace::TimelineEntry::Kind::kRollback);
  result.metrics = rt->metrics();
  result.recorder = rt->shared_recorder();
  result.process_names = rt->process_names();
  return result;
}

}  // namespace ocsp::baseline
