#include "sim/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ocsp::sim {

Scheduler::Handle Scheduler::at(Time t, Callback cb) {
  return at(t, kDefaultPrio, std::move(cb));
}

Scheduler::Handle Scheduler::at(Time t, std::uint64_t prio, Callback cb) {
  OCSP_CHECK_MSG(t >= now_, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, prio, seq, std::move(cb)});
  pending_seqs_.insert(seq);
  peak_pending_ = std::max(peak_pending_, pending_seqs_.size());
  return Handle{seq};
}

Scheduler::Handle Scheduler::after(Time delay, Callback cb) {
  OCSP_CHECK(delay >= 0);
  return at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(Handle h) {
  if (!h.valid()) return false;
  // Entries stay in the heap; removal from pending_seqs_ makes pop skip them.
  return pending_seqs_.erase(h.seq) > 0;
}

void Scheduler::drop_cancelled_top() {
  while (!queue_.empty() && pending_seqs_.count(queue_.top().seq) == 0) {
    queue_.pop();
  }
}

bool Scheduler::pop_and_fire() {
  drop_cancelled_top();
  if (queue_.empty()) return false;
  Entry top = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  OCSP_CHECK(top.when >= now_);
  now_ = top.when;
  last_fired_ = top.when;
  pending_seqs_.erase(top.seq);
  ++fired_count_;
  top.cb();
  return true;
}

bool Scheduler::step() { return pop_and_fire(); }

Time Scheduler::next_time() {
  drop_cancelled_top();
  return queue_.empty() ? kTimeNever : queue_.top().when;
}

std::size_t Scheduler::run() {
  std::size_t fired = 0;
  while (pop_and_fire()) ++fired;
  return fired;
}

std::size_t Scheduler::run_until(Time deadline) {
  OCSP_CHECK(deadline >= now_);
  std::size_t fired = 0;
  for (;;) {
    drop_cancelled_top();
    if (queue_.empty() || queue_.top().when > deadline) break;
    pop_and_fire();
    ++fired;
  }
  now_ = deadline;
  return fired;
}

}  // namespace ocsp::sim
