// Deterministic discrete-event scheduler.
//
// Events scheduled for the same virtual time fire in insertion order
// (FIFO tie-break on a monotonically increasing sequence number), making
// every simulation a pure function of its inputs.  Cancellation is lazy:
// cancelled events stay in the heap but are skipped on pop.
//
// Same-time ties can optionally be broken by an explicit priority before
// the insertion sequence (see at(t, prio, cb)).  Insertion order is a fine
// tie-break inside ONE scheduler, but it is not reproducible across
// executors that discover the same events in different orders (e.g. the
// sharded parallel runtime draining cross-shard inboxes).  A priority that
// is a pure function of the event's identity — not of when the scheduler
// learned about it — makes the schedule executor-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ocsp::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Token identifying a scheduled event, usable for cancellation.
  struct Handle {
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  /// Same-time tie-break priority of events scheduled without an explicit
  /// priority: maximal, so prioritized events (smaller value) fire first.
  static constexpr std::uint64_t kDefaultPrio =
      ~static_cast<std::uint64_t>(0);

  /// Schedule `cb` at absolute virtual time `t` (>= now()).
  Handle at(Time t, Callback cb);

  /// Schedule `cb` at `t` with an explicit same-time priority.  Events at
  /// equal times fire in ascending `prio`; equal (t, prio) falls back to
  /// insertion order.
  Handle at(Time t, std::uint64_t prio, Callback cb);

  /// Schedule `cb` `delay` after now().
  Handle after(Time delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled.
  bool cancel(Handle h);

  /// Run the earliest pending event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Run events with firing time <= `deadline`; the clock advances to
  /// `deadline` afterwards even if the queue drained early.
  std::size_t run_until(Time deadline);

  /// Firing time of the earliest pending event, or kTimeNever when the
  /// queue is empty.  Non-const: compacts lazily-cancelled heap tops.
  Time next_time();

  Time now() const { return now_; }
  /// Firing time of the latest event that actually ran (0 before the first).
  /// Unlike now(), run_until never advances this to the deadline, so after a
  /// drain it is the true last-event time — what an executor with no
  /// deadline should report as its finish time.
  Time last_fired() const { return last_fired_; }
  bool empty() const { return pending_seqs_.empty(); }
  std::size_t pending() const { return pending_seqs_.size(); }
  std::uint64_t fired_count() const { return fired_count_; }

  /// High-water mark of the pending-event queue (kernel load gauge).
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t prio;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  bool pop_and_fire();
  void drop_cancelled_top();

  Time now_ = 0;
  Time last_fired_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_count_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_seqs_;
};

}  // namespace ocsp::sim
