// Deterministic discrete-event scheduler.
//
// Events scheduled for the same virtual time fire in insertion order
// (FIFO tie-break on a monotonically increasing sequence number), making
// every simulation a pure function of its inputs.  Cancellation is lazy:
// cancelled events stay in the heap but are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ocsp::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Token identifying a scheduled event, usable for cancellation.
  struct Handle {
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  /// Schedule `cb` at absolute virtual time `t` (>= now()).
  Handle at(Time t, Callback cb);

  /// Schedule `cb` `delay` after now().
  Handle after(Time delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled.
  bool cancel(Handle h);

  /// Run the earliest pending event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.  Returns the number of events fired.
  std::size_t run();

  /// Run events with firing time <= `deadline`; the clock advances to
  /// `deadline` afterwards even if the queue drained early.
  std::size_t run_until(Time deadline);

  Time now() const { return now_; }
  bool empty() const { return pending_seqs_.empty(); }
  std::size_t pending() const { return pending_seqs_.size(); }
  std::uint64_t fired_count() const { return fired_count_; }

  /// High-water mark of the pending-event queue (kernel load gauge).
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_fire();
  void drop_cancelled_top();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_count_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_seqs_;
};

}  // namespace ocsp::sim
