// Virtual time for the discrete-event kernel.
//
// All protocol latencies (network delay, service time, speculation timeouts)
// are expressed in virtual nanoseconds.  Using integer ticks keeps event
// ordering exact and runs bit-identical across platforms.
#pragma once

#include <cstdint>

namespace ocsp::sim {

/// Virtual time in nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kTimeNever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t us) { return us * 1000; }
constexpr Time milliseconds(std::int64_t ms) { return ms * 1000 * 1000; }
constexpr Time seconds(std::int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double to_micros(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }

}  // namespace ocsp::sim
