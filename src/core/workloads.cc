#include "core/workloads.h"

#include "transform/transform.h"
#include "util/check.h"

namespace ocsp::core {

using csp::arg;
using csp::assign;
using csp::call;
using csp::compute;
using csp::hint;
using csp::if_;
using csp::lit;
using csp::list_of;
using csp::lt;
using csp::print;
using csp::receive;
using csp::reply;
using csp::send;
using csp::seq;
using csp::Value;
using csp::var;
using csp::while_;

net::LinkConfig make_link(const NetworkParams& params) {
  net::LinkConfig link;
  if (params.jitter > 0) {
    link.latency =
        net::uniform_latency(params.latency, params.latency + params.jitter);
  } else {
    link.latency = net::fixed_latency(params.latency);
  }
  link.fifo = params.fifo;
  return link;
}

// ---------------------------------------------------------------------------
// PutLine
// ---------------------------------------------------------------------------

baseline::Scenario putline_scenario(const PutLineParams& params) {
  // Client X: write `lines` lines, stop early on an unsuccessful return.
  std::vector<csp::StmtPtr> loop_body;
  if (params.client_compute > 0) {
    loop_body.push_back(compute(params.client_compute));
  }
  loop_body.push_back(call("Y", "PutLine", {var("i")}, "OK"));
  loop_body.push_back(assign("i", add(var("i"), lit(Value(1)))));
  csp::StmtPtr client = seq({
      assign("i", lit(Value(0))),
      assign("OK", lit(Value(true))),
      while_(and_(lt(var("i"), lit(Value(params.lines))), var("OK")),
             seq(std::move(loop_body))),
      print(list_of({lit(Value("lines-written")), var("i")})),
  });

  if (params.stream) {
    transform::StreamingOptions opts;
    opts.initial_guess = Value(true);
    opts.timeout = params.spec.fork_timeout;
    client = transform::stream_calls(client, opts).program;
  }

  // Window manager Y.
  const double p = params.fail_probability;
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["PutLine"] = [p](const csp::ValueList&, csp::Env&,
                            util::Rng& rng) {
    return Value(p <= 0.0 ? true : !rng.bernoulli(p));
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;
  csp::StmtPtr server = csp::native_service(std::move(handlers), sc);

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));
  scenario.add("Y", std::move(server));
  return scenario;
}

// ---------------------------------------------------------------------------
// Database + filesystem (the paper's running example)
// ---------------------------------------------------------------------------

baseline::Scenario db_fs_scenario(const DbFsParams& params) {
  std::map<std::string, csp::PredictorSpec> predictors;
  predictors.emplace("OK", csp::PredictorSpec::always(Value(true)));

  csp::StmtPtr client = seq({
      assign("t", lit(Value(0))),
      while_(
          lt(var("t"), lit(Value(params.transactions))),
          seq({
              // S1: update the database.
              call("DB", "Update", {var("t"), mul(var("t"), lit(Value(10)))},
                   "OK"),
              hint(predictors, "dbfs", /*span=*/1, params.spec.fork_timeout),
              // S2: write to the filesystem iff the update succeeded.
              if_(var("OK"),
                  seq({
                      call("FS", "Write", {var("t")}, "W"),
                      print(list_of({lit(Value("wrote")), var("t"), var("W")})),
                  }),
                  print(list_of({lit(Value("skipped")), var("t")}))),
              assign("t", add(var("t"), lit(Value(1)))),
          })),
      print(lit(Value("client-done"))),
  });

  if (params.transform) {
    client = transform::insert_forks(client).program;
  }

  const double p = params.update_fail_probability;
  std::map<std::string, csp::NativeHandler> db_handlers;
  db_handlers["Update"] = [p](const csp::ValueList& args, csp::Env& state,
                              util::Rng& rng) {
    const bool ok = p <= 0.0 ? true : !rng.bernoulli(p);
    if (ok) {
      state.set("item:" + args[0].to_string(), args[1]);
    }
    return Value(ok);
  };
  csp::ServiceConfig db_sc;
  db_sc.service_time = params.db_service_time;

  std::map<std::string, csp::NativeHandler> fs_handlers;
  fs_handlers["Write"] = [](const csp::ValueList& args, csp::Env& state,
                            util::Rng&) {
    const std::int64_t n = state.get_or("writes", Value(0)).as_int();
    state.set("writes", Value(n + 1));
    state.set("last", args[0]);
    return Value(n + 1);
  };
  csp::ServiceConfig fs_sc;
  fs_sc.service_time = params.fs_service_time;

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));
  scenario.add("DB", csp::native_service(std::move(db_handlers), db_sc));
  scenario.add("FS", csp::native_service(std::move(fs_handlers), fs_sc));
  return scenario;
}

// ---------------------------------------------------------------------------
// Pipeline through a chain of relays
// ---------------------------------------------------------------------------

baseline::Scenario pipeline_scenario(const PipelineParams& params) {
  OCSP_CHECK(params.chain_depth >= 1);

  csp::StmtPtr client = seq({
      assign("i", lit(Value(0))),
      assign("r", lit(Value(0))),
      while_(lt(var("i"), lit(Value(params.calls))),
             seq({
                 call("relay0", "Fwd", {var("i")}, "r"),
                 assign("i", add(var("i"), lit(Value(1)))),
             })),
      print(list_of({lit(Value("pipeline-done")), var("r")})),
  });

  if (params.stream) {
    transform::StreamingOptions opts;
    // Guess what the relay will answer: the echoed argument (stride +1
    // matches i's progression).
    opts.predictor = [](const csp::CallStmt&) {
      // The relay echoes its argument, so the exact guess is the loop
      // index at the fork point.
      return csp::PredictorSpec::from_expr(var("i"));
    };
    opts.timeout = params.spec.fork_timeout;
    client = transform::stream_calls(client, opts).program;
  }

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));

  for (int k = 0; k + 1 < params.chain_depth; ++k) {
    std::map<std::string, csp::StmtPtr> handlers;
    handlers["Fwd"] = seq({
        call("relay" + std::to_string(k + 1), "Fwd", {arg(0)}, "fwd"),
        reply(var("fwd")),
    });
    csp::StmtPtr relay =
        csp::service_loop(std::move(handlers), params.service_time);
    if (params.stream_relays) {
      // The relay speculatively replies with the echoed argument before its
      // downstream call returns; the guess propagates on the reply's guard
      // tag and chains transitively down the pipeline.
      transform::StreamingOptions relay_opts;
      relay_opts.predictor = [](const csp::CallStmt&) {
        return csp::PredictorSpec::from_expr(arg(0));
      };
      relay_opts.timeout = params.spec.fork_timeout;
      relay = transform::stream_calls(relay, relay_opts).program;
    }
    scenario.add("relay" + std::to_string(k), std::move(relay));
  }
  // Final stage echoes its argument.
  std::map<std::string, csp::NativeHandler> final_handlers;
  final_handlers["Fwd"] = [](const csp::ValueList& args, csp::Env&,
                             util::Rng&) { return args[0]; };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;
  scenario.add("relay" + std::to_string(params.chain_depth - 1),
               csp::native_service(std::move(final_handlers), sc));
  return scenario;
}

// ---------------------------------------------------------------------------
// Write-through topology (Figures 4 and 5)
// ---------------------------------------------------------------------------

baseline::Scenario write_through_scenario(const WriteThroughParams& params) {
  std::map<std::string, csp::PredictorSpec> predictors;
  predictors.emplace("OK", csp::PredictorSpec::always(Value(true)));

  csp::StmtPtr client = seq({
      assign("t", lit(Value(0))),
      while_(lt(var("t"), lit(Value(params.transactions))),
             seq({
                 call("Y", "Update", {var("t")}, "OK"),
                 hint(predictors, "wt", 1, params.spec.fork_timeout),
                 if_(var("OK"),
                     seq({
                         call("Z", "Write", {var("t")}, "W"),
                         print(list_of(
                             {lit(Value("wrote")), var("t"), var("W")})),
                     })),
                 assign("t", add(var("t"), lit(Value(1)))),
             })),
      print(lit(Value("wt-done"))),
  });
  client = transform::insert_forks(client).program;

  // Y propagates every update to Z before acknowledging.
  std::map<std::string, csp::StmtPtr> y_handlers;
  y_handlers["Update"] = seq({
      call("Z", "Sync", {arg(0)}, "s"),
      reply(lit(Value(true))),
  });

  std::map<std::string, csp::NativeHandler> z_handlers;
  z_handlers["Sync"] = [](const csp::ValueList& args, csp::Env& state,
                          util::Rng&) {
    state.set("synced", args[0]);
    return Value(true);
  };
  z_handlers["Write"] = [](const csp::ValueList& args, csp::Env& state,
                           util::Rng&) {
    const std::int64_t n = state.get_or("writes", Value(0)).as_int();
    state.set("writes", Value(n + 1));
    state.set("last", args[0]);
    return Value(n + 1);
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));
  scenario.add("Y", csp::service_loop(std::move(y_handlers),
                                      params.service_time));
  scenario.add("Z", csp::native_service(std::move(z_handlers), sc));

  net::LinkConfig slow = make_link(params.net);
  slow.latency = net::fixed_latency(params.net.latency * 10);
  if (params.force_fault) {
    // X's speculative direct Write beats Y's Sync to Z (Figure 4).
    scenario.links.push_back({"Y", "Z", slow});
  } else {
    // The direct hop is otherwise always faster than the two-hop
    // propagation; slow it down so the ordering holds and no fault occurs.
    scenario.links.push_back({"X", "Z", slow});
  }
  return scenario;
}

// ---------------------------------------------------------------------------
// Mutual speculation (Figures 6 and 7)
// ---------------------------------------------------------------------------

baseline::Scenario mutual_scenario(const MutualParams& params) {
  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);

  std::map<std::string, csp::NativeHandler> echo42;
  echo42["Work"] = [](const csp::ValueList&, csp::Env&, util::Rng&) {
    return Value(42);
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;

  if (!params.crossing) {
    // Figure 6: Z's S1 receives X's speculative M1, so z1 inherits {x1};
    // Z publishes PRECEDENCE(z1, {x1}) and commits when COMMIT(x1) lands.
    std::map<std::string, csp::PredictorSpec> px;
    px.emplace("r1", csp::PredictorSpec::always(Value(42)));
    csp::StmtPtr x = seq({
        call("Y", "Work", {lit(Value(0))}, "r1"),
        hint(px, "fig6-x", 1, params.spec.fork_timeout),
        send("Z", "M1", {lit(Value(7))}),
        receive(),  // M2 from Z
        print(list_of({lit(Value("x-done")), var("r1"), arg(0)})),
    });
    std::map<std::string, csp::PredictorSpec> pz;
    pz.emplace("r2", csp::PredictorSpec::always(Value(42)));
    csp::StmtPtr z = seq({
        receive(),  // M1 from X
        assign("m1", arg(0)),
        call("W", "Work", {var("m1")}, "r2"),
        hint(pz, "fig6-z", 1, params.spec.fork_timeout),
        send("X", "M2", {var("r2")}),
        print(list_of({lit(Value("z-done")), var("m1"), var("r2")})),
    });
    scenario.add("X", transform::insert_forks(x).program);
    scenario.add("Z", transform::insert_forks(z).program);
    scenario.add("Y", csp::native_service(echo42, sc));
    scenario.add("W", csp::native_service(echo42, sc));
    // X's call to Y is the slow leg, so Z's join happens while x1 is still
    // in doubt and z1 must go through PRECEDENCE + the COMMIT cascade.
    net::LinkConfig slow = make_link(params.net);
    slow.latency = net::fixed_latency(params.net.latency * 10);
    scenario.links.push_back({"X", "Y", slow});
    scenario.links.push_back({"Y", "X", slow});
    return scenario;
  }

  // Figure 7: each client's speculative send contaminates the server the
  // *other* client's S1 calls, closing the cycle x1 -> z1 -> x1.  The link
  // overrides make each client's own Take call the slow one, so the other
  // side's speculative Put always arrives first.
  // Take's reply value is independent of the Puts so the value check at the
  // join passes and the abort is a *pure* time fault: the reply's guard tag
  // (contaminated by the other client's speculative Put) is what closes the
  // cycle, exactly as in Figure 7.
  std::map<std::string, csp::NativeHandler> box;
  box["Take"] = [](const csp::ValueList&, csp::Env& state, util::Rng&) {
    state.set("takes", Value(state.get_or("takes", Value(0)).as_int() + 1));
    return Value(42);
  };
  box["Put"] = [](const csp::ValueList& args, csp::Env& state, util::Rng&) {
    state.set("v", args[0]);
    return Value(true);
  };

  auto make_client = [&](const std::string& mine, const std::string& theirs,
                         int tag, const std::string& site) {
    std::map<std::string, csp::PredictorSpec> preds;
    preds.emplace("r", csp::PredictorSpec::always(Value(42)));
    csp::StmtPtr prog = seq({
        call(mine, "Take", {}, "r"),
        hint(preds, site, 1, params.spec.fork_timeout),
        send(theirs, "Put", {lit(Value(tag))}),
        print(list_of({lit(Value(site)), var("r")})),
    });
    return transform::insert_forks(prog).program;
  };
  scenario.add("X", make_client("SX", "SZ", 1, "fig7-x"));
  scenario.add("Z", make_client("SZ", "SX", 2, "fig7-z"));
  scenario.add("SX", csp::native_service(box, sc));
  scenario.add("SZ", csp::native_service(box, sc));

  // Slow Take request links; fast speculative Put links.
  net::LinkConfig slow = make_link(params.net);
  slow.latency = net::fixed_latency(params.net.latency * 20);
  scenario.links.push_back({"X", "SX", slow});
  scenario.links.push_back({"Z", "SZ", slow});
  return scenario;
}

// ---------------------------------------------------------------------------
// Shared server, independent clients (section 5 comparison)
// ---------------------------------------------------------------------------

baseline::Scenario shared_server_scenario(const SharedServerParams& params) {
  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);

  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Req"] = [](const csp::ValueList& args, csp::Env& state,
                       util::Rng&) {
    const std::int64_t n = state.get_or("served", Value(0)).as_int();
    state.set("served", Value(n + 1));
    return args[0];
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;

  for (int c = 0; c < params.clients; ++c) {
    csp::StmtPtr client = seq({
        assign("i", lit(Value(0))),
        assign("r", lit(Value(0))),
        while_(lt(var("i"), lit(Value(params.calls_per_client))),
               seq({
                   call("S", "Req", {var("i")}, "r"),
                   assign("i", add(var("i"), lit(Value(1)))),
               })),
        print(list_of({lit(Value("client")), lit(Value(c)), var("r")})),
    });
    if (params.stream) {
      transform::StreamingOptions opts;
      opts.predictor = [](const csp::CallStmt&) {
        return csp::PredictorSpec::from_expr(var("i"));
      };
      opts.timeout = params.spec.fork_timeout;
      client = transform::stream_calls(client, opts).program;
    }
    const std::string name = "C" + std::to_string(c);
    scenario.add(name, std::move(client));
    if (params.client_skew > 0 && c > 0) {
      net::LinkConfig skewed = make_link(params.net);
      skewed.latency = net::fixed_latency(params.net.latency +
                                          params.client_skew * c);
      scenario.links.push_back({name, "S", skewed});
    }
  }
  scenario.add("S", csp::native_service(std::move(handlers), sc));
  return scenario;
}

// ---------------------------------------------------------------------------
// Statically-safe fan-out
// ---------------------------------------------------------------------------

std::string safe_fanout_server(int i) { return "F" + std::to_string(i); }

baseline::Scenario safe_fanout_scenario(const SafeFanoutParams& params) {
  OCSP_CHECK(params.servers >= 1);

  // One call per service; every result variable is write-only, so each
  // hint's passed set is empty and the halves' targets are disjoint —
  // exactly the SAFE shape.  Automatic hints (no predictors) let the
  // classifier prove it rather than trust a declaration.
  std::vector<csp::StmtPtr> body;
  for (int i = 0; i < params.servers; ++i) {
    body.push_back(call(safe_fanout_server(i), "Work", {lit(Value(i))},
                        "r" + std::to_string(i)));
    if (i + 1 < params.servers) {
      body.push_back(hint({}, "fan" + std::to_string(i), /*span=*/1,
                          params.spec.fork_timeout));
    }
  }
  body.push_back(print(lit(Value("fanout-done"))));
  csp::StmtPtr client = seq(std::move(body));

  if (params.transform) {
    client = transform::insert_forks(client).program;
  }

  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Work"] = [](const csp::ValueList& args, csp::Env& state,
                        util::Rng&) {
    const std::int64_t n = state.get_or("served", Value(0)).as_int();
    state.set("served", Value(n + 1));
    return args[0];
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));
  for (int i = 0; i < params.servers; ++i) {
    scenario.add(safe_fanout_server(i), csp::native_service(handlers, sc));
  }
  return scenario;
}

// ---------------------------------------------------------------------------
// Commutative registry
// ---------------------------------------------------------------------------

std::string commute_registry_client(int i) { return "C" + std::to_string(i); }

// ---------------------------------------------------------------------------
// Abort storm (adaptive-governor showcase)
// ---------------------------------------------------------------------------

baseline::Scenario abort_storm_scenario(const AbortStormParams& params) {
  // Client X: stream Lookup calls, folding every reply into an accumulator
  // so each guessed value is really consumed (a mismatch is a value fault).
  csp::StmtPtr client = seq({
      assign("i", lit(Value(0))),
      assign("acc", lit(Value(0))),
      while_(lt(var("i"), lit(Value(params.calls))),
             seq({
                 call("Y", "Lookup", {var("i")}, "R"),
                 assign("acc", add(var("acc"), var("R"))),
                 assign("i", add(var("i"), lit(Value(1)))),
             })),
      print(list_of({lit(Value("storm-acc")), var("acc")})),
  });

  if (params.stream) {
    transform::StreamingOptions opts;
    // Guess the constant 0: right (hit_period-1)/hit_period of the time
    // *wrong*, but the periodic hits keep resetting retry limit L.
    opts.predictor = [](const csp::CallStmt&) {
      return csp::PredictorSpec::always(Value(0));
    };
    opts.timeout = params.spec.fork_timeout;
    client = transform::stream_calls(client, opts).program;
  }

  // Server Y: deterministic in the argument, so the committed trace is
  // identical however speculation fares.
  const std::int64_t period = std::max(1, params.hit_period);
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Lookup"] = [period](const csp::ValueList& args, csp::Env&,
                                util::Rng&) {
    const std::int64_t i = args.empty() ? 0 : args[0].as_int();
    return Value(i % period == 0 ? std::int64_t{0} : i);
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;
  csp::StmtPtr server = csp::native_service(std::move(handlers), sc);

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);
  scenario.add("X", std::move(client));
  scenario.add("Y", std::move(server));
  return scenario;
}

// ---------------------------------------------------------------------------
// Compute-bound fan-out (parallel-executor speedup workload)
// ---------------------------------------------------------------------------

std::string compute_fanout_client(int i) { return "W" + std::to_string(i); }
std::string compute_fanout_server(int i) { return "S" + std::to_string(i); }

baseline::Scenario compute_fanout_scenario(const ComputeFanoutParams& params) {
  OCSP_CHECK(params.pairs >= 1);
  OCSP_CHECK(params.calls >= 1);

  baseline::Scenario scenario;
  scenario.options.seed = params.seed;
  scenario.options.spec = params.spec;
  scenario.options.default_link = make_link(params.net);

  // Clients first: ids 0..pairs-1, so id mod workers round-robins the
  // compute-heavy processes across shards.
  for (int c = 0; c < params.pairs; ++c) {
    std::vector<csp::StmtPtr> body;
    if (params.compute > 0) body.push_back(compute(params.compute));
    body.push_back(
        call(compute_fanout_server(c), "Work", {var("i")}, "R"));
    body.push_back(assign("acc", add(var("acc"), var("R"))));
    body.push_back(assign("i", add(var("i"), lit(Value(1)))));

    csp::StmtPtr client = seq({
        assign("i", lit(Value(0))),
        assign("acc", lit(Value(0))),
        while_(lt(var("i"), lit(Value(params.calls))), seq(std::move(body))),
        print(list_of({lit(Value("fanout")), lit(Value(c)), var("acc")})),
    });

    if (params.stream) {
      transform::StreamingOptions opts;
      // The server echoes its argument, so the loop index at the fork is
      // the exact guess (except on deliberate miss_period misses).
      opts.predictor = [](const csp::CallStmt&) {
        return csp::PredictorSpec::from_expr(var("i"));
      };
      opts.timeout = params.spec.fork_timeout;
      client = transform::stream_calls(client, opts).program;
    }
    scenario.add(compute_fanout_client(c), std::move(client));
  }

  // Reply depends only on the argument: the committed trace is identical
  // however speculation (or the executor's sharding) fares.
  const std::int64_t period = params.miss_period;
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Work"] = [period](const csp::ValueList& args, csp::Env&,
                              util::Rng&) {
    const std::int64_t i = args.empty() ? 0 : args[0].as_int();
    if (period > 0 && (i + 1) % period == 0) return Value(std::int64_t{0});
    return Value(i);
  };
  csp::ServiceConfig sc;
  sc.service_time = params.service_time;
  for (int c = 0; c < params.pairs; ++c) {
    scenario.add(compute_fanout_server(c), csp::native_service(handlers, sc));
  }
  return scenario;
}

analysis::CommuteContext scenario_commute_context(
    const baseline::Scenario& scenario, const std::string& self) {
  std::vector<analysis::SystemProcess> procs;
  procs.reserve(scenario.processes.size());
  for (const auto& p : scenario.processes) {
    procs.push_back({p.name, p.program, p.commute});
  }
  return analysis::build_commute_context(procs, self);
}

baseline::Scenario commute_registry_scenario(const CommuteRegistryParams& p) {
  OCSP_CHECK(p.clients >= 1);

  // The registry is a service_loop so infer_summaries can read the dispatch
  // arms; every handler shape below is deliberate (see the header comment).
  std::map<std::string, csp::StmtPtr> handlers;
  handlers["Add"] = seq({
      assign("count", add(var("count"), arg(0))),
      reply(lit(Value(true))),
  });
  handlers["Note"] = assign("notes", add(var("notes"), arg(0)));
  if (p.mutate_ops) {
    handlers["Stamp"] = seq({
        assign("stamps", add(var("stamps"), lit(Value(1)))),
        reply(var("stamps")),
    });
  }
  csp::Env registry_env;
  registry_env.set("count", Value(0));
  registry_env.set("notes", Value(0));
  registry_env.set("stamps", Value(0));

  baseline::Scenario scenario;
  scenario.options.seed = p.seed;
  scenario.options.spec = p.spec;
  scenario.options.default_link = make_link(p.net);

  for (int c = 0; c < p.clients; ++c) {
    std::vector<csp::StmtPtr> body;
    body.push_back(call("R", "Add", {lit(Value(1))}, "a"));  // reply dead
    if (p.mutate_ops) {
      // Stamp's reply is the globally-ordered total: any speculative guess
      // for it is wrong under contention, but `s` is only ever branched on
      // (boolean use) and `junk` is never read (dead) — the shapes the
      // verify relaxation forgives.
      body.push_back(call("R", "Stamp", {}, "s"));
      body.push_back(if_(var("s"), assign("x", add(var("x"), lit(Value(1))))));
      body.push_back(call("R", "Stamp", {}, "junk"));
    }
    body.push_back(send("R", "Note", {var("i")}));
    body.push_back(assign("i", add(var("i"), lit(Value(1)))));

    csp::StmtPtr client = seq({
        assign("i", lit(Value(0))),
        assign("x", lit(Value(0))),
        while_(lt(var("i"), lit(Value(p.iterations))), seq(std::move(body))),
        print(list_of({lit(Value("registry")), lit(Value(c)), var("x")})),
    });

    if (p.stream) {
      transform::StreamingOptions opts;
      opts.predictor = [](const csp::CallStmt& cs) {
        // Add always replies true; Stamp's stale guess is deliberately
        // wrong from the second call onward.
        return cs.op == "Add" ? csp::PredictorSpec::always(Value(true))
                              : csp::PredictorSpec::always(Value(1));
      };
      opts.timeout = p.spec.fork_timeout;
      client = transform::stream_calls(client, opts).program;
    }
    scenario.add(commute_registry_client(c), std::move(client));
    if (p.client_skew > 0 && c > 0) {
      net::LinkConfig skewed = make_link(p.net);
      skewed.latency =
          net::fixed_latency(p.net.latency + p.client_skew * c);
      scenario.links.push_back({commute_registry_client(c), "R", skewed});
    }
  }
  scenario.add("R", csp::service_loop(std::move(handlers), p.service_time),
               std::move(registry_env));

  if (p.reclassify && p.stream) {
    for (auto& proc : scenario.processes) {
      if (proc.name == "R") continue;
      const analysis::CommuteContext ctx =
          scenario_commute_context(scenario, proc.name);
      proc.program = transform::reclassify(proc.program, {&ctx}).program;
    }
  }
  return scenario;
}

}  // namespace ocsp::core
