// Canonical workloads of the paper, shared by tests, benchmarks, and
// examples.
//
// Each builder returns a baseline::Scenario containing the *sequential*
// programs plus the transformed (streamed / hint-expanded) variants, so a
// caller can run the same workload pessimistically and optimistically and
// compare completion times and committed traces.
#pragma once

#include <string>

#include "analysis/commute.h"
#include "baseline/scenario.h"
#include "csp/program.h"
#include "csp/service.h"
#include "net/latency.h"
#include "sim/time.h"
#include "speculation/config.h"

namespace ocsp::core {

struct NetworkParams {
  sim::Time latency = sim::microseconds(500);  ///< one-way link latency
  sim::Time jitter = 0;                        ///< uniform extra delay
  bool fifo = true;
};

net::LinkConfig make_link(const NetworkParams& params);

// ---------------------------------------------------------------------------
// PutLine (section 1, Figures 1-3): client X streams lines to window
// manager Y; each PutLine returns a success flag the next call's
// continuation consumes.
// ---------------------------------------------------------------------------
struct PutLineParams {
  int lines = 8;
  sim::Time service_time = sim::microseconds(10);
  sim::Time client_compute = sim::microseconds(5);  ///< per-line local work
  double fail_probability = 0.0;  ///< PutLine returns false this often
  bool stream = true;             ///< apply the call streaming transform
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario putline_scenario(const PutLineParams& params);

// ---------------------------------------------------------------------------
// Database + filesystem (section 2, Figure 1): S1 = Update on the DB
// server, S2 = Write to the filesystem server guarded by OK.
// ---------------------------------------------------------------------------
struct DbFsParams {
  int transactions = 4;
  sim::Time db_service_time = sim::microseconds(20);
  sim::Time fs_service_time = sim::microseconds(20);
  double update_fail_probability = 0.0;  ///< OK=false this often
  bool transform = true;                 ///< expand the parallelize hint
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario db_fs_scenario(const DbFsParams& params);

// ---------------------------------------------------------------------------
// Pipeline: client streams calls through a chain of relay services
// (depth-k right-branching fork structure).
// ---------------------------------------------------------------------------
struct PipelineParams {
  int calls = 8;
  int chain_depth = 3;  ///< relays between client and final server
  sim::Time service_time = sim::microseconds(5);
  bool stream = true;
  /// Also stream the relays' own downstream calls: each relay replies
  /// speculatively (guessing the echo) before its downstream call returns,
  /// so guesses chain transitively through the whole pipeline.  Without
  /// this, a relay serializes on its downstream round trip and the client-
  /// side win is capped at one chain traversal.
  bool stream_relays = false;
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario pipeline_scenario(const PipelineParams& params);

// ---------------------------------------------------------------------------
// The section 2 topology with a write-through: X's S1 updates server Y,
// which synchronously propagates to server Z; X's S2 then writes to Z
// directly.  With `force_fault` the speculative direct write overtakes Y's
// propagation at Z, creating the happens-before cycle of Figure 4; the
// protocol detects the time fault, aborts, rolls Z and Y back, and
// re-executes as in Figure 5.
// ---------------------------------------------------------------------------
struct WriteThroughParams {
  bool force_fault = true;  ///< make X->Z fast and Y->Z slow
  int transactions = 1;
  sim::Time service_time = sim::microseconds(10);
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario write_through_scenario(const WriteThroughParams& params);

// ---------------------------------------------------------------------------
// Two mutually speculating clients sharing servers (Figures 6-7): X forks
// around a call to Y and its right thread messages Z's server-side; Z does
// the same towards X's side.  With crossing enabled the two speculations
// close a causal cycle and must both abort.
// ---------------------------------------------------------------------------
struct MutualParams {
  bool crossing = false;  ///< true reproduces the Figure 7 cycle
  sim::Time service_time = sim::microseconds(10);
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario mutual_scenario(const MutualParams& params);

// ---------------------------------------------------------------------------
// Shared server with independent clients (section 5 comparison workload):
// two clients stream requests into one server; the partial order accepts
// any interleaving.
// ---------------------------------------------------------------------------
struct SharedServerParams {
  int clients = 2;
  int calls_per_client = 6;
  sim::Time service_time = sim::microseconds(10);
  /// Per-client extra latency towards the server, staggering arrivals.
  sim::Time client_skew = sim::microseconds(200);
  bool stream = true;
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario shared_server_scenario(const SharedServerParams& params);

// ---------------------------------------------------------------------------
// Statically-safe fan-out: the client fires one request at each of
// `servers` distinct services, result variables are never read again, and
// only the final print touches the outside world.  Every hint classifies
// SAFE, so the optimistic run elides the checkpoint/guess machinery
// entirely and the calls overlap like plain asynchronous sends — the
// showcase workload for guard elision.
// ---------------------------------------------------------------------------
struct SafeFanoutParams {
  int servers = 4;  ///< number of distinct target services (one call each)
  sim::Time service_time = sim::microseconds(20);
  bool transform = true;  ///< expand the parallelize hints
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario safe_fanout_scenario(const SafeFanoutParams& params);

/// Name of the i-th fan-out service ("F0", "F1", ...).
std::string safe_fanout_server(int i);

// ---------------------------------------------------------------------------
// Commutative registry: the commutativity-analysis showcase.  `clients`
// contended clients hammer one service_loop registry "R" whose ops span the
// summary lattice:
//
//   Add(n)   count += n, replies true          -> abelian over {count}
//   Stamp()  ++stamps, replies the new total   -> mutating over {stamps}
//   Note(n)  notes += n, one-way               -> abelian over {notes}
//
// With mutate_ops, each client ignores Add's reply, branches on Stamp's
// reply by truthiness only, and drops a second Stamp reply entirely, so
// transform::reclassify annotates the streamed forks' passed variables
// kDead / kBoolean and a guess mismatch on the order-sensitive Stamp total
// commits instead of aborting (commit-on-commute).  Without mutate_ops the
// clients touch only the abelian ops and every streamed fork upgrades to
// ForkMode::kSafe — the cross-process SAFE widening at work.
// ---------------------------------------------------------------------------
struct CommuteRegistryParams {
  int clients = 2;
  int iterations = 6;
  /// Include the order-sensitive Stamp calls (commit-on-commute variant);
  /// false leaves only abelian ops (SAFE-upgrade variant).
  bool mutate_ops = true;
  /// Run transform::reclassify over the streamed clients with the
  /// cross-process commutativity context.
  bool reclassify = true;
  bool stream = true;
  sim::Time service_time = sim::microseconds(10);
  /// Per-client extra latency towards the registry, staggering arrivals.
  sim::Time client_skew = sim::microseconds(200);
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario commute_registry_scenario(const CommuteRegistryParams& p);

/// Name of the i-th registry client ("C0", "C1", ...).
std::string commute_registry_client(int i);

// ---------------------------------------------------------------------------
// Abort storm: the adaptive-governor showcase.  Client X streams Lookup
// calls into server Y whose reply is 0 every `hit_period`-th call and the
// (varying) argument otherwise; the streamed fork guesses the constant 0,
// so speculation commits once per period and mis-guesses the rest — an
// abort rate of (hit_period-1)/hit_period.  The periodic commits reset the
// consecutive-abort counter, so retry limit L never fires and the storm
// rages for the whole run unless the governor's abort-rate EWMA demotes the
// site (SpecConfig::governor_*).  Fully deterministic: the reply depends
// only on the argument, so the committed trace matches the sequential
// baseline no matter how often speculation loses.
// ---------------------------------------------------------------------------
struct AbortStormParams {
  int calls = 60;
  int hit_period = 3;  ///< every hit_period-th guess verifies
  sim::Time service_time = sim::microseconds(10);
  bool stream = true;
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario abort_storm_scenario(const AbortStormParams& params);

// ---------------------------------------------------------------------------
// Compute-bound fan-out: the parallel executor's speedup workload.  `pairs`
// independent client/server pairs; each client alternates a Compute burst
// with a streamed call to its own server, so virtual time is dominated by
// local compute that exec::ParallelRuntime turns into real busy-work
// (ParallelOptions::compute_scale) spread across shards.  Clients are
// registered before servers so round-robin sharding (id mod workers)
// spreads the compute evenly.  The server echoes its argument and the
// streamed fork guesses the loop index, so with miss_period == 0 every
// guess verifies; miss_period k makes every k-th reply 0 instead,
// deterministically injecting aborts (and discarded compute) into the
// curve.  Fully deterministic either way: the committed trace is the same
// at any worker count and any compute_scale.
// ---------------------------------------------------------------------------
struct ComputeFanoutParams {
  int pairs = 8;  ///< independent client/server pairs
  int calls = 6;  ///< compute+call iterations per client
  sim::Time compute = sim::microseconds(200);  ///< per-iteration local work
  sim::Time service_time = sim::microseconds(10);
  /// Every miss_period-th reply breaks the guess (0 disables misses).
  int miss_period = 0;
  bool stream = true;
  NetworkParams net;
  std::uint64_t seed = 42;
  spec::SpecConfig spec;
};

baseline::Scenario compute_fanout_scenario(const ComputeFanoutParams& params);

/// Name of the i-th fan-out client ("W0", ...) / server ("S0", ...).
std::string compute_fanout_client(int i);
std::string compute_fanout_server(int i);

/// Cross-process commutativity context for one process of a scenario:
/// declared summaries (ScenarioProcess::commute) unioned with what
/// analysis::infer_summaries extracts from each program, peer ops from
/// effect analysis.  This is the canonical way tools (ocsp_lint
/// --rerun-after-transforms) and tests derive the analysis input from a
/// workload.
analysis::CommuteContext scenario_commute_context(
    const baseline::Scenario& scenario, const std::string& self);

}  // namespace ocsp::core
