// Turns a FaultPlan into per-send FaultDecisions for net::Network.
//
// The injector is the plan's executor for message-plane faults (drop,
// duplicate, corrupt, partition); crash events are orchestrated by the
// speculation runtime, which owns process lifecycles.  All randomness comes
// from the util::Rng the network passes in — its dedicated fault stream —
// so an injector never perturbs latency draws.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "fault/plan.h"
#include "net/network.h"

namespace ocsp::fault {

struct InjectorStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t partition_drops = 0;

  std::uint64_t total() const {
    return drops + duplicates + corruptions + partition_drops;
  }
};

class Injector {
 public:
  /// Observer invoked for every injected fault (decision != no-op).
  using Observer = std::function<void(const net::Envelope&,
                                      const net::FaultDecision&)>;

  explicit Injector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// net::Network fault-hook entry point.
  net::FaultDecision decide(const net::Envelope& env, util::Rng& rng);

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  const FaultPlan& plan() const { return plan_; }
  const InjectorStats& stats() const { return stats_; }

 private:
  bool partitioned(ProcessId a, ProcessId b, sim::Time now) const;

  FaultPlan plan_;
  InjectorStats stats_;
  Observer observer_;
};

}  // namespace ocsp::fault
