#include "fault/injector.h"

namespace ocsp::fault {

bool Injector::partitioned(ProcessId a, ProcessId b, sim::Time now) const {
  for (const auto& w : plan_.partitions) {
    const bool matches =
        (w.a == a && w.b == b) || (w.a == b && w.b == a);
    if (matches && now >= w.start && now < w.end) return true;
  }
  return false;
}

net::FaultDecision Injector::decide(const net::Envelope& env, util::Rng& rng) {
  net::FaultDecision fd;
  if (!plan_.enabled) return fd;

  if (partitioned(env.src, env.dst, env.sent_at)) {
    fd.drop = true;
    fd.cause = "partition";
    ++stats_.partition_drops;
  } else {
    const PlaneFaults& pf =
        env.payload->control_plane() ? plan_.control : plan_.data;
    if (pf.drop > 0.0 && rng.bernoulli(pf.drop)) {
      fd.drop = true;
      fd.cause = "drop";
      ++stats_.drops;
    } else if (pf.corrupt > 0.0 && rng.bernoulli(pf.corrupt)) {
      fd.corrupt = true;
      fd.cause = "corrupt";
      ++stats_.corruptions;
    } else if (pf.duplicate > 0.0 && rng.bernoulli(pf.duplicate)) {
      fd.duplicates = 1;
      fd.cause = "duplicate";
      ++stats_.duplicates;
    }
  }

  if ((fd.drop || fd.corrupt || fd.duplicates > 0) && observer_) {
    observer_(env, fd);
  }
  return fd;
}

}  // namespace ocsp::fault
