#include "fault/plan.h"

#include <sstream>

#include "util/rng.h"

namespace ocsp::fault {

namespace {

void describe_plane(std::ostringstream& out, const char* name,
                    const PlaneFaults& pf) {
  if (!pf.any()) return;
  out << name << "(";
  bool first = true;
  auto field = [&](const char* key, double v) {
    if (v <= 0.0) return;
    if (!first) out << ",";
    first = false;
    out << key << "=" << v;
  };
  field("drop", pf.drop);
  field("dup", pf.duplicate);
  field("corrupt", pf.corrupt);
  out << ")";
}

}  // namespace

std::string FaultPlan::describe() const {
  if (!enabled) return "none";
  std::ostringstream out;
  describe_plane(out, "data", data);
  if (control.any()) {
    if (out.tellp() > 0) out << "+";
    describe_plane(out, "ctl", control);
  }
  for (const auto& p : partitions) {
    if (out.tellp() > 0) out << "+";
    out << "part(" << p.a << "<->" << p.b << ","
        << sim::to_millis(p.end - p.start) << "ms)";
  }
  for (const auto& c : crashes) {
    if (out.tellp() > 0) out << "+";
    out << "crash(p" << c.process << ","
        << sim::to_millis(c.restart_at - c.at) << "ms)";
  }
  if (out.tellp() == 0) return "enabled-empty";
  return out.str();
}

FaultPlan make_chaos_plan(std::uint64_t seed, const ChaosSpec& spec,
                          std::uint32_t num_processes) {
  FaultPlan plan;
  plan.enabled = true;
  // Mix the seed so neighbouring seeds get unrelated magnitudes even though
  // they cycle through the same six categories.
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5bf03635);

  auto prob = [&](double maxp) { return rng.uniform(0.05, maxp); };
  auto add_partitions = [&](int at_most) {
    if (num_processes < 2) return;
    const int n = static_cast<int>(rng.uniform_int(1, at_most));
    for (int i = 0; i < n; ++i) {
      PartitionWindow w;
      w.a = static_cast<ProcessId>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_processes) - 1));
      w.b = static_cast<ProcessId>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_processes) - 2));
      if (w.b >= w.a) ++w.b;  // distinct pair
      w.start = rng.uniform_int(spec.horizon / 10, spec.horizon);
      w.end = w.start + rng.uniform_int(spec.partition_min_len,
                                        spec.partition_max_len);
      plan.partitions.push_back(w);
    }
  };
  auto add_crashes = [&](int at_most) {
    if (num_processes == 0) return;
    const int n = static_cast<int>(rng.uniform_int(1, at_most));
    for (int i = 0; i < n; ++i) {
      CrashEvent c;
      c.process = static_cast<ProcessId>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_processes) - 1));
      c.at = rng.uniform_int(spec.horizon / 10, spec.horizon);
      c.restart_at = c.at + rng.uniform_int(spec.crash_min_downtime,
                                            spec.crash_max_downtime);
      plan.crashes.push_back(c);
    }
  };

  switch (seed % 6) {
    case 0:  // pure loss, both planes
      plan.data.drop = prob(spec.max_drop);
      plan.control.drop = prob(spec.max_drop);
      break;
    case 1:  // duplication, both planes
      plan.data.duplicate = prob(spec.max_duplicate);
      plan.control.duplicate = prob(spec.max_duplicate);
      break;
    case 2:  // corruption, both planes
      plan.data.corrupt = prob(spec.max_corrupt);
      plan.control.corrupt = prob(spec.max_corrupt);
      break;
    case 3:  // link partitions
      add_partitions(spec.max_partitions);
      break;
    case 4:  // process crashes
      add_crashes(spec.max_crashes);
      break;
    default:  // everything at once, at gentler magnitudes
      plan.data.drop = prob(spec.max_drop / 2);
      plan.data.duplicate = prob(spec.max_duplicate / 2);
      plan.data.corrupt = prob(spec.max_corrupt / 2);
      plan.control.drop = prob(spec.max_drop / 2);
      plan.control.duplicate = prob(spec.max_duplicate / 2);
      add_partitions(1);
      add_crashes(1);
      break;
  }
  return plan;
}

}  // namespace ocsp::fault
