// Seeded, fully deterministic fault plans.
//
// A FaultPlan describes everything hostile the simulated substrate will do
// to one run: per-plane message drop/duplicate/corrupt probabilities, link
// partition windows with heal times, and process crash/restart events at
// virtual times.  Plans are plain data — the same plan plus the same seeds
// always yields the same committed trace, which is what lets the chaos
// sweep use Theorem 1 trace equality as its oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace ocsp::fault {

/// Per-plane message fault probabilities, applied independently per send.
struct PlaneFaults {
  /// Probability a message is silently dropped in flight.
  double drop = 0.0;
  /// Probability one extra copy of the message is delivered later.
  double duplicate = 0.0;
  /// Probability the payload is mangled in flight; the receiver's checksum
  /// detects and discards it, so protocol-wise this is a counted loss.
  double corrupt = 0.0;

  bool any() const { return drop > 0.0 || duplicate > 0.0 || corrupt > 0.0; }
};

/// Bidirectional partition of the (a, b) link over [start, end): every
/// message between the pair in the window is dropped; the link heals at
/// `end`.
struct PartitionWindow {
  ProcessId a = 0;
  ProcessId b = 0;
  sim::Time start = 0;
  sim::Time end = 0;
};

/// Crash `process` at virtual time `at`; restart it at `restart_at`.  State
/// committed before the crash survives (stable storage); uncommitted
/// speculation is aborted through the normal cascade machinery with an
/// incarnation bump.
struct CrashEvent {
  ProcessId process = 0;
  sim::Time at = 0;
  sim::Time restart_at = 0;
};

struct FaultPlan {
  bool enabled = false;
  PlaneFaults data;
  PlaneFaults control;
  std::vector<PartitionWindow> partitions;
  std::vector<CrashEvent> crashes;

  bool any_message_faults() const {
    return enabled && (data.any() || control.any() || !partitions.empty());
  }
  bool has_crashes() const { return enabled && !crashes.empty(); }

  /// Compact human-readable summary ("drop(d=0.21,c=0.21)+crash(p1)").
  std::string describe() const;
};

/// Knobs for the seeded chaos-plan generator.  Defaults are tuned so every
/// generated plan is survivable by the recovery stack: drop rates stay well
/// under the retransmit budget, partition windows heal inside the control
/// retry window, and crash downtime is shorter than both.
struct ChaosSpec {
  double max_drop = 0.35;
  double max_duplicate = 0.30;
  double max_corrupt = 0.25;
  int max_partitions = 2;
  sim::Time partition_min_len = sim::milliseconds(10);
  sim::Time partition_max_len = sim::milliseconds(200);
  int max_crashes = 2;
  sim::Time crash_min_downtime = sim::milliseconds(10);
  sim::Time crash_max_downtime = sim::milliseconds(120);
  /// Window in which partition starts and crash times are drawn.
  sim::Time horizon = sim::seconds(2);
};

/// Deterministically generate fault plan #seed.  `seed % 6` picks the plan
/// category — 0 drop, 1 duplicate, 2 corrupt, 3 partition, 4 crash,
/// 5 mixed — so any contiguous block of 6+ seeds spans every fault class;
/// the remaining seed bits drive the magnitudes.  Processes are assumed
/// densely numbered [0, num_processes).
FaultPlan make_chaos_plan(std::uint64_t seed, const ChaosSpec& spec,
                          std::uint32_t num_processes);

}  // namespace ocsp::fault
