// Dynamically typed values flowing through CSP programs.
//
// The IR is dynamically typed (like the Hermes programs the paper targeted
// were at the level we model them): a Value is nil, bool, int, real, string,
// or a list of values.  Values are the unit of guessing — a fork's predictor
// produces a Value per passed variable, and the join verifier compares
// Values for equality.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ocsp::csp {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Type { kNil, kBool, kInt, kReal, kString, kList };

  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(ValueList l) : data_(std::move(l)) {}

  Type type() const;
  bool is_nil() const { return type() == Type::kNil; }

  /// Typed accessors; OCSP_CHECK-fail on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_string() const;
  const ValueList& as_list() const;

  /// Truthiness: nil/false/0/0.0/""/[] are false, everything else true.
  bool truthy() const;

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

  /// Ordering for Lt/Le/...; defined for same-type numeric and string pairs.
  static int compare(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               ValueList>
      data_;
};

/// Arithmetic helpers; numeric ops promote int->real when mixed.
Value value_add(const Value& a, const Value& b);  ///< + (also string concat)
Value value_sub(const Value& a, const Value& b);
Value value_mul(const Value& a, const Value& b);
Value value_div(const Value& a, const Value& b);
Value value_mod(const Value& a, const Value& b);

}  // namespace ocsp::csp
