// Dynamically typed values flowing through CSP programs.
//
// The IR is dynamically typed (like the Hermes programs the paper targeted
// were at the level we model them): a Value is nil, bool, int, real, string,
// or a list of values.  Values are the unit of guessing — a fork's predictor
// produces a Value per passed variable, and the join verifier compares
// Values for equality.
//
// String and list payloads live behind shared immutable storage: copying a
// Value is a refcount bump, never a payload copy.  "Mutation" is rebinding
// (constructing a new Value); nothing can write through an existing
// payload, so aliased copies can never observe each other's changes.  This
// is what makes Env checkpoints and fork-time machine copies O(1) in the
// speculation layer (ISSUE 4 / the paper's §3.2 copy-elision economics).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ocsp::csp {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Type { kNil, kBool, kInt, kReal, kString, kList };

  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::make_shared<const std::string>(s)) {}
  Value(std::string s)
      : data_(std::make_shared<const std::string>(std::move(s))) {}
  Value(ValueList l)
      : data_(std::make_shared<const ValueList>(std::move(l))) {}

  Type type() const;
  bool is_nil() const { return type() == Type::kNil; }

  /// Typed accessors; OCSP_CHECK-fail on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_real() const;
  const std::string& as_string() const;
  const ValueList& as_list() const;

  /// Truthiness: nil/false/0/0.0/""/[] are false, everything else true.
  bool truthy() const;

  std::string to_string() const;

  /// Structural equality, with a same-payload fast path for shared
  /// storage.
  friend bool operator==(const Value& a, const Value& b);

  /// Ordering for Lt/Le/...; defined for same-type numeric and string pairs.
  static int compare(const Value& a, const Value& b);

  /// Approximate heap bytes of the payload (0 for inline scalars);
  /// recursive for lists.  Feeds the Env/checkpoint byte accounting.
  std::size_t approx_bytes() const;

  /// A value with freshly allocated payloads all the way down — shares no
  /// storage with this one.  Used by the deep-copy oracle state strategy.
  Value deep_copy() const;

  /// True when both values alias the same string/list payload object.
  /// Scalars are stored inline and never share; they return false.
  bool shares_storage_with(const Value& other) const;

 private:
  using StringPtr = std::shared_ptr<const std::string>;
  using ListPtr = std::shared_ptr<const ValueList>;

  // Alternative order must match Type's enumerator order: type() is
  // data_.index().
  std::variant<std::monostate, bool, std::int64_t, double, StringPtr,
               ListPtr>
      data_;
};

/// Arithmetic helpers; numeric ops promote int->real when mixed.
Value value_add(const Value& a, const Value& b);  ///< + (also string concat)
Value value_sub(const Value& a, const Value& b);
Value value_mul(const Value& a, const Value& b);
Value value_div(const Value& a, const Value& b);
Value value_mod(const Value& a, const Value& b);

}  // namespace ocsp::csp
