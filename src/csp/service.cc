#include "csp/service.h"

#include <utility>

#include "util/check.h"

namespace ocsp::csp {

StmtPtr native_service(std::map<std::string, NativeHandler> handlers,
                       ServiceConfig config) {
  auto table = std::make_shared<std::map<std::string, NativeHandler>>(
      std::move(handlers));
  const Value unknown = config.unknown_op_reply;
  auto dispatch = [table, unknown](Env& env, util::Rng& rng) {
    const std::string& op = env.get("__op").as_string();
    auto it = table->find(op);
    if (it == table->end()) {
      env.set("__reply", unknown);
      return;
    }
    const ValueList args = env.get("__args").as_list();
    env.set("__reply", it->second(args, env, rng));
  };

  std::vector<StmtPtr> body;
  body.push_back(receive());
  if (config.service_time > 0) body.push_back(compute(config.service_time));
  body.push_back(native("dispatch", dispatch));
  body.push_back(if_(var("__is_call"), reply(var("__reply"))));
  return while_(lit(Value(true)), seq(std::move(body)));
}

StmtPtr service_loop(std::map<std::string, StmtPtr> handlers,
                     sim::Time service_time) {
  // Build the dispatch chain: if (__op == "A") {...} else if ... else nop.
  StmtPtr chain = if_(var("__is_call"), reply(lit(Value())));
  for (auto it = handlers.rbegin(); it != handlers.rend(); ++it) {
    OCSP_CHECK(it->second != nullptr);
    chain = if_(eq(var("__op"), lit(Value(it->first))), it->second, chain);
  }
  std::vector<StmtPtr> body;
  body.push_back(receive());
  if (service_time > 0) body.push_back(compute(service_time));
  body.push_back(std::move(chain));
  return while_(lit(Value(true)), seq(std::move(body)));
}

StmtPtr echo_service(Value reply_value, sim::Time service_time) {
  std::map<std::string, NativeHandler> handlers;
  ServiceConfig config;
  config.service_time = service_time;
  config.unknown_op_reply = std::move(reply_value);
  return native_service(std::move(handlers), std::move(config));
}

}  // namespace ocsp::csp
