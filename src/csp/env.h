// Variable environment: the data half of a checkpointable machine state.
//
// Rollback in this library is "swap the state value back in"; Env is a
// plain copyable map so a checkpoint is an ordinary copy.  std::map keeps
// iteration deterministic, which matters for trace comparison.
#pragma once

#include <map>
#include <set>
#include <string>

#include "csp/value.h"

namespace ocsp::csp {

class Env {
 public:
  /// Read a variable; OCSP_CHECK-fails if absent (programs must assign
  /// before use — the transformer's passed-variable analysis relies on it).
  const Value& get(const std::string& name) const;

  /// Read a variable, or `fallback` if absent.
  const Value& get_or(const std::string& name, const Value& fallback) const;

  void set(const std::string& name, Value value);
  bool has(const std::string& name) const;
  void erase(const std::string& name);

  std::size_t size() const { return vars_.size(); }

  /// Names currently bound (deterministic order).
  std::set<std::string> names() const;

  std::string to_string() const;

  friend bool operator==(const Env&, const Env&) = default;

  auto begin() const { return vars_.begin(); }
  auto end() const { return vars_.end(); }

 private:
  std::map<std::string, Value> vars_;
};

}  // namespace ocsp::csp
