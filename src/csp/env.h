// Variable environment: the data half of a checkpointable machine state.
//
// Rollback in this library is "swap the state value back in"; Env is a
// copyable map, so a checkpoint is an ordinary copy.  Internally it is a
// persistent structural-sharing tree (csp/persistent_map.h): copying an
// Env is O(1) — the copies share every node — and a set/erase rebuilds
// only the touched root-to-leaf path, so checkpoint/fork/rollback cost is
// proportional to what changed, not to total state size.  Iteration is in
// sorted key order, which keeps trace comparison deterministic exactly as
// the std::map it replaced did.
#pragma once

#include <set>
#include <string>

#include "csp/persistent_map.h"
#include "csp/value.h"

namespace ocsp::csp {

class Env {
 public:
  /// Read a variable; OCSP_CHECK-fails if absent (programs must assign
  /// before use — the transformer's passed-variable analysis relies on it).
  /// The reference stays valid until this Env is next mutated.
  const Value& get(const std::string& name) const;

  /// Read a variable, or `fallback` if absent.  Returns by value: Value
  /// copies are O(1), and returning a reference here once dangled when the
  /// fallback was a temporary.
  Value get_or(const std::string& name, const Value& fallback) const;

  void set(const std::string& name, Value value);
  bool has(const std::string& name) const;
  void erase(const std::string& name);

  std::size_t size() const { return vars_.size(); }

  /// Names currently bound (deterministic order).
  std::set<std::string> names() const;

  std::string to_string() const;

  /// Structural equality, with an O(1) shared-root fast path.
  friend bool operator==(const Env& a, const Env& b) {
    return a.vars_ == b.vars_;
  }

  auto begin() const { return vars_.begin(); }
  auto end() const { return vars_.end(); }

  /// Approximate heap footprint of the bound state (O(1), aggregated in
  /// the tree).  The speculation layer's checkpoint accounting reports
  /// this as "bytes shared" under COW and "bytes copied" under the
  /// deep-copy oracle.
  std::size_t approx_bytes() const { return vars_.approx_bytes(); }

  /// True when both environments share their entire tree (copies that
  /// have not diverged).
  bool shares_root_with(const Env& other) const {
    return vars_.same_root(other.vars_);
  }

  /// An environment sharing no storage with this one — fresh nodes and
  /// fresh value payloads.  The kDeepCopy state strategy uses this to
  /// reproduce the historical O(|state|) checkpoint cost as a
  /// differential-testing oracle.
  Env deep_copy() const {
    Env out;
    out.vars_ = vars_.deep_copy();
    return out;
  }

 private:
  PersistentValueMap vars_;
};

}  // namespace ocsp::csp
