// Statement IR of CSP programs.
//
// A process's behaviour is a statement tree (immutable, shared).  The
// "compiler" of the paper is modelled by transformation passes over this IR
// (src/transform): a ParallelizeHint marks the S1;S2 boundary that the
// programmer/profiler designated, and the fork-insertion / call-streaming
// passes rewrite it into ForkStmt, the runtime primitive of section 4.2.1.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "csp/commute.h"
#include "csp/expr.h"
#include "sim/time.h"
#include "util/rng.h"

namespace ocsp::csp {

enum class StmtKind {
  kSeq,
  kAssign,
  kIf,
  kWhile,
  kCall,     // two-way: send request, block for reply
  kSend,     // one-way asynchronous send
  kReceive,  // block for a request; binds __op/__args/__caller/__reqid
  kReply,    // reply to the request bound by the latest Receive
  kPrint,    // external observable output (buffered while speculative)
  kCompute,  // burn virtual time (models local computation)
  kNative,   // run a native function against the Env (deterministic)
  kFork,     // optimistic fork (inserted by the transformer)
  kHint,     // parallelization hint marker (input to the transformer)
  kNop,
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// How to guess the value of one passed variable at a fork (section 3.2:
/// "the compiler has been told how to guess for values defined in S1").
struct PredictorSpec {
  enum class Kind {
    kConstant,       ///< always guess `constant`
    kExpr,           ///< evaluate `expr` over the fork-point Env
    kLastCommitted,  ///< per-site cache of the last committed actual value
    kStride,         ///< last committed value + fixed stride (ints)
  };
  Kind kind = Kind::kConstant;
  Value constant;
  ExprPtr expr;
  std::int64_t stride = 0;

  static PredictorSpec always(Value v);
  static PredictorSpec from_expr(ExprPtr e);
  static PredictorSpec last_committed(Value initial);
  static PredictorSpec strided(Value initial, std::int64_t stride);
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  StmtKind kind;
};

struct SeqStmt final : Stmt {
  explicit SeqStmt(std::vector<StmtPtr> b)
      : Stmt(StmtKind::kSeq), body(std::move(b)) {}
  std::vector<StmtPtr> body;
};

struct AssignStmt final : Stmt {
  AssignStmt(std::string v, ExprPtr e)
      : Stmt(StmtKind::kAssign), variable(std::move(v)), value(std::move(e)) {}
  std::string variable;
  ExprPtr value;
};

struct IfStmt final : Stmt {
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(StmtKind::kIf),
        cond(std::move(c)),
        then_branch(std::move(t)),
        else_branch(std::move(e)) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
};

struct WhileStmt final : Stmt {
  WhileStmt(ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::kWhile), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  StmtPtr body;
};

struct CallStmt final : Stmt {
  CallStmt(std::string t, std::string o, std::vector<ExprPtr> a,
           std::string r)
      : Stmt(StmtKind::kCall),
        target(std::move(t)),
        op(std::move(o)),
        args(std::move(a)),
        result_var(std::move(r)) {}
  std::string target;  ///< destination process name
  /// Computed destination: when non-null, evaluated at runtime (must yield a
  /// string) and `target` is ignored.  Static analysis cannot resolve the
  /// destination of such a call; it must record the expression's reads and
  /// treat the communication target as unknown.
  ExprPtr target_expr;
  std::string op;
  std::vector<ExprPtr> args;
  std::string result_var;  ///< variable receiving the reply value
};

struct SendStmt final : Stmt {
  SendStmt(std::string t, std::string o, std::vector<ExprPtr> a)
      : Stmt(StmtKind::kSend),
        target(std::move(t)),
        op(std::move(o)),
        args(std::move(a)) {}
  std::string target;
  ExprPtr target_expr;  ///< computed destination; see CallStmt::target_expr
  std::string op;
  std::vector<ExprPtr> args;
};

struct ReceiveStmt final : Stmt {
  ReceiveStmt() : Stmt(StmtKind::kReceive) {}
};

struct ReplyStmt final : Stmt {
  explicit ReplyStmt(ExprPtr v) : Stmt(StmtKind::kReply), value(std::move(v)) {}
  ExprPtr value;
};

struct PrintStmt final : Stmt {
  explicit PrintStmt(ExprPtr v) : Stmt(StmtKind::kPrint), value(std::move(v)) {}
  ExprPtr value;
};

struct ComputeStmt final : Stmt {
  explicit ComputeStmt(sim::Time d) : Stmt(StmtKind::kCompute), duration(d) {}
  sim::Time duration;
};

struct NativeStmt final : Stmt {
  using Fn = std::function<void(Env&, util::Rng&)>;
  NativeStmt(std::string l, Fn f)
      : Stmt(StmtKind::kNative), label(std::move(l)), fn(std::move(f)) {}
  std::string label;
  Fn fn;  ///< must be deterministic given (Env, Rng) for replay to be exact
};

/// How the runtime executes a fork site, decided by static analysis at
/// transform time (src/analysis).
enum class ForkMode : std::uint8_t {
  /// Paper machinery: guess the passed values, guard the right thread,
  /// verify at the join (the default; always sound).
  kSpeculative,
  /// Statically proven non-interfering: empty passed set, no
  /// anti-dependency, disjoint communication targets.  The runtime runs
  /// both threads without guesses, guards, checkpoints, or the commit
  /// protocol — only the program-order flush discipline remains.
  kSafe,
};

/// The runtime fork primitive.  `left` is S1; `right` is S2 followed by the
/// continuation of the enclosing program (right-branching structure of
/// section 3.2).  `passed` lists the variables S2 reads from S1; their
/// guesses come from `predictors` (defaulting the missing ones is an error
/// caught at transform time).
struct ForkStmt final : Stmt {
  ForkStmt() : Stmt(StmtKind::kFork) {}
  StmtPtr left;
  StmtPtr right;
  ForkMode mode = ForkMode::kSpeculative;
  std::vector<std::string> passed;
  std::map<std::string, PredictorSpec> predictors;
  /// Stable identifier of the fork site: keys the L-limit retry counter and
  /// the last-committed predictor cache.
  std::string site;
  /// Left-thread timeout guarding against divergence of S1 (section 3.3);
  /// 0 means use the runtime default.
  sim::Time timeout = 0;
  /// True if S2 overwrites a variable S1 reads (anti-dependency), forcing
  /// the state copy; false allows the copy elision of section 3.2.
  bool needs_copy = true;
  /// Per-passed-variable verification relaxation (commit-on-commute).
  /// Variables absent from the map verify exactly.  Populated by
  /// transform::reclassify when commutativity summaries license it; empty
  /// by default, which keeps the paper's exact-equality semantics.
  std::map<std::string, VerifyMode> verify;
};

/// Marker the programmer (or profiler) places between S1 and S2 inside a
/// SeqStmt.  The transformer replaces Seq(pre..., Hint, post...) by
/// Seq(pre..., Fork(left=S1, right=post)).  S1 is the statement immediately
/// preceding the hint unless `span` widens it.
struct HintStmt final : Stmt {
  HintStmt() : Stmt(StmtKind::kHint) {}
  std::map<std::string, PredictorSpec> predictors;
  /// Number of preceding statements forming S1 (default 1).
  std::size_t span = 1;
  std::string site;
  sim::Time timeout = 0;
};

struct NopStmt final : Stmt {
  NopStmt() : Stmt(StmtKind::kNop) {}
};

// ---- Builder helpers ------------------------------------------------------

StmtPtr seq(std::vector<StmtPtr> body);
StmtPtr assign(std::string var, ExprPtr value);
StmtPtr if_(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch = nullptr);
StmtPtr while_(ExprPtr cond, StmtPtr body);
StmtPtr call(std::string target, std::string op, std::vector<ExprPtr> args,
             std::string result_var);
StmtPtr send(std::string target, std::string op, std::vector<ExprPtr> args);
/// Call/send with a destination computed at runtime (`target` must evaluate
/// to a process-name string).
StmtPtr call_dyn(ExprPtr target, std::string op, std::vector<ExprPtr> args,
                 std::string result_var);
StmtPtr send_dyn(ExprPtr target, std::string op, std::vector<ExprPtr> args);
StmtPtr receive();
StmtPtr reply(ExprPtr value);
StmtPtr print(ExprPtr value);
StmtPtr compute(sim::Time duration);
StmtPtr native(std::string label, NativeStmt::Fn fn);
StmtPtr nop();
StmtPtr hint(std::map<std::string, PredictorSpec> predictors,
             std::string site, std::size_t span = 1, sim::Time timeout = 0);
std::shared_ptr<const ForkStmt> fork(StmtPtr left, StmtPtr right,
                                     std::vector<std::string> passed,
                                     std::map<std::string, PredictorSpec> preds,
                                     std::string site,
                                     sim::Time timeout = 0,
                                     bool needs_copy = true,
                                     ForkMode mode = ForkMode::kSpeculative);

/// Render a statement tree as indented pseudo-code (tests, debugging).
std::string to_string(const StmtPtr& stmt);

}  // namespace ocsp::csp
