#include "csp/env.h"

#include "util/check.h"

namespace ocsp::csp {

const Value& Env::get(const std::string& name) const {
  const Value* v = vars_.find(name);
  OCSP_CHECK_MSG(v != nullptr, ("unbound variable: " + name).c_str());
  return *v;
}

Value Env::get_or(const std::string& name, const Value& fallback) const {
  const Value* v = vars_.find(name);
  return v == nullptr ? fallback : *v;
}

void Env::set(const std::string& name, Value value) {
  vars_.set(name, std::move(value));
}

bool Env::has(const std::string& name) const {
  return vars_.find(name) != nullptr;
}

void Env::erase(const std::string& name) { vars_.erase(name); }

std::set<std::string> Env::names() const {
  std::set<std::string> out;
  for (const auto& [k, v] : vars_) out.insert(k);
  return out;
}

std::string Env::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : vars_) {
    if (!first) out += ", ";
    first = false;
    out += k + "=" + v.to_string();
  }
  return out + "}";
}

}  // namespace ocsp::csp
