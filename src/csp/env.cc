#include "csp/env.h"

#include "util/check.h"

namespace ocsp::csp {

const Value& Env::get(const std::string& name) const {
  auto it = vars_.find(name);
  OCSP_CHECK_MSG(it != vars_.end(), ("unbound variable: " + name).c_str());
  return it->second;
}

const Value& Env::get_or(const std::string& name,
                         const Value& fallback) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? fallback : it->second;
}

void Env::set(const std::string& name, Value value) {
  vars_[name] = std::move(value);
}

bool Env::has(const std::string& name) const { return vars_.count(name) > 0; }

void Env::erase(const std::string& name) { vars_.erase(name); }

std::set<std::string> Env::names() const {
  std::set<std::string> out;
  for (const auto& [k, v] : vars_) out.insert(k);
  return out;
}

std::string Env::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : vars_) {
    if (!first) out += ", ";
    first = false;
    out += k + "=" + v.to_string();
  }
  return out + "}";
}

}  // namespace ocsp::csp
