// Commutativity summaries for service operations.
//
// An OpCommSpec abstracts one operation's effect on the state of the
// service that implements it.  The state is partitioned into named
// *groups* (disjoint regions: a counter, a set, a log); the spec names the
// groups the op touches and how:
//
//   kPure    — reads its groups, writes nothing; the reply is a function
//              of the group state.
//   kAbelian — folds a commutative/associative update into its groups
//              (counter increment, set insert, append-only accumulate) and
//              replies a value independent of the group state (unit or a
//              constant).  Two abelian ops on the same group commute,
//              replies included, ONLY when they fold with the same operator
//              (FoldOp below): `x += a` and `x *= b` are each abelian on
//              their own, but (x+a)*b != x*b+a, so mixing operators on one
//              group is order-observable.
//   kMutate  — arbitrary read/write of its groups; the reply may depend on
//              the order of earlier ops ("return the new total").
//
// Summaries are either declared by the workload (natives are opaque to the
// analyzer) or inferred from service_loop dispatch bodies
// (analysis::infer_summaries).  The analyzer uses them to widen SAFE
// fork-site proofs across process boundaries, and the transformer uses
// them to relax join verification (VerifyMode below).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ocsp::csp {

/// Abstract access level of an op on one state group.  Ordered as a
/// diamond lattice: kNone below everything, kMutate above everything,
/// kPure and kAbelian incomparable (analysis::comm_join / comm_meet).
enum class CommLevel : std::uint8_t { kNone = 0, kPure, kAbelian, kMutate };

inline const char* to_string(CommLevel l) {
  switch (l) {
    case CommLevel::kNone: return "none";
    case CommLevel::kPure: return "pure";
    case CommLevel::kAbelian: return "abelian";
    case CommLevel::kMutate: return "mutate";
  }
  return "?";
}

/// The update operator a kAbelian op folds into its groups.  Abelian
/// compatibility requires *identical* folds: each operator family is
/// commutative and associative with itself, but reordering across families
/// ((x+a)*b vs (x*b)+a) or an unknown fold (kNone) is never licensed.
enum class FoldOp : std::uint8_t { kNone = 0, kAdd, kMul, kAnd, kOr };

inline const char* to_string(FoldOp f) {
  switch (f) {
    case FoldOp::kNone: return "none";
    case FoldOp::kAdd: return "+";
    case FoldOp::kMul: return "*";
    case FoldOp::kAnd: return "and";
    case FoldOp::kOr: return "or";
  }
  return "?";
}

struct OpCommSpec {
  std::vector<std::string> groups;
  CommLevel level = CommLevel::kMutate;
  /// Meaningful only for kAbelian; a declared abelian summary must name its
  /// fold or it will not commute with anything on a shared group.
  FoldOp fold = FoldOp::kNone;

  friend bool operator==(const OpCommSpec&, const OpCommSpec&) = default;
};

/// Summaries for one service process: op name -> spec.  An op absent from
/// the map is unsummarized and never commutes with anything.
using CommDecls = std::map<std::string, OpCommSpec>;

/// Per-passed-variable relaxation of join verification, derived statically
/// by the reclassification pass (transform::reclassify) from how the right
/// thread uses the variable:
///
///   kExact   — paper semantics: any guess/actual mismatch is a value fault.
///   kBoolean — the right thread only ever branches on the variable's
///              truthiness (If/While conditions, and/or/not operands); a
///              mismatch is forgiven when guess and actual agree as
///              booleans, because every branch taken under the guess is the
///              branch sequential execution would take.
///   kDead    — the right thread never reads the variable before it is
///              overwritten; any mismatch is forgiven.
enum class VerifyMode : std::uint8_t { kExact = 0, kBoolean, kDead };

inline const char* to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::kExact: return "exact";
    case VerifyMode::kBoolean: return "boolean";
    case VerifyMode::kDead: return "dead";
  }
  return "?";
}

}  // namespace ocsp::csp
