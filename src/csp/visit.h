// Shared statement traversal helpers.
//
// Every pass over the statement IR (def/use analysis, communication-effect
// analysis, hint expansion, call streaming, lint walks) needs the same
// child enumeration for the four compound statement kinds (Seq, If, While,
// Fork).  These helpers centralize that recursion so a pass only writes the
// per-kind logic it actually cares about.
#pragma once

#include <functional>

#include "csp/program.h"

namespace ocsp::csp {

/// Invoke `fn` on every direct child statement of `stmt` (Seq body members,
/// If branches, While body, Fork left/right).  Leaf statements have no
/// children; null branches (If without else) are skipped.
void for_each_child(const Stmt& stmt,
                    const std::function<void(const Stmt&)>& fn);

/// Pre-order traversal of the whole tree rooted at `stmt` (inclusive).
/// Null is a no-op.
void visit_preorder(const Stmt* stmt,
                    const std::function<void(const Stmt&)>& fn);

/// Rebuild `stmt` with every direct child replaced by `fn(child)`.  Leaf
/// statements are returned unchanged (same pointer); compound statements
/// are rebuilt only when at least one child changed, preserving structural
/// sharing.  This is the recursion skeleton of every rewriting pass: the
/// pass handles the kinds it transforms and delegates the rest here with
/// its own rewrite function as `fn`.
StmtPtr rewrite_children(const StmtPtr& stmt,
                         const std::function<StmtPtr(const StmtPtr&)>& fn);

}  // namespace ocsp::csp
