#include "csp/visit.h"

#include <vector>

namespace ocsp::csp {

void for_each_child(const Stmt& stmt,
                    const std::function<void(const Stmt&)>& fn) {
  switch (stmt.kind) {
    case StmtKind::kSeq: {
      const auto& s = static_cast<const SeqStmt&>(stmt);
      for (const auto& child : s.body) {
        if (child) fn(*child);
      }
      break;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      if (s.then_branch) fn(*s.then_branch);
      if (s.else_branch) fn(*s.else_branch);
      break;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      if (s.body) fn(*s.body);
      break;
    }
    case StmtKind::kFork: {
      const auto& s = static_cast<const ForkStmt&>(stmt);
      if (s.left) fn(*s.left);
      if (s.right) fn(*s.right);
      break;
    }
    default:
      break;  // leaf
  }
}

void visit_preorder(const Stmt* stmt,
                    const std::function<void(const Stmt&)>& fn) {
  if (stmt == nullptr) return;
  fn(*stmt);
  for_each_child(*stmt,
                 [&fn](const Stmt& child) { visit_preorder(&child, fn); });
}

StmtPtr rewrite_children(const StmtPtr& stmt,
                         const std::function<StmtPtr(const StmtPtr&)>& fn) {
  if (stmt == nullptr) return stmt;
  switch (stmt->kind) {
    case StmtKind::kSeq: {
      const auto& s = static_cast<const SeqStmt&>(*stmt);
      std::vector<StmtPtr> body;
      body.reserve(s.body.size());
      bool changed = false;
      for (const auto& child : s.body) {
        StmtPtr next = fn(child);
        changed |= next != child;
        body.push_back(std::move(next));
      }
      return changed ? seq(std::move(body)) : stmt;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(*stmt);
      StmtPtr then_branch = fn(s.then_branch);
      StmtPtr else_branch = s.else_branch ? fn(s.else_branch) : nullptr;
      if (then_branch == s.then_branch && else_branch == s.else_branch) {
        return stmt;
      }
      return if_(s.cond, std::move(then_branch), std::move(else_branch));
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(*stmt);
      StmtPtr body = fn(s.body);
      return body == s.body ? stmt : while_(s.cond, std::move(body));
    }
    case StmtKind::kFork: {
      const auto& s = static_cast<const ForkStmt&>(*stmt);
      StmtPtr left = fn(s.left);
      StmtPtr right = fn(s.right);
      if (left == s.left && right == s.right) return stmt;
      auto f = std::make_shared<ForkStmt>(s);
      f->left = std::move(left);
      f->right = std::move(right);
      return f;
    }
    default:
      return stmt;  // leaf
  }
}

}  // namespace ocsp::csp
