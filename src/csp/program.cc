#include "csp/program.h"

#include <sstream>

#include "util/check.h"

namespace ocsp::csp {

PredictorSpec PredictorSpec::always(Value v) {
  PredictorSpec spec;
  spec.kind = Kind::kConstant;
  spec.constant = std::move(v);
  return spec;
}

PredictorSpec PredictorSpec::from_expr(ExprPtr e) {
  OCSP_CHECK(e != nullptr);
  PredictorSpec spec;
  spec.kind = Kind::kExpr;
  spec.expr = std::move(e);
  return spec;
}

PredictorSpec PredictorSpec::last_committed(Value initial) {
  PredictorSpec spec;
  spec.kind = Kind::kLastCommitted;
  spec.constant = std::move(initial);
  return spec;
}

PredictorSpec PredictorSpec::strided(Value initial, std::int64_t stride) {
  PredictorSpec spec;
  spec.kind = Kind::kStride;
  spec.constant = std::move(initial);
  spec.stride = stride;
  return spec;
}

StmtPtr seq(std::vector<StmtPtr> body) {
  for (const auto& s : body) OCSP_CHECK(s != nullptr);
  return std::make_shared<SeqStmt>(std::move(body));
}

StmtPtr assign(std::string v, ExprPtr value) {
  OCSP_CHECK(value != nullptr);
  return std::make_shared<AssignStmt>(std::move(v), std::move(value));
}

StmtPtr if_(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch) {
  OCSP_CHECK(cond != nullptr);
  OCSP_CHECK(then_branch != nullptr);
  return std::make_shared<IfStmt>(std::move(cond), std::move(then_branch),
                                  std::move(else_branch));
}

StmtPtr while_(ExprPtr cond, StmtPtr body) {
  OCSP_CHECK(cond != nullptr);
  OCSP_CHECK(body != nullptr);
  return std::make_shared<WhileStmt>(std::move(cond), std::move(body));
}

StmtPtr call(std::string target, std::string op, std::vector<ExprPtr> args,
             std::string result_var) {
  return std::make_shared<CallStmt>(std::move(target), std::move(op),
                                    std::move(args), std::move(result_var));
}

StmtPtr send(std::string target, std::string op, std::vector<ExprPtr> args) {
  return std::make_shared<SendStmt>(std::move(target), std::move(op),
                                    std::move(args));
}

StmtPtr call_dyn(ExprPtr target, std::string op, std::vector<ExprPtr> args,
                 std::string result_var) {
  OCSP_CHECK(target != nullptr);
  auto s = std::make_shared<CallStmt>(std::string(), std::move(op),
                                      std::move(args), std::move(result_var));
  s->target_expr = std::move(target);
  return s;
}

StmtPtr send_dyn(ExprPtr target, std::string op, std::vector<ExprPtr> args) {
  OCSP_CHECK(target != nullptr);
  auto s = std::make_shared<SendStmt>(std::string(), std::move(op),
                                      std::move(args));
  s->target_expr = std::move(target);
  return s;
}

StmtPtr receive() { return std::make_shared<ReceiveStmt>(); }

StmtPtr reply(ExprPtr value) {
  OCSP_CHECK(value != nullptr);
  return std::make_shared<ReplyStmt>(std::move(value));
}

StmtPtr print(ExprPtr value) {
  OCSP_CHECK(value != nullptr);
  return std::make_shared<PrintStmt>(std::move(value));
}

StmtPtr compute(sim::Time duration) {
  OCSP_CHECK(duration >= 0);
  return std::make_shared<ComputeStmt>(duration);
}

StmtPtr native(std::string label, NativeStmt::Fn fn) {
  OCSP_CHECK(fn != nullptr);
  return std::make_shared<NativeStmt>(std::move(label), std::move(fn));
}

StmtPtr nop() { return std::make_shared<NopStmt>(); }

StmtPtr hint(std::map<std::string, PredictorSpec> predictors, std::string site,
             std::size_t span, sim::Time timeout) {
  auto h = std::make_shared<HintStmt>();
  h->predictors = std::move(predictors);
  h->site = std::move(site);
  h->span = span;
  h->timeout = timeout;
  return h;
}

std::shared_ptr<const ForkStmt> fork(StmtPtr left, StmtPtr right,
                                     std::vector<std::string> passed,
                                     std::map<std::string, PredictorSpec> preds,
                                     std::string site, sim::Time timeout,
                                     bool needs_copy, ForkMode mode) {
  OCSP_CHECK(left != nullptr);
  OCSP_CHECK(right != nullptr);
  for (const auto& v : passed) {
    OCSP_CHECK_MSG(preds.count(v) > 0, "missing predictor for passed var");
  }
  if (mode == ForkMode::kSafe) {
    OCSP_CHECK_MSG(passed.empty() && preds.empty() && !needs_copy,
                   "safe fork must have no passed set and no state copy");
  }
  auto f = std::make_shared<ForkStmt>();
  f->left = std::move(left);
  f->right = std::move(right);
  f->mode = mode;
  f->passed = std::move(passed);
  f->predictors = std::move(preds);
  f->site = std::move(site);
  f->timeout = timeout;
  f->needs_copy = needs_copy;
  return f;
}

namespace {

void render(const StmtPtr& stmt, int depth, std::ostringstream& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (!stmt) {
    out << pad << "<null>\n";
    return;
  }
  switch (stmt->kind) {
    case StmtKind::kSeq: {
      const auto& s = static_cast<const SeqStmt&>(*stmt);
      out << pad << "seq {\n";
      for (const auto& child : s.body) render(child, depth + 1, out);
      out << pad << "}\n";
      break;
    }
    case StmtKind::kAssign: {
      const auto& s = static_cast<const AssignStmt&>(*stmt);
      out << pad << s.variable << " = " << s.value->to_string() << "\n";
      break;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(*stmt);
      out << pad << "if " << s.cond->to_string() << " {\n";
      render(s.then_branch, depth + 1, out);
      if (s.else_branch) {
        out << pad << "} else {\n";
        render(s.else_branch, depth + 1, out);
      }
      out << pad << "}\n";
      break;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(*stmt);
      out << pad << "while " << s.cond->to_string() << " {\n";
      render(s.body, depth + 1, out);
      out << pad << "}\n";
      break;
    }
    case StmtKind::kCall: {
      const auto& s = static_cast<const CallStmt&>(*stmt);
      out << pad << s.result_var << " = call "
          << (s.target_expr ? "[" + s.target_expr->to_string() + "]"
                            : s.target)
          << "." << s.op << "(";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i) out << ", ";
        out << s.args[i]->to_string();
      }
      out << ")\n";
      break;
    }
    case StmtKind::kSend: {
      const auto& s = static_cast<const SendStmt&>(*stmt);
      out << pad << "send "
          << (s.target_expr ? "[" + s.target_expr->to_string() + "]"
                            : s.target)
          << "." << s.op << "(";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i) out << ", ";
        out << s.args[i]->to_string();
      }
      out << ")\n";
      break;
    }
    case StmtKind::kReceive:
      out << pad << "receive\n";
      break;
    case StmtKind::kReply: {
      const auto& s = static_cast<const ReplyStmt&>(*stmt);
      out << pad << "reply " << s.value->to_string() << "\n";
      break;
    }
    case StmtKind::kPrint: {
      const auto& s = static_cast<const PrintStmt&>(*stmt);
      out << pad << "print " << s.value->to_string() << "\n";
      break;
    }
    case StmtKind::kCompute: {
      const auto& s = static_cast<const ComputeStmt&>(*stmt);
      out << pad << "compute " << s.duration << "ns\n";
      break;
    }
    case StmtKind::kNative: {
      const auto& s = static_cast<const NativeStmt&>(*stmt);
      out << pad << "native <" << s.label << ">\n";
      break;
    }
    case StmtKind::kFork: {
      const auto& s = static_cast<const ForkStmt&>(*stmt);
      out << pad << "fork site=" << s.site << " passed=[";
      for (std::size_t i = 0; i < s.passed.size(); ++i) {
        if (i) out << ", ";
        out << s.passed[i];
      }
      out << "] copy=" << (s.needs_copy ? "yes" : "no")
          << (s.mode == ForkMode::kSafe ? " mode=safe" : "") << " {\n";
      out << pad << " left:\n";
      render(s.left, depth + 1, out);
      out << pad << " right:\n";
      render(s.right, depth + 1, out);
      out << pad << "}\n";
      break;
    }
    case StmtKind::kHint: {
      const auto& s = static_cast<const HintStmt&>(*stmt);
      out << pad << "@parallelize span=" << s.span << " site=" << s.site
          << "\n";
      break;
    }
    case StmtKind::kNop:
      out << pad << "nop\n";
      break;
  }
}

}  // namespace

std::string to_string(const StmtPtr& stmt) {
  std::ostringstream out;
  render(stmt, 0, out);
  return out.str();
}

}  // namespace ocsp::csp
