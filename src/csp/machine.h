// Checkpointable step interpreter for the CSP program IR.
//
// A Machine is a first-class value: (program, frame stack, Env, Rng).
// Copying a Machine is a checkpoint; assigning a saved copy back is a
// rollback.  This is the property the whole speculation layer leans on —
// both rollback strategies of section 4.1.3 (checkpoint-per-interval and
// replay-from-log) reduce to Machine copies.
//
// step() runs pure-local statements (assign/if/while/native/...) inline and
// pauses at every statement with an external effect (call, send, receive,
// reply, print, compute, fork), returning an Effect describing what the
// runtime must do.  The machine then waits in a state matching the effect
// until the runtime resumes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/env.h"
#include "csp/program.h"
#include "util/rng.h"

namespace ocsp::csp {

enum class MachineState {
  kReady,         ///< step() may be called
  kAwaitReply,    ///< paused at a Call; resume_with_value()
  kAwaitMessage,  ///< paused at a Receive; deliver()
  kAwaitCompute,  ///< paused at a Compute; resume()
  kAtFork,        ///< paused at a Fork; take_fork_branch()
  kDone,          ///< program finished
};

struct Effect {
  enum class Kind {
    kDone,
    kCall,
    kSend,
    kReceive,
    kReply,
    kPrint,
    kCompute,
    kFork,
  };
  Kind kind = Kind::kDone;
  std::string target;  // Call/Send: destination process name
  std::string op;      // Call/Send: operation name
  ValueList args;      // Call/Send: evaluated arguments
  Value value;         // Reply/Print: evaluated payload
  std::int64_t reply_caller = -1;  // Reply: __caller of the served request
  std::int64_t reply_reqid = -1;   // Reply: __reqid of the served request
  sim::Time duration = 0;          // Compute
  const ForkStmt* fork = nullptr;  // Fork
};

class Machine {
 public:
  /// An empty machine is Done.
  Machine() = default;

  Machine(StmtPtr program, Env env, util::Rng rng);

  MachineState state() const { return state_; }
  bool done() const { return state_ == MachineState::kDone; }

  /// Advance until an effect is produced.  Requires state() == kReady.
  Effect step();

  /// Complete a Call: binds the reply value to the call's result variable.
  void resume_with_value(Value v);

  /// Complete a Compute.
  void resume();

  /// Complete a Receive: binds __op/__args/__caller/__reqid/__is_call.
  void deliver(std::string op, ValueList args, std::int64_t caller,
               std::int64_t reqid, bool is_call);

  /// At a Fork: replace the fork frame with the chosen branch and return to
  /// kReady.  The speculation layer copies the machine first, then sends the
  /// original down the left branch and the copy down the right.
  void take_fork_branch(bool left);

  /// At a Fork: execute it pessimistically — S1, then S2, then the
  /// continuation, all in this machine.  Used when speculation is disabled
  /// or the fork site exhausted its retry limit L (section 3.3).
  void take_fork_sequential();

  Env& env() { return env_; }
  const Env& env() const { return env_; }
  util::Rng& rng() { return rng_; }

  /// Approximate heap footprint of the data state (the Env); O(1).
  std::size_t state_bytes() const { return env_.approx_bytes(); }

  /// Detach the Env into freshly allocated storage sharing nothing with
  /// any other machine.  Program AST and frame stack stay shared — the AST
  /// is immutable and frames are just (stmt, pc) pairs.  Used by the
  /// kDeepCopy state strategy to reproduce the historical O(|state|)
  /// checkpoint cost.
  void deep_copy_state() { env_ = env_.deep_copy(); }

  /// Frame-stack depth, exposed for tests and diagnostics.
  std::size_t depth() const { return stack_.size(); }

  /// The exact remaining program of this machine as an ordered statement
  /// list: for each frame from innermost out, the statement about to run,
  /// a Seq's unexecuted suffix, or a While (covering its condition and all
  /// later iterations).  Static analyses (e.g. the fork-time use-class
  /// oracle) can walk this to reason about everything the thread will
  /// still execute — the pending branch AND the enclosing continuation.
  /// Pointers stay valid while this machine (or any sharer of its program)
  /// is alive.
  std::vector<const Stmt*> pending_stmts() const;

 private:
  struct Frame {
    const Stmt* stmt;
    std::size_t pc;
  };

  void push(const Stmt* stmt);

  StmtPtr program_;  // owns the AST the frame pointers reference
  std::vector<Frame> stack_;
  Env env_;
  util::Rng rng_;
  MachineState state_ = MachineState::kDone;
  std::string pending_result_var_;
};

}  // namespace ocsp::csp
