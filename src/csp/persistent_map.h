// Persistent (path-copying) sorted map from variable name to Value.
//
// The structural-sharing backbone of csp::Env: nodes are immutable and
// shared between map instances, so copying a map is a shared_ptr copy
// (O(1)) and a set/erase rebuilds only the touched root-to-leaf path
// (O(log n)) — the classic persistent-search-tree construction (Driscoll
// et al., JCSS 1989).  Keys are kept in sorted order by an AVL balance,
// so iteration is deterministic and identical to the std::map the Env
// used to wrap.
//
// Every node carries the approximate heap footprint of its subtree
// (node overhead + key + value payload bytes), aggregated at node
// construction, so approx_bytes() — the quantity the speculation layer's
// checkpoint accounting reports — is O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "csp/value.h"
#include "util/check.h"

namespace ocsp::csp {

class PersistentValueMap {
 public:
  PersistentValueMap() = default;

  std::size_t size() const { return count_of(root_); }
  bool empty() const { return root_ == nullptr; }

  /// Pointer to the stored value, or nullptr if absent.  The pointer is
  /// valid while any map instance sharing the node stays alive and this
  /// instance is not mutated.
  const Value* find(const std::string& key) const {
    const Node* n = root_.get();
    while (n != nullptr) {
      const int c = key.compare(n->key);
      if (c == 0) return &n->value;
      n = (c < 0 ? n->left : n->right).get();
    }
    return nullptr;
  }

  /// Insert or overwrite; copies only the path to `key`.
  void set(const std::string& key, Value value) {
    root_ = insert(root_, key, std::move(value));
  }

  /// Remove `key` if present; copies only the path to it.
  bool erase(const std::string& key) {
    bool erased = false;
    root_ = remove(root_, key, &erased);
    return erased;
  }

  void clear() { root_ = nullptr; }

  /// Approximate heap footprint of the whole tree (O(1): aggregated per
  /// subtree at node construction).
  std::size_t approx_bytes() const { return root_ ? root_->bytes : 0; }

  /// True when the two maps share their entire tree — the O(1) equality
  /// and the "this checkpoint cost nothing" witness.
  bool same_root(const PersistentValueMap& other) const {
    return root_ == other.root_;
  }

  /// Fresh nodes and fresh value payloads all the way down: no storage is
  /// shared with this map afterwards.  The deep-copy oracle strategy uses
  /// this to reproduce the historical O(|state|) checkpoint cost.
  PersistentValueMap deep_copy() const {
    PersistentValueMap out;
    out.root_ = clone(root_);
    return out;
  }

  friend bool operator==(const PersistentValueMap& a,
                         const PersistentValueMap& b) {
    if (a.root_ == b.root_) return true;
    if (a.size() != b.size()) return false;
    auto ia = a.begin(), ib = b.begin();
    for (; ia != a.end(); ++ia, ++ib) {
      if ((*ia).first != (*ib).first || !((*ia).second == (*ib).second)) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    NodePtr left;
    NodePtr right;
    std::string key;
    Value value;
    std::uint32_t height = 1;
    std::size_t count = 1;
    std::size_t bytes = 0;  ///< subtree footprint, aggregated
  };

 public:
  /// In-order (sorted-key) iterator.  Pins the root it was created from,
  /// so the traversal stays valid even if the map is mutated mid-loop —
  /// it simply walks the pre-mutation snapshot.
  class const_iterator {
   public:
    using value_type = std::pair<const std::string&, const Value&>;

    const_iterator() = default;

    value_type operator*() const {
      OCSP_CHECK(!stack_.empty());
      const Node* n = stack_.back();
      return {n->key, n->value};
    }

    const_iterator& operator++() {
      OCSP_CHECK(!stack_.empty());
      const Node* n = stack_.back();
      stack_.pop_back();
      descend(n->right.get());
      return *this;
    }

    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.stack_ == b.stack_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class PersistentValueMap;
    explicit const_iterator(NodePtr root) : pinned_(std::move(root)) {
      descend(pinned_.get());
    }
    void descend(const Node* n) {
      for (; n != nullptr; n = n->left.get()) stack_.push_back(n);
    }
    NodePtr pinned_;
    std::vector<const Node*> stack_;
  };

  const_iterator begin() const { return const_iterator(root_); }
  const_iterator end() const { return const_iterator(); }

 private:
  static std::uint32_t height_of(const NodePtr& n) {
    return n ? n->height : 0;
  }
  static std::size_t count_of(const NodePtr& n) { return n ? n->count : 0; }
  static std::size_t bytes_of(const NodePtr& n) { return n ? n->bytes : 0; }

  static NodePtr make(NodePtr left, NodePtr right, std::string key,
                      Value value) {
    auto n = std::make_shared<Node>();
    n->key = std::move(key);
    n->value = std::move(value);
    n->height = 1 + std::max(height_of(left), height_of(right));
    n->count = 1 + count_of(left) + count_of(right);
    n->bytes = sizeof(Node) + n->key.size() + n->value.approx_bytes() +
               bytes_of(left) + bytes_of(right);
    n->left = std::move(left);
    n->right = std::move(right);
    return n;
  }

  /// Rebuild a node whose children may be out of balance by at most 2
  /// (the post-insert/erase invariant), applying the AVL rotations.
  static NodePtr balance(NodePtr left, NodePtr right, const std::string& key,
                         const Value& value) {
    const std::uint32_t hl = height_of(left), hr = height_of(right);
    if (hl > hr + 1) {
      const Node& l = *left;
      if (height_of(l.left) >= height_of(l.right)) {  // LL: rotate right
        return make(l.left, make(l.right, std::move(right), key, value),
                    l.key, l.value);
      }
      const Node& lr = *l.right;  // LR: double rotation
      return make(make(l.left, lr.left, l.key, l.value),
                  make(lr.right, std::move(right), key, value), lr.key,
                  lr.value);
    }
    if (hr > hl + 1) {
      const Node& r = *right;
      if (height_of(r.right) >= height_of(r.left)) {  // RR: rotate left
        return make(make(std::move(left), r.left, key, value), r.right,
                    r.key, r.value);
      }
      const Node& rl = *r.left;  // RL: double rotation
      return make(make(std::move(left), rl.left, key, value),
                  make(rl.right, r.right, r.key, r.value), rl.key, rl.value);
    }
    return make(std::move(left), std::move(right), key, value);
  }

  static NodePtr insert(const NodePtr& n, const std::string& key,
                        Value value) {
    if (!n) return make(nullptr, nullptr, key, std::move(value));
    const int c = key.compare(n->key);
    if (c == 0) return make(n->left, n->right, n->key, std::move(value));
    if (c < 0) {
      return balance(insert(n->left, key, std::move(value)), n->right,
                     n->key, n->value);
    }
    return balance(n->left, insert(n->right, key, std::move(value)), n->key,
                   n->value);
  }

  static NodePtr remove_min(const NodePtr& n) {
    if (!n->left) return n->right;
    return balance(remove_min(n->left), n->right, n->key, n->value);
  }

  static NodePtr remove(const NodePtr& n, const std::string& key,
                        bool* erased) {
    if (!n) return nullptr;
    const int c = key.compare(n->key);
    if (c < 0) {
      NodePtr left = remove(n->left, key, erased);
      if (!*erased) return n;
      return balance(std::move(left), n->right, n->key, n->value);
    }
    if (c > 0) {
      NodePtr right = remove(n->right, key, erased);
      if (!*erased) return n;
      return balance(n->left, std::move(right), n->key, n->value);
    }
    *erased = true;
    if (!n->left) return n->right;
    if (!n->right) return n->left;
    const Node* successor = n->right.get();
    while (successor->left) successor = successor->left.get();
    return balance(n->left, remove_min(n->right), successor->key,
                   successor->value);
  }

  static NodePtr clone(const NodePtr& n) {
    if (!n) return nullptr;
    return make(clone(n->left), clone(n->right), n->key,
                n->value.deep_copy());
  }

  NodePtr root_;
};

}  // namespace ocsp::csp
