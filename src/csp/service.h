// Helpers for building server processes.
//
// Servers in the paper (database, filesystem, window manager) are passive:
// they loop receiving requests, do some work, and reply.  Crucially they
// participate fully in the speculation protocol — a server that acted on a
// speculative request inherits the caller's commit guard and is rolled back
// if the guess aborts (Figure 3: Z is rolled back to point B).  These
// helpers only build the IR; the speculation machinery is orthogonal.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "csp/program.h"

namespace ocsp::csp {

/// Native request handler.  `args` are the request arguments, `state` is the
/// server's persistent Env (so handlers can read/write server state and be
/// rolled back with it), `rng` is the server's checkpointed RNG.  The return
/// value becomes the reply for two-way calls.
using NativeHandler =
    std::function<Value(const ValueList& args, Env& state, util::Rng& rng)>;

struct ServiceConfig {
  /// Virtual time consumed per request before the handler runs.
  sim::Time service_time = 0;
  /// Reply value for unknown operations (two-way calls only).
  Value unknown_op_reply = Value();
};

/// Build `while (true) { receive; compute(service_time); dispatch; reply }`.
/// Unknown ops get `unknown_op_reply`; one-way sends never reply.
StmtPtr native_service(std::map<std::string, NativeHandler> handlers,
                       ServiceConfig config = {});

/// Build a service whose per-op bodies are IR fragments.  Each fragment may
/// use __op/__args/__caller/__reqid and must issue its own Reply for calls.
StmtPtr service_loop(std::map<std::string, StmtPtr> handlers,
                     sim::Time service_time = 0);

/// A trivial "sink" service: replies `reply_value` to every call after
/// `service_time`.  Used by latency-focused benchmarks.
StmtPtr echo_service(Value reply_value, sim::Time service_time);

}  // namespace ocsp::csp
