// Expression language of the CSP program IR.
//
// Expressions are immutable, shared, and side-effect free; evaluation reads
// the Env only.  collect_reads() feeds the transformer's def/use analysis
// (computing the passed set {v_i} of a fork and detecting anti-dependencies
// that force a state copy — section 3.2 of the paper).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "csp/env.h"
#include "csp/value.h"

namespace ocsp::csp {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value eval(const Env& env) const = 0;
  virtual void collect_reads(std::set<std::string>& out) const = 0;
  virtual std::string to_string() const = 0;
};

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(Value v) : value_(std::move(v)) {}
  Value eval(const Env&) const override { return value_; }
  void collect_reads(std::set<std::string>&) const override {}
  std::string to_string() const override { return value_.to_string(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class VarExpr final : public Expr {
 public:
  explicit VarExpr(std::string name) : name_(std::move(name)) {}
  Value eval(const Env& env) const override { return env.get(name_); }
  void collect_reads(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  std::string to_string() const override { return name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

enum class UnaryOp { kNot, kNeg };

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand);
  Value eval(const Env& env) const override;
  void collect_reads(std::set<std::string>& out) const override;
  std::string to_string() const override;
  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  Value eval(const Env& env) const override;
  void collect_reads(std::set<std::string>& out) const override;
  std::string to_string() const override;
  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// list[index] — used to unpack the __args list bound by Receive.
class IndexExpr final : public Expr {
 public:
  IndexExpr(ExprPtr list, ExprPtr index);
  Value eval(const Env& env) const override;
  void collect_reads(std::set<std::string>& out) const override;
  std::string to_string() const override;
  const ExprPtr& list() const { return list_; }
  const ExprPtr& index() const { return index_; }

 private:
  ExprPtr list_;
  ExprPtr index_;
};

/// [e0, e1, ...] — list construction (call argument packing).
class ListExpr final : public Expr {
 public:
  explicit ListExpr(std::vector<ExprPtr> items);
  Value eval(const Env& env) const override;
  void collect_reads(std::set<std::string>& out) const override;
  std::string to_string() const override;
  const std::vector<ExprPtr>& items() const { return items_; }

 private:
  std::vector<ExprPtr> items_;
};

// ---- Builder helpers ------------------------------------------------------

ExprPtr lit(Value v);
ExprPtr var(std::string name);
ExprPtr not_(ExprPtr e);
ExprPtr neg(ExprPtr e);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div_(ExprPtr a, ExprPtr b);
ExprPtr mod(ExprPtr a, ExprPtr b);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr ne(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr le(ExprPtr a, ExprPtr b);
ExprPtr gt(ExprPtr a, ExprPtr b);
ExprPtr ge(ExprPtr a, ExprPtr b);
ExprPtr and_(ExprPtr a, ExprPtr b);
ExprPtr or_(ExprPtr a, ExprPtr b);
ExprPtr index(ExprPtr list, ExprPtr i);
ExprPtr list_of(std::vector<ExprPtr> items);

/// __args[i]: the i-th argument of the request currently being served.
ExprPtr arg(int i);

}  // namespace ocsp::csp
