#include "csp/expr.h"

#include "util/check.h"

namespace ocsp::csp {

UnaryExpr::UnaryExpr(UnaryOp op, ExprPtr operand)
    : op_(op), operand_(std::move(operand)) {
  OCSP_CHECK(operand_ != nullptr);
}

Value UnaryExpr::eval(const Env& env) const {
  Value v = operand_->eval(env);
  switch (op_) {
    case UnaryOp::kNot:
      return Value(!v.truthy());
    case UnaryOp::kNeg:
      if (v.type() == Value::Type::kInt) return Value(-v.as_int());
      return Value(-v.as_real());
  }
  return Value();
}

void UnaryExpr::collect_reads(std::set<std::string>& out) const {
  operand_->collect_reads(out);
}

std::string UnaryExpr::to_string() const {
  return std::string(op_ == UnaryOp::kNot ? "!" : "-") + "(" +
         operand_->to_string() + ")";
}

BinaryExpr::BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
    : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  OCSP_CHECK(lhs_ != nullptr);
  OCSP_CHECK(rhs_ != nullptr);
}

Value BinaryExpr::eval(const Env& env) const {
  // Short-circuit logical operators.
  if (op_ == BinaryOp::kAnd) {
    Value a = lhs_->eval(env);
    if (!a.truthy()) return Value(false);
    return Value(rhs_->eval(env).truthy());
  }
  if (op_ == BinaryOp::kOr) {
    Value a = lhs_->eval(env);
    if (a.truthy()) return Value(true);
    return Value(rhs_->eval(env).truthy());
  }
  Value a = lhs_->eval(env);
  Value b = rhs_->eval(env);
  switch (op_) {
    case BinaryOp::kAdd:
      return value_add(a, b);
    case BinaryOp::kSub:
      return value_sub(a, b);
    case BinaryOp::kMul:
      return value_mul(a, b);
    case BinaryOp::kDiv:
      return value_div(a, b);
    case BinaryOp::kMod:
      return value_mod(a, b);
    case BinaryOp::kEq:
      return Value(a == b);
    case BinaryOp::kNe:
      return Value(!(a == b));
    case BinaryOp::kLt:
      return Value(Value::compare(a, b) < 0);
    case BinaryOp::kLe:
      return Value(Value::compare(a, b) <= 0);
    case BinaryOp::kGt:
      return Value(Value::compare(a, b) > 0);
    case BinaryOp::kGe:
      return Value(Value::compare(a, b) >= 0);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return Value();
}

void BinaryExpr::collect_reads(std::set<std::string>& out) const {
  lhs_->collect_reads(out);
  rhs_->collect_reads(out);
}

std::string BinaryExpr::to_string() const {
  const char* op = "?";
  switch (op_) {
    case BinaryOp::kAdd: op = "+"; break;
    case BinaryOp::kSub: op = "-"; break;
    case BinaryOp::kMul: op = "*"; break;
    case BinaryOp::kDiv: op = "/"; break;
    case BinaryOp::kMod: op = "%"; break;
    case BinaryOp::kEq: op = "=="; break;
    case BinaryOp::kNe: op = "!="; break;
    case BinaryOp::kLt: op = "<"; break;
    case BinaryOp::kLe: op = "<="; break;
    case BinaryOp::kGt: op = ">"; break;
    case BinaryOp::kGe: op = ">="; break;
    case BinaryOp::kAnd: op = "&&"; break;
    case BinaryOp::kOr: op = "||"; break;
  }
  return "(" + lhs_->to_string() + " " + op + " " + rhs_->to_string() + ")";
}

IndexExpr::IndexExpr(ExprPtr list, ExprPtr index)
    : list_(std::move(list)), index_(std::move(index)) {
  OCSP_CHECK(list_ != nullptr);
  OCSP_CHECK(index_ != nullptr);
}

Value IndexExpr::eval(const Env& env) const {
  const Value list = list_->eval(env);
  const Value idx = index_->eval(env);
  const auto& items = list.as_list();
  const auto i = idx.as_int();
  OCSP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < items.size(),
                 "list index out of range");
  return items[static_cast<std::size_t>(i)];
}

void IndexExpr::collect_reads(std::set<std::string>& out) const {
  list_->collect_reads(out);
  index_->collect_reads(out);
}

std::string IndexExpr::to_string() const {
  return list_->to_string() + "[" + index_->to_string() + "]";
}

ListExpr::ListExpr(std::vector<ExprPtr> items) : items_(std::move(items)) {
  for (const auto& e : items_) OCSP_CHECK(e != nullptr);
}

Value ListExpr::eval(const Env& env) const {
  ValueList out;
  out.reserve(items_.size());
  for (const auto& e : items_) out.push_back(e->eval(env));
  return Value(std::move(out));
}

void ListExpr::collect_reads(std::set<std::string>& out) const {
  for (const auto& e : items_) e->collect_reads(out);
}

std::string ListExpr::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) out += ", ";
    out += items_[i]->to_string();
  }
  return out + "]";
}

ExprPtr lit(Value v) { return std::make_shared<ConstExpr>(std::move(v)); }
ExprPtr var(std::string name) {
  return std::make_shared<VarExpr>(std::move(name));
}
ExprPtr not_(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(e));
}
ExprPtr neg(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNeg, std::move(e));
}

namespace {
ExprPtr bin(BinaryOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(op, std::move(a), std::move(b));
}
}  // namespace

ExprPtr add(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kAdd, a, b); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kSub, a, b); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kMul, a, b); }
ExprPtr div_(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kDiv, a, b); }
ExprPtr mod(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kMod, a, b); }
ExprPtr eq(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kEq, a, b); }
ExprPtr ne(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kNe, a, b); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kLt, a, b); }
ExprPtr le(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kLe, a, b); }
ExprPtr gt(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kGt, a, b); }
ExprPtr ge(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kGe, a, b); }
ExprPtr and_(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kAnd, a, b); }
ExprPtr or_(ExprPtr a, ExprPtr b) { return bin(BinaryOp::kOr, a, b); }
ExprPtr index(ExprPtr list, ExprPtr i) {
  return std::make_shared<IndexExpr>(std::move(list), std::move(i));
}
ExprPtr list_of(std::vector<ExprPtr> items) {
  return std::make_shared<ListExpr>(std::move(items));
}

ExprPtr arg(int i) { return index(var("__args"), lit(Value(i))); }

}  // namespace ocsp::csp
