#include "csp/machine.h"

#include "util/check.h"

namespace ocsp::csp {

Machine::Machine(StmtPtr program, Env env, util::Rng rng)
    : program_(std::move(program)), env_(std::move(env)), rng_(rng) {
  OCSP_CHECK(program_ != nullptr);
  push(program_.get());
  state_ = MachineState::kReady;
}

void Machine::push(const Stmt* stmt) { stack_.push_back(Frame{stmt, 0}); }

Effect Machine::step() {
  OCSP_CHECK_MSG(state_ == MachineState::kReady, "step() while not ready");
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Stmt* stmt = frame.stmt;
    switch (stmt->kind) {
      case StmtKind::kSeq: {
        const auto& s = static_cast<const SeqStmt&>(*stmt);
        if (frame.pc < s.body.size()) {
          const Stmt* child = s.body[frame.pc].get();
          ++frame.pc;
          push(child);
        } else {
          stack_.pop_back();
        }
        break;
      }
      case StmtKind::kAssign: {
        const auto& s = static_cast<const AssignStmt&>(*stmt);
        env_.set(s.variable, s.value->eval(env_));
        stack_.pop_back();
        break;
      }
      case StmtKind::kIf: {
        const auto& s = static_cast<const IfStmt&>(*stmt);
        const bool taken = s.cond->eval(env_).truthy();
        stack_.pop_back();
        if (taken) {
          push(s.then_branch.get());
        } else if (s.else_branch) {
          push(s.else_branch.get());
        }
        break;
      }
      case StmtKind::kWhile: {
        const auto& s = static_cast<const WhileStmt&>(*stmt);
        if (s.cond->eval(env_).truthy()) {
          push(s.body.get());  // frame stays; cond re-evaluated on return
        } else {
          stack_.pop_back();
        }
        break;
      }
      case StmtKind::kNative: {
        const auto& s = static_cast<const NativeStmt&>(*stmt);
        stack_.pop_back();
        s.fn(env_, rng_);
        break;
      }
      case StmtKind::kNop:
      case StmtKind::kHint:  // untransformed hints behave as no-ops
        stack_.pop_back();
        break;
      case StmtKind::kCall: {
        const auto& s = static_cast<const CallStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kCall;
        e.target = s.target_expr ? s.target_expr->eval(env_).as_string()
                                 : s.target;
        e.op = s.op;
        for (const auto& a : s.args) e.args.push_back(a->eval(env_));
        pending_result_var_ = s.result_var;
        stack_.pop_back();
        state_ = MachineState::kAwaitReply;
        return e;
      }
      case StmtKind::kSend: {
        const auto& s = static_cast<const SendStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kSend;
        e.target = s.target_expr ? s.target_expr->eval(env_).as_string()
                                 : s.target;
        e.op = s.op;
        for (const auto& a : s.args) e.args.push_back(a->eval(env_));
        stack_.pop_back();
        return e;  // state stays kReady
      }
      case StmtKind::kReceive: {
        stack_.pop_back();
        state_ = MachineState::kAwaitMessage;
        Effect e;
        e.kind = Effect::Kind::kReceive;
        return e;
      }
      case StmtKind::kReply: {
        const auto& s = static_cast<const ReplyStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kReply;
        e.value = s.value->eval(env_);
        e.reply_caller = env_.get("__caller").as_int();
        e.reply_reqid = env_.get("__reqid").as_int();
        stack_.pop_back();
        return e;  // state stays kReady
      }
      case StmtKind::kPrint: {
        const auto& s = static_cast<const PrintStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kPrint;
        e.value = s.value->eval(env_);
        stack_.pop_back();
        return e;  // state stays kReady
      }
      case StmtKind::kCompute: {
        const auto& s = static_cast<const ComputeStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kCompute;
        e.duration = s.duration;
        stack_.pop_back();
        state_ = MachineState::kAwaitCompute;
        return e;
      }
      case StmtKind::kFork: {
        const auto& s = static_cast<const ForkStmt&>(*stmt);
        Effect e;
        e.kind = Effect::Kind::kFork;
        e.fork = &s;
        state_ = MachineState::kAtFork;  // frame stays until branch taken
        return e;
      }
    }
  }
  state_ = MachineState::kDone;
  Effect e;
  e.kind = Effect::Kind::kDone;
  return e;
}

void Machine::resume_with_value(Value v) {
  OCSP_CHECK_MSG(state_ == MachineState::kAwaitReply,
                 "resume_with_value() while not awaiting a reply");
  if (!pending_result_var_.empty()) {
    env_.set(pending_result_var_, std::move(v));
  }
  pending_result_var_.clear();
  state_ = MachineState::kReady;
}

void Machine::resume() {
  OCSP_CHECK_MSG(state_ == MachineState::kAwaitCompute,
                 "resume() while not awaiting a compute");
  state_ = MachineState::kReady;
}

void Machine::take_fork_sequential() {
  OCSP_CHECK_MSG(state_ == MachineState::kAtFork,
                 "take_fork_sequential() while not at a fork");
  OCSP_CHECK(!stack_.empty());
  const Stmt* top = stack_.back().stmt;
  OCSP_CHECK(top->kind == StmtKind::kFork);
  const auto& f = static_cast<const ForkStmt&>(*top);
  stack_.pop_back();
  push(f.right.get());  // runs second
  push(f.left.get());   // runs first
  state_ = MachineState::kReady;
}

void Machine::deliver(std::string op, ValueList args, std::int64_t caller,
                      std::int64_t reqid, bool is_call) {
  OCSP_CHECK_MSG(state_ == MachineState::kAwaitMessage,
                 "deliver() while not awaiting a message");
  env_.set("__op", Value(std::move(op)));
  env_.set("__args", Value(std::move(args)));
  env_.set("__caller", Value(caller));
  env_.set("__reqid", Value(reqid));
  env_.set("__is_call", Value(is_call));
  state_ = MachineState::kReady;
}

std::vector<const Stmt*> Machine::pending_stmts() const {
  std::vector<const Stmt*> out;
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    switch (it->stmt->kind) {
      case StmtKind::kSeq: {
        // body[pc-1] is the child executing in the frame above; the suffix
        // from pc is what this frame will run next.
        const auto& s = static_cast<const SeqStmt&>(*it->stmt);
        for (std::size_t i = it->pc; i < s.body.size(); ++i) {
          out.push_back(s.body[i].get());
        }
        break;
      }
      case StmtKind::kWhile:
        // The frame re-evaluates the condition when the body (above)
        // returns; the While itself summarizes all later iterations.
        out.push_back(it->stmt);
        break;
      default:
        out.push_back(it->stmt);
        break;
    }
  }
  return out;
}

void Machine::take_fork_branch(bool left) {
  OCSP_CHECK_MSG(state_ == MachineState::kAtFork,
                 "take_fork_branch() while not at a fork");
  OCSP_CHECK(!stack_.empty());
  const Stmt* top = stack_.back().stmt;
  OCSP_CHECK(top->kind == StmtKind::kFork);
  const auto& f = static_cast<const ForkStmt&>(*top);
  stack_.pop_back();
  if (left) {
    // The left thread executes S1 only; the continuation of the enclosing
    // program belongs to the right thread (section 3.2), so the remaining
    // frames are dropped.
    stack_.clear();
    push(f.left.get());
  } else {
    push(f.right.get());
  }
  state_ = MachineState::kReady;
}

}  // namespace ocsp::csp
