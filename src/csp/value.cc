#include "csp/value.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ocsp::csp {

Value::Type Value::type() const {
  return static_cast<Type>(data_.index());
}

bool Value::as_bool() const {
  OCSP_CHECK_MSG(type() == Type::kBool, "Value is not bool");
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  OCSP_CHECK_MSG(type() == Type::kInt, "Value is not int");
  return std::get<std::int64_t>(data_);
}

double Value::as_real() const {
  if (type() == Type::kInt) return static_cast<double>(as_int());
  OCSP_CHECK_MSG(type() == Type::kReal, "Value is not real");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  OCSP_CHECK_MSG(type() == Type::kString, "Value is not string");
  return *std::get<StringPtr>(data_);
}

const ValueList& Value::as_list() const {
  OCSP_CHECK_MSG(type() == Type::kList, "Value is not list");
  return *std::get<ListPtr>(data_);
}

bool Value::truthy() const {
  switch (type()) {
    case Type::kNil:
      return false;
    case Type::kBool:
      return std::get<bool>(data_);
    case Type::kInt:
      return std::get<std::int64_t>(data_) != 0;
    case Type::kReal:
      return std::get<double>(data_) != 0.0;
    case Type::kString:
      return !as_string().empty();
    case Type::kList:
      return !as_list().empty();
  }
  return false;
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNil:
      return "nil";
    case Type::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case Type::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case Type::kReal: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    case Type::kString:
      return "\"" + as_string() + "\"";
    case Type::kList: {
      std::string out = "[";
      const auto& list = as_list();
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i) out += ", ";
        out += list[i].to_string();
      }
      return out + "]";
    }
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) return false;
  switch (a.type()) {
    case Value::Type::kString: {
      const auto& pa = std::get<Value::StringPtr>(a.data_);
      const auto& pb = std::get<Value::StringPtr>(b.data_);
      return pa == pb || *pa == *pb;
    }
    case Value::Type::kList: {
      const auto& pa = std::get<Value::ListPtr>(a.data_);
      const auto& pb = std::get<Value::ListPtr>(b.data_);
      if (pa == pb) return true;
      if (pa->size() != pb->size()) return false;
      for (std::size_t i = 0; i < pa->size(); ++i) {
        if (!((*pa)[i] == (*pb)[i])) return false;
      }
      return true;
    }
    default:
      return a.data_ == b.data_;
  }
}

int Value::compare(const Value& a, const Value& b) {
  const bool numeric = (a.type() == Type::kInt || a.type() == Type::kReal) &&
                       (b.type() == Type::kInt || b.type() == Type::kReal);
  if (numeric) {
    if (a.type() == Type::kInt && b.type() == Type::kInt) {
      const auto x = a.as_int(), y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.as_real(), y = b.as_real();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == Type::kString && b.type() == Type::kString) {
    return a.as_string().compare(b.as_string());
  }
  OCSP_CHECK_MSG(false, "Value::compare on incomparable types");
  return 0;
}

std::size_t Value::approx_bytes() const {
  switch (type()) {
    case Type::kString:
      return sizeof(std::string) + as_string().size();
    case Type::kList: {
      std::size_t bytes = sizeof(ValueList);
      for (const auto& v : as_list()) bytes += sizeof(Value) + v.approx_bytes();
      return bytes;
    }
    default:
      return 0;
  }
}

Value Value::deep_copy() const {
  switch (type()) {
    case Type::kString:
      return Value(std::string(as_string()));
    case Type::kList: {
      ValueList out;
      out.reserve(as_list().size());
      for (const auto& v : as_list()) out.push_back(v.deep_copy());
      return Value(std::move(out));
    }
    default:
      return *this;
  }
}

bool Value::shares_storage_with(const Value& other) const {
  if (data_.index() != other.data_.index()) return false;
  switch (type()) {
    case Type::kString:
      return std::get<StringPtr>(data_) == std::get<StringPtr>(other.data_);
    case Type::kList:
      return std::get<ListPtr>(data_) == std::get<ListPtr>(other.data_);
    default:
      return false;
  }
}

namespace {
bool both_numeric(const Value& a, const Value& b) {
  auto num = [](const Value& v) {
    return v.type() == Value::Type::kInt || v.type() == Value::Type::kReal;
  };
  return num(a) && num(b);
}
bool both_int(const Value& a, const Value& b) {
  return a.type() == Value::Type::kInt && b.type() == Value::Type::kInt;
}
}  // namespace

Value value_add(const Value& a, const Value& b) {
  if (a.type() == Value::Type::kString && b.type() == Value::Type::kString) {
    return Value(a.as_string() + b.as_string());
  }
  OCSP_CHECK_MSG(both_numeric(a, b), "add on non-numeric values");
  if (both_int(a, b)) return Value(a.as_int() + b.as_int());
  return Value(a.as_real() + b.as_real());
}

Value value_sub(const Value& a, const Value& b) {
  OCSP_CHECK_MSG(both_numeric(a, b), "sub on non-numeric values");
  if (both_int(a, b)) return Value(a.as_int() - b.as_int());
  return Value(a.as_real() - b.as_real());
}

Value value_mul(const Value& a, const Value& b) {
  OCSP_CHECK_MSG(both_numeric(a, b), "mul on non-numeric values");
  if (both_int(a, b)) return Value(a.as_int() * b.as_int());
  return Value(a.as_real() * b.as_real());
}

Value value_div(const Value& a, const Value& b) {
  OCSP_CHECK_MSG(both_numeric(a, b), "div on non-numeric values");
  if (both_int(a, b)) {
    OCSP_CHECK_MSG(b.as_int() != 0, "integer division by zero");
    return Value(a.as_int() / b.as_int());
  }
  return Value(a.as_real() / b.as_real());
}

Value value_mod(const Value& a, const Value& b) {
  OCSP_CHECK_MSG(both_int(a, b), "mod on non-int values");
  OCSP_CHECK_MSG(b.as_int() != 0, "modulo by zero");
  return Value(a.as_int() % b.as_int());
}

}  // namespace ocsp::csp
