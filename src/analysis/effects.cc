#include "analysis/effects.h"

#include <algorithm>
#include <iterator>

#include "csp/visit.h"

namespace ocsp::analysis {

namespace {

void union_into(std::set<std::string>& dst, const std::set<std::string>& src) {
  dst.insert(src.begin(), src.end());
}

void union_ops_into(std::map<std::string, std::set<std::string>>& dst,
                    const std::map<std::string, std::set<std::string>>& src) {
  for (const auto& [target, ops] : src) {
    dst[target].insert(ops.begin(), ops.end());
  }
}

void intersect_into(std::set<std::string>& dst,
                    const std::set<std::string>& src) {
  for (auto it = dst.begin(); it != dst.end();) {
    if (src.count(*it) == 0) {
      it = dst.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

std::set<std::string> set_intersection(const std::set<std::string>& a,
                                       const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

std::set<std::string> CommEffects::may_targets() const {
  std::set<std::string> out = may_call_targets;
  union_into(out, may_send_targets);
  return out;
}

bool CommEffects::may_communicate() const {
  return opaque || unknown_target || may_receive || may_print || may_reply ||
         !may_call_targets.empty() || !may_send_targets.empty();
}

void CommEffects::merge_seq(const CommEffects& next) {
  union_into(reads, next.reads);
  union_into(writes, next.writes);
  union_into(may_call_targets, next.may_call_targets);
  union_into(must_call_targets, next.must_call_targets);
  union_into(may_send_targets, next.may_send_targets);
  union_into(must_send_targets, next.must_send_targets);
  union_ops_into(may_ops, next.may_ops);
  may_receive |= next.may_receive;
  must_receive |= next.must_receive;
  may_print |= next.may_print;
  must_print |= next.must_print;
  may_reply |= next.may_reply;
  opaque |= next.opaque;
  unknown_target |= next.unknown_target;
  has_spec_site |= next.has_spec_site;
}

void CommEffects::merge_alt(const CommEffects& other) {
  union_into(reads, other.reads);
  union_into(writes, other.writes);
  union_into(may_call_targets, other.may_call_targets);
  union_into(may_send_targets, other.may_send_targets);
  union_ops_into(may_ops, other.may_ops);
  intersect_into(must_call_targets, other.must_call_targets);
  intersect_into(must_send_targets, other.must_send_targets);
  may_receive |= other.may_receive;
  must_receive &= other.must_receive;
  may_print |= other.may_print;
  must_print &= other.must_print;
  may_reply |= other.may_reply;
  opaque |= other.opaque;
  unknown_target |= other.unknown_target;
  has_spec_site |= other.has_spec_site;
}

void CommEffects::drop_must() {
  must_call_targets.clear();
  must_send_targets.clear();
  must_receive = false;
  must_print = false;
}

namespace {

void collect_arg_reads(const std::vector<csp::ExprPtr>& args,
                       std::set<std::string>& out) {
  for (const auto& a : args) {
    if (a) a->collect_reads(out);
  }
}

CommEffects effects_of(const csp::Stmt& stmt) {
  using csp::StmtKind;
  CommEffects e;
  switch (stmt.kind) {
    case StmtKind::kSeq:
      // All members execute in order: must-effects accumulate too.
      csp::for_each_child(stmt, [&e](const csp::Stmt& child) {
        e.merge_seq(effects_of(child));
      });
      break;
    case StmtKind::kAssign: {
      const auto& s = static_cast<const csp::AssignStmt&>(stmt);
      s.value->collect_reads(e.reads);
      e.writes.insert(s.variable);
      break;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const csp::IfStmt&>(stmt);
      s.cond->collect_reads(e.reads);
      CommEffects then_e = effects_of(*s.then_branch);
      if (s.else_branch) {
        then_e.merge_alt(effects_of(*s.else_branch));
      } else {
        // Missing else = empty branch: nothing is certain.
        then_e.drop_must();
      }
      e.merge_seq(then_e);
      break;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const csp::WhileStmt&>(stmt);
      s.cond->collect_reads(e.reads);
      // Zero iterations are always possible: body contributes may only.
      CommEffects body_e = effects_of(*s.body);
      body_e.drop_must();
      e.merge_seq(body_e);
      break;
    }
    case StmtKind::kCall: {
      const auto& s = static_cast<const csp::CallStmt&>(stmt);
      collect_arg_reads(s.args, e.reads);
      if (!s.result_var.empty()) e.writes.insert(s.result_var);
      if (s.target_expr) {
        s.target_expr->collect_reads(e.reads);
        e.unknown_target = true;
      } else {
        e.may_call_targets.insert(s.target);
        e.must_call_targets.insert(s.target);
        e.may_ops[s.target].insert(s.op);
      }
      break;
    }
    case StmtKind::kSend: {
      const auto& s = static_cast<const csp::SendStmt&>(stmt);
      collect_arg_reads(s.args, e.reads);
      if (s.target_expr) {
        s.target_expr->collect_reads(e.reads);
        e.unknown_target = true;
      } else {
        e.may_send_targets.insert(s.target);
        e.must_send_targets.insert(s.target);
        e.may_ops[s.target].insert(s.op);
      }
      break;
    }
    case StmtKind::kReceive:
      e.may_receive = e.must_receive = true;
      // Receive binds the request metadata variables (see Machine).
      e.writes.insert("__op");
      e.writes.insert("__args");
      e.writes.insert("__caller");
      e.writes.insert("__reqid");
      e.writes.insert("__is_call");
      break;
    case StmtKind::kReply: {
      const auto& s = static_cast<const csp::ReplyStmt&>(stmt);
      s.value->collect_reads(e.reads);
      e.reads.insert("__caller");
      e.reads.insert("__reqid");
      e.may_reply = true;
      break;
    }
    case StmtKind::kPrint: {
      const auto& s = static_cast<const csp::PrintStmt&>(stmt);
      s.value->collect_reads(e.reads);
      e.may_print = e.must_print = true;
      break;
    }
    case StmtKind::kCompute:
    case StmtKind::kNop:
      break;
    case StmtKind::kNative:
      e.opaque = true;
      break;
    case StmtKind::kFork: {
      // Both branches execute (in parallel); the summary is their
      // sequential composition, which over-approximates any interleaving.
      const auto& s = static_cast<const csp::ForkStmt&>(stmt);
      e.has_spec_site = true;
      for (const auto& [var, spec] : s.predictors) {
        (void)var;
        if (spec.expr) spec.expr->collect_reads(e.reads);
      }
      csp::for_each_child(stmt, [&e](const csp::Stmt& child) {
        e.merge_seq(effects_of(child));
      });
      break;
    }
    case StmtKind::kHint: {
      const auto& s = static_cast<const csp::HintStmt&>(stmt);
      e.has_spec_site = true;
      for (const auto& [var, spec] : s.predictors) {
        (void)var;
        if (spec.expr) spec.expr->collect_reads(e.reads);
      }
      break;
    }
  }
  return e;
}

}  // namespace

CommEffects analyze_effects(const csp::Stmt* stmt) {
  if (stmt == nullptr) return {};
  return effects_of(*stmt);
}

CommEffects analyze_effects(const csp::StmtPtr& stmt) {
  return analyze_effects(stmt.get());
}

}  // namespace ocsp::analysis
