// Communication-effect analysis over the CSP statement IR.
//
// Extends the classic def/use summary (reads/writes) with what a fragment
// may do to the outside world: which processes it may call (two-way) or
// send to (one-way), whether it may receive, reply, or emit external
// output.  Two precision channels are kept side by side:
//
//   * may-sets  — an over-approximation, widened by UNION at If branches
//     and While bodies.  Sound for proving absence ("these two fragments
//     cannot contact the same process").
//   * must-sets — an under-approximation, narrowed by INTERSECTION at If
//     branches and dropped entirely for While bodies (zero iterations are
//     always possible).  Sound for proving presence ("both halves of this
//     fork WILL call server T"), which is what the statically-certain
//     time-fault diagnosis of section 2.2 needs.
//
// Opaque nodes (NativeStmt) and computed destinations (target_expr) widen
// to top: the `opaque` / `unknown_target` flags tell a client that the
// may-sets are lower bounds and every proof of absence must be refused.
#pragma once

#include <map>
#include <set>
#include <string>

#include "csp/program.h"

namespace ocsp::analysis {

struct CommEffects {
  // Data effects (may-style over-approximations, as in transform::analyze).
  std::set<std::string> reads;
  std::set<std::string> writes;

  // Communication effects.
  std::set<std::string> may_call_targets;
  std::set<std::string> must_call_targets;
  std::set<std::string> may_send_targets;
  std::set<std::string> must_send_targets;
  bool may_receive = false;
  bool must_receive = false;
  bool may_print = false;   ///< external observable output (PrintStmt)
  bool must_print = false;
  bool may_reply = false;

  /// Per-target operation names the fragment may invoke there (calls and
  /// sends with a static destination).  May-style: widened by union
  /// everywhere.  Feeds the commutativity analysis — when two fragments
  /// share a target, their op sets decide whether the interference
  /// commutes (analysis/commute.h).
  std::map<std::string, std::set<std::string>> may_ops;

  /// Contains a NativeStmt: every invisible effect is possible, so the
  /// may-sets are lower bounds and proofs of absence are invalid.
  bool opaque = false;
  /// Contains a call/send whose destination is a runtime expression; the
  /// may-target sets are lower bounds.
  bool unknown_target = false;
  /// Contains a nested ParallelizeHint or ForkStmt.
  bool has_spec_site = false;

  /// Union of may call+send targets.
  std::set<std::string> may_targets() const;
  /// True when the fragment may interact with any other process or the
  /// external world (conservative when opaque).
  bool may_communicate() const;
  /// True when no proof of target absence is possible for this fragment.
  bool targets_unknowable() const { return opaque || unknown_target; }

  /// Sequential composition: both fragments execute, in order.
  void merge_seq(const CommEffects& next);
  /// Alternative composition (If): exactly one branch executes.
  void merge_alt(const CommEffects& other);
  /// Weaken to may-only (While bodies, ancestor continuations): execution
  /// is possible but not certain.
  void drop_must();
};

/// Summarize one statement tree.  Null is the empty summary.
CommEffects analyze_effects(const csp::Stmt* stmt);
CommEffects analyze_effects(const csp::StmtPtr& stmt);

/// Elements present in both sets (helper shared with the classifier).
std::set<std::string> set_intersection(const std::set<std::string>& a,
                                       const std::set<std::string>& b);

}  // namespace ocsp::analysis
