// Commutativity-summary lattice and cross-process interference analysis.
//
// The SAFE proof of classify_split historically stopped at the process
// boundary: two fork halves contacting the *same* server were always
// interference.  This module closes that gap with abstract commutativity
// (in the style of CommCSL): each service op carries a summary
// (csp::OpCommSpec — pure / abelian-update / mutating, over named state
// groups), either declared by the workload or inferred from service_loop
// dispatch bodies, and two fragments' interferences at a shared target are
// harmless when every op pair commutes, replies included.
//
// The same summaries license the verifier-side relaxation: a use-class
// analysis (use_of) proves a passed variable is dead or boolean-only in
// the right thread, so a guess/actual mismatch in a summarized op's reply
// can commit instead of aborting (csp::VerifyMode; see
// transform::reclassify and SpecConfig::commute_verification).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/effects.h"
#include "csp/commute.h"
#include "csp/program.h"

namespace ocsp::analysis {

// ---- The commutativity lattice --------------------------------------------
//
// Diamond order on access levels of one state group:
//
//     kNone  <  { kPure , kAbelian }  <  kMutate
//
// with kPure and kAbelian incomparable; kNone is untouched (bottom) and
// kMutate is arbitrary read/write (top).

csp::CommLevel comm_join(csp::CommLevel a, csp::CommLevel b);
csp::CommLevel comm_meet(csp::CommLevel a, csp::CommLevel b);
bool comm_leq(csp::CommLevel a, csp::CommLevel b);

/// Whether two accesses at these levels on the SAME group may be reordered
/// freely (state and replies unaffected): either side untouched, or both
/// pure (no writes), or both abelian (commutative updates, constant
/// replies).  Antitone in the lattice: lowering either side never turns a
/// compatible pair incompatible.
bool level_compat(csp::CommLevel a, csp::CommLevel b);

/// Whether two individual ops commute, replies included: their group sets
/// are disjoint, or every shared access is level-compatible (which, given
/// per-op uniform levels, means both pure or both abelian).  Two abelian
/// ops additionally need the SAME fold operator (csp::FoldOp): `x += a`
/// and `x *= b` each fold commutatively on their own, yet reordering them
/// against each other is observable ((x+a)*b != x*b+a).  An abelian spec
/// with fold kNone commutes with nothing on a shared group.
bool ops_commute(const csp::OpCommSpec& a, const csp::OpCommSpec& b);

/// Join of the group accesses of a set of ops.  `complete` is false when
/// any contributing op had no summary, invalidating proofs of absence.
struct GroupFootprint {
  std::map<std::string, csp::CommLevel> levels;
  bool complete = true;

  csp::CommLevel at(const std::string& group) const;
  void join(const GroupFootprint& other);
  std::string to_string() const;
};

bool footprints_compat(const GroupFootprint& a, const GroupFootprint& b);

// ---- Summary tables and the cross-process context -------------------------

/// Summaries for every service process in a system: target -> op -> spec.
struct SummaryTable {
  std::map<std::string, csp::CommDecls> per_process;

  const csp::OpCommSpec* lookup(const std::string& target,
                                const std::string& op) const;
  /// Footprint of `ops` at `target` (incomplete if any op unsummarized).
  GroupFootprint footprint(const std::string& target,
                           const std::set<std::string>& ops) const;
};

/// Caller-side knowledge fed into inference for one target process.
/// build_commute_context derives it from every Call/Send in the system.
struct InferContext {
  /// Per op of this process: the __args indices whose argument expression
  /// is provably numeric at EVERY static call/send site in the system.  An
  /// op reachable through a computed target (call_dyn/send_dyn with a
  /// matching op name) is tainted and gets an empty set.  An op absent
  /// from the map has no proven-numeric arguments.
  std::map<std::string, std::set<int>> numeric_args;
};

/// Infer op summaries from a program built with csp::service_loop: each
/// `if (__op == "X") body` dispatch arm is analyzed.  A body with no
/// writes, sends, calls, or external output is kPure over its non-request
/// state reads; a body whose every write is `x = x (+|*|and|or) e` with
/// `e` reading only request metadata, replying nothing or a constant, is
/// kAbelian over the written variables; other local-only bodies are
/// kMutate over their state reads+writes.  Bodies with downstream
/// calls/sends, natives, prints, or nested control flow get no summary.
///
/// Abelian constraints: every update in one body must fold with the same
/// operator (the spec's FoldOp); mixed operators demote to kMutate.  A `+`
/// fold additionally requires the delta to be PROVABLY NUMERIC — numeric
/// literals, __caller/__reqid, arithmetic over those, or an __args element
/// the InferContext proves numeric at every call site — because value_add
/// concatenates two strings, which is associative but not commutative
/// ("ab" vs "ba").  With a numeric delta no silent divergence exists: a
/// string accumulator hard-fails identically in either order.  `*` folds
/// reject non-numeric operands outright and `and`/`or` produce booleans,
/// so only `+` carries the numeric obligation.
csp::CommDecls infer_summaries(const csp::StmtPtr& program,
                               const InferContext& ctx = {});

/// Everything classify_split needs to reason across process boundaries.
struct CommuteContext {
  SummaryTable summaries;
  /// For every process: the ops it may invoke per target (from may_ops).
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      peer_ops;
  /// The process whose program is being classified (excluded from the
  /// peer-interference check).
  std::string self;
};

/// One process of a system, as input to build_commute_context.
struct SystemProcess {
  std::string name;
  csp::StmtPtr program;
  /// Declared summaries for this process *as a target* (natives are opaque
  /// to inference).  Declarations win over inference on conflict.
  csp::CommDecls declared;
};

/// Builds the summary table (declared ∪ inferred) and peer-op map for a
/// closed system.  Before inferring each process's summaries it scans every
/// other process's static call/send sites to prove which request arguments
/// are numeric (InferContext) — the obligation `+`-fold abelian updates
/// carry — using a per-caller greatest-fixpoint over locally numeric
/// variables.  Computed-target sites taint their op name system-wide.
CommuteContext build_commute_context(const std::vector<SystemProcess>& procs,
                                     const std::string& self);

/// Whether the interference of two fork halves at shared target `target`
/// commutes: every left op pairwise commutes with every right op, and both
/// halves' ops commute with every op any *peer* process may invoke there
/// (a peer's non-commuting op makes the reply stream order-sensitive, so
/// eliding the halves' ordering would be observable).  Unsummarized ops
/// fail conservatively.  On success appends a human-readable justification
/// to `why` when non-null.
bool split_commutes_at(const CommuteContext& ctx, const std::string& target,
                       const std::set<std::string>& left_ops,
                       const std::set<std::string>& right_ops,
                       std::string* why = nullptr);

// ---- Use-class analysis (verification relaxation) -------------------------

/// How a statement fragment uses one variable, ordered
/// kUnused < kBooleanOnly < kValueUsed.  Boolean-only means every read
/// sits in a truthiness context: If/While conditions and the operands of
/// and/or/not (which evaluate operands by truthiness only — see
/// BinaryExpr::eval).  Any read in an argument, assignment source, print,
/// reply, arithmetic/comparison operand, or opaque native is a value use.
enum class UseClass : std::uint8_t { kUnused = 0, kBooleanOnly, kValueUsed };

const char* to_string(UseClass u);
UseClass use_join(UseClass a, UseClass b);

/// Use class of `v` over `stmts` executed in program order (a right thread
/// followed by its continuation).  A must-write to `v` kills later uses on
/// that path; loops and fork branches are joined conservatively.  The raw
/// pointer overload serves Machine::pending_stmts(), whose frame walk
/// yields the exact remaining program of a live thread.
UseClass use_of(const std::vector<csp::StmtPtr>& stmts, const std::string& v);
UseClass use_of(const std::vector<const csp::Stmt*>& stmts,
                const std::string& v);
UseClass use_of(const csp::StmtPtr& stmt, const std::string& v);

/// kUnused -> kDead, kBooleanOnly -> kBoolean, kValueUsed -> kExact.
csp::VerifyMode verify_mode_for(UseClass u);

}  // namespace ocsp::analysis
