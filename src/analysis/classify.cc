#include "analysis/classify.h"

#include <sstream>
#include <utility>

#include "csp/visit.h"
#include "util/check.h"

namespace ocsp::analysis {

const char* to_string(ForkClass c) {
  switch (c) {
    case ForkClass::kSafe:
      return "SAFE";
    case ForkClass::kSpeculative:
      return "SPECULATIVE";
    case ForkClass::kReject:
      return "REJECT";
  }
  return "?";
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

namespace {

std::set<std::string> set_union(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::set<std::string> out = a;
  out.insert(b.begin(), b.end());
  return out;
}

std::set<std::string> set_difference(const std::set<std::string>& a,
                                     const std::set<std::string>& b) {
  std::set<std::string> out;
  for (const auto& x : a) {
    if (b.count(x) == 0) out.insert(x);
  }
  return out;
}

std::string join(const std::set<std::string>& xs) {
  std::string out = "{";
  bool first = true;
  for (const auto& x : xs) {
    if (!first) out += ", ";
    out += x;
    first = false;
  }
  return out + "}";
}

}  // namespace

SiteReport classify_split(const csp::StmtPtr& s1, const csp::StmtPtr& s2,
                          const CommEffects& continuation,
                          const std::map<std::string, csp::PredictorSpec>&
                              declared,
                          const std::string& site, bool from_hint,
                          std::vector<Finding>& findings,
                          const CommuteContext* commute) {
  SiteReport r;
  r.site = site;
  r.from_hint = from_hint;

  const CommEffects e1 = analyze_effects(s1);
  const CommEffects e2 = analyze_effects(s2);
  CommEffects cont = continuation;
  cont.drop_must();  // continuation execution is possible, never certain
  CommEffects right = e2;
  right.merge_seq(cont);
  r.left = e1;
  r.right = right;

  const bool automatic = declared.empty();
  const std::set<std::string> static_passed =
      set_intersection(e1.writes, e2.reads);
  // Variables the right thread's *continuation* (later loop iterations,
  // enclosing Seq suffix) reads from S1 — invisible to the static split.
  const std::set<std::string> carried =
      set_difference(set_intersection(e1.writes, cont.reads), static_passed);
  std::set<std::string> declared_keys;
  for (const auto& [v, spec] : declared) {
    (void)spec;
    declared_keys.insert(v);
  }
  const std::set<std::string>& passed_src =
      automatic ? static_passed : declared_keys;
  r.passed.assign(passed_src.begin(), passed_src.end());
  r.has_anti_dependency =
      !set_intersection(e1.reads, e2.writes).empty();
  const std::set<std::string> shared =
      set_intersection(e1.may_targets(), right.may_targets());
  r.shared_targets.assign(shared.begin(), shared.end());

  // Cross-process widening: a shared target is harmless when every op pair
  // either half may fire there commutes (peers included).  Computed targets
  // never qualify — they are not members of may_ops at all.
  std::set<std::string> commuting;
  std::string commute_why;
  if (commute != nullptr) {
    static const std::set<std::string> kNoOps;
    for (const auto& t : shared) {
      auto li = e1.may_ops.find(t);
      auto ri = right.may_ops.find(t);
      std::string why;
      if (split_commutes_at(*commute, t,
                            li == e1.may_ops.end() ? kNoOps : li->second,
                            ri == right.may_ops.end() ? kNoOps : ri->second,
                            &why)) {
        commuting.insert(t);
        if (!commute_why.empty()) commute_why += "; ";
        commute_why += why;
      }
    }
  }
  r.commuting_targets.assign(commuting.begin(), commuting.end());
  const std::set<std::string> conflicting_shared =
      set_difference(shared, commuting);

  auto add = [&](Severity sev, std::string code, std::string msg,
                 std::string fix) -> Finding& {
    Finding f;
    f.site = site;
    f.severity = sev;
    f.code = std::move(code);
    f.message = std::move(msg);
    f.suggestion = std::move(fix);
    findings.push_back(std::move(f));
    return findings.back();
  };

  bool reject = false;

  if (automatic && (e1.opaque || e2.opaque)) {
    reject = from_hint;
    add(from_hint ? Severity::kError : Severity::kWarning, "opaque-fragment",
        "cannot infer the passed set: " +
            std::string(e1.opaque ? "S1" : "S2") +
            " contains a native statement whose reads and writes are "
            "invisible to static analysis",
        "declare the passed variables and their predictors explicitly on "
        "the hint");
  }

  // Guaranteed-interference shape: both halves contact the same process on
  // every execution path, so the speculative right thread's request races
  // S1's own traffic at that process.  With declared predictors the user
  // opted into speculation and the time-fault rollback protocol (bounded by
  // the retry limit) recovers — this is the streaming pattern — so it is
  // only a refusal in automatic mode, where the system would be inserting a
  // known-interfering fork on its own initiative.
  const std::set<std::string> certain_overlap = set_intersection(
      e1.must_call_targets,
      set_union(e2.must_call_targets, e2.must_send_targets));
  // Commutativity softens the diagnosis: when the server's op summaries
  // prove both halves' requests commute (state and replies), the race is
  // harmless and there is nothing to roll back.
  const std::set<std::string> certain_conflicting =
      set_difference(certain_overlap, commuting);
  if (!certain_conflicting.empty()) {
    const bool hard = from_hint && automatic;
    reject |= hard;
    add(hard ? Severity::kError : Severity::kWarning, "certain-time-fault",
        "S1 and S2 both communicate with " + join(certain_conflicting) +
            " on every execution path; the speculative half's request races "
            "S1's own traffic there and will be rolled back whenever it "
            "arrives early",
        "narrow the hint span or move the conflicting communication out of "
        "the speculative half");
  } else if (!certain_overlap.empty()) {
    Finding& fd = add(
        Severity::kInfo, "commute-safe-overlap",
        "S1 and S2 both communicate with " + join(certain_overlap) +
            " on every execution path, but every op pair commutes there; "
            "the overlap cannot cause an observable fault",
        "");
    fd.commutativity = commute_why;
  }

  if (automatic && !carried.empty()) {
    reject |= from_hint;
    add(from_hint ? Severity::kError : Severity::kWarning,
        "loop-carried-dependence",
        "the right thread's continuation (later loop iterations) reads " +
            join(carried) +
            " written by S1, but automatic inference only sees the static "
            "S2; the stale value would escape the join-time verification",
        "declare predictors for " + join(carried) + " explicitly");
  }

  if (!automatic) {
    const std::set<std::string> missing = set_difference(
        set_union(static_passed, carried), declared_keys);
    if (!missing.empty()) {
      add(Severity::kWarning, "undeclared-passed-variable",
          "the right thread reads " + join(missing) +
              " written by S1 but the hint declares no predictor for " +
              (missing.size() == 1 ? "it" : "them") +
              "; the fork-point value is used unverified",
          "add " + join(missing) + " to the declared predictors");
    }
  }

  if (reject) {
    r.cls = ForkClass::kReject;
    return r;
  }

  if (e1.unknown_target || right.unknown_target) {
    add(Severity::kWarning, "unknown-target",
        "a call/send destination is computed at runtime; communication "
        "targets cannot be statically bounded",
        "use a literal destination if the target is actually fixed");
  }

  const bool safe =
      automatic && static_passed.empty() && carried.empty() &&
      !r.has_anti_dependency &&
      set_intersection(e1.reads, cont.writes).empty() &&
      !e1.targets_unknowable() && !right.targets_unknowable() &&
      conflicting_shared.empty() && !e1.may_receive && !right.may_receive &&
      !e1.may_reply && !right.may_reply &&
      !(e1.may_print && right.may_print) && !e1.has_spec_site;
  if (safe) {
    r.cls = ForkClass::kSafe;
    const bool widened = !commuting.empty();
    Finding& fd = add(
        Severity::kInfo, widened ? "commute-safe" : "proven-safe",
        widened
            ? "empty passed set, no anti-dependency, and the shared "
              "target(s) " +
                  join(commuting) +
                  " carry only commuting ops (peers included); the state "
                  "copy and guard machinery can be elided"
            : "empty passed set, no anti-dependency, disjoint communication "
              "targets (S1 " +
                  join(e1.may_targets()) + " vs right thread " +
                  join(right.may_targets()) +
                  "); the state copy and guard machinery can be elided",
        "");
    fd.commutativity = commute_why;
  } else {
    r.cls = ForkClass::kSpeculative;
    if (!commuting.empty() && !conflicting_shared.empty()) {
      Finding& fd = add(
          Severity::kInfo, "partial-commute",
          "interference at " + join(commuting) +
              " commutes, but " + join(conflicting_shared) +
              " still carries non-commuting ops; the site stays speculative",
          "");
      fd.commutativity = commute_why;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Whole-program walk
// ---------------------------------------------------------------------------

namespace {

class Walker {
 public:
  Walker(ProgramReport& out, const CommuteContext* commute)
      : out_(out), commute_(commute) {}

  void walk(const csp::StmtPtr& stmt, const CommEffects& cont) {
    if (!stmt) return;
    using csp::StmtKind;
    switch (stmt->kind) {
      case StmtKind::kSeq:
        walk_seq(static_cast<const csp::SeqStmt&>(*stmt), cont);
        break;
      case StmtKind::kIf: {
        const auto& s = static_cast<const csp::IfStmt&>(*stmt);
        walk(s.then_branch, cont);
        walk(s.else_branch, cont);
        break;
      }
      case StmtKind::kWhile: {
        const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
        CommEffects next = analyze_effects(s.body);
        s.cond->collect_reads(next.reads);
        next.merge_seq(cont);
        next.drop_must();
        walk(s.body, next);
        break;
      }
      case StmtKind::kFork:
        walk_fork(static_cast<const csp::ForkStmt&>(*stmt), cont);
        break;
      case StmtKind::kHint: {
        // A hint that is not a direct member of a Seq has no S1 to bind to.
        const auto& h = static_cast<const csp::HintStmt&>(*stmt);
        reject_site(site_name(h.site), "misplaced-hint",
                    "parallelization hint is not a direct member of a "
                    "sequence; there is no preceding statement to fork",
                    "place the hint between two statements of a seq block");
        break;
      }
      default:
        break;  // leaf
    }
  }

 private:
  void walk_seq(const csp::SeqStmt& s, const CommEffects& cont) {
    const auto& body = s.body;
    // suffix[i] = static effects of body[i..end).
    std::vector<CommEffects> suffix(body.size() + 1);
    for (std::size_t i = body.size(); i-- > 0;) {
      suffix[i] = analyze_effects(body[i]);
      suffix[i].merge_seq(suffix[i + 1]);
    }

    std::size_t prev_end = 0;  // first index usable as part of S1
    for (std::size_t i = 0; i < body.size(); ++i) {
      const auto& child = body[i];
      if (child->kind != csp::StmtKind::kHint) {
        CommEffects child_cont = suffix[i + 1];
        child_cont.merge_seq(cont);
        walk(child, child_cont);
        continue;
      }
      const auto& h = static_cast<const csp::HintStmt&>(*child);
      const std::string site = site_name(h.site);
      const std::size_t avail = i - prev_end;
      prev_end = i + 1;
      if (h.span < 1 || h.span > avail) {
        reject_site(
            site, "malformed-span",
            "hint span " + std::to_string(h.span) + " exceeds the " +
                std::to_string(avail) +
                " statement(s) available before the hint at this level",
            "shrink the span or move the hint after the statements it "
            "should cover");
        continue;
      }
      std::vector<csp::StmtPtr> s1_body(body.begin() + (i - h.span),
                                        body.begin() + i);
      csp::StmtPtr s1 =
          s1_body.size() == 1 ? s1_body[0] : csp::seq(std::move(s1_body));
      csp::StmtPtr s2 =
          csp::seq(std::vector<csp::StmtPtr>(body.begin() + i + 1,
                                             body.end()));
      SiteReport rep = classify_split(s1, s2, cont, h.predictors, site,
                                      /*from_hint=*/true, out_.findings,
                                      commute_);
      if (rep.cls != ForkClass::kReject) ++counter_;
      out_.sites.push_back(std::move(rep));
    }
  }

  void walk_fork(const csp::ForkStmt& f, const CommEffects& cont) {
    const std::string site = site_name(f.site);
    ++counter_;
    SiteReport rep = classify_split(f.left, f.right, cont, f.predictors,
                                    site, /*from_hint=*/false, out_.findings,
                                    commute_);
    if (f.mode == csp::ForkMode::kSafe && rep.cls != ForkClass::kSafe) {
      Finding fd;
      fd.site = site;
      fd.cls = rep.cls;
      fd.severity = Severity::kError;
      fd.code = "unsound-safe-claim";
      fd.message =
          "fork is marked mode=safe but the analysis classifies it " +
          std::string(to_string(rep.cls)) +
          "; running it without guards is unsound";
      fd.suggestion = "re-run fork insertion or clear the safe mode flag";
      out_.findings.push_back(std::move(fd));
    } else if (f.mode == csp::ForkMode::kSpeculative &&
               rep.cls == ForkClass::kSafe) {
      Finding fd;
      fd.site = site;
      fd.cls = ForkClass::kSafe;
      fd.severity = Severity::kInfo;
      fd.code = "elidable-site";
      fd.message =
          "fork runs speculatively but is provably non-interfering; safe "
          "mode would elide the guard machinery";
      fd.suggestion =
          "set mode=safe on the fork (transform::reclassify applies this)";
      fd.suggested_mode = "safe";
      if (!rep.commuting_targets.empty()) {
        std::set<std::string> cs(rep.commuting_targets.begin(),
                                 rep.commuting_targets.end());
        fd.commutativity = "shared target(s) " + join(cs) +
                           " carry only commuting ops";
      }
      out_.findings.push_back(std::move(fd));
    }
    out_.sites.push_back(std::move(rep));
    walk(f.left, CommEffects{});  // the left thread ends at the join
    walk(f.right, cont);
  }

  void reject_site(const std::string& site, std::string code,
                   std::string message, std::string suggestion) {
    Finding fd;
    fd.site = site;
    fd.cls = ForkClass::kReject;
    fd.severity = Severity::kError;
    fd.code = std::move(code);
    fd.message = std::move(message);
    fd.suggestion = std::move(suggestion);
    out_.findings.push_back(std::move(fd));
    SiteReport rep;
    rep.site = site;
    rep.cls = ForkClass::kReject;
    out_.sites.push_back(std::move(rep));
  }

  std::string site_name(const std::string& declared) {
    if (!declared.empty()) return declared;
    return "site#" + std::to_string(counter_);
  }

  ProgramReport& out_;
  const CommuteContext* commute_;
  std::size_t counter_ = 0;
};

}  // namespace

ProgramReport analyze_program(const csp::StmtPtr& program, std::string label,
                              const CommuteContext* commute) {
  ProgramReport report;
  report.program = std::move(label);
  Walker(report, commute).walk(program, CommEffects{});
  return report;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

bool ProgramReport::has_errors() const {
  for (const auto& f : findings) {
    if (f.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t ProgramReport::count(ForkClass c) const {
  std::size_t n = 0;
  for (const auto& s : sites) {
    if (s.cls == c) ++n;
  }
  return n;
}

namespace {

void write_string_array(util::JsonWriter& w, const std::set<std::string>& xs) {
  w.begin_array();
  for (const auto& x : xs) w.value(x);
  w.end_array();
}

void write_string_array(util::JsonWriter& w,
                        const std::vector<std::string>& xs) {
  w.begin_array();
  for (const auto& x : xs) w.value(x);
  w.end_array();
}

void write_side(util::JsonWriter& w, const CommEffects& e) {
  w.begin_object();
  w.key("calls");
  write_string_array(w, e.may_call_targets);
  w.key("sends");
  write_string_array(w, e.may_send_targets);
  w.key("receives").value(e.may_receive);
  w.key("prints").value(e.may_print);
  w.key("opaque").value(e.opaque);
  w.key("unknown_target").value(e.unknown_target);
  w.end_object();
}

}  // namespace

void ProgramReport::write_json(util::JsonWriter& w) const {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& f : findings) {
    errors += f.severity == Severity::kError;
    warnings += f.severity == Severity::kWarning;
  }
  w.begin_object();
  w.key("program").value(program);
  w.key("summary").begin_object();
  w.key("sites").value(static_cast<std::uint64_t>(sites.size()));
  w.key("safe").value(static_cast<std::uint64_t>(count(ForkClass::kSafe)));
  w.key("speculative")
      .value(static_cast<std::uint64_t>(count(ForkClass::kSpeculative)));
  w.key("reject").value(static_cast<std::uint64_t>(count(ForkClass::kReject)));
  w.key("errors").value(static_cast<std::uint64_t>(errors));
  w.key("warnings").value(static_cast<std::uint64_t>(warnings));
  w.end_object();
  w.key("sites").begin_array();
  for (const auto& s : sites) {
    w.begin_object();
    w.key("site").value(s.site);
    w.key("class").value(to_string(s.cls));
    w.key("from_hint").value(s.from_hint);
    w.key("passed");
    write_string_array(w, s.passed);
    w.key("anti_dependency").value(s.has_anti_dependency);
    w.key("shared_targets");
    write_string_array(w, s.shared_targets);
    w.key("commuting_targets");
    write_string_array(w, s.commuting_targets);
    w.key("left");
    write_side(w, s.left);
    w.key("right");
    write_side(w, s.right);
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const auto& f : findings) {
    w.begin_object();
    w.key("site").value(f.site);
    w.key("class").value(to_string(f.cls));
    w.key("severity").value(to_string(f.severity));
    w.key("code").value(f.code);
    w.key("message").value(f.message);
    w.key("suggestion").value(f.suggestion);
    w.key("commutativity").value(f.commutativity);
    w.key("suggested_mode").value(f.suggested_mode);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string ProgramReport::to_text() const {
  std::ostringstream out;
  out << (program.empty() ? "<program>" : program) << ": " << sites.size()
      << " site(s) — " << count(ForkClass::kSafe) << " safe, "
      << count(ForkClass::kSpeculative) << " speculative, "
      << count(ForkClass::kReject) << " rejected\n";
  for (const auto& s : sites) {
    out << "  site '" << s.site << "' [" << to_string(s.cls) << "]";
    if (!s.passed.empty()) {
      out << " passed={";
      for (std::size_t i = 0; i < s.passed.size(); ++i) {
        if (i) out << ", ";
        out << s.passed[i];
      }
      out << "}";
    }
    if (s.has_anti_dependency) out << " anti-dep";
    if (!s.shared_targets.empty()) {
      out << " shared={";
      for (std::size_t i = 0; i < s.shared_targets.size(); ++i) {
        if (i) out << ", ";
        out << s.shared_targets[i];
      }
      out << "}";
    }
    if (!s.commuting_targets.empty()) {
      out << " commuting={";
      for (std::size_t i = 0; i < s.commuting_targets.size(); ++i) {
        if (i) out << ", ";
        out << s.commuting_targets[i];
      }
      out << "}";
    }
    out << "\n";
  }
  for (const auto& f : findings) {
    out << "  [" << to_string(f.severity) << "] site '" << f.site << "' ("
        << f.code << "): " << f.message << "\n";
    if (!f.suggestion.empty()) out << "      fix: " << f.suggestion << "\n";
    if (!f.commutativity.empty()) {
      out << "      commutes: " << f.commutativity << "\n";
    }
  }
  return out.str();
}

}  // namespace ocsp::analysis
