// Fork-site classification: the static interference analyzer.
//
// Every speculation site (ParallelizeHint before transformation, ForkStmt
// after) is classified against the S1/S2 split it denotes:
//
//   SAFE        — non-interference is provable: the passed set is empty, S1
//                 and S2 (including the right thread's continuation into the
//                 enclosing program) touch disjoint sets of processes, no
//                 anti-dependency forces a state copy, and neither side
//                 receives or replies.  The runtime may elide the state
//                 copy, the guesses, and the guard/commit machinery.
//   SPECULATIVE — interference is possible; run the paper's machinery
//                 (guess + guard + verify-at-join).  Always sound.
//   REJECT      — the site is statically malformed or a certain-interference
//                 shape; the transformer refuses it and leaves the program
//                 sequential, reporting a diagnostic instead of crashing.
//
// Soundness caveat, stated once here and relied on everywhere: SAFE proofs
// are per-process.  They assume the *target* processes named by S1 and S2 do
// not share state with each other behind the client's back.  The debug-build
// runtime oracle (SpecConfig::safe_site_oracle) cross-checks every SAFE
// claim dynamically by running the site with the full machinery and
// asserting no value or time fault is ever raised.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/commute.h"
#include "analysis/effects.h"
#include "csp/program.h"
#include "util/json.h"

namespace ocsp::analysis {

enum class ForkClass { kSafe, kSpeculative, kReject };
enum class Severity { kInfo, kWarning, kError };

const char* to_string(ForkClass c);
const char* to_string(Severity s);

/// One diagnostic produced by the analyzer.  `code` is a stable
/// machine-readable identifier (e.g. "opaque-fragment", "certain-time-fault",
/// "malformed-span"); `message` explains the finding at the site and
/// `suggestion` proposes a fix when one is known.
struct Finding {
  std::string site;
  ForkClass cls = ForkClass::kSpeculative;
  Severity severity = Severity::kInfo;
  std::string code;
  std::string message;
  std::string suggestion;
  /// Why the interference commutes, when commutativity summaries contributed
  /// to this finding (empty otherwise).  Schema "ocsp-lint-v2".
  std::string commutativity;
  /// Concrete fork-mode change this finding licenses (e.g. "safe" on an
  /// elidable-site), machine-readable for tooling.  Empty when none.
  std::string suggested_mode;
};

/// Classification result for one site.
struct SiteReport {
  std::string site;
  ForkClass cls = ForkClass::kSpeculative;
  bool from_hint = true;  ///< hint (pre-transform) vs already-inserted fork
  /// Inferred (automatic mode) or declared (explicit predictors) passed set.
  std::vector<std::string> passed;
  bool has_anti_dependency = false;
  /// May-targets reachable from both sides; every one must be proven
  /// commuting (below) for the site to be SAFE.
  std::vector<std::string> shared_targets;
  /// Shared targets whose cross-process interference provably commutes
  /// (summaries: both halves' ops pairwise commute, peers included).
  std::vector<std::string> commuting_targets;
  CommEffects left;   ///< S1 summary
  CommEffects right;  ///< S2 + continuation summary
};

struct ProgramReport {
  std::string program;  ///< label for multi-program reports ("" = unnamed)
  std::vector<SiteReport> sites;
  std::vector<Finding> findings;

  bool has_errors() const;
  std::size_t count(ForkClass c) const;
  /// Append this report as one JSON object to `w` (schema "ocsp-lint-v2",
  /// a strict superset of v1: adds per-site `commuting_targets` and
  /// per-finding `commutativity` / `suggested_mode`).
  void write_json(util::JsonWriter& w) const;
  /// Human-readable findings (one block per site, lint-style).
  std::string to_text() const;
};

/// Classify one S1/S2 split.  `continuation` summarizes what the right
/// thread goes on to execute after S2 (enclosing loop iterations and Seq
/// suffixes); it is weakened to may-only effects internally.  `declared` is
/// the site's explicit predictor map — empty selects automatic passed-set
/// inference.  Diagnostics are appended to `findings`.
///
/// `commute`, when non-null, widens the disjoint-targets SAFE precondition:
/// a shared target no longer disqualifies the site if every op either half
/// may invoke there commutes with the other half's ops and with every peer
/// process's ops (analysis/commute.h).  Null keeps the strict rule.
SiteReport classify_split(const csp::StmtPtr& s1, const csp::StmtPtr& s2,
                          const CommEffects& continuation,
                          const std::map<std::string, csp::PredictorSpec>&
                              declared,
                          const std::string& site, bool from_hint,
                          std::vector<Finding>& findings,
                          const CommuteContext* commute = nullptr);

/// Walk a whole program and classify every ParallelizeHint (against the
/// S1/S2 split fork insertion would choose) and every existing ForkStmt.
/// Works on both pre- and post-transform trees.  A non-null `commute`
/// context enables the cross-process commutativity widening at every site.
ProgramReport analyze_program(const csp::StmtPtr& program,
                              std::string label = {},
                              const CommuteContext* commute = nullptr);

}  // namespace ocsp::analysis
