#include "analysis/commute.h"

#include <algorithm>

#include "csp/visit.h"

namespace ocsp::analysis {

using csp::CommLevel;

// ---- lattice ---------------------------------------------------------------

CommLevel comm_join(CommLevel a, CommLevel b) {
  if (a == b) return a;
  if (a == CommLevel::kNone) return b;
  if (b == CommLevel::kNone) return a;
  return CommLevel::kMutate;
}

CommLevel comm_meet(CommLevel a, CommLevel b) {
  if (a == b) return a;
  if (a == CommLevel::kMutate) return b;
  if (b == CommLevel::kMutate) return a;
  return CommLevel::kNone;
}

bool comm_leq(CommLevel a, CommLevel b) {
  return a == b || a == CommLevel::kNone || b == CommLevel::kMutate;
}

bool level_compat(CommLevel a, CommLevel b) {
  if (a == CommLevel::kNone || b == CommLevel::kNone) return true;
  return a == b && a != CommLevel::kMutate;
}

bool ops_commute(const csp::OpCommSpec& a, const csp::OpCommSpec& b) {
  for (const auto& g : a.groups) {
    if (std::find(b.groups.begin(), b.groups.end(), g) != b.groups.end()) {
      if (!level_compat(a.level, b.level)) return false;
      // Abelian folds only commute within one operator family: `x += a`
      // and `x *= b` are each abelian, but (x+a)*b != x*b+a.  kNone means
      // the fold is unknown and licenses nothing.
      if (a.level == CommLevel::kAbelian && b.level == CommLevel::kAbelian &&
          (a.fold == csp::FoldOp::kNone || a.fold != b.fold)) {
        return false;
      }
    }
  }
  return true;
}

CommLevel GroupFootprint::at(const std::string& group) const {
  auto it = levels.find(group);
  return it == levels.end() ? CommLevel::kNone : it->second;
}

void GroupFootprint::join(const GroupFootprint& other) {
  for (const auto& [g, l] : other.levels) {
    auto [it, inserted] = levels.emplace(g, l);
    if (!inserted) it->second = comm_join(it->second, l);
  }
  complete = complete && other.complete;
}

std::string GroupFootprint::to_string() const {
  std::string out = "{";
  for (const auto& [g, l] : levels) {
    if (out.size() > 1) out += ", ";
    out += g;
    out += ":";
    out += csp::to_string(l);
  }
  out += complete ? "}" : "} (incomplete)";
  return out;
}

bool footprints_compat(const GroupFootprint& a, const GroupFootprint& b) {
  if (!a.complete || !b.complete) return false;
  for (const auto& [g, l] : a.levels) {
    if (!level_compat(l, b.at(g))) return false;
  }
  return true;
}

// ---- summary tables --------------------------------------------------------

const csp::OpCommSpec* SummaryTable::lookup(const std::string& target,
                                            const std::string& op) const {
  auto p = per_process.find(target);
  if (p == per_process.end()) return nullptr;
  auto o = p->second.find(op);
  return o == p->second.end() ? nullptr : &o->second;
}

GroupFootprint SummaryTable::footprint(const std::string& target,
                                       const std::set<std::string>& ops)
    const {
  GroupFootprint fp;
  for (const auto& op : ops) {
    const csp::OpCommSpec* spec = lookup(target, op);
    if (spec == nullptr) {
      fp.complete = false;
      continue;
    }
    for (const auto& g : spec->groups) {
      auto [it, inserted] = fp.levels.emplace(g, spec->level);
      if (!inserted) it->second = comm_join(it->second, spec->level);
    }
  }
  return fp;
}

// ---- inference from service_loop dispatch bodies ---------------------------

namespace {

bool is_request_var(const std::string& name) {
  return name.rfind("__", 0) == 0;
}

/// Match `if (__op == "X") ...` and return the op name.
const csp::IfStmt* dispatch_arm(const csp::Stmt& stmt, std::string* op) {
  if (stmt.kind != csp::StmtKind::kIf) return nullptr;
  const auto& s = static_cast<const csp::IfStmt&>(stmt);
  const auto* cmp = dynamic_cast<const csp::BinaryExpr*>(s.cond.get());
  if (cmp == nullptr || cmp->op() != csp::BinaryOp::kEq) return nullptr;
  const auto* lhs = dynamic_cast<const csp::VarExpr*>(cmp->lhs().get());
  const auto* rhs = dynamic_cast<const csp::ConstExpr*>(cmp->rhs().get());
  if (lhs == nullptr || rhs == nullptr || lhs->name() != "__op") {
    return nullptr;
  }
  if (rhs->value().type() != csp::Value::Type::kString) return nullptr;
  *op = rhs->value().as_string();
  return &s;
}

/// Flat view of one dispatch body: assigns and replies, in order.  Any
/// other statement kind (nested control flow, communication, natives,
/// prints) makes the body unsummarizable.
struct BodyShape {
  std::vector<const csp::AssignStmt*> assigns;
  std::vector<const csp::ReplyStmt*> replies;
  bool summarizable = true;
};

void flatten_body(const csp::Stmt& stmt, BodyShape& shape) {
  switch (stmt.kind) {
    case csp::StmtKind::kSeq:
      csp::for_each_child(stmt, [&shape](const csp::Stmt& child) {
        flatten_body(child, shape);
      });
      break;
    case csp::StmtKind::kAssign:
      shape.assigns.push_back(static_cast<const csp::AssignStmt*>(&stmt));
      break;
    case csp::StmtKind::kReply:
      shape.replies.push_back(static_cast<const csp::ReplyStmt*>(&stmt));
      break;
    case csp::StmtKind::kCompute:
    case csp::StmtKind::kNop:
      break;
    default:
      shape.summarizable = false;
      break;
  }
}

csp::FoldOp fold_of(csp::BinaryOp op) {
  switch (op) {
    case csp::BinaryOp::kAdd: return csp::FoldOp::kAdd;
    case csp::BinaryOp::kMul: return csp::FoldOp::kMul;
    case csp::BinaryOp::kAnd: return csp::FoldOp::kAnd;
    case csp::BinaryOp::kOr: return csp::FoldOp::kOr;
    default: return csp::FoldOp::kNone;
  }
}

/// Whether `e`, evaluated while serving op `op`, is provably numeric.
/// Request metadata: __caller/__reqid are bound to ints by deliver();
/// __args[i] is numeric when every call site in the system passes a
/// provably numeric i-th argument (ctx).  Everything else — __op, __args
/// as a whole, state variables — is unproven.
bool numeric_request_expr(const csp::Expr* e, const std::string& op,
                          const InferContext& ctx) {
  if (const auto* c = dynamic_cast<const csp::ConstExpr*>(e)) {
    return c->value().type() == csp::Value::Type::kInt ||
           c->value().type() == csp::Value::Type::kReal;
  }
  if (const auto* v = dynamic_cast<const csp::VarExpr*>(e)) {
    return v->name() == "__caller" || v->name() == "__reqid";
  }
  if (const auto* un = dynamic_cast<const csp::UnaryExpr*>(e)) {
    return un->op() == csp::UnaryOp::kNeg &&
           numeric_request_expr(un->operand().get(), op, ctx);
  }
  if (const auto* bin = dynamic_cast<const csp::BinaryExpr*>(e)) {
    switch (bin->op()) {
      case csp::BinaryOp::kAdd:
      case csp::BinaryOp::kSub:
      case csp::BinaryOp::kMul:
      case csp::BinaryOp::kDiv:
      case csp::BinaryOp::kMod:
        return numeric_request_expr(bin->lhs().get(), op, ctx) &&
               numeric_request_expr(bin->rhs().get(), op, ctx);
      default:
        return false;  // comparisons and and/or yield booleans
    }
  }
  if (const auto* idx = dynamic_cast<const csp::IndexExpr*>(e)) {
    const auto* list = dynamic_cast<const csp::VarExpr*>(idx->list().get());
    const auto* i = dynamic_cast<const csp::ConstExpr*>(idx->index().get());
    if (list == nullptr || list->name() != "__args" || i == nullptr ||
        i->value().type() != csp::Value::Type::kInt) {
      return false;
    }
    auto it = ctx.numeric_args.find(op);
    return it != ctx.numeric_args.end() &&
           it->second.count(static_cast<int>(i->value().as_int())) != 0;
  }
  return false;
}

/// Match `x = x (+|*|and|or) e` where `e` reads only request metadata, and
/// return the fold operator.  A `+` fold must also prove `e` numeric:
/// value_add concatenates two strings (associative, not commutative), so a
/// string delta could make reordering silently observable.  With a numeric
/// delta the only non-numeric accumulator behavior is a hard type failure,
/// identical in either order.  `*` rejects non-numerics outright and
/// `and`/`or` reduce to truthiness, so they carry no such obligation.
csp::FoldOp abelian_update_fold(const csp::AssignStmt& a, const std::string& op,
                                const InferContext& ctx) {
  const auto* bin = dynamic_cast<const csp::BinaryExpr*>(a.value.get());
  if (bin == nullptr) return csp::FoldOp::kNone;
  const csp::FoldOp fold = fold_of(bin->op());
  if (fold == csp::FoldOp::kNone) return csp::FoldOp::kNone;
  auto is_self = [&a](const csp::ExprPtr& e) {
    const auto* v = dynamic_cast<const csp::VarExpr*>(e.get());
    return v != nullptr && v->name() == a.variable;
  };
  csp::ExprPtr delta;
  if (is_self(bin->lhs())) {
    delta = bin->rhs();
  } else if (is_self(bin->rhs())) {
    delta = bin->lhs();
  }
  if (delta == nullptr) return csp::FoldOp::kNone;
  std::set<std::string> delta_reads;
  delta->collect_reads(delta_reads);
  for (const auto& r : delta_reads) {
    if (!is_request_var(r)) return csp::FoldOp::kNone;
  }
  if (fold == csp::FoldOp::kAdd &&
      !numeric_request_expr(delta.get(), op, ctx)) {
    return csp::FoldOp::kNone;
  }
  return fold;
}

void summarize_arm(const std::string& op, const csp::Stmt& body,
                   const InferContext& ctx, csp::CommDecls& out) {
  BodyShape shape;
  flatten_body(body, shape);
  if (!shape.summarizable) return;

  std::set<std::string> state_reads;
  std::set<std::string> state_writes;
  for (const auto* a : shape.assigns) {
    if (is_request_var(a->variable)) return;  // unexpected; stay silent
    state_writes.insert(a->variable);
    std::set<std::string> reads;
    a->value->collect_reads(reads);
    for (const auto& r : reads) {
      if (!is_request_var(r)) state_reads.insert(r);
    }
  }
  bool const_replies = true;
  for (const auto* r : shape.replies) {
    std::set<std::string> reads;
    r->value->collect_reads(reads);
    for (const auto& rd : reads) {
      if (!is_request_var(rd)) state_reads.insert(rd);
    }
    if (dynamic_cast<const csp::ConstExpr*>(r->value.get()) == nullptr) {
      const_replies = false;
    }
  }

  csp::OpCommSpec spec;
  if (state_writes.empty()) {
    spec.level = CommLevel::kPure;
    spec.groups.assign(state_reads.begin(), state_reads.end());
  } else {
    // One fold operator for the whole body: the spec carries a single
    // fold, and two runs of this op reorder every update pair, so mixed
    // operators within one body are themselves order-observable.
    csp::FoldOp fold =
        const_replies ? abelian_update_fold(*shape.assigns.front(), op, ctx)
                      : csp::FoldOp::kNone;
    for (std::size_t i = 1; fold != csp::FoldOp::kNone && i < shape.assigns.size();
         ++i) {
      if (abelian_update_fold(*shape.assigns[i], op, ctx) != fold) {
        fold = csp::FoldOp::kNone;
      }
    }
    if (fold != csp::FoldOp::kNone) {
      spec.level = CommLevel::kAbelian;
      spec.fold = fold;
      spec.groups.assign(state_writes.begin(), state_writes.end());
    } else {
      spec.level = CommLevel::kMutate;
      std::set<std::string> groups = state_writes;
      groups.insert(state_reads.begin(), state_reads.end());
      spec.groups.assign(groups.begin(), groups.end());
    }
  }
  out.emplace(op, std::move(spec));
}

}  // namespace

csp::CommDecls infer_summaries(const csp::StmtPtr& program,
                               const InferContext& ctx) {
  csp::CommDecls decls;
  csp::visit_preorder(program.get(), [&decls, &ctx](const csp::Stmt& stmt) {
    std::string op;
    if (const csp::IfStmt* arm = dispatch_arm(stmt, &op)) {
      if (arm->then_branch) summarize_arm(op, *arm->then_branch, ctx, decls);
    }
  });
  return decls;
}

// ---- cross-process context -------------------------------------------------

namespace {

/// Whether `e` is provably numeric in a caller whose provably-numeric
/// local variables are `numeric`.  Request metadata reads resolve as in
/// numeric_request_expr, so service processes that relay values also get
/// their forwarding arguments typed.
bool numeric_local_expr(const csp::Expr* e,
                        const std::set<std::string>& numeric) {
  if (const auto* c = dynamic_cast<const csp::ConstExpr*>(e)) {
    return c->value().type() == csp::Value::Type::kInt ||
           c->value().type() == csp::Value::Type::kReal;
  }
  if (const auto* v = dynamic_cast<const csp::VarExpr*>(e)) {
    if (is_request_var(v->name())) {
      return v->name() == "__caller" || v->name() == "__reqid";
    }
    return numeric.count(v->name()) != 0;
  }
  if (const auto* un = dynamic_cast<const csp::UnaryExpr*>(e)) {
    return un->op() == csp::UnaryOp::kNeg &&
           numeric_local_expr(un->operand().get(), numeric);
  }
  if (const auto* bin = dynamic_cast<const csp::BinaryExpr*>(e)) {
    switch (bin->op()) {
      case csp::BinaryOp::kAdd:
      case csp::BinaryOp::kSub:
      case csp::BinaryOp::kMul:
      case csp::BinaryOp::kDiv:
      case csp::BinaryOp::kMod:
        return numeric_local_expr(bin->lhs().get(), numeric) &&
               numeric_local_expr(bin->rhs().get(), numeric);
      default:
        return false;
    }
  }
  return false;
}

/// Greatest fixpoint of "every value this variable can hold is numeric"
/// over one process: start from all locally assigned variables and remove
/// any with an unproven producer — a non-numeric assignment source, a call
/// reply, or a fork-guessed value.  A native statement writes the Env
/// invisibly, so its presence forfeits the whole process.
std::set<std::string> numeric_vars(const csp::StmtPtr& program) {
  bool has_native = false;
  std::vector<const csp::AssignStmt*> assigns;
  std::set<std::string> unproven;
  csp::visit_preorder(program.get(), [&](const csp::Stmt& s) {
    switch (s.kind) {
      case csp::StmtKind::kNative:
        has_native = true;
        break;
      case csp::StmtKind::kAssign:
        assigns.push_back(static_cast<const csp::AssignStmt*>(&s));
        break;
      case csp::StmtKind::kCall: {
        const auto& c = static_cast<const csp::CallStmt&>(s);
        if (!c.result_var.empty()) unproven.insert(c.result_var);
        break;
      }
      case csp::StmtKind::kFork: {
        const auto& f = static_cast<const csp::ForkStmt&>(s);
        for (const auto& v : f.passed) unproven.insert(v);
        break;
      }
      default:
        break;
    }
  });
  if (has_native) return {};
  std::set<std::string> numeric;
  for (const auto* a : assigns) {
    if (!is_request_var(a->variable)) numeric.insert(a->variable);
  }
  for (const auto& v : unproven) numeric.erase(v);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto* a : assigns) {
      if (numeric.count(a->variable) != 0 &&
          !numeric_local_expr(a->value.get(), numeric)) {
        numeric.erase(a->variable);
        changed = true;
      }
    }
  }
  return numeric;
}

}  // namespace

CommuteContext build_commute_context(const std::vector<SystemProcess>& procs,
                                     const std::string& self) {
  // Pass 1: prove per call site which arguments are numeric, intersecting
  // across every site of (target, op).  A computed-target site could reach
  // any process, so it taints its op name everywhere.
  std::map<std::string, std::map<std::string, std::map<int, bool>>> arg_num;
  std::set<std::string> tainted_ops;
  for (const auto& p : procs) {
    const std::set<std::string> numeric = numeric_vars(p.program);
    csp::visit_preorder(p.program.get(), [&](const csp::Stmt& s) {
      const std::vector<csp::ExprPtr>* args = nullptr;
      const std::string* target = nullptr;
      const std::string* op = nullptr;
      bool dynamic_target = false;
      if (s.kind == csp::StmtKind::kCall) {
        const auto& c = static_cast<const csp::CallStmt&>(s);
        args = &c.args;
        target = &c.target;
        op = &c.op;
        dynamic_target = c.target_expr != nullptr;
      } else if (s.kind == csp::StmtKind::kSend) {
        const auto& c = static_cast<const csp::SendStmt&>(s);
        args = &c.args;
        target = &c.target;
        op = &c.op;
        dynamic_target = c.target_expr != nullptr;
      } else {
        return;
      }
      if (dynamic_target) {
        tainted_ops.insert(*op);
        return;
      }
      auto& per_index = arg_num[*target][*op];
      for (std::size_t i = 0; i < args->size(); ++i) {
        const bool ok = numeric_local_expr((*args)[i].get(), numeric);
        auto [it, inserted] = per_index.emplace(static_cast<int>(i), ok);
        if (!inserted) it->second = it->second && ok;
      }
    });
  }

  CommuteContext ctx;
  ctx.self = self;
  for (const auto& p : procs) {
    InferContext infer;
    auto found = arg_num.find(p.name);
    if (found != arg_num.end()) {
      for (const auto& [op, per_index] : found->second) {
        if (tainted_ops.count(op) != 0) continue;
        std::set<int>& proven = infer.numeric_args[op];
        for (const auto& [i, ok] : per_index) {
          if (ok) proven.insert(i);
        }
      }
    }
    csp::CommDecls decls = infer_summaries(p.program, infer);
    for (const auto& [op, spec] : p.declared) {
      decls[op] = spec;  // declarations win
    }
    if (!decls.empty()) ctx.summaries.per_process[p.name] = std::move(decls);
    CommEffects e = analyze_effects(p.program);
    if (!e.may_ops.empty()) ctx.peer_ops[p.name] = std::move(e.may_ops);
  }
  return ctx;
}

namespace {

bool all_pairs_commute(const SummaryTable& table, const std::string& target,
                       const std::set<std::string>& a,
                       const std::set<std::string>& b) {
  for (const auto& oa : a) {
    const csp::OpCommSpec* sa = table.lookup(target, oa);
    if (sa == nullptr) return false;
    for (const auto& ob : b) {
      const csp::OpCommSpec* sb = table.lookup(target, ob);
      if (sb == nullptr) return false;
      if (!ops_commute(*sa, *sb)) return false;
    }
  }
  return true;
}

std::string join_ops(const std::set<std::string>& ops) {
  std::string out;
  for (const auto& o : ops) {
    if (!out.empty()) out += ",";
    out += o;
  }
  return out;
}

}  // namespace

bool split_commutes_at(const CommuteContext& ctx, const std::string& target,
                       const std::set<std::string>& left_ops,
                       const std::set<std::string>& right_ops,
                       std::string* why) {
  if (left_ops.empty() && right_ops.empty()) return true;
  if (!all_pairs_commute(ctx.summaries, target, left_ops, right_ops)) {
    return false;
  }
  std::set<std::string> mine = left_ops;
  mine.insert(right_ops.begin(), right_ops.end());
  // Reordering the halves is only unobservable if no peer injects a
  // non-commuting op into the same reply stream.
  for (const auto& [peer, per_target] : ctx.peer_ops) {
    if (peer == ctx.self) continue;
    auto it = per_target.find(target);
    if (it == per_target.end()) continue;
    if (!all_pairs_commute(ctx.summaries, target, mine, it->second)) {
      return false;
    }
  }
  if (why != nullptr) {
    *why += target + ": [" + join_ops(left_ops) + "] x [" +
            join_ops(right_ops) + "] commute " +
            ctx.summaries.footprint(target, mine).to_string();
  }
  return true;
}

// ---- use-class analysis ----------------------------------------------------

const char* to_string(UseClass u) {
  switch (u) {
    case UseClass::kUnused: return "unused";
    case UseClass::kBooleanOnly: return "boolean";
    case UseClass::kValueUsed: return "value";
  }
  return "?";
}

UseClass use_join(UseClass a, UseClass b) { return a < b ? b : a; }

namespace {

UseClass expr_use(const csp::Expr* e, const std::string& v, bool bool_ctx) {
  if (e == nullptr) return UseClass::kUnused;
  if (const auto* var = dynamic_cast<const csp::VarExpr*>(e)) {
    if (var->name() != v) return UseClass::kUnused;
    return bool_ctx ? UseClass::kBooleanOnly : UseClass::kValueUsed;
  }
  if (dynamic_cast<const csp::ConstExpr*>(e) != nullptr) {
    return UseClass::kUnused;
  }
  if (const auto* un = dynamic_cast<const csp::UnaryExpr*>(e)) {
    // `!x` reads only the truthiness of x; `-x` reads the value.
    return expr_use(un->operand().get(), v,
                    un->op() == csp::UnaryOp::kNot);
  }
  if (const auto* bin = dynamic_cast<const csp::BinaryExpr*>(e)) {
    const bool operands_boolean = bin->op() == csp::BinaryOp::kAnd ||
                                  bin->op() == csp::BinaryOp::kOr;
    return use_join(expr_use(bin->lhs().get(), v, operands_boolean),
                    expr_use(bin->rhs().get(), v, operands_boolean));
  }
  if (const auto* idx = dynamic_cast<const csp::IndexExpr*>(e)) {
    return use_join(expr_use(idx->list().get(), v, false),
                    expr_use(idx->index().get(), v, false));
  }
  if (const auto* lst = dynamic_cast<const csp::ListExpr*>(e)) {
    UseClass u = UseClass::kUnused;
    for (const auto& item : lst->items()) {
      u = use_join(u, expr_use(item.get(), v, false));
    }
    return u;
  }
  // Unknown expression kind: fall back to the read set.
  std::set<std::string> reads;
  e->collect_reads(reads);
  return reads.count(v) != 0 ? UseClass::kValueUsed : UseClass::kUnused;
}

struct UseResult {
  UseClass use = UseClass::kUnused;
  bool killed = false;  ///< the fragment MUST overwrite v on every path
};

UseResult use_walk(const csp::Stmt* stmt, const std::string& v);

UseResult use_walk_list(const std::vector<const csp::Stmt*>& stmts,
                        const std::string& v) {
  UseResult r;
  for (const auto* s : stmts) {
    UseResult c = use_walk(s, v);
    r.use = use_join(r.use, c.use);
    if (c.killed) {
      r.killed = true;
      break;  // later statements see the overwritten value
    }
  }
  return r;
}

UseResult use_walk_list(const std::vector<csp::StmtPtr>& stmts,
                        const std::string& v) {
  std::vector<const csp::Stmt*> raw;
  raw.reserve(stmts.size());
  for (const auto& s : stmts) raw.push_back(s.get());
  return use_walk_list(raw, v);
}

UseResult use_walk(const csp::Stmt* stmt, const std::string& v) {
  using csp::StmtKind;
  UseResult r;
  if (stmt == nullptr) return r;
  switch (stmt->kind) {
    case StmtKind::kSeq:
      return use_walk_list(static_cast<const csp::SeqStmt*>(stmt)->body, v);
    case StmtKind::kAssign: {
      const auto& s = *static_cast<const csp::AssignStmt*>(stmt);
      r.use = expr_use(s.value.get(), v, false);
      r.killed = s.variable == v;
      return r;
    }
    case StmtKind::kIf: {
      const auto& s = *static_cast<const csp::IfStmt*>(stmt);
      // The condition root is a truthiness context.
      r.use = expr_use(s.cond.get(), v, true);
      const UseResult t = use_walk(s.then_branch.get(), v);
      const UseResult e = use_walk(s.else_branch.get(), v);
      r.use = use_join(r.use, use_join(t.use, e.use));
      r.killed = t.killed && s.else_branch != nullptr && e.killed;
      return r;
    }
    case StmtKind::kWhile: {
      const auto& s = *static_cast<const csp::WhileStmt*>(stmt);
      r.use = use_join(expr_use(s.cond.get(), v, true),
                       use_walk(s.body.get(), v).use);
      return r;  // zero iterations possible: never a kill
    }
    case StmtKind::kCall: {
      const auto& s = *static_cast<const csp::CallStmt*>(stmt);
      for (const auto& a : s.args) {
        r.use = use_join(r.use, expr_use(a.get(), v, false));
      }
      if (s.target_expr) {
        r.use = use_join(r.use, expr_use(s.target_expr.get(), v, false));
      }
      r.killed = !s.result_var.empty() && s.result_var == v;
      return r;
    }
    case StmtKind::kSend: {
      const auto& s = *static_cast<const csp::SendStmt*>(stmt);
      for (const auto& a : s.args) {
        r.use = use_join(r.use, expr_use(a.get(), v, false));
      }
      if (s.target_expr) {
        r.use = use_join(r.use, expr_use(s.target_expr.get(), v, false));
      }
      return r;
    }
    case StmtKind::kReceive:
      // Binds only the __-prefixed request metadata variables.
      r.killed = is_request_var(v);
      return r;
    case StmtKind::kReply:
      r.use = expr_use(static_cast<const csp::ReplyStmt*>(stmt)->value.get(),
                       v, false);
      return r;
    case StmtKind::kPrint:
      // External output is observable: any read is a value use.
      r.use = expr_use(static_cast<const csp::PrintStmt*>(stmt)->value.get(),
                       v, false);
      return r;
    case StmtKind::kCompute:
    case StmtKind::kNop:
      return r;
    case StmtKind::kNative:
      // Opaque: may read anything, writes are invisible.
      r.use = UseClass::kValueUsed;
      return r;
    case StmtKind::kFork: {
      const auto& s = *static_cast<const csp::ForkStmt*>(stmt);
      for (const auto& [var, spec] : s.predictors) {
        (void)var;
        if (spec.expr) {
          r.use = use_join(r.use, expr_use(spec.expr.get(), v, false));
        }
      }
      r.use = use_join(r.use, use_join(use_walk(s.left.get(), v).use,
                                       use_walk(s.right.get(), v).use));
      return r;  // interleaving unknown: no kill credit
    }
    case StmtKind::kHint: {
      const auto& s = *static_cast<const csp::HintStmt*>(stmt);
      for (const auto& [var, spec] : s.predictors) {
        (void)var;
        if (spec.expr) {
          r.use = use_join(r.use, expr_use(spec.expr.get(), v, false));
        }
      }
      return r;
    }
  }
  return r;
}

}  // namespace

UseClass use_of(const std::vector<csp::StmtPtr>& stmts, const std::string& v) {
  return use_walk_list(stmts, v).use;
}

UseClass use_of(const std::vector<const csp::Stmt*>& stmts,
                const std::string& v) {
  return use_walk_list(stmts, v).use;
}

UseClass use_of(const csp::StmtPtr& stmt, const std::string& v) {
  return use_walk(stmt.get(), v).use;
}

csp::VerifyMode verify_mode_for(UseClass u) {
  switch (u) {
    case UseClass::kUnused: return csp::VerifyMode::kDead;
    case UseClass::kBooleanOnly: return csp::VerifyMode::kBoolean;
    case UseClass::kValueUsed: return csp::VerifyMode::kExact;
  }
  return csp::VerifyMode::kExact;
}

}  // namespace ocsp::analysis
