// Ack/retransmit transport for the data plane.
//
// The paper assumes reliable data transport and only argues liveness for the
// re-broadcast control plane (section 4.2.5).  This layer earns that
// assumption over a lossy substrate: every data payload is wrapped in a
// ReliableFrame carrying (sender, seq, incarnation); receivers ack every
// frame, suppress duplicates keyed on (sender, seq), and senders retransmit
// with exponential backoff until acked or the attempt budget is exhausted.
//
// Recovery model: the retransmit buffer and the receiver dedup table live in
// what the fault model treats as stable storage (pessimistic message
// logging), so a crash loses neither — frames addressed to a down endpoint
// are acked and parked by the "NIC" and flushed at restart, which is what
// makes committed data durable across crashes.  Incarnation tags piggyback
// on frames so receivers learn about a sender's rollbacks even when the
// explicit ABORT is still in flight.
//
// With Config::enabled == false (the default) the transport is a strict
// passthrough: registration and sends go straight to the network, no frame,
// no ack, no behavioural drift.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "net/message.h"
#include "net/network.h"
#include "sim/scheduler.h"
#include "util/ids.h"

namespace ocsp::net {

/// A sender's speculation lineage at frame (re)build time: its current
/// incarnation number and the thread index at which that incarnation began.
/// Receivers feed this to PeerHistory::observe_incarnation, implicitly
/// aborting guesses of dead incarnations without waiting for the ABORT.
struct IncarnationTag {
  std::uint32_t incarnation = 0;
  std::uint32_t start_index = 0;
};

/// Data payload wrapped for reliable delivery.
class ReliableFrame final : public Message {
 public:
  ReliableFrame(MessagePtr inner, std::uint64_t seq, IncarnationTag tag,
                int attempt)
      : inner_(std::move(inner)), seq_(seq), tag_(tag), attempt_(attempt) {}

  std::string kind() const override { return "FRAME(" + inner_->kind() + ")"; }
  std::size_t wire_size() const override { return inner_->wire_size() + 16; }
  bool control_plane() const override { return inner_->control_plane(); }
  std::string describe() const override {
    return "frame#" + std::to_string(seq_) + " inc=" +
           std::to_string(tag_.incarnation) + " try=" +
           std::to_string(attempt_) + " " + inner_->describe();
  }

  const MessagePtr& inner() const { return inner_; }
  std::uint64_t seq() const { return seq_; }
  IncarnationTag tag() const { return tag_; }
  int attempt() const { return attempt_; }

 private:
  MessagePtr inner_;
  std::uint64_t seq_;
  IncarnationTag tag_;
  int attempt_;
};

/// Receiver -> sender acknowledgement of one frame.
class AckFrame final : public Message {
 public:
  explicit AckFrame(std::uint64_t seq) : seq_(seq) {}

  std::string kind() const override { return "ACK"; }
  std::size_t wire_size() const override { return 16; }
  std::string describe() const override {
    return "ack#" + std::to_string(seq_);
  }

  std::uint64_t seq() const { return seq_; }

 private:
  std::uint64_t seq_;
};

struct ReliableConfig {
  bool enabled = false;
  /// First retransmission timeout; doubles (rto_backoff) per attempt up to
  /// rto_max.  Defaults comfortably above the default 10us link latency and
  /// below the speculation layer's fork/join timeouts.
  sim::Time rto_initial = sim::milliseconds(4);
  double rto_backoff = 2.0;
  sim::Time rto_max = sim::milliseconds(200);
  /// Total transmission attempts (first send + retransmissions) before the
  /// sender gives up and leaves recovery to the speculation-layer timeouts.
  int max_attempts = 16;
};

struct ReliableStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retransmit_exhausted = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t parked_deliveries = 0;
};

class ReliableTransport {
 public:
  /// Supplies the sender's current incarnation tag at frame (re)build time.
  using IncarnationFn = std::function<IncarnationTag()>;
  /// Notified when a frame from `src` carrying `tag` reaches this endpoint.
  using IncarnationObserver =
      std::function<void(ProcessId src, IncarnationTag tag)>;
  /// Observability hooks (retransmit: sender side; duplicate: receiver side).
  using RetransmitObserver = std::function<void(
      ProcessId src, ProcessId dst, std::uint64_t seq, int attempt)>;
  using DuplicateObserver =
      std::function<void(ProcessId dst, ProcessId src, std::uint64_t seq)>;

  // The transport is wire-agnostic: it emits frames/acks through SendFn and
  // claims receive slots through RegisterFn.  The Network constructor binds
  // both to one net::Network (the sequential runtime); exec::ParallelRuntime
  // instead hosts one transport per shard, bound to its shard-local send
  // path and endpoint table, with RTO timers on the shard's own scheduler.
  using SendFn = std::function<MsgId(ProcessId, ProcessId, MessagePtr)>;
  using RegisterFn = std::function<void(ProcessId, Network::Handler)>;

  ReliableTransport(Network& net, sim::Scheduler& sched,
                    ReliableConfig config);
  ReliableTransport(SendFn send, RegisterFn register_endpoint,
                    sim::Scheduler& sched, ReliableConfig config)
      : send_(std::move(send)),
        register_(std::move(register_endpoint)),
        sched_(sched),
        config_(config) {}

  /// Register a process behind the transport.  With the transport disabled
  /// this is a plain Network::register_endpoint.
  void register_endpoint(ProcessId id, Network::Handler handler,
                         IncarnationFn incarnation = nullptr,
                         IncarnationObserver observer = nullptr);

  /// Send a data payload reliably (or straight through when disabled).
  MsgId send(ProcessId src, ProcessId dst, MessagePtr payload);

  /// Crash/restart support: while down, framed deliveries are acked and
  /// parked (stable NIC), unframed ones pass through to the handler (which
  /// drops them while crashed).  Bringing the endpoint back up flushes the
  /// parked frames in arrival order on the next scheduler step.
  void set_down(ProcessId id, bool down);
  bool is_down(ProcessId id) const { return down_.count(id) > 0; }

  void set_retransmit_observer(RetransmitObserver obs) {
    retransmit_observer_ = std::move(obs);
  }
  void set_duplicate_observer(DuplicateObserver obs) {
    duplicate_observer_ = std::move(obs);
  }

  const ReliableConfig& config() const { return config_; }
  const ReliableStats& stats() const { return stats_; }

 private:
  struct PendingSend {
    ProcessId src = kNoProcess;
    ProcessId dst = kNoProcess;
    MessagePtr payload;
    int attempt = 0;
    sim::Time rto = 0;
    sim::Scheduler::Handle timer;
  };
  struct Endpoint {
    Network::Handler handler;
    IncarnationFn incarnation;
    IncarnationObserver observer;
    /// (sender, seq) pairs already delivered to this endpoint.
    std::set<std::pair<ProcessId, std::uint64_t>> seen;
  };
  struct ParkedDelivery {
    Envelope env;
    ProcessId src = kNoProcess;
    IncarnationTag tag;
  };

  void on_network_delivery(ProcessId id, const Envelope& env);
  MsgId transmit(std::uint64_t seq);
  void deliver_frame(Endpoint& ep, const Envelope& env, ProcessId src,
                     IncarnationTag tag);

  SendFn send_;
  RegisterFn register_;
  sim::Scheduler& sched_;
  ReliableConfig config_;
  ReliableStats stats_;
  std::map<ProcessId, Endpoint> endpoints_;
  std::map<std::uint64_t, PendingSend> pending_;
  std::set<ProcessId> down_;
  std::map<ProcessId, std::deque<ParkedDelivery>> parked_;
  RetransmitObserver retransmit_observer_;
  DuplicateObserver duplicate_observer_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ocsp::net
