#include "net/reliable.h"

#include <algorithm>
#include <memory>

#include "util/check.h"
#include "util/logging.h"

namespace ocsp::net {

ReliableTransport::ReliableTransport(Network& net, sim::Scheduler& sched,
                                     ReliableConfig config)
    : ReliableTransport(
          [&net](ProcessId src, ProcessId dst, MessagePtr payload) {
            return net.send(src, dst, std::move(payload));
          },
          [&net](ProcessId id, Network::Handler handler) {
            net.register_endpoint(id, std::move(handler));
          },
          sched, config) {}

void ReliableTransport::register_endpoint(ProcessId id,
                                          Network::Handler handler,
                                          IncarnationFn incarnation,
                                          IncarnationObserver observer) {
  OCSP_CHECK(handler != nullptr);
  if (!config_.enabled) {
    register_(id, std::move(handler));
    return;
  }
  Endpoint& ep = endpoints_[id];
  ep.handler = std::move(handler);
  ep.incarnation = std::move(incarnation);
  ep.observer = std::move(observer);
  register_(id,
            [this, id](const Envelope& env) { on_network_delivery(id, env); });
}

MsgId ReliableTransport::send(ProcessId src, ProcessId dst,
                              MessagePtr payload) {
  if (!config_.enabled) return send_(src, dst, std::move(payload));
  const std::uint64_t seq = next_seq_++;
  PendingSend& p = pending_[seq];
  p.src = src;
  p.dst = dst;
  p.payload = std::move(payload);
  p.attempt = 0;
  p.rto = config_.rto_initial;
  return transmit(seq);
}

MsgId ReliableTransport::transmit(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return 0;
  PendingSend& p = it->second;
  ++p.attempt;

  IncarnationTag tag;
  auto ep = endpoints_.find(p.src);
  if (ep != endpoints_.end() && ep->second.incarnation) {
    tag = ep->second.incarnation();
  }

  ++stats_.frames_sent;
  if (p.attempt > 1) {
    ++stats_.retransmissions;
    OCSP_DLOG << "reliable: retransmit #" << seq << " " << p.src << "->"
              << p.dst << " try=" << p.attempt;
    if (retransmit_observer_) {
      retransmit_observer_(p.src, p.dst, seq, p.attempt);
    }
  }
  const MsgId id = send_(
      p.src, p.dst, std::make_shared<ReliableFrame>(p.payload, seq, tag,
                                                    p.attempt));

  p.timer = sched_.after(p.rto, [this, seq]() {
    auto pit = pending_.find(seq);
    if (pit == pending_.end()) return;  // acked in the meantime
    if (pit->second.attempt >= config_.max_attempts) {
      ++stats_.retransmit_exhausted;
      OCSP_DLOG << "reliable: give up on #" << seq << " after "
                << pit->second.attempt << " attempts";
      pending_.erase(pit);
      return;
    }
    transmit(seq);
  });
  p.rto = std::min(static_cast<sim::Time>(static_cast<double>(p.rto) *
                                          config_.rto_backoff),
                   config_.rto_max);
  return id;
}

void ReliableTransport::on_network_delivery(ProcessId id, const Envelope& env) {
  auto epit = endpoints_.find(id);
  OCSP_CHECK_MSG(epit != endpoints_.end(), "reliable: unknown endpoint");
  Endpoint& ep = epit->second;

  if (auto ack = std::dynamic_pointer_cast<const AckFrame>(env.payload)) {
    auto it = pending_.find(ack->seq());
    if (it != pending_.end()) {
      sched_.cancel(it->second.timer);
      pending_.erase(it);
    }
    return;
  }

  if (auto frame =
          std::dynamic_pointer_cast<const ReliableFrame>(env.payload)) {
    // Ack unconditionally — even duplicates and frames parked while the
    // endpoint is down.  Retransmits of messages a rollback has since
    // orphaned thus self-terminate at the sender without any coupling
    // between the transport and the speculation layer.
    ++stats_.acks_sent;
    send_(id, env.src, std::make_shared<AckFrame>(frame->seq()));

    if (!ep.seen.insert({env.src, frame->seq()}).second) {
      ++stats_.duplicates_suppressed;
      OCSP_DLOG << "reliable: suppress duplicate #" << frame->seq() << " "
                << env.src << "->" << id;
      if (duplicate_observer_) duplicate_observer_(id, env.src, frame->seq());
      return;
    }

    Envelope inner = env;
    inner.payload = frame->inner();
    if (down_.count(id) > 0) {
      ++stats_.parked_deliveries;
      parked_[id].push_back({inner, env.src, frame->tag()});
      return;
    }
    deliver_frame(ep, inner, env.src, frame->tag());
    return;
  }

  // Unframed payload (control plane): straight through.  A crashed process
  // drops these itself — control liveness rests on the blind re-broadcast.
  ep.handler(env);
}

void ReliableTransport::deliver_frame(Endpoint& ep, const Envelope& env,
                                      ProcessId src, IncarnationTag tag) {
  if (ep.observer) ep.observer(src, tag);
  ep.handler(env);
}

void ReliableTransport::set_down(ProcessId id, bool down) {
  if (!config_.enabled) return;
  if (down) {
    down_.insert(id);
    return;
  }
  if (down_.erase(id) == 0) return;
  auto it = parked_.find(id);
  if (it == parked_.end() || it->second.empty()) return;
  // Flush on the next scheduler step so the restart that brought the
  // endpoint up finishes before parked traffic arrives.
  sched_.after(0, [this, id]() {
    auto pit = parked_.find(id);
    auto epit = endpoints_.find(id);
    if (pit == parked_.end() || epit == endpoints_.end()) return;
    while (!pit->second.empty()) {
      if (down_.count(id) > 0) return;  // crashed again mid-flush
      ParkedDelivery pd = std::move(pit->second.front());
      pit->second.pop_front();
      OCSP_DLOG << "reliable: flush parked delivery " << pd.src << "->" << id;
      deliver_frame(epit->second, pd.env, pd.src, pd.tag);
    }
  });
}

}  // namespace ocsp::net
