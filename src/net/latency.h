// Link latency models.
//
// The protocol's behaviour (and the paper's figures) depend only on message
// delays and orderings; these models let a benchmark dial in anything from
// a backplane (1us fixed) to a WAN (50ms exponential with jitter).
#pragma once

#include <cstddef>
#include <memory>

#include "sim/time.h"
#include "util/rng.h"

namespace ocsp::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Propagation delay sample for one message (excludes bandwidth term).
  virtual sim::Time sample(util::Rng& rng) const = 0;

  /// Smallest delay sample() can ever return.  The parallel executor's
  /// conservative window width (lookahead) is the minimum of this over all
  /// links: a message sent at virtual time t cannot arrive before
  /// t + min_delay(), so events less than that far apart on different
  /// shards are causally independent.
  virtual sim::Time min_delay() const = 0;
};

using LatencyModelPtr = std::shared_ptr<const LatencyModel>;

/// Constant delay.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(sim::Time delay);
  sim::Time sample(util::Rng& rng) const override;
  sim::Time min_delay() const override { return delay_; }

 private:
  sim::Time delay_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::Time lo, sim::Time hi);
  sim::Time sample(util::Rng& rng) const override;
  sim::Time min_delay() const override { return lo_; }

 private:
  sim::Time lo_;
  sim::Time hi_;
};

/// base + Exp(mean_extra): long-tailed WAN-like delays.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(sim::Time base, sim::Time mean_extra);
  sim::Time sample(util::Rng& rng) const override;
  sim::Time min_delay() const override { return base_; }

 private:
  sim::Time base_;
  sim::Time mean_extra_;
};

LatencyModelPtr fixed_latency(sim::Time delay);
LatencyModelPtr uniform_latency(sim::Time lo, sim::Time hi);
LatencyModelPtr exponential_latency(sim::Time base, sim::Time mean_extra);

}  // namespace ocsp::net
