// Base class for everything that travels over the simulated network.
//
// The network layer is payload-agnostic: the speculation layer defines the
// concrete message types (data messages carrying commit-guard tags, control
// messages carrying COMMIT/ABORT/PRECEDENCE).  Payloads are immutable and
// shared, so "transmission" never copies message bodies.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace ocsp::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Short tag for tracing ("CALL", "RETURN", "COMMIT", ...).
  virtual std::string kind() const = 0;

  /// Approximate wire size, used for bandwidth-delay modelling.
  virtual std::size_t wire_size() const { return 64; }

  /// Control-plane messages (COMMIT/ABORT/PRECEDENCE) override this; fault
  /// plans use it to apply per-plane drop/duplicate/corrupt probabilities.
  virtual bool control_plane() const { return false; }

  /// Human-readable rendering for traces and debug logs.
  virtual std::string describe() const { return kind(); }
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace ocsp::net
