#include "net/network.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace ocsp::net {

Network::Network(sim::Scheduler& sched, util::Rng rng)
    : sched_(sched), rng_(rng) {}

void Network::register_endpoint(ProcessId id, Handler handler) {
  OCSP_CHECK(handler != nullptr);
  endpoints_[id] = std::move(handler);
}

void Network::set_default_link(LinkConfig config) {
  OCSP_CHECK(config.latency != nullptr);
  default_link_ = std::move(config);
}

void Network::set_link(ProcessId src, ProcessId dst, LinkConfig config) {
  OCSP_CHECK(config.latency != nullptr);
  links_[{src, dst}] = std::move(config);
}

const LinkConfig& Network::link_for(ProcessId src, ProcessId dst) const {
  auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

MsgId Network::send(ProcessId src, ProcessId dst, MessagePtr payload) {
  OCSP_CHECK(payload != nullptr);
  const MsgId id = next_msg_id_++;
  const LinkConfig& link = link_for(src, dst);

  ++stats_.messages_sent;
  stats_.bytes_sent += payload->wire_size();

  if (link.drop_probability > 0.0 &&
      (!link.drop_filter || link.drop_filter(*payload)) &&
      rng_.bernoulli(link.drop_probability)) {
    ++stats_.messages_dropped;
    OCSP_DLOG << "net: drop #" << id << " " << payload->kind() << " " << src
              << "->" << dst;
    if (send_tracer_) {
      Envelope env;
      env.id = id;
      env.src = src;
      env.dst = dst;
      env.sent_at = sched_.now();
      env.delivered_at = 0;  // dropped
      env.payload = std::move(payload);
      send_tracer_(env);
    }
    return id;
  }

  sim::Time delay = link.latency->sample(rng_);
  if (link.bandwidth_bytes_per_sec > 0) {
    const double serialize =
        static_cast<double>(payload->wire_size()) /
        static_cast<double>(link.bandwidth_bytes_per_sec) * 1e9;
    delay += static_cast<sim::Time>(serialize);
  }

  sim::Time deliver_at = sched_.now() + delay;
  if (link.fifo) {
    auto& horizon = fifo_horizon_[{src, dst}];
    deliver_at = std::max(deliver_at, horizon);
    horizon = deliver_at;
  }

  Envelope env;
  env.id = id;
  env.src = src;
  env.dst = dst;
  env.sent_at = sched_.now();
  env.delivered_at = deliver_at;
  env.payload = std::move(payload);
  if (send_tracer_) send_tracer_(env);

  sched_.at(deliver_at, [this, env]() {
    auto it = endpoints_.find(env.dst);
    OCSP_CHECK_MSG(it != endpoints_.end(), "delivery to unknown endpoint");
    ++stats_.messages_delivered;
    OCSP_DLOG << "net: deliver #" << env.id << " " << env.payload->kind()
              << " " << env.src << "->" << env.dst << " @" << env.delivered_at;
    it->second(env);
    if (tracer_) tracer_(env);
  });
  return id;
}

}  // namespace ocsp::net
