#include "net/network.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace ocsp::net {

Network::Network(sim::Scheduler& sched, util::Rng rng)
    : sched_(sched), rng_(rng), fault_rng_(0) {
  // Derive the fault stream from a *copy* so rng_ itself never advances:
  // runs with fault injection disabled draw exactly the same latency/loss
  // sequence as before this stream existed.
  util::Rng tmp = rng_;
  fault_rng_ = tmp.split();
}

void Network::register_endpoint(ProcessId id, Handler handler) {
  OCSP_CHECK(handler != nullptr);
  endpoints_[id] = std::move(handler);
}

void Network::set_default_link(LinkConfig config) {
  OCSP_CHECK(config.latency != nullptr);
  default_link_ = std::move(config);
}

void Network::set_link(ProcessId src, ProcessId dst, LinkConfig config) {
  OCSP_CHECK(config.latency != nullptr);
  links_[{src, dst}] = std::move(config);
}

const LinkConfig& Network::link_for(ProcessId src, ProcessId dst) const {
  auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::enable_per_link_streams(std::uint64_t seed_base) {
  OCSP_CHECK_MSG(stats_.messages_sent == 0,
                 "enable_per_link_streams after the first send");
  per_link_ = true;
  per_link_seed_base_ = seed_base;
}

void Network::enable_per_link_streams() {
  enable_per_link_streams(link_seed_base(rng_));
}

std::uint64_t Network::link_seed_base(const util::Rng& rng) {
  // Derive from a copy so the caller's stream never advances: runs that
  // never enable per-link mode draw exactly the same sequence as before.
  util::Rng tmp = rng;
  return tmp.next();
}

util::Rng Network::link_stream(std::uint64_t seed_base, ProcessId src,
                               ProcessId dst) {
  std::uint64_t state = seed_base ^ (static_cast<std::uint64_t>(src) << 32) ^
                        (static_cast<std::uint64_t>(dst) << 1);
  return util::Rng(util::splitmix64(state));
}

util::Rng Network::link_fault_stream(std::uint64_t seed_base, ProcessId src,
                                     ProcessId dst) {
  // Split off a copy: the link stream proper never advances, so enabling
  // faults leaves its latency/loss draws bit-identical.
  util::Rng tmp = link_stream(seed_base, src, dst);
  return tmp.split();
}

MsgId Network::link_msg_id(ProcessId src, ProcessId dst, std::uint64_t seq) {
  return (static_cast<MsgId>(src & 0xffff) << 48) |
         (static_cast<MsgId>(dst & 0xffff) << 32) | (seq & 0xffffffff);
}

std::uint64_t Network::link_prio(ProcessId src, ProcessId dst,
                                 std::uint64_t seq) {
  return (seq << 32) | (static_cast<std::uint64_t>(src & 0xffff) << 16) |
         static_cast<std::uint64_t>(dst & 0xffff);
}

sim::Time Network::min_link_delay() const {
  sim::Time lo = default_link_.latency->min_delay();
  for (const auto& [pair, link] : links_) {
    lo = std::min(lo, link.latency->min_delay());
  }
  return lo;
}

Network::LinkState& Network::link_state(ProcessId src, ProcessId dst) {
  auto it = link_state_.find({src, dst});
  if (it == link_state_.end()) {
    it = link_state_.emplace(std::make_pair(src, dst), LinkState{}).first;
    it->second.rng = link_stream(per_link_seed_base_, src, dst);
    it->second.fault_rng = link_fault_stream(per_link_seed_base_, src, dst);
  }
  return it->second;
}

MsgId Network::send(ProcessId src, ProcessId dst, MessagePtr payload) {
  OCSP_CHECK(payload != nullptr);
  LinkState* ls = per_link_ ? &link_state(src, dst) : nullptr;
  const MsgId id = ls ? link_msg_id(src, dst, ++ls->seq) : next_msg_id_++;
  const std::uint64_t prio =
      ls ? link_prio(src, dst, ls->seq) : sim::Scheduler::kDefaultPrio;
  util::Rng& draws = ls ? ls->rng : rng_;
  const LinkConfig& link = link_for(src, dst);

  ++stats_.messages_sent;
  stats_.bytes_sent += payload->wire_size();

  if (link.drop_probability > 0.0 &&
      (!link.drop_filter || link.drop_filter(*payload)) &&
      draws.bernoulli(link.drop_probability)) {
    ++stats_.messages_dropped;
    OCSP_DLOG << "net: drop #" << id << " " << payload->kind() << " " << src
              << "->" << dst;
    if (send_tracer_) {
      Envelope env;
      env.id = id;
      env.src = src;
      env.dst = dst;
      env.sent_at = sched_.now();
      env.delivered_at = 0;  // dropped
      env.payload = std::move(payload);
      send_tracer_(env);
    }
    return id;
  }

  sim::Time delay = link.latency->sample(draws);
  if (link.bandwidth_bytes_per_sec > 0) {
    const double serialize =
        static_cast<double>(payload->wire_size()) /
        static_cast<double>(link.bandwidth_bytes_per_sec) * 1e9;
    delay += static_cast<sim::Time>(serialize);
  }

  sim::Time deliver_at = sched_.now() + delay;
  if (link.fifo) {
    auto& horizon = ls ? ls->fifo_horizon : fifo_horizon_[{src, dst}];
    deliver_at = std::max(deliver_at, horizon);
    horizon = deliver_at;
  }

  Envelope env;
  env.id = id;
  env.src = src;
  env.dst = dst;
  env.sent_at = sched_.now();
  env.delivered_at = deliver_at;
  env.payload = std::move(payload);

  // Fault injection runs after the latency/FIFO computation above: every
  // send consumes its latency draw whether or not it survives, so the fault
  // plan never perturbs the delivery schedule of unaffected messages.  In
  // per-link mode the decision draws come from the link's own fault stream,
  // making fault outcomes a pure function of (src, dst, link seq).
  util::Rng& fault_draws = ls ? ls->fault_rng : fault_rng_;
  FaultDecision fault;
  if (fault_hook_) fault = fault_hook_(env, fault_draws);

  if (fault.drop || fault.corrupt) {
    if (fault.corrupt) {
      ++stats_.faults_corrupted;
    } else {
      ++stats_.faults_dropped;
    }
    OCSP_DLOG << "net: fault " << (fault.corrupt ? "corrupt" : "drop") << " #"
              << id << " " << env.payload->kind() << " " << src << "->" << dst
              << " (" << fault.cause << ")";
    if (send_tracer_) {
      Envelope lost = env;
      lost.delivered_at = 0;  // never delivered
      send_tracer_(lost);
    }
    return id;
  }

  if (send_tracer_) send_tracer_(env);
  schedule_delivery(env, prio);

  for (int i = 0; i < fault.duplicates; ++i) {
    ++stats_.faults_duplicated;
    Envelope dup = env;
    dup.delivered_at =
        deliver_at + sim::microseconds(1 + fault_draws.uniform_int(0, 200));
    OCSP_DLOG << "net: fault duplicate #" << id << " " << src << "->" << dst
              << " @" << dup.delivered_at << " (" << fault.cause << ")";
    schedule_delivery(dup, prio);
  }
  return id;
}

void Network::schedule_delivery(const Envelope& env, std::uint64_t prio) {
  sched_.at(env.delivered_at, prio, [this, env]() {
    auto it = endpoints_.find(env.dst);
    OCSP_CHECK_MSG(it != endpoints_.end(), "delivery to unknown endpoint");
    ++stats_.messages_delivered;
    OCSP_DLOG << "net: deliver #" << env.id << " " << env.payload->kind()
              << " " << env.src << "->" << env.dst << " @" << env.delivered_at;
    it->second(env);
    if (tracer_) tracer_(env);
  });
}

}  // namespace ocsp::net
