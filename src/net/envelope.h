// Wire envelope: addressing metadata around an immutable payload.
#pragma once

#include "net/message.h"
#include "sim/time.h"
#include "util/ids.h"

namespace ocsp::net {

struct Envelope {
  MsgId id = 0;
  ProcessId src = kNoProcess;
  ProcessId dst = kNoProcess;
  sim::Time sent_at = 0;
  sim::Time delivered_at = 0;
  MessagePtr payload;
};

}  // namespace ocsp::net
