// Simulated network: routes envelopes between registered endpoints through
// per-pair links with configurable latency, bandwidth, ordering, and loss.
//
// Figure 4 of the paper (a time fault) requires a network where X's direct
// call to Z can overtake the Y->Z call it logically follows; setting
// fifo=false on a link (or giving pairs different latencies) reproduces
// exactly that.  Loss is used to exercise the control-broadcast liveness
// argument of section 4.2.5.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/envelope.h"
#include "net/latency.h"
#include "sim/scheduler.h"
#include "util/ids.h"
#include "util/rng.h"

namespace ocsp::net {

struct LinkConfig {
  LatencyModelPtr latency = fixed_latency(sim::microseconds(10));
  /// Bytes per virtual second; 0 disables the bandwidth term.
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Deliver messages on this link in send order.
  bool fifo = true;
  /// Probability a message is silently dropped (senders needing liveness
  /// must retry; used only for control-plane loss experiments).
  double drop_probability = 0.0;

  /// When set, only messages matching the filter are subject to loss; the
  /// liveness experiments drop COMMIT/ABORT/PRECEDENCE while leaving data
  /// messages reliable (the paper assumes reliable data transport and only
  /// requires the control broadcast to be retried, section 4.2.5).
  std::function<bool(const Message&)> drop_filter;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;
  /// Trace hook observing every delivery (after the handler ran).
  using Tracer = std::function<void(const Envelope&)>;

  Network(sim::Scheduler& sched, util::Rng rng);

  /// Register the receive handler for a process.  Re-registration replaces
  /// the previous handler (used when a process restarts).
  void register_endpoint(ProcessId id, Handler handler);

  /// Default link used for pairs without an override.
  void set_default_link(LinkConfig config);

  /// Override the link for the ordered pair (src, dst).
  void set_link(ProcessId src, ProcessId dst, LinkConfig config);

  /// Queue a message for delivery.  Returns the assigned message id.
  MsgId send(ProcessId src, ProcessId dst, MessagePtr payload);

  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  /// Trace hook observing every accepted send (before queueing; dropped
  /// messages are observed too, with delivered_at == 0).
  void set_send_tracer(Tracer tracer) { send_tracer_ = std::move(tracer); }

  const NetworkStats& stats() const { return stats_; }
  sim::Scheduler& scheduler() { return sched_; }

 private:
  const LinkConfig& link_for(ProcessId src, ProcessId dst) const;

  sim::Scheduler& sched_;
  util::Rng rng_;
  LinkConfig default_link_;
  std::map<std::pair<ProcessId, ProcessId>, LinkConfig> links_;
  std::map<ProcessId, Handler> endpoints_;
  /// Earliest permissible delivery time per ordered pair (FIFO enforcement).
  std::map<std::pair<ProcessId, ProcessId>, sim::Time> fifo_horizon_;
  Tracer tracer_;
  Tracer send_tracer_;
  NetworkStats stats_;
  MsgId next_msg_id_ = 1;
};

}  // namespace ocsp::net
