// Simulated network: routes envelopes between registered endpoints through
// per-pair links with configurable latency, bandwidth, ordering, and loss.
//
// Figure 4 of the paper (a time fault) requires a network where X's direct
// call to Z can overtake the Y->Z call it logically follows; setting
// fifo=false on a link (or giving pairs different latencies) reproduces
// exactly that.  Loss is used to exercise the control-broadcast liveness
// argument of section 4.2.5.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/envelope.h"
#include "net/latency.h"
#include "sim/scheduler.h"
#include "util/ids.h"
#include "util/rng.h"

namespace ocsp::net {

struct LinkConfig {
  LatencyModelPtr latency = fixed_latency(sim::microseconds(10));
  /// Bytes per virtual second; 0 disables the bandwidth term.
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Deliver messages on this link in send order.
  bool fifo = true;
  /// Probability a message is silently dropped.  Loss applies to both
  /// planes: data-plane senders recover via the ack/retransmit transport
  /// (net/reliable.h) and control-plane senders via the blind re-broadcast
  /// of section 4.2.5 (SpecConfig::control_retry).
  double drop_probability = 0.0;

  /// When set, only messages matching the filter are subject to loss; the
  /// liveness experiments use it to target one plane at a time (e.g. drop
  /// COMMIT/ABORT/PRECEDENCE but leave data alone, or the reverse).  Leave
  /// unset to expose every message on the link to drop_probability.
  std::function<bool(const Message&)> drop_filter;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Injected-fault outcomes (fault hook; disjoint from messages_dropped,
  /// which counts LinkConfig::drop_probability losses).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t faults_duplicated = 0;
};

/// Verdict of the fault hook for one send.  `corrupt` models a payload
/// mangled in flight and discarded by the receiver's checksum — from the
/// protocol's point of view it is a loss, but it is counted separately.
/// `duplicates` schedules that many extra deliveries of the same envelope.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  int duplicates = 0;
  const char* cause = "";
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;
  /// Trace hook observing every delivery (after the handler ran).
  using Tracer = std::function<void(const Envelope&)>;
  /// Fault hook consulted once per send (after latency/FIFO computation so
  /// fault decisions never perturb latency draws).  The util::Rng passed in
  /// is the network's dedicated fault stream.
  using FaultHook = std::function<FaultDecision(const Envelope&, util::Rng&)>;

  Network(sim::Scheduler& sched, util::Rng rng);

  /// Register the receive handler for a process.  Re-registration replaces
  /// the previous handler (used when a process restarts).
  void register_endpoint(ProcessId id, Handler handler);

  /// Default link used for pairs without an override.
  void set_default_link(LinkConfig config);

  /// Override the link for the ordered pair (src, dst).
  void set_link(ProcessId src, ProcessId dst, LinkConfig config);

  /// Queue a message for delivery.  Returns the assigned message id.
  MsgId send(ProcessId src, ProcessId dst, MessagePtr payload);

  // ---- deterministic per-link mode ----------------------------------------
  //
  // By default, latency and loss draws come from one global stream and
  // same-time deliveries tie-break on scheduler insertion order, so the
  // delivery schedule depends on the global interleaving of sends.  That is
  // fine for a single sequential executor, but it cannot be reproduced by a
  // sharded executor that discovers the same sends in a different order.
  //
  // Per-link mode makes the schedule a pure function of each sender's
  // program order: every ordered (src, dst) pair gets its own RNG stream
  // (seeded from `seed_base` and the pair), and message ids and same-time
  // delivery priorities are pure functions of (src, dst, per-link sequence
  // number).  exec::ParallelRuntime computes the identical schedule with
  // the static helpers below.

  /// Switch send() to per-link determinism.  Call before the first send.
  void enable_per_link_streams(std::uint64_t seed_base);

  /// Same, with the seed base self-derived from this network's own stream
  /// (link_seed_base(rng)); an executor that mirrors the stream derivation
  /// obtains the identical base via the static helper.
  void enable_per_link_streams();

  bool per_link_streams() const { return per_link_; }

  /// Seed base derived from the network RNG stream without advancing it
  /// (the fault_rng_ copy-split idiom): both executors call this with the
  /// stream split off the run seed and obtain the same base, while runs
  /// that never enable per-link mode stay bit-identical.
  static std::uint64_t link_seed_base(const util::Rng& rng);

  /// Dedicated stream for the ordered pair (src, dst).
  static util::Rng link_stream(std::uint64_t seed_base, ProcessId src,
                               ProcessId dst);

  /// Dedicated fault-injection stream for the ordered pair (src, dst):
  /// split off a *copy* of link_stream, so the latency/loss draws of the
  /// link stream itself are bit-identical whether or not faults are
  /// enabled.  In per-link mode the fault hook and duplicate-delay draws
  /// use this stream, making every fault decision a pure function of
  /// (src, dst, per-link sequence number) — exec::ParallelRuntime derives
  /// the identical stream per shard-local link.
  static util::Rng link_fault_stream(std::uint64_t seed_base, ProcessId src,
                                     ProcessId dst);

  /// Deterministic message id for the `seq`-th send on (src, dst).
  static MsgId link_msg_id(ProcessId src, ProcessId dst, std::uint64_t seq);

  /// Same-time delivery priority for the `seq`-th send on (src, dst).
  /// Lower than Scheduler::kDefaultPrio, so at equal virtual times
  /// deliveries fire before locally scheduled events in every executor.
  static std::uint64_t link_prio(ProcessId src, ProcessId dst,
                                 std::uint64_t seq);

  /// Smallest latency any configured link (default or override) can ever
  /// produce — the parallel executor's lookahead.
  sim::Time min_link_delay() const;

  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  /// Trace hook observing every accepted send (before queueing; dropped
  /// messages are observed too, with delivered_at == 0).
  void set_send_tracer(Tracer tracer) { send_tracer_ = std::move(tracer); }

  /// Install (or clear) the fault-injection hook.  All fault randomness is
  /// drawn from a stream split off the link RNG at construction, so enabling
  /// faults leaves every latency/loss draw bit-identical to a fault-free run.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  const NetworkStats& stats() const { return stats_; }
  sim::Scheduler& scheduler() { return sched_; }

 private:
  /// Per-ordered-pair state of the deterministic per-link mode.
  struct LinkState {
    util::Rng rng{0};
    /// Fault-decision draws for this link (link_fault_stream); keeps fault
    /// outcomes independent of which executor discovers the sends.
    util::Rng fault_rng{0};
    std::uint64_t seq = 0;
    sim::Time fifo_horizon = 0;
  };

  const LinkConfig& link_for(ProcessId src, ProcessId dst) const;
  LinkState& link_state(ProcessId src, ProcessId dst);
  void schedule_delivery(const Envelope& env, std::uint64_t prio);

  sim::Scheduler& sched_;
  util::Rng rng_;
  /// Dedicated stream for fault-injection draws (split from rng_ without
  /// advancing it — see the constructor).
  util::Rng fault_rng_;
  LinkConfig default_link_;
  std::map<std::pair<ProcessId, ProcessId>, LinkConfig> links_;
  std::map<ProcessId, Handler> endpoints_;
  /// Earliest permissible delivery time per ordered pair (FIFO enforcement).
  std::map<std::pair<ProcessId, ProcessId>, sim::Time> fifo_horizon_;
  Tracer tracer_;
  Tracer send_tracer_;
  FaultHook fault_hook_;
  NetworkStats stats_;
  MsgId next_msg_id_ = 1;
  bool per_link_ = false;
  std::uint64_t per_link_seed_base_ = 0;
  std::map<std::pair<ProcessId, ProcessId>, LinkState> link_state_;
};

}  // namespace ocsp::net
