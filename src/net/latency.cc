#include "net/latency.h"

#include "util/check.h"

namespace ocsp::net {

FixedLatency::FixedLatency(sim::Time delay) : delay_(delay) {
  OCSP_CHECK(delay >= 0);
}

sim::Time FixedLatency::sample(util::Rng&) const { return delay_; }

UniformLatency::UniformLatency(sim::Time lo, sim::Time hi) : lo_(lo), hi_(hi) {
  OCSP_CHECK(0 <= lo && lo <= hi);
}

sim::Time UniformLatency::sample(util::Rng& rng) const {
  return rng.uniform_int(lo_, hi_);
}

ExponentialLatency::ExponentialLatency(sim::Time base, sim::Time mean_extra)
    : base_(base), mean_extra_(mean_extra) {
  OCSP_CHECK(base >= 0);
  OCSP_CHECK(mean_extra > 0);
}

sim::Time ExponentialLatency::sample(util::Rng& rng) const {
  return base_ + static_cast<sim::Time>(
                     rng.exponential(static_cast<double>(mean_extra_)));
}

LatencyModelPtr fixed_latency(sim::Time delay) {
  return std::make_shared<FixedLatency>(delay);
}

LatencyModelPtr uniform_latency(sim::Time lo, sim::Time hi) {
  return std::make_shared<UniformLatency>(lo, hi);
}

LatencyModelPtr exponential_latency(sim::Time base, sim::Time mean_extra) {
  return std::make_shared<ExponentialLatency>(base, mean_extra);
}

}  // namespace ocsp::net
