// ThreadedRuntime: run CSP programs on real OS threads.
//
// One std::jthread per process, mutex+condvar mailboxes, blocking calls —
// the conventional implementation of the paper's *source* model ("a
// feasible target environment is the Mach operating system").  It executes
// pessimistically (forks run left-then-right), so it serves two purposes:
//
//   1. It validates the CSP substrate under true concurrency: the
//      interpreter, service loops, and message plumbing run with real
//      interleavings instead of the simulator's cooperative schedule.
//   2. It is seeded identically to spec::Runtime, so for single-client
//      workloads its committed trace must equal the simulated pessimistic
//      trace exactly — a cross-executor oracle for the substrate.
//
// The speculation protocol itself stays on the deterministic simulator
// (see DESIGN.md §2): wall-clock threads would add scheduling noise
// without exercising any additional protocol path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "csp/machine.h"
#include "obs/recorder.h"
#include "trace/events.h"
#include "util/ids.h"
#include "util/rng.h"

namespace ocsp::exec {

struct ThreadedOptions {
  std::uint64_t seed = 42;
  /// Wall-clock nanoseconds slept per virtual nanosecond of Compute
  /// statements (0 = yield only).
  double compute_scale = 0.0;
};

class ThreadedRuntime {
 public:
  explicit ThreadedRuntime(ThreadedOptions options = {});

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  /// Register a process.  `serves_forever` marks server loops that never
  /// terminate; run() stops them once every other process finished.
  ProcessId add_process(std::string name, csp::StmtPtr program,
                        csp::Env initial_env = {},
                        bool serves_forever = false);

  /// Run every process to completion on its own thread; returns when all
  /// non-server processes finished (servers are stopped cooperatively).
  /// Returns false if the run deadlocked against the timeout.
  bool run(std::chrono::milliseconds timeout = std::chrono::seconds(30));

  ProcessId find(const std::string& name) const;

  /// Committed observable events, per process, in program order.
  trace::CommittedTrace committed_trace() const;

  /// True if the process's program ran to completion.
  bool completed(ProcessId id) const;

  /// Structured event stream of the last run().  Every event carries both
  /// clocks (`when == wall_ns`, nanoseconds since run start), so the same
  /// obs::profile machinery that post-processes simulator runs applies to
  /// real-thread executions.
  const obs::RunRecorder& recorder() const { return recorder_; }

 private:
  struct Request {
    std::string op;
    csp::ValueList args;
    ProcessId caller = kNoProcess;
    std::int64_t reqid = -1;
    bool is_call = false;
    MsgId msg_id = 0;
  };

  struct Proc {
    std::string name;
    csp::Machine machine;
    bool serves_forever = false;
    bool completed = false;

    std::mutex mutex;
    std::condition_variable_any cv;
    std::deque<Request> mailbox;
    /// Reply slot for the outstanding call: value plus the reply message's
    /// id, so the caller can record the kMsgDelivered end of the edge.
    std::optional<std::pair<csp::Value, MsgId>> reply;

    std::vector<trace::ObservableEvent> events;
  };

  void run_process(std::stop_token stop, ProcessId id);
  void deliver_request(ProcessId dst, Request request);
  void deliver_reply(ProcessId src, ProcessId dst, csp::Value value);
  MsgId next_msg_id();
  std::int64_t elapsed_ns() const;
  /// Stamp both clocks and append under the recorder mutex (many process
  /// threads record concurrently).
  void record_obs(obs::Event e);

  ThreadedOptions options_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::map<std::string, ProcessId> names_;
  /// Id counters are lock-free: reqids and msg ids only need uniqueness
  /// and per-thread monotonicity, not a global order, so a shared mutex
  /// here just serialized every message on one lock.
  std::atomic<std::int64_t> next_reqid_{1};

  obs::RunRecorder recorder_;
  std::mutex recorder_mutex_;
  std::atomic<MsgId> next_msg_id_{1};
  std::chrono::steady_clock::time_point run_start_{};
};

}  // namespace ocsp::exec
