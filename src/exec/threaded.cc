#include "exec/threaded.h"

#include <atomic>
#include <chrono>

#include "util/check.h"

namespace ocsp::exec {

ThreadedRuntime::ThreadedRuntime(ThreadedOptions options)
    : options_(options), rng_(options.seed) {
  // Match spec::Runtime's seeding: it derives one stream for the network
  // first, then one per process in registration order.
  rng_.split();  // the simulator's network stream; unused here
}

ProcessId ThreadedRuntime::add_process(std::string name, csp::StmtPtr program,
                                       csp::Env initial_env,
                                       bool serves_forever) {
  OCSP_CHECK_MSG(names_.count(name) == 0, "duplicate process name");
  const ProcessId id = static_cast<ProcessId>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->name = name;
  // spec::Runtime hands each SpeculativeProcess a stream which is then
  // split once more for the machine; mirror both splits.
  util::Rng process_stream = rng_.split();
  proc->machine = csp::Machine(std::move(program), std::move(initial_env),
                               process_stream.split());
  proc->serves_forever = serves_forever;
  procs_.push_back(std::move(proc));
  names_.emplace(std::move(name), id);
  return id;
}

ProcessId ThreadedRuntime::find(const std::string& name) const {
  auto it = names_.find(name);
  OCSP_CHECK_MSG(it != names_.end(), "unknown process");
  return it->second;
}

MsgId ThreadedRuntime::next_msg_id() {
  return next_msg_id_.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t ThreadedRuntime::elapsed_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - run_start_)
      .count();
}

void ThreadedRuntime::record_obs(obs::Event e) {
  const std::int64_t now = elapsed_ns();
  e.when = static_cast<sim::Time>(now < 0 ? 0 : now);
  e.wall_ns = now;
  std::scoped_lock lock(recorder_mutex_);
  recorder_.record(std::move(e));
}

void ThreadedRuntime::deliver_request(ProcessId dst, Request request) {
  Proc& p = *procs_.at(dst);
  {
    std::scoped_lock lock(p.mutex);
    p.mailbox.push_back(std::move(request));
  }
  p.cv.notify_all();
}

void ThreadedRuntime::deliver_reply(ProcessId src, ProcessId dst,
                                    csp::Value value) {
  const MsgId mid = next_msg_id();
  {
    obs::Event oe;
    oe.kind = obs::EventKind::kMsgSent;
    oe.process = src;
    oe.peer = dst;
    oe.msg_id = mid;
    oe.detail = "return";
    record_obs(std::move(oe));
  }
  Proc& p = *procs_.at(dst);
  {
    std::scoped_lock lock(p.mutex);
    OCSP_CHECK_MSG(!p.reply.has_value(), "reply slot already full");
    p.reply = std::make_pair(std::move(value), mid);
  }
  p.cv.notify_all();
}

void ThreadedRuntime::run_process(std::stop_token stop, ProcessId id) {
  Proc& self = *procs_.at(id);
  // Pending right-branch machines of sequential forks, innermost last.
  std::vector<csp::Machine> pending_rights;

  auto record = [&](trace::ObservableEvent ev) {
    std::scoped_lock lock(self.mutex);
    self.events.push_back(std::move(ev));
  };

  while (!stop.stop_requested()) {
    csp::Effect e = self.machine.step();
    using K = csp::Effect::Kind;
    switch (e.kind) {
      case K::kCall: {
        const std::int64_t reqid =
            next_reqid_.fetch_add(1, std::memory_order_relaxed);
        const ProcessId dst = find(e.target);
        const MsgId mid = next_msg_id();
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kSend;
        ev.process = id;
        ev.peer = dst;
        ev.op = e.op;
        ev.data = csp::Value(e.args);
        record(std::move(ev));
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kMsgSent;
          oe.process = id;
          oe.peer = dst;
          oe.msg_id = mid;
          oe.detail = e.op;
          record_obs(std::move(oe));
        }
        deliver_request(dst, Request{e.op, e.args, id, reqid, true, mid});
        // Wait for the reply.
        std::unique_lock lock(self.mutex);
        self.cv.wait(lock, stop, [&] { return self.reply.has_value(); });
        if (!self.reply.has_value()) return;  // stopped
        csp::Value result = std::move(self.reply->first);
        const MsgId reply_mid = self.reply->second;
        self.reply.reset();
        lock.unlock();
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kMsgDelivered;
          oe.process = id;
          oe.peer = dst;
          oe.msg_id = reply_mid;
          oe.detail = "return";
          record_obs(std::move(oe));
        }
        trace::ObservableEvent ret;
        ret.kind = trace::ObservableEvent::Kind::kCallReturn;
        ret.process = id;
        ret.peer = dst;
        ret.data = result;
        record(std::move(ret));
        self.machine.resume_with_value(std::move(result));
        break;
      }
      case K::kSend: {
        const ProcessId dst = find(e.target);
        const MsgId mid = next_msg_id();
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kSend;
        ev.process = id;
        ev.peer = dst;
        ev.op = e.op;
        ev.data = csp::Value(e.args);
        record(std::move(ev));
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kMsgSent;
          oe.process = id;
          oe.peer = dst;
          oe.msg_id = mid;
          oe.detail = e.op;
          record_obs(std::move(oe));
        }
        deliver_request(dst, Request{e.op, e.args, id, -1, false, mid});
        break;
      }
      case K::kReceive: {
        std::unique_lock lock(self.mutex);
        self.cv.wait(lock, stop, [&] { return !self.mailbox.empty(); });
        if (self.mailbox.empty()) return;  // stopped
        Request req = std::move(self.mailbox.front());
        self.mailbox.pop_front();
        lock.unlock();
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kMsgDelivered;
          oe.process = id;
          oe.peer = req.caller;
          oe.msg_id = req.msg_id;
          oe.detail = req.op;
          record_obs(std::move(oe));
        }
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kReceive;
        ev.process = id;
        ev.peer = req.caller;
        ev.op = req.op;
        ev.data = csp::Value(req.args);
        record(std::move(ev));
        self.machine.deliver(req.op, req.args,
                             static_cast<std::int64_t>(req.caller), req.reqid,
                             req.is_call);
        break;
      }
      case K::kReply:
        deliver_reply(id, static_cast<ProcessId>(e.reply_caller),
                      std::move(e.value));
        break;
      case K::kPrint: {
        trace::ObservableEvent ev;
        ev.kind = trace::ObservableEvent::Kind::kExternalOutput;
        ev.process = id;
        ev.data = std::move(e.value);
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kExternalReleased;
          oe.process = id;
          oe.detail = ev.data.to_string();
          record_obs(std::move(oe));
        }
        record(std::move(ev));
        break;
      }
      case K::kCompute: {
        if (options_.compute_scale > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              static_cast<std::int64_t>(static_cast<double>(e.duration) *
                                        options_.compute_scale)));
        } else {
          std::this_thread::yield();
        }
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kComputeDone;
          oe.process = id;
          oe.a = e.duration;  // virtual ns; `when` carries the wall clock
          record_obs(std::move(oe));
        }
        self.machine.resume();
        break;
      }
      case K::kFork: {
        // Pessimistic execution with the same RNG-splitting convention as
        // the simulator: the right branch gets a stream split at the fork
        // point, runs after the left completed, and adopts its state.
        csp::Machine right = self.machine;
        right.take_fork_branch(/*left=*/false);
        right.rng() = self.machine.rng().split();
        self.machine.take_fork_branch(/*left=*/true);
        pending_rights.push_back(std::move(right));
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kFork;
          oe.process = id;
          oe.a = 0;  // sequential (left-then-right) execution of the fork
          record_obs(std::move(oe));
        }
        break;
      }
      case K::kDone: {
        if (!pending_rights.empty()) {
          csp::Machine right = std::move(pending_rights.back());
          pending_rights.pop_back();
          right.env() = self.machine.env();
          self.machine = std::move(right);
          {
            obs::Event oe;
            oe.kind = obs::EventKind::kJoin;
            oe.process = id;
            record_obs(std::move(oe));
          }
          break;
        }
        {
          obs::Event oe;
          oe.kind = obs::EventKind::kProcessCompleted;
          oe.process = id;
          record_obs(std::move(oe));
        }
        std::scoped_lock lock(self.mutex);
        self.completed = true;
        return;
      }
    }
  }
}

bool ThreadedRuntime::run(std::chrono::milliseconds timeout) {
  run_start_ = std::chrono::steady_clock::now();
  // Mark the stream dual-clock; record_obs pre-stamps wall_ns, so the
  // recorder's own callback never fires, but dual_clock() now reports true.
  recorder_.set_wall_clock([this] { return elapsed_ns(); });
  std::vector<std::jthread> threads;
  threads.reserve(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    threads.emplace_back([this, i](std::stop_token stop) {
      run_process(stop, static_cast<ProcessId>(i));
    });
  }

  // Wait until every non-server process completed (or timeout).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& p : procs_) {
      if (p->serves_forever) continue;
      std::scoped_lock lock(p->mutex);
      if (!p->completed) {
        all_done = false;
        break;
      }
    }
    if (!all_done) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& t : threads) t.request_stop();
  for (auto& p : procs_) p->cv.notify_all();
  // jthread joins on destruction.
  threads.clear();
  return all_done;
}

trace::CommittedTrace ThreadedRuntime::committed_trace() const {
  trace::CommittedTrace out;
  for (const auto& p : procs_) {
    for (const auto& e : p->events) out.append(e);
  }
  return out;
}

bool ThreadedRuntime::completed(ProcessId id) const {
  Proc& p = *procs_.at(id);
  std::scoped_lock lock(p.mutex);
  return p.completed;
}

}  // namespace ocsp::exec
