#include "exec/parallel.h"

#include <algorithm>
#include <chrono>

#include "fault/injector.h"
#include "obs/merge.h"
#include "sim/scheduler.h"
#include "speculation/messages.h"
#include "trace/timeline.h"
#include "util/check.h"

namespace ocsp::exec {

namespace {

std::int64_t ns_since(const std::chrono::steady_clock::time_point& epoch) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace

// One shard: a single-threaded slice of the run.  Owns the event kernel,
// timeline, recorder, inbox, and sender-side link state for the processes
// assigned to it.  During a window exactly one thread touches it (its
// worker); between windows, only the coordinator — except the inbox, whose
// mutex admits remote senders at any time.
class ParallelRuntime::Shard final : public spec::ExecContext {
 public:
  Shard(ParallelRuntime& owner, int index) : owner_(owner), index_(index) {}

  sim::Scheduler& scheduler() override { return sched_; }
  trace::Timeline& timeline() override { return timeline_; }
  obs::RunRecorder& recorder() override { return *recorder_; }
  ProcessId find(const std::string& name) const override {
    return owner_.find(name);
  }
  std::vector<ProcessId> all_process_ids() const override {
    return owner_.all_process_ids();
  }
  MsgId net_send(ProcessId src, ProcessId dst,
                 net::MessagePtr payload) override {
    return owner_.send_from_shard(*this, src, dst, std::move(payload));
  }
  // Data plane through this shard's reliable transport when enabled; a
  // disabled transport is a plain network send in the sequential runtime
  // too, so both planes share one path.
  MsgId transport_send(ProcessId src, ProcessId dst,
                       net::MessagePtr payload) override {
    if (transport_) return transport_->send(src, dst, std::move(payload));
    return owner_.send_from_shard(*this, src, dst, std::move(payload));
  }
  void on_compute(ProcessId /*id*/, sim::Time duration) override {
    owner_.burn(duration);
  }

  /// Sender-side per-link state; seeded lazily exactly as
  /// net::Network::link_state seeds its private equivalent.
  struct LinkState {
    util::Rng rng{0};
    util::Rng fault_rng{0};
    std::uint64_t seq = 0;
    sim::Time fifo_horizon = 0;
  };
  LinkState& link_state(ProcessId src, ProcessId dst) {
    auto it = link_state_.find({src, dst});
    if (it == link_state_.end()) {
      it = link_state_.emplace(std::make_pair(src, dst), LinkState{}).first;
      it->second.rng =
          net::Network::link_stream(owner_.link_seed_base_, src, dst);
      it->second.fault_rng =
          net::Network::link_fault_stream(owner_.link_seed_base_, src, dst);
    }
    return it->second;
  }

  ParallelRuntime& owner_;
  int index_;
  sim::Scheduler sched_;
  trace::Timeline timeline_;
  std::shared_ptr<obs::RunRecorder> recorder_ =
      std::make_shared<obs::RunRecorder>();
  std::map<std::pair<ProcessId, ProcessId>, LinkState> link_state_;
  net::NetworkStats net_stats_;
  /// Receive handlers of the processes on this shard (the transport's
  /// frame demux when reliable delivery is on, the raw process handler
  /// otherwise) — the shard-local mirror of net::Network's endpoint table.
  std::map<ProcessId, net::Network::Handler> endpoints_;
  /// Shard-local recovery stack: one transport (RTO timers live on this
  /// shard's scheduler) and one injector (stats stay single-writer).
  std::unique_ptr<net::ReliableTransport> transport_;
  std::unique_ptr<fault::Injector> injector_;
  /// Cross-shard envelope handoff: remote senders push under the mutex,
  /// the coordinator drains at the window barrier.
  std::mutex inbox_mu_;
  std::vector<net::Envelope> inbox_;
};

namespace {

ParallelOptions normalize(ParallelOptions o) {
  // Mirrors spec::Runtime: crash recovery relies on the transport's
  // parked-delivery NIC model to keep committed data durable; force it on.
  if (o.fault_plan.has_crashes()) o.reliable.enabled = true;
  return o;
}

}  // namespace

ParallelRuntime::ParallelRuntime(ParallelOptions options)
    : options_(normalize(std::move(options))),
      workers_(std::max(1, options_.workers)),
      rng_(options_.seed),
      // Mirrors spec::Runtime: the network stream is the first split off
      // the run seed; the seed base is derived from it without advancing.
      link_seed_base_(net::Network::link_seed_base(rng_.split())),
      default_link_(options_.default_link) {
  OCSP_CHECK(default_link_.latency != nullptr);
  shards_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    shards_.push_back(std::make_unique<Shard>(*this, i));
  }
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    if (options_.reliable.enabled) {
      // One transport per shard: frames/acks go out through the shard's
      // own deterministic send path and its RTO timers are shard-local
      // events.  Per-shard frame sequence numbers never collide at the
      // receiver — dedup keys on (sender, seq) and each sender lives on
      // exactly one shard.
      s->transport_ = std::make_unique<net::ReliableTransport>(
          [this, s](ProcessId src, ProcessId dst, net::MessagePtr payload) {
            return send_from_shard(*s, src, dst, std::move(payload));
          },
          [s](ProcessId id, net::Network::Handler handler) {
            s->endpoints_[id] = std::move(handler);
          },
          s->sched_, options_.reliable);
      s->transport_->set_retransmit_observer(
          [s](ProcessId src, ProcessId dst, std::uint64_t seq, int attempt) {
            obs::Event ev;
            ev.kind = obs::EventKind::kRetransmit;
            ev.when = s->sched_.now();
            ev.process = src;
            ev.peer = dst;
            ev.msg_id = seq;
            ev.a = static_cast<std::uint64_t>(attempt);
            s->recorder_->record(std::move(ev));
          });
      s->transport_->set_duplicate_observer(
          [s](ProcessId dst, ProcessId src, std::uint64_t seq) {
            obs::Event ev;
            ev.kind = obs::EventKind::kDuplicateSuppressed;
            ev.when = s->sched_.now();
            ev.process = dst;
            ev.peer = src;
            ev.msg_id = seq;
            s->recorder_->record(std::move(ev));
          });
    }
    if (options_.fault_plan.enabled) {
      // One injector per shard (decisions fire on the sender's shard);
      // the plan is pure data, so every copy decides identically.
      s->injector_ = std::make_unique<fault::Injector>(options_.fault_plan);
      s->injector_->set_observer([s](const net::Envelope& env,
                                     const net::FaultDecision& fd) {
        obs::Event ev;
        ev.kind = obs::EventKind::kFaultInjected;
        ev.when = s->sched_.now();
        ev.process = env.src;
        ev.peer = env.dst;
        ev.msg_id = env.id;
        ev.a = fd.drop ? 1 : (fd.corrupt ? 2 : 3);
        ev.detail = fd.cause;
        s->recorder_->record(std::move(ev));
      });
    }
  }
}

ParallelRuntime::~ParallelRuntime() { stop_workers(); }

ProcessId ParallelRuntime::add_process(
    std::string name, csp::StmtPtr program, csp::Env initial_env,
    std::optional<spec::SpecConfig> spec_override) {
  OCSP_CHECK_MSG(!started_, "add_process after run() started");
  OCSP_CHECK_MSG(names_.count(name) == 0, "duplicate process name");
  const ProcessId id = static_cast<ProcessId>(processes_.size());
  const spec::SpecConfig spec = spec_override.value_or(options_.spec);
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(id))];
  processes_.push_back(std::make_unique<spec::SpeculativeProcess>(
      shard, id, name, std::move(program), std::move(initial_env), spec,
      rng_.split()));
  names_.emplace(std::move(name), id);
  // Mirror spec::Runtime::add_process: receive slots go through the
  // shard's transport when one exists (incarnation tags in, peer
  // incarnation observations out), else straight to the process.
  net::Network::Handler handler = [this, id](const net::Envelope& env) {
    processes_[id]->on_message(env);
  };
  if (shard.transport_) {
    shard.transport_->register_endpoint(
        id, std::move(handler),
        [this, id]() { return processes_[id]->incarnation_tag(); },
        [this, id](ProcessId src, net::IncarnationTag tag) {
          processes_[id]->observe_peer_incarnation(src, tag.incarnation,
                                                   tag.start_index);
        });
  } else {
    shard.endpoints_[id] = std::move(handler);
  }
  return id;
}

void ParallelRuntime::set_link(ProcessId src, ProcessId dst,
                               net::LinkConfig config) {
  OCSP_CHECK_MSG(!started_, "set_link after run() started");
  OCSP_CHECK(config.latency != nullptr);
  links_[{src, dst}] = std::move(config);
}

const net::LinkConfig& ParallelRuntime::link_for(ProcessId src,
                                                 ProcessId dst) const {
  auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

MsgId ParallelRuntime::send_from_shard(Shard& from, ProcessId src,
                                       ProcessId dst,
                                       net::MessagePtr payload) {
  OCSP_CHECK(payload != nullptr);
  // Replicates net::Network::send in per-link mode, draw for draw: id and
  // priority from the link sequence number, drop then latency from the
  // link's own stream, FIFO horizon per link.
  Shard::LinkState& ls = from.link_state(src, dst);
  const MsgId id = net::Network::link_msg_id(src, dst, ++ls.seq);
  const net::LinkConfig& link = link_for(src, dst);
  const sim::Time now = from.sched_.now();

  ++from.net_stats_.messages_sent;
  from.net_stats_.bytes_sent += payload->wire_size();

  if (link.drop_probability > 0.0 &&
      (!link.drop_filter || link.drop_filter(*payload)) &&
      ls.rng.bernoulli(link.drop_probability)) {
    ++from.net_stats_.messages_dropped;
    net::Envelope env;
    env.id = id;
    env.src = src;
    env.dst = dst;
    env.sent_at = now;
    env.delivered_at = 0;  // dropped
    env.payload = std::move(payload);
    from.recorder_->record(
        spec::make_msg_event(obs::EventKind::kMsgSent, env, now));
    return id;
  }

  sim::Time delay = link.latency->sample(ls.rng);
  if (link.bandwidth_bytes_per_sec > 0) {
    const double serialize =
        static_cast<double>(payload->wire_size()) /
        static_cast<double>(link.bandwidth_bytes_per_sec) * 1e9;
    delay += static_cast<sim::Time>(serialize);
  }

  sim::Time deliver_at = now + delay;
  if (link.fifo) {
    deliver_at = std::max(deliver_at, ls.fifo_horizon);
    ls.fifo_horizon = deliver_at;
  }

  net::Envelope env;
  env.id = id;
  env.src = src;
  env.dst = dst;
  env.sent_at = now;
  env.delivered_at = deliver_at;
  env.payload = std::move(payload);

  // Fault injection, exactly as net::Network::send orders it: decided
  // after the latency/FIFO computation (so fault plans never perturb the
  // schedule of surviving messages), drawing from the link's own fault
  // stream (so outcomes are identical at every worker count).
  net::FaultDecision fault;
  if (from.injector_) fault = from.injector_->decide(env, ls.fault_rng);

  if (fault.drop || fault.corrupt) {
    if (fault.corrupt) {
      ++from.net_stats_.faults_corrupted;
    } else {
      ++from.net_stats_.faults_dropped;
    }
    net::Envelope lost = env;
    lost.delivered_at = 0;  // never delivered
    from.recorder_->record(
        spec::make_msg_event(obs::EventKind::kMsgSent, lost, now));
    return id;
  }

  from.recorder_->record(
      spec::make_msg_event(obs::EventKind::kMsgSent, env, now));
  route_envelope(from, env);

  for (int i = 0; i < fault.duplicates; ++i) {
    ++from.net_stats_.faults_duplicated;
    net::Envelope dup = env;
    dup.delivered_at =
        deliver_at + sim::microseconds(1 + ls.fault_rng.uniform_int(0, 200));
    route_envelope(from, dup);
  }
  return id;
}

void ParallelRuntime::route_envelope(Shard& from, const net::Envelope& env) {
  Shard& dest = *shards_[static_cast<std::size_t>(shard_of(env.dst))];
  if (&dest == &from) {
    // Same shard: straight into our own queue; no other thread can touch
    // it during the window.
    schedule_delivery(dest, env);
  } else {
    // Cross-shard: delivered_at >= now + lookahead lands at or after the
    // window fence, so parking it in the inbox until the barrier never
    // delays it past its due time.
    std::lock_guard<std::mutex> lk(dest.inbox_mu_);
    dest.inbox_.push_back(env);
  }
}

void ParallelRuntime::schedule_delivery(Shard& dest,
                                        const net::Envelope& env) {
  // The same-time priority is a pure function of the message identity,
  // recoverable from the deterministic id (low 32 bits = link sequence).
  const std::uint64_t prio =
      net::Network::link_prio(env.src, env.dst, env.id & 0xffffffff);
  dest.sched_.at(env.delivered_at, prio, [&dest, env]() {
    // Counter, handler, tracer — the sequential network's exact order.
    // The handler is looked up at fire time (as Network does): a frame
    // demux handler installed by the shard's transport, or the raw
    // process handler.
    auto it = dest.endpoints_.find(env.dst);
    OCSP_CHECK_MSG(it != dest.endpoints_.end(),
                   "delivery to unknown endpoint");
    ++dest.net_stats_.messages_delivered;
    it->second(env);
    dest.recorder_->record(spec::make_msg_event(
        obs::EventKind::kMsgDelivered, env, dest.sched_.now()));
  });
}

void ParallelRuntime::crash_process(ProcessId id) {
  // Same order as spec::Runtime::crash_process: the NIC goes down first,
  // so in-flight frames are acked-and-parked from this instant on.
  OCSP_CHECK(id < processes_.size());
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(id))];
  if (shard.transport_) shard.transport_->set_down(id, true);
  processes_[id]->crash();
}

void ParallelRuntime::restart_process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(id))];
  processes_[id]->restart();
  if (shard.transport_) shard.transport_->set_down(id, false);
}

void ParallelRuntime::burn(sim::Time duration) const {
  if (options_.compute_scale <= 0.0 || duration <= 0) return;
  const auto spin = std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(duration) * options_.compute_scale));
  // This wall time stands in for the real computation a Compute statement
  // models, and is what the speedup curves parallelize.  It never touches
  // virtual time, so traces and counters are scale-independent.  Sleeping
  // yields the core (overlap is visible even on a host with fewer cores
  // than workers); spinning occupies it (raw CPU scaling).
  if (options_.compute_sleep) {
    std::this_thread::sleep_for(spin);
    return;
  }
  const auto until = std::chrono::steady_clock::now() + spin;
  while (std::chrono::steady_clock::now() < until) {
  }
}

void ParallelRuntime::start_workers() {
  if (workers_ <= 1 || !pool_.empty()) return;
  pool_.reserve(static_cast<std::size_t>(workers_ - 1));
  // Shard 0 runs on the coordinator thread; shards 1..N-1 get workers.
  for (int i = 1; i < workers_; ++i) {
    pool_.emplace_back([this, i]() {
      std::uint64_t seen = 0;
      for (;;) {
        sim::Time target = 0;
        {
          std::unique_lock<std::mutex> lk(bar_.m);
          bar_.cv.wait(lk,
                       [&]() { return bar_.shutdown || bar_.epoch != seen; });
          if (bar_.shutdown) return;
          seen = bar_.epoch;
          target = bar_.target;
        }
        shards_[static_cast<std::size_t>(i)]->sched_.run_until(target);
        {
          std::lock_guard<std::mutex> lk(bar_.m);
          if (--bar_.running == 0) bar_.cv.notify_all();
        }
      }
    });
  }
}

void ParallelRuntime::stop_workers() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(bar_.m);
    bar_.shutdown = true;
  }
  bar_.cv.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

void ParallelRuntime::run_window(sim::Time target) {
  if (workers_ > 1) {
    {
      std::lock_guard<std::mutex> lk(bar_.m);
      bar_.target = target;
      bar_.running = workers_ - 1;
      ++bar_.epoch;
    }
    bar_.cv.notify_all();
  }
  shards_[0]->sched_.run_until(target);
  if (workers_ > 1) {
    std::unique_lock<std::mutex> lk(bar_.m);
    bar_.cv.wait(lk, [&]() { return bar_.running == 0; });
  }
}

sim::Time ParallelRuntime::run(sim::Time deadline) {
  OCSP_CHECK_MSG(!started_, "ParallelRuntime::run is single-shot");
  started_ = true;
  lookahead_ = default_link_.latency->min_delay();
  for (const auto& [pair, link] : links_) {
    lookahead_ = std::min(lookahead_, link.latency->min_delay());
  }
  OCSP_CHECK_MSG(lookahead_ > 0,
                 "parallel execution needs a positive minimum link latency");

  const auto epoch = std::chrono::steady_clock::now();
  for (auto& s : shards_) {
    s->recorder_->set_wall_clock([epoch]() { return ns_since(epoch); });
  }
  for (auto& p : processes_) p->start();
  if (options_.fault_plan.enabled) {
    // Crash/restart events live in the victim's shard queue at their plan
    // times (inserted after the starts, matching the sequential runtime's
    // insertion order).  They participate in GVT like any pending event, so
    // a crash at virtual time T fires inside the window containing T —
    // no shard can have advanced past it — and the incarnation bump
    // propagates to remote dependents as ordinary messages through the
    // inboxes drained at the next barrier.
    for (const auto& c : options_.fault_plan.crashes) {
      OCSP_CHECK_MSG(c.process < processes_.size(),
                     "crash event for unknown process");
      OCSP_CHECK_MSG(c.restart_at > c.at, "crash restart precedes crash");
      Shard& shard = *shards_[static_cast<std::size_t>(shard_of(c.process))];
      shard.sched_.at(c.at, [this, c]() { crash_process(c.process); });
      shard.sched_.at(c.restart_at,
                      [this, c]() { restart_process(c.process); });
    }
  }
  start_workers();

  std::vector<std::uint64_t> prev_fired(shards_.size(), 0);
  sim::Time prev_gvt = 0;
  bool first_window = true;
  for (;;) {
    // (1) Drain cross-shard inboxes.  Workers are parked at the barrier,
    // so touching shard schedulers here is single-threaded.
    sim::Time min_drained = sim::kTimeNever;
    for (auto& s : shards_) {
      std::vector<net::Envelope> pending;
      {
        std::lock_guard<std::mutex> lk(s->inbox_mu_);
        pending.swap(s->inbox_);
      }
      for (net::Envelope& env : pending) {
        min_drained = std::min(min_drained, env.delivered_at);
        schedule_delivery(*s, env);
      }
    }

    // (2) GVT: earliest pending event anywhere.  Every drained delivery is
    // already enqueued, so nothing in flight can precede it.
    sim::Time gvt = sim::kTimeNever;
    for (auto& s : shards_) gvt = std::min(gvt, s->sched_.next_time());
    if (gvt == sim::kTimeNever) break;
    if (deadline != sim::kTimeNever && gvt > deadline) break;
    if (first_window || gvt > prev_gvt) ++gvt_advances_;
    first_window = false;
    prev_gvt = gvt;

    // (3) Fossil-collect checkpoints below the speculation floor, clamped
    // to GVT so the fence never outruns commit finality.
    sim::Time floor = sim::kTimeNever;
    for (auto& p : processes_) {
      floor = std::min(floor, p->speculation_floor());
    }
    const sim::Time fence = std::min(floor, gvt);
    std::uint64_t freed = 0;
    for (auto& p : processes_) freed += p->fossil_collect(fence);

    // (4) Run the window [gvt, end) on all shards concurrently.  Events in
    // it are cross-shard independent: anything they send lands >= gvt + L.
    const sim::Time end = deadline == sim::kTimeNever
                              ? gvt + lookahead_
                              : std::min(gvt + lookahead_, deadline + 1);
    run_window(end - 1);

    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::uint64_t total = shards_[i]->sched_.fired_count();
      fired += total - prev_fired[i];
      prev_fired[i] = total;
    }
    windows_.push_back(
        WindowStats{gvt, end, fence, min_drained, fired, freed});
  }

  if (deadline != sim::kTimeNever) return deadline;
  // Clamp to the last event that actually fired anywhere: shard clocks sit
  // at the final window's end, up to one lookahead past the last event,
  // but the sequential scheduler's post-drain clock is its last event.
  sim::Time latest = 0;
  for (auto& s : shards_) latest = std::max(latest, s->sched_.last_fired());
  return latest;
}

spec::SpeculativeProcess& ParallelRuntime::process(ProcessId id) {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

const spec::SpeculativeProcess& ParallelRuntime::process(
    ProcessId id) const {
  OCSP_CHECK(id < processes_.size());
  return *processes_[id];
}

ProcessId ParallelRuntime::find(const std::string& name) const {
  auto it = names_.find(name);
  OCSP_CHECK_MSG(it != names_.end(), ("unknown process: " + name).c_str());
  return it->second;
}

std::vector<ProcessId> ParallelRuntime::all_process_ids() const {
  std::vector<ProcessId> out;
  out.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    out.push_back(static_cast<ProcessId>(i));
  }
  return out;
}

std::vector<std::string> ParallelRuntime::process_names() const {
  std::vector<std::string> names;
  names.reserve(processes_.size());
  for (const auto& p : processes_) names.push_back(p->name());
  return names;
}

trace::CommittedTrace ParallelRuntime::committed_trace() const {
  trace::CommittedTrace trace;
  for (const auto& p : processes_) {
    for (const auto& e : p->committed_events()) trace.append(e);
  }
  return trace;
}

spec::SpecStats ParallelRuntime::total_stats() const {
  spec::SpecStats total;
  for (const auto& p : processes_) total.merge(p->stats());
  return total;
}

obs::MetricsRegistry ParallelRuntime::metrics() const {
  obs::MetricsRegistry m;
  for (const auto& p : processes_) m.merge(p->metrics_view());
  const std::uint64_t verified = m.counter_or("guesses_verified");
  const std::uint64_t failed = m.counter_or("guesses_failed");
  if (verified + failed > 0) {
    m.gauge("guess_accuracy") = static_cast<double>(verified) /
                                static_cast<double>(verified + failed);
  }
  obs::update_sharing_ratio_gauge(m);
  std::uint64_t fired = 0;
  std::size_t peak = 0;
  for (const auto& s : shards_) {
    fired += s->sched_.fired_count();
    peak = std::max(peak, s->sched_.peak_pending());
  }
  m.counter("sim_events_fired") += fired;
  m.gauge("sim_peak_pending") = static_cast<double>(peak);
  const net::NetworkStats net = network_stats();
  m.counter("net_messages_sent") += net.messages_sent;
  m.counter("net_messages_delivered") += net.messages_delivered;
  m.counter("net_messages_dropped") += net.messages_dropped;
  m.counter("net_bytes_sent") += net.bytes_sent;
  m.counter("net_faults_dropped") += net.faults_dropped;
  m.counter("net_faults_corrupted") += net.faults_corrupted;
  m.counter("net_faults_duplicated") += net.faults_duplicated;
  if (options_.reliable.enabled) {
    net::ReliableStats rs;
    for (const auto& s : shards_) {
      const net::ReliableStats& ss = s->transport_->stats();
      rs.frames_sent += ss.frames_sent;
      rs.retransmissions += ss.retransmissions;
      rs.retransmit_exhausted += ss.retransmit_exhausted;
      rs.acks_sent += ss.acks_sent;
      rs.duplicates_suppressed += ss.duplicates_suppressed;
      rs.parked_deliveries += ss.parked_deliveries;
    }
    m.counter("reliable_frames_sent") += rs.frames_sent;
    m.counter("retransmissions") += rs.retransmissions;
    m.counter("retransmit_exhausted") += rs.retransmit_exhausted;
    m.counter("acks_sent") += rs.acks_sent;
    m.counter("duplicates_suppressed") += rs.duplicates_suppressed;
    m.counter("parked_deliveries") += rs.parked_deliveries;
  }
  if (options_.fault_plan.enabled) {
    fault::InjectorStats fs;
    for (const auto& s : shards_) {
      const fault::InjectorStats& ss = s->injector_->stats();
      fs.drops += ss.drops;
      fs.duplicates += ss.duplicates;
      fs.corruptions += ss.corruptions;
      fs.partition_drops += ss.partition_drops;
    }
    m.counter("faults_injected") += fs.total();
    m.counter("fault_partition_drops") += fs.partition_drops;
  }
  m.counter("gvt_windows") += windows_.size();
  m.counter("gvt_advances") += gvt_advances_;
  return m;
}

sim::Time ParallelRuntime::last_completion_time() const {
  sim::Time latest = 0;
  for (const auto& p : processes_) {
    if (p->completed()) latest = std::max(latest, p->completion_time());
  }
  return latest;
}

bool ParallelRuntime::all_clients_completed() const {
  bool any = false;
  for (const auto& p : processes_) {
    if (p->completed()) any = true;
  }
  return any;
}

std::size_t ParallelRuntime::timeline_rollbacks() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    n += s->timeline_.count(trace::TimelineEntry::Kind::kRollback);
  }
  return n;
}

net::NetworkStats ParallelRuntime::network_stats() const {
  net::NetworkStats total;
  for (const auto& s : shards_) {
    total.messages_sent += s->net_stats_.messages_sent;
    total.messages_delivered += s->net_stats_.messages_delivered;
    total.messages_dropped += s->net_stats_.messages_dropped;
    total.bytes_sent += s->net_stats_.bytes_sent;
    total.faults_dropped += s->net_stats_.faults_dropped;
    total.faults_corrupted += s->net_stats_.faults_corrupted;
    total.faults_duplicated += s->net_stats_.faults_duplicated;
  }
  return total;
}

std::shared_ptr<obs::RunRecorder> ParallelRuntime::merged_recorder() const {
  std::vector<const obs::RunRecorder*> parts;
  parts.reserve(shards_.size());
  for (const auto& s : shards_) parts.push_back(s->recorder_.get());
  return obs::merge_recorders(parts);
}

std::shared_ptr<obs::RunRecorder> ParallelRuntime::shard_recorder(
    int shard) const {
  OCSP_CHECK(shard >= 0 && shard < workers_);
  return shards_[static_cast<std::size_t>(shard)]->recorder_;
}

ParallelRunResult run_scenario_parallel(const baseline::Scenario& scenario,
                                        int workers, bool speculation,
                                        double compute_scale,
                                        sim::Time deadline,
                                        bool compute_sleep) {
  ParallelOptions options;
  options.seed = scenario.options.seed;
  options.workers = workers;
  options.default_link = scenario.options.default_link;
  options.spec = scenario.options.spec;
  options.fault_plan = scenario.options.fault_plan;
  options.reliable = scenario.options.reliable;
  options.spec.speculation_enabled = speculation;
  options.compute_scale = compute_scale;
  options.compute_sleep = compute_sleep;

  ParallelRuntime rt(options);
  for (const auto& p : scenario.processes) {
    rt.add_process(p.name, p.program, p.env);
  }
  for (const auto& link : scenario.links) {
    rt.set_link(rt.find(link.src), rt.find(link.dst), link.config);
  }

  ParallelRunResult out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result.finished_at = rt.run(deadline);
  out.wall_ns = ns_since(t0);
  out.result.last_completion = rt.last_completion_time();
  out.result.all_completed = rt.all_clients_completed();
  out.result.stats = rt.total_stats();
  out.result.trace = rt.committed_trace();
  out.result.network = rt.network_stats();
  out.result.timeline_rollbacks = rt.timeline_rollbacks();
  out.result.metrics = rt.metrics();
  out.result.recorder = rt.merged_recorder();
  out.result.process_names = rt.process_names();
  out.windows = rt.windows();
  out.workers = rt.workers();
  out.lookahead = rt.lookahead();
  return out;
}

}  // namespace ocsp::exec
