// exec::ParallelRuntime: the speculation protocol on sharded worker threads.
//
// The deterministic simulator (spec::Runtime) runs every process on one
// event kernel; this executor partitions processes across shards — one
// discrete-event scheduler, timeline, and recorder per shard — and runs the
// shards on real threads.  The protocol implementation is untouched:
// SpeculativeProcess talks to its shard through the same spec::ExecContext
// interface the sequential runtime implements.
//
// Synchronization is a conservative window barrier (bounded-lag / YAWNS
// style), which in OCSP's setting is exactly a GVT fence:
//
//   * lookahead L = the minimum latency any configured link can produce
//     (net::Network::min_link_delay); a message sent at virtual time t is
//     delivered no earlier than t + L.
//   * GVT = min over shards of the earliest pending event.  All events in
//     the window [GVT, GVT + L) are mutually independent across shards —
//     any message one of them sends lands at or after GVT + L — so the
//     shards execute the window concurrently with no locks on the fast
//     path.  At the window barrier the coordinator drains the cross-shard
//     inboxes (MPSC handoff, one mutex per shard touched only by remote
//     senders), recomputes GVT, and opens the next window.
//   * Commit/abort/cascade below GVT are final: no in-flight message can
//     land before it, which is what makes the fence a GVT in the Time Warp
//     sense.  Checkpoint fossil collection runs at each fence
//     (SpeculativeProcess::fossil_collect) below the speculation floor,
//     clamped to GVT.
//
// Determinism: the committed trace — and, with one shard, the entire
// recorder stream — is bit-identical to the sequential simulator running
// with RuntimeOptions::per_link_net = true.  Per-link network mode makes
// message ids, latency/loss draws, and same-time delivery priorities pure
// functions of (src, dst, per-link sequence number), so the delivery
// schedule does not depend on the order in which an executor discovers
// sends.  Within a shard, the scheduler's (when, prio, seq) order preserves
// the relative firing order of the shard's processes exactly as in the
// global sequential run (deliveries carry unique (when, prio) keys; local
// events of one process keep their relative insertion order).
//
// Memory ordering: all shard state (schedulers, processes, recorders,
// link-state maps, transports, injectors) is owned by exactly one thread
// during a window and by the coordinator between windows; every ownership
// handoff goes through the barrier mutex, which establishes the
// happens-before edges.  The only concurrently-touched structures are the
// per-shard inbox mutexes.
//
// Faults under sharding (DESIGN.md section 13): fault plans and the
// reliable transport run here with the same semantics as the simulator.
// Fault decisions draw from per-link fault streams
// (net::Network::link_fault_stream), so drop/duplicate/corrupt/partition
// outcomes are pure functions of (link, per-link seq) — identical at every
// worker count.  Each shard hosts its own ReliableTransport over its own
// scheduler, so retransmission timers are shard-local events fenced by the
// window barrier like any other (a retransmit fired at t lands at or after
// t + L, hence never below GVT).  Crash/restart events are scheduled into
// the victim's shard queue at their plan times: a crash at virtual time T
// fires inside the window containing T, and the incarnation bump it causes
// reaches remote dependents as ordinary messages (explicit ABORTs, or tags
// piggybacked on reliable frames) through the MPSC inboxes, driving
// SpeculativeProcess::observe_peer_incarnation's rollback fixpoint across
// shard boundaries.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/scenario.h"
#include "csp/env.h"
#include "csp/program.h"
#include "fault/plan.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/time.h"
#include "speculation/config.h"
#include "speculation/process.h"
#include "speculation/stats.h"
#include "trace/events.h"
#include "util/ids.h"
#include "util/rng.h"

namespace ocsp::exec {

struct ParallelOptions {
  std::uint64_t seed = 42;
  /// Worker threads == shards; processes are assigned round-robin
  /// (ProcessId mod workers).  1 runs the single shard inline on the
  /// calling thread — the fair serial baseline for speedup curves.
  int workers = 1;
  net::LinkConfig default_link;
  spec::SpecConfig spec;
  /// Seeded fault plan (drop/duplicate/corrupt/partition/crash), identical
  /// semantics to spec::RuntimeOptions::fault_plan.  Plans with crashes
  /// force `reliable.enabled` on, exactly as the sequential runtime does.
  fault::FaultPlan fault_plan;
  /// Ack/retransmit transport config; one transport instance per shard.
  net::ReliableConfig reliable;
  /// Wall-nanoseconds of real busy-spin per virtual nanosecond of Compute.
  /// 0 (default) burns nothing: virtual time, traces, and counters are
  /// identical either way — the scale only decides how much real work the
  /// speedup benchmarks have to parallelize.
  double compute_scale = 0.0;
  /// Burn by sleeping instead of spinning.  A sleeping worker yields its
  /// core, so the curve measures how well the executor *overlaps*
  /// independent shards' compute — meaningful even when the host has fewer
  /// cores than workers.  Spin (the default) measures raw CPU scaling and
  /// needs as many cores as workers to show speedup.
  bool compute_sleep = false;
};

/// One GVT window as the coordinator saw it (the fencing audit trail the
/// GVT unit tests assert over).
struct WindowStats {
  sim::Time gvt = 0;  ///< earliest pending event when the window opened
  sim::Time end = 0;  ///< exclusive window end: min(gvt + L, deadline + 1)
  /// Fossil fence used this window: min(speculation floor, gvt).
  sim::Time fossil_floor = sim::kTimeNever;
  /// Earliest delivery time among cross-shard messages drained at this
  /// window's barrier (kTimeNever if none); never below `gvt` — the
  /// straggler-safety invariant.
  sim::Time min_drained_delivery = sim::kTimeNever;
  std::uint64_t fired = 0;             ///< events fired across all shards
  std::uint64_t checkpoints_freed = 0; ///< fossil-collected checkpoints
};

class ParallelRuntime {
 public:
  explicit ParallelRuntime(ParallelOptions options = {});
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  /// Register a process (same contract as spec::Runtime::add_process).
  /// RNG streams are split in registration order, mirroring the sequential
  /// runtime's derivation exactly.
  ProcessId add_process(std::string name, csp::StmtPtr program,
                        csp::Env initial_env = {},
                        std::optional<spec::SpecConfig> spec_override = {});

  /// Override the link for the ordered pair (src, dst).  Call before run().
  void set_link(ProcessId src, ProcessId dst, net::LinkConfig config);

  /// Run to completion (or `deadline`).  Single-shot.  With a finite
  /// deadline returns `deadline` (as the sequential run_until does); with
  /// kTimeNever returns the time of the last event that actually fired on
  /// any shard — the sequential scheduler's post-drain clock, never the
  /// window end.
  sim::Time run(sim::Time deadline = sim::kTimeNever);

  int workers() const { return workers_; }
  /// Window length: minimum latency over all configured links.  Valid
  /// after run() started.
  sim::Time lookahead() const { return lookahead_; }
  const std::vector<WindowStats>& windows() const { return windows_; }

  spec::SpeculativeProcess& process(ProcessId id);
  const spec::SpeculativeProcess& process(ProcessId id) const;
  ProcessId find(const std::string& name) const;
  std::size_t process_count() const { return processes_.size(); }
  std::vector<ProcessId> all_process_ids() const;
  std::vector<std::string> process_names() const;

  /// Committed observable events of every process (Theorem 1 oracle);
  /// process-id append order, identical to spec::Runtime::committed_trace.
  trace::CommittedTrace committed_trace() const;

  spec::SpecStats total_stats() const;

  /// Run-wide metrics, mirroring spec::Runtime::metrics, plus the
  /// executor's own gvt_windows / gvt_advances counters.
  obs::MetricsRegistry metrics() const;

  sim::Time last_completion_time() const;
  bool all_clients_completed() const;

  /// Rollback entries across all shard timelines.
  std::size_t timeline_rollbacks() const;

  /// Network counters summed over shards (sends/drops count on the
  /// sender's shard, deliveries on the receiver's).
  net::NetworkStats network_stats() const;

  /// All shard event streams merged by (virtual time, shard); wall_ns
  /// stamps survive, so the dual-clock profiler runs on this unchanged.
  std::shared_ptr<obs::RunRecorder> merged_recorder() const;

  /// Per-shard recorder (shards=1 oracle compares stream 0 bit-for-bit).
  std::shared_ptr<obs::RunRecorder> shard_recorder(int shard) const;

  const ParallelOptions& options() const { return options_; }

 private:
  class Shard;

  /// Epoch barrier between the coordinator and the worker pool.  All shard
  /// state handoffs ride on `m`: workers read `target` under it and report
  /// back under it, so everything a worker wrote during a window
  /// happens-before everything the coordinator reads at the fence.
  struct Barrier {
    std::mutex m;
    std::condition_variable cv;
    std::uint64_t epoch = 0;
    int running = 0;
    sim::Time target = 0;
    bool shutdown = false;
  };

  int shard_of(ProcessId id) const {
    return static_cast<int>(id % static_cast<ProcessId>(workers_));
  }
  const net::LinkConfig& link_for(ProcessId src, ProcessId dst) const;
  MsgId send_from_shard(Shard& from, ProcessId src, ProcessId dst,
                        net::MessagePtr payload);
  void route_envelope(Shard& from, const net::Envelope& env);
  void schedule_delivery(Shard& dest, const net::Envelope& env);
  void crash_process(ProcessId id);
  void restart_process(ProcessId id);
  void burn(sim::Time duration) const;
  void run_window(sim::Time target);
  void start_workers();
  void stop_workers();

  ParallelOptions options_;
  int workers_ = 1;
  util::Rng rng_;
  std::uint64_t link_seed_base_ = 0;
  net::LinkConfig default_link_;
  std::map<std::pair<ProcessId, ProcessId>, net::LinkConfig> links_;
  sim::Time lookahead_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<spec::SpeculativeProcess>> processes_;
  std::map<std::string, ProcessId> names_;
  std::vector<WindowStats> windows_;
  std::uint64_t gvt_advances_ = 0;
  bool started_ = false;
  Barrier bar_;
  std::vector<std::thread> pool_;
};

/// run_scenario's parallel counterpart: the RunResult fields are filled
/// exactly as baseline::run_scenario fills them (finished_at excepted; see
/// ParallelRuntime::run), plus the executor's wall clock and window log.
struct ParallelRunResult {
  baseline::RunResult result;
  std::int64_t wall_ns = 0;  ///< real time spent inside run()
  std::vector<WindowStats> windows;
  int workers = 1;
  sim::Time lookahead = 0;
};

/// Run `scenario` on `workers` threads — fault plans and the reliable
/// transport included.  scenario.options.per_link_net is implied — compare
/// against run_scenario on a scenario with that flag set to get the
/// matching sequential schedule.
ParallelRunResult run_scenario_parallel(const baseline::Scenario& scenario,
                                        int workers, bool speculation = true,
                                        double compute_scale = 0.0,
                                        sim::Time deadline = sim::kTimeNever,
                                        bool compute_sleep = false);

}  // namespace ocsp::exec
