#include "transform/analysis.h"

#include "analysis/effects.h"

namespace ocsp::transform {

void Analysis::merge(const Analysis& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
  opaque |= other.opaque;
}

Analysis analyze(const csp::StmtPtr& stmt) {
  // The def/use view of the communication-effect analysis (src/analysis);
  // that pass owns the one traversal of the IR and already accounts for
  // computed destinations (target_expr reads).
  const analysis::CommEffects e = analysis::analyze_effects(stmt);
  Analysis out;
  out.reads = e.reads;
  out.writes = e.writes;
  out.opaque = e.opaque;
  return out;
}

std::set<std::string> passed_set(const csp::StmtPtr& s1,
                                 const csp::StmtPtr& s2) {
  return analysis::set_intersection(analyze(s1).writes, analyze(s2).reads);
}

bool has_anti_dependency(const csp::StmtPtr& s1, const csp::StmtPtr& s2) {
  return !analysis::set_intersection(analyze(s1).reads, analyze(s2).writes)
              .empty();
}

}  // namespace ocsp::transform
