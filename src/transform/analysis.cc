#include "transform/analysis.h"

#include <algorithm>

#include "util/check.h"

namespace ocsp::transform {

void Analysis::merge(const Analysis& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
  opaque |= other.opaque;
}

namespace {

void analyze_into(const csp::Stmt* stmt, Analysis& out) {
  using csp::StmtKind;
  if (stmt == nullptr) return;
  switch (stmt->kind) {
    case StmtKind::kSeq: {
      const auto& s = static_cast<const csp::SeqStmt&>(*stmt);
      for (const auto& child : s.body) analyze_into(child.get(), out);
      break;
    }
    case StmtKind::kAssign: {
      const auto& s = static_cast<const csp::AssignStmt&>(*stmt);
      s.value->collect_reads(out.reads);
      out.writes.insert(s.variable);
      break;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const csp::IfStmt&>(*stmt);
      s.cond->collect_reads(out.reads);
      analyze_into(s.then_branch.get(), out);
      analyze_into(s.else_branch.get(), out);
      break;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
      s.cond->collect_reads(out.reads);
      analyze_into(s.body.get(), out);
      break;
    }
    case StmtKind::kCall: {
      const auto& s = static_cast<const csp::CallStmt&>(*stmt);
      for (const auto& a : s.args) a->collect_reads(out.reads);
      if (!s.result_var.empty()) out.writes.insert(s.result_var);
      break;
    }
    case StmtKind::kSend: {
      const auto& s = static_cast<const csp::SendStmt&>(*stmt);
      for (const auto& a : s.args) a->collect_reads(out.reads);
      break;
    }
    case StmtKind::kReceive:
      out.writes.insert("__op");
      out.writes.insert("__args");
      out.writes.insert("__caller");
      out.writes.insert("__reqid");
      out.writes.insert("__is_call");
      break;
    case StmtKind::kReply: {
      const auto& s = static_cast<const csp::ReplyStmt&>(*stmt);
      s.value->collect_reads(out.reads);
      out.reads.insert("__caller");
      out.reads.insert("__reqid");
      break;
    }
    case StmtKind::kPrint: {
      const auto& s = static_cast<const csp::PrintStmt&>(*stmt);
      s.value->collect_reads(out.reads);
      break;
    }
    case StmtKind::kNative:
      out.opaque = true;
      break;
    case StmtKind::kFork: {
      const auto& s = static_cast<const csp::ForkStmt&>(*stmt);
      analyze_into(s.left.get(), out);
      analyze_into(s.right.get(), out);
      break;
    }
    case StmtKind::kCompute:
    case StmtKind::kHint:
    case StmtKind::kNop:
      break;
  }
}

}  // namespace

Analysis analyze(const csp::StmtPtr& stmt) {
  Analysis out;
  analyze_into(stmt.get(), out);
  return out;
}

std::set<std::string> passed_set(const csp::StmtPtr& s1,
                                 const csp::StmtPtr& s2) {
  const Analysis a1 = analyze(s1);
  const Analysis a2 = analyze(s2);
  std::set<std::string> out;
  std::set_intersection(a1.writes.begin(), a1.writes.end(), a2.reads.begin(),
                        a2.reads.end(), std::inserter(out, out.begin()));
  return out;
}

bool has_anti_dependency(const csp::StmtPtr& s1, const csp::StmtPtr& s2) {
  const Analysis a1 = analyze(s1);
  const Analysis a2 = analyze(s2);
  std::set<std::string> clobbered;
  std::set_intersection(a1.reads.begin(), a1.reads.end(), a2.writes.begin(),
                        a2.writes.end(),
                        std::inserter(clobbered, clobbered.begin()));
  return !clobbered.empty();
}

}  // namespace ocsp::transform
