// Def/use analysis over the CSP IR.
//
// Supplies the transformer with the passed set {v_i} of a fork (variables
// written by S1 and read by S2 or its continuation — section 3.2) and the
// anti-dependency test (a variable read by S1 and overwritten by S2 forces
// the state copy; otherwise the copy can be elided).
#pragma once

#include <set>
#include <string>

#include "csp/program.h"

namespace ocsp::transform {

struct Analysis {
  std::set<std::string> reads;
  std::set<std::string> writes;
  /// True when the fragment contains a NativeStmt (whose effects we cannot
  /// see); reads/writes are then lower bounds and automatic passed-set
  /// inference must be refused.
  bool opaque = false;

  void merge(const Analysis& other);
};

/// Analyze one statement tree.
Analysis analyze(const csp::StmtPtr& stmt);

/// writes(s1) ∩ reads(s2): the candidate passed set for fork(s1, s2).
std::set<std::string> passed_set(const csp::StmtPtr& s1,
                                 const csp::StmtPtr& s2);

/// reads(s1) ∩ writes(s2) non-empty: S2 would clobber state S1 still needs,
/// so the right thread must run on its own copy (section 3.2).
bool has_anti_dependency(const csp::StmtPtr& s1, const csp::StmtPtr& s2);

}  // namespace ocsp::transform
