#include "transform/reclassify.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/effects.h"
#include "csp/visit.h"

namespace ocsp::transform {

namespace {

using analysis::CommEffects;
using analysis::ForkClass;

/// Every call in `stmt` producing `v` has a static destination and a
/// commutativity summary, and at least one such call exists.  The verify
/// relaxation is scoped to replies of summarized service ops; plain local
/// assignments or unsummarized calls keep exact verification.
bool produced_by_summarized_call(const csp::Stmt* stmt, const std::string& v,
                                 const analysis::CommuteContext& ctx) {
  bool found = false;
  bool all_summarized = true;
  csp::visit_preorder(stmt, [&](const csp::Stmt& s) {
    if (s.kind != csp::StmtKind::kCall) return;
    const auto& c = static_cast<const csp::CallStmt&>(s);
    if (c.result_var != v) return;
    found = true;
    if (c.target_expr || ctx.summaries.lookup(c.target, c.op) == nullptr) {
      all_summarized = false;
    }
  });
  return found && all_summarized;
}

class Rewriter {
 public:
  Rewriter(ReclassifyResult& result, const ReclassifyOptions& opts)
      : result_(result), opts_(opts) {}

  /// `cont` summarizes the enclosing continuation's effects (classifier
  /// input); `cont_stmts` is the same continuation as an ordered statement
  /// list (use-class input — statement order lets a must-write kill later
  /// reads, which plain effect sets cannot express).  A While body's
  /// continuation is the While itself: re-evaluating the loop covers both
  /// the condition and all later iterations.
  csp::StmtPtr rewrite(const csp::StmtPtr& stmt, const CommEffects& cont,
                       const std::vector<csp::StmtPtr>& cont_stmts) {
    if (!stmt) return stmt;
    using csp::StmtKind;
    switch (stmt->kind) {
      case StmtKind::kSeq:
        return rewrite_seq(stmt, cont, cont_stmts);
      case StmtKind::kWhile: {
        const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
        CommEffects next = analysis::analyze_effects(s.body);
        s.cond->collect_reads(next.reads);
        next.merge_seq(cont);
        next.drop_must();
        std::vector<csp::StmtPtr> next_stmts;
        next_stmts.push_back(stmt);
        next_stmts.insert(next_stmts.end(), cont_stmts.begin(),
                          cont_stmts.end());
        return csp::rewrite_children(stmt, [&](const csp::StmtPtr& child) {
          return rewrite(child, next, next_stmts);
        });
      }
      case StmtKind::kFork:
        return rewrite_fork(stmt, cont, cont_stmts);
      default:
        return csp::rewrite_children(stmt, [&](const csp::StmtPtr& child) {
          return rewrite(child, cont, cont_stmts);
        });
    }
  }

 private:
  csp::StmtPtr rewrite_seq(const csp::StmtPtr& stmt, const CommEffects& cont,
                           const std::vector<csp::StmtPtr>& cont_stmts) {
    const auto& seq = static_cast<const csp::SeqStmt&>(*stmt);
    const auto& in = seq.body;
    // suffix[i] = static effects of in[i..end); the classifier needs the
    // continuation each child's hypothetical right thread would run.
    std::vector<CommEffects> suffix(in.size() + 1);
    for (std::size_t i = in.size(); i-- > 0;) {
      suffix[i] = analysis::analyze_effects(in[i]);
      suffix[i].merge_seq(suffix[i + 1]);
    }
    std::vector<csp::StmtPtr> out;
    out.reserve(in.size());
    bool changed = false;
    for (std::size_t i = 0; i < in.size(); ++i) {
      CommEffects child_cont = suffix[i + 1];
      child_cont.merge_seq(cont);
      std::vector<csp::StmtPtr> child_stmts(in.begin() + i + 1, in.end());
      child_stmts.insert(child_stmts.end(), cont_stmts.begin(),
                         cont_stmts.end());
      csp::StmtPtr r = rewrite(in[i], child_cont, child_stmts);
      changed |= r != in[i];
      out.push_back(std::move(r));
    }
    if (!changed) return stmt;
    return csp::seq(std::move(out));
  }

  csp::StmtPtr rewrite_fork(const csp::StmtPtr& stmt, const CommEffects& cont,
                            const std::vector<csp::StmtPtr>& cont_stmts) {
    const auto& f = static_cast<const csp::ForkStmt&>(*stmt);
    // The left thread ends at the join; only the right continues.
    csp::StmtPtr left = rewrite(f.left, CommEffects{}, {});
    csp::StmtPtr right = rewrite(f.right, cont, cont_stmts);

    if (opts_.commute == nullptr || f.mode != csp::ForkMode::kSpeculative) {
      return rebuild(stmt, f, std::move(left), std::move(right), f.mode,
                     f.passed, f.predictors, f.verify, f.needs_copy);
    }

    // Re-classify the transformed split in automatic mode: the analyzer
    // decides from effects alone whether the guard machinery is needed,
    // with the commutativity widening in force.
    std::vector<analysis::Finding> scratch;
    const analysis::SiteReport rep =
        analysis::classify_split(left, right, cont, /*declared=*/{}, f.site,
                                 /*from_hint=*/false, scratch, opts_.commute);

    if (opts_.upgrade_safe && rep.cls == ForkClass::kSafe) {
      ++result_.upgraded;
      analysis::Finding fd;
      fd.site = f.site;
      fd.cls = ForkClass::kSafe;
      fd.severity = analysis::Severity::kInfo;
      fd.code = "upgraded-to-safe";
      fd.message =
          "speculative fork re-classified SAFE after transformation; "
          "rebuilt with mode=safe (guesses, guards, and state copy elided)";
      fd.suggested_mode = "safe";
      for (const auto& sf : scratch) {
        if (!sf.commutativity.empty()) {
          fd.commutativity = sf.commutativity;
          break;
        }
      }
      result_.findings.push_back(std::move(fd));
      return rebuild(stmt, f, std::move(left), std::move(right),
                     csp::ForkMode::kSafe, {}, {}, {}, /*needs_copy=*/false);
    }

    std::map<std::string, csp::VerifyMode> verify = f.verify;
    if (opts_.annotate_verify) {
      for (const auto& v : f.passed) {
        if (!produced_by_summarized_call(left.get(), v, *opts_.commute)) {
          continue;
        }
        // The full downstream path: right thread, then the enclosing
        // continuation (later Seq suffixes, re-entered loops).  The ordered
        // walk lets a must-write in the right thread kill continuation
        // reads — the common streaming shape, where each iteration rewrites
        // the reply variable before the next one reads it.
        std::vector<csp::StmtPtr> path;
        path.reserve(1 + cont_stmts.size());
        path.push_back(right);
        path.insert(path.end(), cont_stmts.begin(), cont_stmts.end());
        const analysis::UseClass uc = analysis::use_of(path, v);
        const csp::VerifyMode mode = analysis::verify_mode_for(uc);
        if (mode == csp::VerifyMode::kExact) continue;
        auto it = f.verify.find(v);
        if (it != f.verify.end() && it->second == mode) continue;
        verify[v] = mode;
        ++result_.annotated;
        analysis::Finding fd;
        fd.site = f.site;
        fd.severity = analysis::Severity::kInfo;
        fd.code = "verify-relaxed";
        fd.message = "passed variable '" + v + "' is " +
                     std::string(analysis::to_string(uc)) +
                     " in the right thread; a guess mismatch can commit "
                     "instead of aborting (verify=" +
                     std::string(csp::to_string(mode)) + ")";
        fd.commutativity =
            "reply of a summarized op; use-class analysis bounds its "
            "influence on the right thread";
        result_.findings.push_back(std::move(fd));
      }
    }
    return rebuild(stmt, f, std::move(left), std::move(right), f.mode,
                   f.passed, f.predictors, verify, f.needs_copy);
  }

  /// Rebuild the fork only when something changed, preserving sharing.
  static csp::StmtPtr rebuild(
      const csp::StmtPtr& original, const csp::ForkStmt& f, csp::StmtPtr left,
      csp::StmtPtr right, csp::ForkMode mode, std::vector<std::string> passed,
      std::map<std::string, csp::PredictorSpec> predictors,
      std::map<std::string, csp::VerifyMode> verify, bool needs_copy) {
    const bool same =
        left == f.left && right == f.right && mode == f.mode &&
        passed == f.passed && predictors.size() == f.predictors.size() &&
        verify == f.verify && needs_copy == f.needs_copy;
    if (same) return original;
    auto nf = std::make_shared<csp::ForkStmt>(f);
    nf->left = std::move(left);
    nf->right = std::move(right);
    nf->mode = mode;
    nf->passed = std::move(passed);
    nf->predictors = std::move(predictors);
    nf->verify = std::move(verify);
    nf->needs_copy = needs_copy;
    return nf;
  }

  ReclassifyResult& result_;
  const ReclassifyOptions& opts_;
};

}  // namespace

ReclassifyResult reclassify(const csp::StmtPtr& program,
                            const ReclassifyOptions& options) {
  ReclassifyResult result;
  result.program =
      Rewriter(result, options).rewrite(program, CommEffects{}, {});
  return result;
}

}  // namespace ocsp::transform
