#include "transform/fork_insertion.h"

#include <utility>

#include "analysis/effects.h"
#include "csp/visit.h"

namespace ocsp::transform {

namespace {

using analysis::CommEffects;
using analysis::ForkClass;

// Carries the continuation summary down the tree: `cont` describes what the
// right thread of a fork at the current position would go on to execute
// after the enclosing Seq (suffixes of outer Seqs, later iterations of
// enclosing Whiles).  The classifier needs it to see loop-carried
// dependences and communication the static S2 does not show.
class Rewriter {
 public:
  explicit Rewriter(ForkInsertionResult& result) : result_(result) {}

  csp::StmtPtr rewrite(const csp::StmtPtr& stmt, const CommEffects& cont) {
    if (!stmt) return stmt;
    using csp::StmtKind;
    switch (stmt->kind) {
      case StmtKind::kSeq:
        return rewrite_seq(static_cast<const csp::SeqStmt&>(*stmt), cont);
      case StmtKind::kWhile: {
        const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
        CommEffects next = analysis::analyze_effects(s.body);
        s.cond->collect_reads(next.reads);
        next.merge_seq(cont);
        next.drop_must();
        return csp::rewrite_children(
            stmt,
            [&](const csp::StmtPtr& child) { return rewrite(child, next); });
      }
      case StmtKind::kFork: {
        const auto& s = static_cast<const csp::ForkStmt&>(*stmt);
        return csp::rewrite_children(
            stmt, [&](const csp::StmtPtr& child) {
              // The left thread ends at the join; only the right thread
              // continues into the enclosing program.
              return child == s.left ? rewrite(child, CommEffects{})
                                     : rewrite(child, cont);
            });
      }
      case StmtKind::kHint: {
        // A hint that is not a direct member of a Seq has no S1 to bind to.
        const auto& h = static_cast<const csp::HintStmt&>(*stmt);
        reject(site_name(h.site), "misplaced-hint",
               "parallelization hint is not a direct member of a sequence; "
               "there is no preceding statement to fork",
               "place the hint between two statements of a seq block");
        return csp::nop();
      }
      default:
        return csp::rewrite_children(
            stmt,
            [&](const csp::StmtPtr& child) { return rewrite(child, cont); });
    }
  }

 private:
  csp::StmtPtr rewrite_seq(const csp::SeqStmt& seq, const CommEffects& cont) {
    const auto& in = seq.body;
    // suffix[i] = static effects of in[i..end); rewriting preserves effects,
    // so computing them over the input children is exact.
    std::vector<CommEffects> suffix(in.size() + 1);
    for (std::size_t i = in.size(); i-- > 0;) {
      suffix[i] = analysis::analyze_effects(in[i]);
      suffix[i].merge_seq(suffix[i + 1]);
    }

    std::vector<csp::StmtPtr> body;
    body.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in[i]->kind == csp::StmtKind::kHint) {
        // Hints are consumed at this level, not recursed into.
        body.push_back(in[i]);
        continue;
      }
      CommEffects child_cont = suffix[i + 1];
      child_cont.merge_seq(cont);
      body.push_back(rewrite(in[i], child_cont));
    }

    // Expand the first acceptable hint at this level; the recursion through
    // the fork's right branch handles any further hints.  Rejected hints
    // become Nops and scanning continues past them.
    std::size_t prev_end = 0;  // first index usable as part of an S1
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i]->kind != csp::StmtKind::kHint) continue;
      const auto& h = static_cast<const csp::HintStmt&>(*body[i]);
      const std::string site = site_name(h.site);
      const std::size_t avail = i - prev_end;
      prev_end = i + 1;
      if (h.span < 1 || h.span > avail) {
        reject(site, "malformed-span",
               "hint span " + std::to_string(h.span) + " exceeds the " +
                   std::to_string(avail) +
                   " statement(s) available before the hint at this level",
               "shrink the span or move the hint after the statements it "
               "should cover");
        body[i] = csp::nop();
        continue;
      }

      // S1 = the `span` statements before the hint.
      std::vector<csp::StmtPtr> s1_body(body.begin() + (i - h.span),
                                        body.begin() + i);
      csp::StmtPtr s1 =
          s1_body.size() == 1 ? s1_body[0] : csp::seq(std::move(s1_body));

      // S2 (plus the rest of this Seq) = everything after the hint.  The
      // split is classified *before* its inner hints are expanded — a fork
      // node has the same communication effects as the hint it came from,
      // and on rejection the untouched tail lets the scan carry on and
      // expand later hints at this level exactly once.
      std::vector<csp::StmtPtr> s2_body(body.begin() + i + 1, body.end());
      csp::StmtPtr s2 = csp::seq(std::move(s2_body));

      const analysis::SiteReport rep = analysis::classify_split(
          s1, s2, cont, h.predictors, site, /*from_hint=*/true,
          result_.findings);
      if (rep.cls == ForkClass::kReject) {
        ++result_.rejected_sites;
        body[i] = csp::nop();
        continue;
      }
      s2 = rewrite(s2, cont);  // expand any later hints into nested forks

      std::map<std::string, csp::PredictorSpec> predictors = h.predictors;
      if (predictors.empty() && rep.cls != ForkClass::kSafe) {
        // Automatic mode: default every inferred passed variable to a
        // last-committed predictor.
        for (const auto& v : rep.passed) {
          predictors.emplace(v,
                             csp::PredictorSpec::last_committed(csp::Value()));
        }
      }
      std::vector<std::string> passed =
          rep.cls == ForkClass::kSafe ? std::vector<std::string>{}
                                      : rep.passed;
      const bool needs_copy =
          rep.cls == ForkClass::kSafe ? false : rep.has_anti_dependency;
      const csp::ForkMode mode = rep.cls == ForkClass::kSafe
                                     ? csp::ForkMode::kSafe
                                     : csp::ForkMode::kSpeculative;

      ++result_.forks_inserted;
      if (mode == csp::ForkMode::kSafe) ++result_.safe_sites;

      std::vector<csp::StmtPtr> out(body.begin(), body.begin() + (i - h.span));
      out.push_back(csp::fork(std::move(s1), std::move(s2), std::move(passed),
                              std::move(predictors), site, h.timeout,
                              needs_copy, mode));
      return csp::seq(std::move(out));
    }
    return csp::seq(std::move(body));
  }

  void reject(const std::string& site, std::string code, std::string message,
              std::string suggestion) {
    analysis::Finding f;
    f.site = site;
    f.cls = ForkClass::kReject;
    f.severity = analysis::Severity::kError;
    f.code = std::move(code);
    f.message = std::move(message);
    f.suggestion = std::move(suggestion);
    result_.findings.push_back(std::move(f));
    ++result_.rejected_sites;
  }

  std::string site_name(const std::string& declared) const {
    if (!declared.empty()) return declared;
    return "hint#" + std::to_string(result_.forks_inserted);
  }

  ForkInsertionResult& result_;
};

}  // namespace

ForkInsertionResult insert_forks(const csp::StmtPtr& program) {
  ForkInsertionResult result;
  result.program = Rewriter(result).rewrite(program, CommEffects{});
  return result;
}

}  // namespace ocsp::transform
