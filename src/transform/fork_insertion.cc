#include "transform/fork_insertion.h"

#include <vector>

#include "transform/analysis.h"
#include "util/check.h"

namespace ocsp::transform {

namespace {

csp::StmtPtr rewrite(const csp::StmtPtr& stmt, std::size_t& count);

csp::StmtPtr rewrite_seq(const csp::SeqStmt& seq, std::size_t& count) {
  // First rewrite children, then expand the first hint at this level; the
  // recursion through the fork's right branch handles any further hints.
  std::vector<csp::StmtPtr> body;
  body.reserve(seq.body.size());
  for (const auto& child : seq.body) {
    // Hints are consumed at this level, not recursed into.
    body.push_back(child->kind == csp::StmtKind::kHint ? child
                                                       : rewrite(child, count));
  }

  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i]->kind != csp::StmtKind::kHint) continue;
    const auto& h = static_cast<const csp::HintStmt&>(*body[i]);
    OCSP_CHECK_MSG(h.span >= 1 && h.span <= i,
                   "hint span exceeds preceding statements");

    // S1 = the `span` statements before the hint.
    std::vector<csp::StmtPtr> s1_body(body.begin() + (i - h.span),
                                      body.begin() + i);
    csp::StmtPtr s1 =
        s1_body.size() == 1 ? s1_body[0] : csp::seq(std::move(s1_body));

    // S2 (plus the rest of this Seq) = everything after the hint.
    std::vector<csp::StmtPtr> s2_body(body.begin() + i + 1, body.end());
    csp::StmtPtr s2 = csp::seq(std::move(s2_body));
    s2 = rewrite(s2, count);  // idempotent; children already rewritten

    std::map<std::string, csp::PredictorSpec> predictors = h.predictors;
    std::vector<std::string> passed;
    if (predictors.empty()) {
      // Automatic mode: infer the passed set and default every variable to
      // a last-committed predictor.
      const Analysis a1 = analyze(s1);
      const Analysis a2 = analyze(s2);
      OCSP_CHECK_MSG(!a1.opaque && !a2.opaque,
                     "cannot infer passed set across native statements");
      for (const auto& v : passed_set(s1, s2)) {
        predictors.emplace(v, csp::PredictorSpec::last_committed(csp::Value()));
        passed.push_back(v);
      }
    } else {
      for (const auto& [v, spec] : predictors) passed.push_back(v);
    }

    const bool needs_copy = has_anti_dependency(s1, s2);
    std::string site = h.site.empty()
                           ? "hint#" + std::to_string(count)
                           : h.site;
    ++count;

    std::vector<csp::StmtPtr> out(body.begin(), body.begin() + (i - h.span));
    out.push_back(csp::fork(std::move(s1), std::move(s2), std::move(passed),
                            std::move(predictors), std::move(site), h.timeout,
                            needs_copy));
    return csp::seq(std::move(out));
  }
  return csp::seq(std::move(body));
}

csp::StmtPtr rewrite(const csp::StmtPtr& stmt, std::size_t& count) {
  using csp::StmtKind;
  switch (stmt->kind) {
    case StmtKind::kSeq:
      return rewrite_seq(static_cast<const csp::SeqStmt&>(*stmt), count);
    case StmtKind::kIf: {
      const auto& s = static_cast<const csp::IfStmt&>(*stmt);
      return csp::if_(s.cond, rewrite(s.then_branch, count),
                      s.else_branch ? rewrite(s.else_branch, count) : nullptr);
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
      return csp::while_(s.cond, rewrite(s.body, count));
    }
    case StmtKind::kFork: {
      const auto& s = static_cast<const csp::ForkStmt&>(*stmt);
      auto f = std::make_shared<csp::ForkStmt>(s);
      f->left = rewrite(s.left, count);
      f->right = rewrite(s.right, count);
      return f;
    }
    case StmtKind::kHint:
      OCSP_CHECK_MSG(false, "hint not directly inside a seq");
      return stmt;
    default:
      return stmt;
  }
}

}  // namespace

ForkInsertionResult insert_forks(const csp::StmtPtr& program) {
  ForkInsertionResult result;
  result.program = rewrite(program, result.forks_inserted);
  return result;
}

}  // namespace ocsp::transform
