// Post-transform reclassification: make elidable-site findings actionable.
//
// Fork insertion and call streaming classify each site as they create it,
// but the classification they run is per-process and commutativity-blind:
// a streamed call whose continuation contacts the same server again is
// always SPECULATIVE.  This pass re-runs the interference analyzer over the
// *transformed* tree with a cross-process CommuteContext
// (analysis/commute.h) and applies what the analyzer proves:
//
//   * upgrade  — a speculative fork that now classifies SAFE is rebuilt
//     with ForkMode::kSafe (passed set, predictors, and state copy
//     dropped), eliding the guard machinery the lint's elidable-site
//     finding pointed at;
//   * annotate — a fork that stays speculative gets per-passed-variable
//     VerifyModes: a use-class analysis over the right thread proves a
//     reply value dead or boolean-only, licensing the verifier to commit
//     on a guess mismatch instead of aborting
//     (SpecConfig::commute_verification).
//
// The pass is idempotent and purely attenuating: it never turns a safe
// fork speculative, never adds passed variables, and never relaxes a
// variable whose producing call is not covered by a commutativity summary.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/classify.h"
#include "analysis/commute.h"
#include "csp/program.h"

namespace ocsp::transform {

struct ReclassifyOptions {
  /// Cross-process commutativity context; null disables both the SAFE
  /// widening and the verify-mode annotation (the pass is then a no-op).
  const analysis::CommuteContext* commute = nullptr;
  /// Rebuild speculative forks that classify SAFE as ForkMode::kSafe.
  bool upgrade_safe = true;
  /// Attach VerifyModes to passed variables proven dead / boolean-only.
  bool annotate_verify = true;
};

struct ReclassifyResult {
  csp::StmtPtr program;
  /// Speculative forks rebuilt as ForkMode::kSafe.
  std::size_t upgraded = 0;
  /// Passed variables annotated with a relaxed VerifyMode (kDead/kBoolean).
  std::size_t annotated = 0;
  /// Info findings describing every applied change ("upgraded-to-safe",
  /// "verify-relaxed"), plus anything the re-run classifier reported.
  std::vector<analysis::Finding> findings;
};

ReclassifyResult reclassify(const csp::StmtPtr& program,
                            const ReclassifyOptions& options = {});

}  // namespace ocsp::transform
