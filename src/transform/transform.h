// Umbrella header for the "compiler" passes.
//
// Typical pipeline, mirroring the paper's compilation story:
//
//   csp::StmtPtr program = ...;                       // sequential source
//   program = transform::insert_forks(program).program;   // expand hints
//   program = transform::stream_calls(program).program;   // call streaming
//   program = transform::reclassify(program, {&ctx}).program;  // commute
//   runtime.add_process("X", program);
//
// Both passes are semantics-preserving under the optimistic protocol: the
// committed trace of the transformed program equals the sequential trace
// (Theorem 1), which tests/integration assert for every example.
#pragma once

#include "transform/analysis.h"
#include "transform/fork_insertion.h"
#include "transform/reclassify.h"
#include "transform/streaming.h"
