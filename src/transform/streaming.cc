#include "transform/streaming.h"

#include <vector>

#include "util/check.h"

namespace ocsp::transform {

namespace {

struct Ctx {
  const StreamingOptions& options;
  std::size_t count = 0;
};

csp::StmtPtr rewrite(const csp::StmtPtr& stmt, Ctx& ctx);

bool should_stream(const csp::CallStmt& call, const Ctx& ctx) {
  return !ctx.options.filter || ctx.options.filter(call);
}

csp::PredictorSpec predictor_for(const csp::CallStmt& call, const Ctx& ctx) {
  if (ctx.options.predictor) return ctx.options.predictor(call);
  return csp::PredictorSpec::last_committed(ctx.options.initial_guess);
}

csp::StmtPtr rewrite_seq(const csp::SeqStmt& seq, Ctx& ctx) {
  std::vector<csp::StmtPtr> body;
  body.reserve(seq.body.size());
  for (const auto& child : seq.body) body.push_back(rewrite(child, ctx));

  // Find the first streamable call that has a continuation after it; the
  // recursion through the fork's right branch streams the rest.
  for (std::size_t i = 0; i + 1 < body.size(); ++i) {
    if (body[i]->kind != csp::StmtKind::kCall) continue;
    const auto& call = static_cast<const csp::CallStmt&>(*body[i]);
    if (!should_stream(call, ctx)) continue;

    std::vector<csp::StmtPtr> rest(body.begin() + i + 1, body.end());
    csp::StmtPtr right = rewrite(csp::seq(std::move(rest)), ctx);

    std::map<std::string, csp::PredictorSpec> predictors;
    std::vector<std::string> passed;
    if (!call.result_var.empty()) {
      predictors.emplace(call.result_var, predictor_for(call, ctx));
      passed.push_back(call.result_var);
    }
    std::string site = "stream:" + call.target + "." + call.op + "#" +
                       std::to_string(ctx.count);
    ++ctx.count;

    std::vector<csp::StmtPtr> out(body.begin(), body.begin() + i);
    // Call streaming has no anti-dependency: S1 is a single call whose only
    // write is the result variable (section 3.2's copy elision applies).
    out.push_back(csp::fork(body[i], std::move(right), std::move(passed),
                            std::move(predictors), std::move(site),
                            ctx.options.timeout, /*needs_copy=*/false));
    return csp::seq(std::move(out));
  }
  return csp::seq(std::move(body));
}

csp::StmtPtr rewrite(const csp::StmtPtr& stmt, Ctx& ctx) {
  using csp::StmtKind;
  switch (stmt->kind) {
    case StmtKind::kSeq:
      return rewrite_seq(static_cast<const csp::SeqStmt&>(*stmt), ctx);
    case StmtKind::kIf: {
      const auto& s = static_cast<const csp::IfStmt&>(*stmt);
      return csp::if_(s.cond, rewrite(s.then_branch, ctx),
                      s.else_branch ? rewrite(s.else_branch, ctx) : nullptr);
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const csp::WhileStmt&>(*stmt);
      return csp::while_(s.cond, rewrite(s.body, ctx));
    }
    case StmtKind::kFork: {
      const auto& s = static_cast<const csp::ForkStmt&>(*stmt);
      auto f = std::make_shared<csp::ForkStmt>(s);
      f->left = rewrite(s.left, ctx);
      f->right = rewrite(s.right, ctx);
      return f;
    }
    default:
      return stmt;
  }
}

}  // namespace

StreamingResult stream_calls(const csp::StmtPtr& program,
                             StreamingOptions options) {
  Ctx ctx{options};
  StreamingResult result;
  result.program = rewrite(program, ctx);
  result.calls_streamed = ctx.count;
  return result;
}

}  // namespace ocsp::transform
