// Hint expansion: the generic S1;S2 -> S1||S2 transformation (section 3.2).
//
// The programmer (or a profiler) marks the boundary with a ParallelizeHint
// inside a Seq; this pass rewrites
//
//     seq { pre...  S1  @parallelize  post... }
// into
//     seq { pre...  fork { left: S1, right: seq { post... } } }
//
// choosing the passed set, predictors, and copy-elision flag.  The fork is
// the final statement of the rewritten Seq, so the right thread naturally
// continues into the enclosing program (the right-branching structure of
// the paper), while the left thread runs S1 only.
//
// Every site goes through the static interference analyzer (src/analysis)
// first.  SAFE sites become ForkMode::kSafe forks (guard machinery elided at
// runtime); REJECT sites are refused — the hint is dropped, the program
// stays sequential at that point, and a structured diagnostic is reported
// instead of the old OCSP_CHECK crash.
#pragma once

#include <vector>

#include "analysis/classify.h"
#include "csp/program.h"

namespace ocsp::transform {

struct ForkInsertionResult {
  csp::StmtPtr program;
  std::size_t forks_inserted = 0;
  /// Forks inserted with ForkMode::kSafe (subset of forks_inserted).
  std::size_t safe_sites = 0;
  /// Hints refused with a diagnostic; the program is sequential there.
  std::size_t rejected_sites = 0;
  /// Diagnostics from the interference analyzer (REJECT errors, warnings,
  /// proven-safe notes).
  std::vector<analysis::Finding> findings;
};

/// Expand every HintStmt in the tree.  Hints whose predictor map is empty
/// get an automatically inferred passed set (writes(S1) ∩ reads(S2)) with
/// last-committed predictors.  Malformed or statically-unsound hints are
/// rejected with a Finding rather than crashing; an untransformed hint is a
/// runtime no-op, so rejection degrades to sequential execution.
ForkInsertionResult insert_forks(const csp::StmtPtr& program);

}  // namespace ocsp::transform
