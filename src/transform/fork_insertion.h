// Hint expansion: the generic S1;S2 -> S1||S2 transformation (section 3.2).
//
// The programmer (or a profiler) marks the boundary with a ParallelizeHint
// inside a Seq; this pass rewrites
//
//     seq { pre...  S1  @parallelize  post... }
// into
//     seq { pre...  fork { left: S1, right: seq { post... } } }
//
// choosing the passed set, predictors, and copy-elision flag.  The fork is
// the final statement of the rewritten Seq, so the right thread naturally
// continues into the enclosing program (the right-branching structure of
// the paper), while the left thread runs S1 only.
#pragma once

#include "csp/program.h"

namespace ocsp::transform {

struct ForkInsertionResult {
  csp::StmtPtr program;
  std::size_t forks_inserted = 0;
};

/// Expand every HintStmt in the tree.  Hints whose predictor map is empty
/// get an automatically inferred passed set (writes(S1) ∩ reads(S2)) with
/// last-committed predictors; this is refused (OCSP_CHECK) if S1 or S2
/// contains an unanalyzable NativeStmt.
ForkInsertionResult insert_forks(const csp::StmtPtr& program);

}  // namespace ocsp::transform
