// The call streaming transformation (sections 1-2, Figures 1-3).
//
// Rewrites every selected two-way CallStmt into a fork whose left thread
// performs the call while the right thread runs the continuation on a
// guessed return value, turning a chain of blocking round trips into a
// pipeline of one-way sends.  Applied inside a loop body this produces the
// unbounded right-branching fork chain of section 3.2.
#pragma once

#include <functional>
#include <string>

#include "csp/program.h"

namespace ocsp::transform {

struct StreamingOptions {
  /// Which calls to stream; default: all of them.
  std::function<bool(const csp::CallStmt&)> filter;

  /// Predictor for the call's result variable.  Default: guess the last
  /// committed return value (first instance guesses `initial_guess`).
  std::function<csp::PredictorSpec(const csp::CallStmt&)> predictor;

  /// Initial guess before any return has been observed (used by the default
  /// predictor).  The PutLine/Update idiom guesses "call succeeded".
  csp::Value initial_guess = csp::Value(true);

  /// Left-thread timeout passed to each fork (0 = runtime default).
  sim::Time timeout = 0;
};

struct StreamingResult {
  csp::StmtPtr program;
  std::size_t calls_streamed = 0;
};

StreamingResult stream_calls(const csp::StmtPtr& program,
                             StreamingOptions options = {});

}  // namespace ocsp::transform
