#include "trace/vector_clock.h"

#include <algorithm>
#include <sstream>

namespace ocsp::trace {

std::uint64_t VectorClock::get(ProcessId id) const {
  auto it = clock_.find(id);
  return it == clock_.end() ? 0 : it->second;
}

void VectorClock::tick(ProcessId id) { ++clock_[id]; }

void VectorClock::merge(const VectorClock& other) {
  for (const auto& [id, v] : other.clock_) {
    auto& mine = clock_[id];
    mine = std::max(mine, v);
  }
}

bool VectorClock::happens_before(const VectorClock& a, const VectorClock& b) {
  bool strictly_less = false;
  for (const auto& [id, va] : a.clock_) {
    const std::uint64_t vb = b.get(id);
    if (va > vb) return false;
    if (va < vb) strictly_less = true;
  }
  // Components present only in b make b strictly larger.
  for (const auto& [id, vb] : b.clock_) {
    if (vb > a.get(id)) strictly_less = true;
  }
  return strictly_less;
}

bool VectorClock::concurrent(const VectorClock& a, const VectorClock& b) {
  return !happens_before(a, b) && !happens_before(b, a) && !(a == b);
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << "<";
  bool first = true;
  for (const auto& [id, v] : clock_) {
    if (!first) os << ",";
    first = false;
    os << "P" << id << ":" << v;
  }
  os << ">";
  return os.str();
}

}  // namespace ocsp::trace
