// Happens-before validation of committed traces.
//
// Theorem 1 preserves both the data values of observable events and the
// happens-before relation between them.  compare_traces() checks the
// values and per-process orders; this checker validates the cross-process
// half: every committed receive must have a matching committed send (same
// channel, op, and payload, in channel order), and the induced
// happens-before relation must be acyclic — the committed execution never
// contains a Figure 4-style cycle, no matter how much speculation and
// rollback produced it.
//
// The checker replays the trace in a causally consistent order (a receive
// is only processed after its matching send), building vector clocks as it
// goes; failure to make progress with events remaining is exactly a
// causality cycle or a dangling receive.
#pragma once

#include <cstdint>
#include <string>

#include "trace/events.h"
#include "trace/vector_clock.h"

namespace ocsp::trace {

struct CausalityReport {
  bool ok = false;
  std::string why;
  std::size_t matched_messages = 0;
  std::size_t local_events = 0;

  explicit operator bool() const { return ok; }
};

/// Validate the cross-process causal structure of a committed trace.
CausalityReport check_causality(const CommittedTrace& trace);

}  // namespace ocsp::trace
