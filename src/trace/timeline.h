// Physical timeline of a run: what happened on the (virtual) wall clock.
//
// The paper's Figures 2-7 are time-line diagrams; the benchmark binaries
// regenerate them by rendering this log.  Unlike CommittedTrace (logical,
// committed-only), the Timeline records *everything* — speculative sends,
// forks, aborts, rollbacks — because the aborted work is exactly what the
// figures illustrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/ids.h"

namespace ocsp::trace {

struct TimelineEntry {
  enum class Kind {
    kMsgSend,
    kMsgDeliver,
    kFork,
    kJoin,
    kCommit,
    kAbort,
    kRollback,
    kExternalRelease,
    kNote,
  };
  Kind kind = Kind::kNote;
  sim::Time when = 0;
  ProcessId process = kNoProcess;
  ProcessId peer = kNoProcess;
  std::string label;  ///< message kind, guess name, rollback target, ...
};

class Timeline {
 public:
  void record(TimelineEntry entry) { entries_.push_back(std::move(entry)); }
  void note(sim::Time when, ProcessId process, std::string label);

  const std::vector<TimelineEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Count entries of one kind (e.g. how many rollbacks a run performed).
  std::size_t count(TimelineEntry::Kind kind) const;

  /// Render as "t=<us>  P<id>  <event>" lines, in time order.
  std::string to_string() const;

 private:
  std::vector<TimelineEntry> entries_;
};

std::string to_string(const TimelineEntry& e);

}  // namespace ocsp::trace
