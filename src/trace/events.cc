#include "trace/events.h"

#include <sstream>

namespace ocsp::trace {

std::string to_string(const ObservableEvent& e) {
  std::ostringstream os;
  switch (e.kind) {
    case ObservableEvent::Kind::kExternalOutput:
      os << "P" << e.process << " output " << e.data.to_string();
      break;
    case ObservableEvent::Kind::kSend:
      os << "P" << e.process << " send " << e.op << "(" << e.data.to_string()
         << ") -> P" << e.peer;
      break;
    case ObservableEvent::Kind::kReceive:
      os << "P" << e.process << " recv " << e.op << "(" << e.data.to_string()
         << ") <- P" << e.peer;
      break;
    case ObservableEvent::Kind::kCallReturn:
      os << "P" << e.process << " return " << e.data.to_string() << " <- P"
         << e.peer;
      break;
  }
  return os.str();
}

void CommittedTrace::append(ObservableEvent event) {
  per_process_[event.process].push_back(std::move(event));
}

const std::vector<ObservableEvent>& CommittedTrace::for_process(
    ProcessId id) const {
  static const std::vector<ObservableEvent> kEmpty;
  auto it = per_process_.find(id);
  return it == per_process_.end() ? kEmpty : it->second;
}

std::vector<ProcessId> CommittedTrace::processes() const {
  std::vector<ProcessId> out;
  for (const auto& [id, events] : per_process_) {
    if (!events.empty()) out.push_back(id);
  }
  return out;
}

std::size_t CommittedTrace::total_events() const {
  std::size_t n = 0;
  for (const auto& [id, events] : per_process_) n += events.size();
  return n;
}

std::string CommittedTrace::to_string() const {
  std::ostringstream os;
  for (const auto& [id, events] : per_process_) {
    for (const auto& e : events) os << trace::to_string(e) << "\n";
  }
  return os.str();
}

bool compare_process_trace(const CommittedTrace& a, const CommittedTrace& b,
                           ProcessId id, std::string* why) {
  const auto& ea = a.for_process(id);
  const auto& eb = b.for_process(id);
  const std::size_t n = std::min(ea.size(), eb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(ea[i] == eb[i])) {
      if (why) {
        *why = "process " + std::to_string(id) + " event " +
               std::to_string(i) + " differs: " + to_string(ea[i]) + " vs " +
               to_string(eb[i]);
      }
      return false;
    }
  }
  if (ea.size() != eb.size()) {
    if (why) {
      *why = "process " + std::to_string(id) + " event counts differ: " +
             std::to_string(ea.size()) + " vs " + std::to_string(eb.size());
    }
    return false;
  }
  return true;
}

bool compare_traces(const CommittedTrace& a, const CommittedTrace& b,
                    std::string* why) {
  auto procs_a = a.processes();
  auto procs_b = b.processes();
  if (procs_a != procs_b) {
    if (why) *why = "different sets of processes with observable events";
    return false;
  }
  for (ProcessId id : procs_a) {
    const auto& ea = a.for_process(id);
    const auto& eb = b.for_process(id);
    const std::size_t n = std::min(ea.size(), eb.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(ea[i] == eb[i])) {
        if (why) {
          *why = "process " + std::to_string(id) + " event " +
                 std::to_string(i) + " differs: " + to_string(ea[i]) +
                 " vs " + to_string(eb[i]);
        }
        return false;
      }
    }
    if (ea.size() != eb.size()) {
      if (why) {
        *why = "process " + std::to_string(id) + " event counts differ: " +
               std::to_string(ea.size()) + " vs " + std::to_string(eb.size());
      }
      return false;
    }
  }
  return true;
}

}  // namespace ocsp::trace
