#include "trace/causality.h"

#include <map>
#include <vector>

namespace ocsp::trace {

namespace {

struct ChannelKey {
  ProcessId src;
  ProcessId dst;
  auto operator<=>(const ChannelKey&) const = default;
};

}  // namespace

CausalityReport check_causality(const CommittedTrace& trace) {
  CausalityReport report;

  const std::vector<ProcessId> procs = trace.processes();
  std::map<ProcessId, std::size_t> cursor;           // next event per process
  std::map<ProcessId, VectorClock> clocks;           // current clock
  // Clocks of sends already processed, per channel, in send order.
  std::map<ChannelKey, std::vector<VectorClock>> sent;
  // How many receives already consumed per channel.
  std::map<ChannelKey, std::size_t> consumed;

  std::size_t remaining = trace.total_events();
  while (remaining > 0) {
    bool progressed = false;
    for (ProcessId p : procs) {
      while (cursor[p] < trace.for_process(p).size()) {
        const ObservableEvent& e = trace.for_process(p)[cursor[p]];
        if (e.kind == ObservableEvent::Kind::kReceive) {
          const ChannelKey key{e.peer, p};
          const std::size_t k = consumed[key];
          auto it = sent.find(key);
          if (it == sent.end() || it->second.size() <= k) {
            break;  // matching send not processed yet; try other processes
          }
          // Verify the payload against the k-th send on this channel.
          const auto& sender_events = trace.for_process(e.peer);
          std::size_t seen = 0;
          const ObservableEvent* matching = nullptr;
          for (const auto& se : sender_events) {
            if (se.kind == ObservableEvent::Kind::kSend && se.peer == p) {
              if (seen == k) {
                matching = &se;
                break;
              }
              ++seen;
            }
          }
          if (matching == nullptr || matching->op != e.op ||
              !(matching->data == e.data)) {
            report.why = "receive at P" + std::to_string(p) +
                         " does not match channel-order send: " +
                         to_string(e);
            return report;
          }
          clocks[p].merge(it->second[k]);
          ++consumed[key];
          ++report.matched_messages;
        } else if (e.kind == ObservableEvent::Kind::kSend) {
          clocks[p].tick(p);
          sent[ChannelKey{p, e.peer}].push_back(clocks[p]);
          ++cursor[p];
          --remaining;
          progressed = true;
          continue;
        } else {
          ++report.local_events;
        }
        clocks[p].tick(p);
        ++cursor[p];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed) {
      report.why = "no progress with " + std::to_string(remaining) +
                   " events remaining: causality cycle or dangling receive";
      return report;
    }
  }

  report.ok = true;
  return report;
}

}  // namespace ocsp::trace
