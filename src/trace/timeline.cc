#include "trace/timeline.h"

#include <sstream>

namespace ocsp::trace {

namespace {
const char* kind_name(TimelineEntry::Kind k) {
  switch (k) {
    case TimelineEntry::Kind::kMsgSend:
      return "send";
    case TimelineEntry::Kind::kMsgDeliver:
      return "deliver";
    case TimelineEntry::Kind::kFork:
      return "fork";
    case TimelineEntry::Kind::kJoin:
      return "join";
    case TimelineEntry::Kind::kCommit:
      return "commit";
    case TimelineEntry::Kind::kAbort:
      return "abort";
    case TimelineEntry::Kind::kRollback:
      return "rollback";
    case TimelineEntry::Kind::kExternalRelease:
      return "output";
    case TimelineEntry::Kind::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

void Timeline::note(sim::Time when, ProcessId process, std::string label) {
  record(TimelineEntry{TimelineEntry::Kind::kNote, when, process, kNoProcess,
                       std::move(label)});
}

std::size_t Timeline::count(TimelineEntry::Kind kind) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string to_string(const TimelineEntry& e) {
  std::ostringstream os;
  os << "t=" << sim::to_micros(e.when) << "us  P" << e.process;
  if (e.peer != kNoProcess) os << "->P" << e.peer;
  os << "  " << kind_name(e.kind);
  if (!e.label.empty()) os << "  " << e.label;
  return os.str();
}

std::string Timeline::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) os << trace::to_string(e) << "\n";
  return os.str();
}

}  // namespace ocsp::trace
