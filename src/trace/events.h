// Observable events and committed-trace comparison.
//
// Theorem 1 of the paper: an optimistic parallelization yields the same
// partial traces as the pessimistic computation.  "Observable events" are
// the messages sent and received by all computations except those that are
// aborted, plus external outputs; both the data values and the per-process
// order must match.  CommittedTrace captures exactly that, and
// compare_traces() is the oracle our property tests run against.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "csp/value.h"
#include "sim/time.h"
#include "util/ids.h"

namespace ocsp::trace {

struct ObservableEvent {
  enum class Kind { kExternalOutput, kSend, kReceive, kCallReturn };
  Kind kind = Kind::kExternalOutput;
  ProcessId process = kNoProcess;  ///< process observing the event
  ProcessId peer = kNoProcess;     ///< other endpoint for send/receive
  std::string op;                  ///< operation name for send/receive
  csp::Value data;

  friend bool operator==(const ObservableEvent&,
                         const ObservableEvent&) = default;
};

std::string to_string(const ObservableEvent& e);

/// Per-process sequences of committed observable events, in each process's
/// logical (program) order.
class CommittedTrace {
 public:
  void append(ObservableEvent event);

  const std::vector<ObservableEvent>& for_process(ProcessId id) const;
  std::vector<ProcessId> processes() const;
  std::size_t total_events() const;

  std::string to_string() const;

 private:
  std::map<ProcessId, std::vector<ObservableEvent>> per_process_;
};

/// Compare two traces for partial-trace equality (Theorem 1).  On mismatch
/// returns false and, if `why` is non-null, a human-readable explanation of
/// the first difference.
///
/// Note this is *stricter* than Theorem 1 for multi-client systems: the
/// theorem fixes each process's own observable sequence, but a server
/// receiving from causally unrelated clients may legally observe their
/// requests in a different interleaving.  Use compare_process_trace() on
/// the client processes for such scenarios.
bool compare_traces(const CommittedTrace& a, const CommittedTrace& b,
                    std::string* why = nullptr);

/// Compare one process's committed sequence between two traces.
bool compare_process_trace(const CommittedTrace& a, const CommittedTrace& b,
                           ProcessId id, std::string* why = nullptr);

}  // namespace ocsp::trace
