// Vector clocks for happens-before checking.
//
// The protocol must preserve the happens-before relation of the sequential
// program (section 2: "if e1 is an event in S1 and e2 in S2 then e1 -> e2").
// The property tests stamp committed events with vector clocks and assert
// that every receive causally follows its send and that per-process logical
// order is monotone — i.e. no committed execution contains a causality
// cycle like Figure 4's.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/ids.h"

namespace ocsp::trace {

class VectorClock {
 public:
  /// Component for `id` (0 when absent).
  std::uint64_t get(ProcessId id) const;

  /// Increment own component (a local event at `id`).
  void tick(ProcessId id);

  /// Pointwise maximum (message receipt: merge sender's clock, then tick).
  void merge(const VectorClock& other);

  /// a happens-before b: a <= b pointwise and a != b.
  static bool happens_before(const VectorClock& a, const VectorClock& b);

  /// Neither happens-before the other.
  static bool concurrent(const VectorClock& a, const VectorClock& b);

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  std::string to_string() const;

 private:
  std::map<ProcessId, std::uint64_t> clock_;
};

}  // namespace ocsp::trace
