#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "trace/vector_clock.h"
#include "util/table.h"

namespace ocsp::obs {

const char* to_string(TimeCategory c) {
  switch (c) {
    case TimeCategory::kUseful:
      return "useful";
    case TimeCategory::kWasted:
      return "wasted";
    case TimeCategory::kRollback:
      return "rollback";
    case TimeCategory::kVerify:
      return "verify";
    case TimeCategory::kStall:
      return "stall";
  }
  return "?";
}

std::int64_t TimeBreakdown::total() const {
  std::int64_t sum = 0;
  for (std::int64_t v : ns) sum += v;
  return sum;
}

void TimeBreakdown::add(const TimeBreakdown& other) {
  for (std::size_t i = 0; i < kTimeCategoryCount; ++i) ns[i] += other.ns[i];
}

namespace {

/// Half-open span [lo, hi).
struct Span {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// A recorded compute burst; `wasted` marks the suffix [hi - wasted, hi) as
/// later discarded.  The suffix direction matters: a rollback restores a
/// checkpoint that retains the *earliest* compute, so the discarded part is
/// always the latest.
struct ComputeSeg {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t wasted = 0;
};

struct CatSpan {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  TimeCategory cat = TimeCategory::kStall;
};

struct GuessKey {
  ProcessId owner;
  std::uint32_t incarnation;
  std::uint32_t index;
  auto operator<=>(const GuessKey&) const = default;
};

GuessKey key_of(const GuessRef& g) {
  return GuessKey{g.owner, g.incarnation, g.index};
}

struct ProcScratch {
  std::int64_t first = -1;
  std::int64_t last = -1;
  std::map<std::uint32_t, std::vector<ComputeSeg>> compute;  // per thread
  std::map<std::uint32_t, std::int64_t> thread_last;  // clamp for bursts
  std::vector<Span> verify;
  std::map<std::uint32_t, std::int64_t> open_blocked;  // thread -> opened at
  std::map<GuessKey, std::int64_t> open_join;          // in-doubt joins
  /// Exact partition of [first, last]; consecutive spans are contiguous.
  std::vector<CatSpan> partition;
  TimeBreakdown breakdown;
};

/// Build the elementary partition of [first, last] from the overlay spans,
/// with priority useful > wasted > verify > stall.  Every instant lands in
/// exactly one category, so the breakdown sums to the span by construction.
void finalize_partition(ProcScratch& p) {
  if (p.first < 0 || p.last <= p.first) {
    p.first = std::max<std::int64_t>(p.first, 0);
    p.last = p.first;
    return;
  }
  // Close windows left open at the end of the run.
  for (const auto& [thread, opened] : p.open_blocked) {
    p.verify.push_back({opened, p.last});
  }
  p.open_blocked.clear();
  for (const auto& [g, opened] : p.open_join) {
    p.verify.push_back({opened, p.last});
  }
  p.open_join.clear();

  // Tagged sweep events: class 0 = useful, 1 = wasted, 2 = verify.
  struct Edge {
    std::int64_t at;
    int cls;
    int delta;
  };
  std::vector<Edge> edges;
  auto clamp = [&](std::int64_t v) {
    return std::min(std::max(v, p.first), p.last);
  };
  auto push = [&](std::int64_t lo, std::int64_t hi, int cls) {
    lo = clamp(lo);
    hi = clamp(hi);
    if (lo >= hi) return;
    edges.push_back({lo, cls, +1});
    edges.push_back({hi, cls, -1});
  };
  for (const auto& [thread, segs] : p.compute) {
    for (const auto& s : segs) {
      const std::int64_t split = s.hi - s.wasted;
      push(s.lo, split, 0);
      push(split, s.hi, 1);
    }
  }
  for (const auto& s : p.verify) push(s.lo, s.hi, 2);

  std::vector<std::int64_t> points{p.first, p.last};
  points.reserve(edges.size() + 2);
  for (const auto& e : edges) points.push_back(e.at);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.at < b.at; });

  int active[3] = {0, 0, 0};
  std::size_t ei = 0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const std::int64_t lo = points[i];
    const std::int64_t hi = points[i + 1];
    while (ei < edges.size() && edges[ei].at <= lo) {
      active[edges[ei].cls] += edges[ei].delta;
      ++ei;
    }
    TimeCategory cat = TimeCategory::kStall;
    if (active[0] > 0) {
      cat = TimeCategory::kUseful;
    } else if (active[1] > 0) {
      cat = TimeCategory::kWasted;
    } else if (active[2] > 0) {
      cat = TimeCategory::kVerify;
    }
    p.breakdown[cat] += hi - lo;
    if (!p.partition.empty() && p.partition.back().cat == cat &&
        p.partition.back().hi == lo) {
      p.partition.back().hi = hi;
    } else {
      p.partition.push_back({lo, hi, cat});
    }
  }
}

/// Overlap of [lo, hi) with the partition, restricted to the dependency
/// categories (useful, wasted, verify) — the portion of the elapsed window
/// the process genuinely spent working rather than waiting on a channel.
TimeBreakdown dependency_overlap(const ProcScratch& p, std::int64_t lo,
                                 std::int64_t hi) {
  TimeBreakdown out;
  if (lo >= hi) return out;
  auto it = std::lower_bound(
      p.partition.begin(), p.partition.end(), lo,
      [](const CatSpan& s, std::int64_t v) { return s.hi <= v; });
  for (; it != p.partition.end() && it->lo < hi; ++it) {
    if (it->cat == TimeCategory::kStall) continue;
    const std::int64_t a = std::max(lo, it->lo);
    const std::int64_t b = std::min(hi, it->hi);
    if (a < b) out[it->cat] += b - a;
  }
  return out;
}

/// Per-process longest-dependency-chain state for the critical-path DP.
struct Chain {
  std::int64_t value = 0;
  TimeBreakdown bd;
  std::int64_t last_when = 0;
  std::vector<CriticalPathStep> steps;
  /// Vector clock at the end of each step, for causal validation.
  std::vector<trace::VectorClock> clocks;
  bool started = false;
};

struct SendSnapshot {
  std::int64_t when = 0;
  Chain chain;
};

}  // namespace

RunProfile build_profile(const RunRecorder& recorder,
                         const std::vector<std::string>& process_names) {
  RunProfile out;
  out.dual_clock = recorder.dual_clock();

  // ---- pass 1: per-process overlay spans -------------------------------
  std::map<ProcessId, ProcScratch> procs;
  for (const Event& e : recorder.events()) {
    if (e.process == kNoProcess) continue;
    ProcScratch& p = procs[e.process];
    const std::int64_t when = static_cast<std::int64_t>(e.when);
    if (p.first < 0) p.first = when;
    p.last = std::max(p.last, when);

    switch (e.kind) {
      case EventKind::kComputeDone: {
        // The burst occupied [when - duration, when] on the virtual clock.
        // Clamp to the thread's previous event so bursts never overlap on
        // one thread and never precede the process's first event (on
        // dual-clock runs `a` is virtual while `when` is wall, so the
        // clamp is what keeps the overlay sane there).
        const std::int64_t d = static_cast<std::int64_t>(e.a);
        std::int64_t lo = when - d;
        auto tl = p.thread_last.find(e.thread);
        if (tl != p.thread_last.end()) lo = std::max(lo, tl->second);
        lo = std::max(lo, p.first);
        if (lo < when) p.compute[e.thread].push_back({lo, when, 0});
        break;
      }
      case EventKind::kWorkDiscarded: {
        // Mark the thread's most recent still-useful compute as wasted,
        // latest first: a restore retains the earliest compute, so the
        // discarded nanoseconds are always a suffix of what was recorded.
        std::int64_t rem = static_cast<std::int64_t>(e.a);
        auto ct = p.compute.find(e.thread);
        if (ct != p.compute.end()) {
          for (auto it = ct->second.rbegin();
               rem > 0 && it != ct->second.rend(); ++it) {
            const std::int64_t avail = (it->hi - it->lo) - it->wasted;
            const std::int64_t take = std::min(avail, rem);
            it->wasted += take;
            rem -= take;
          }
        }
        out.unmatched_wasted_ns += rem;
        break;
      }
      case EventKind::kThreadBlocked:
        p.open_blocked[e.thread] = when;
        break;
      case EventKind::kThreadResolved: {
        auto it = p.open_blocked.find(e.thread);
        if (it != p.open_blocked.end()) {
          p.verify.push_back({it->second, when});
          p.open_blocked.erase(it);
        }
        break;
      }
      case EventKind::kJoin:
        if (e.guess.valid()) p.open_join[key_of(e.guess)] = when;
        break;
      case EventKind::kCommit:
      case EventKind::kAbort:
        if (e.guess.valid()) {
          auto it = p.open_join.find(key_of(e.guess));
          if (it != p.open_join.end()) {
            p.verify.push_back({it->second, when});
            p.open_join.erase(it);
          }
        }
        break;
      default:
        break;
    }
    std::int64_t& tl = p.thread_last[e.thread];
    tl = std::max(tl, when);
  }

  std::int64_t run_first = -1;
  std::int64_t run_last = 0;
  for (auto& [id, p] : procs) {
    finalize_partition(p);
    if (p.first < 0) continue;
    run_first = run_first < 0 ? p.first : std::min(run_first, p.first);
    run_last = std::max(run_last, p.last);

    ProcessTimeProfile pp;
    pp.process = id;
    pp.name = static_cast<std::size_t>(id) < process_names.size()
                  ? process_names[id]
                  : "P" + std::to_string(id);
    pp.span_ns = p.last - p.first;
    pp.breakdown = p.breakdown;
    out.total_process_ns += pp.span_ns;
    out.global.add(pp.breakdown);
    out.per_process.push_back(std::move(pp));
  }
  out.run_span_ns = run_first < 0 ? 0 : run_last - run_first;

  // ---- pass 2: critical path -------------------------------------------
  //
  // Longest dependency chain, process granularity: program order within a
  // process contributes its useful/wasted/verify time (channel stall is
  // not a dependency — it is covered by the message edge that ends it),
  // and each message contributes its latency (data: stall, control:
  // verify).  Committed speculative joins and fork spawns are
  // intra-process and add no cross-edge, which is exactly the paper's
  // claimed overlap.
  std::map<ProcessId, Chain> chains;
  std::map<MsgId, SendSnapshot> sends;
  std::map<ProcessId, trace::VectorClock> clocks;

  auto advance = [&](ProcessId pid, std::int64_t when) -> Chain& {
    Chain& c = chains[pid];
    const ProcScratch& p = procs.at(pid);
    if (!c.started) {
      c.started = true;
      c.last_when = when;
      c.steps.push_back({pid, 0, when, when, false, 0});
      c.clocks.push_back(clocks[pid]);
      return c;
    }
    if (when > c.last_when) {
      const TimeBreakdown dep = dependency_overlap(p, c.last_when, when);
      c.bd.add(dep);
      c.value += dep.total();
      c.last_when = when;
      if (!c.steps.empty() && c.steps.back().process == pid &&
          !c.steps.back().via_message) {
        c.steps.back().to_ns = when;
        c.clocks.back() = clocks[pid];
      } else {
        c.steps.push_back({pid, 0, c.steps.back().to_ns, when, false, 0});
        c.clocks.push_back(clocks[pid]);
      }
    }
    return c;
  };

  for (const Event& e : recorder.events()) {
    if (e.process == kNoProcess) continue;
    const std::int64_t when = static_cast<std::int64_t>(e.when);
    clocks[e.process].tick(e.process);
    Chain& local = advance(e.process, when);
    if (e.kind == EventKind::kMsgSent) {
      sends[e.msg_id] = SendSnapshot{when, local};
    } else if (e.kind == EventKind::kMsgDelivered) {
      auto it = sends.find(e.msg_id);
      if (it != sends.end()) {
        clocks[e.process].merge(it->second.chain.clocks.empty()
                                    ? trace::VectorClock{}
                                    : it->second.chain.clocks.back());
        const std::int64_t latency = when - it->second.when;
        Chain candidate = it->second.chain;
        const TimeCategory hop_cat = e.control != ControlType::kNone
                                         ? TimeCategory::kVerify
                                         : TimeCategory::kStall;
        candidate.bd[hop_cat] += std::max<std::int64_t>(latency, 0);
        candidate.value += std::max<std::int64_t>(latency, 0);
        candidate.last_when = when;
        candidate.steps.push_back(
            {e.process, 0, it->second.when, when, true, e.msg_id});
        candidate.clocks.push_back(clocks[e.process]);
        if (candidate.value > local.value) {
          chains[e.process] = std::move(candidate);
        } else {
          local.clocks.back() = clocks[e.process];
        }
      }
    }
  }

  const Chain* best = nullptr;
  for (const auto& [pid, c] : chains) {
    if (best == nullptr || c.value > best->value) best = &c;
  }
  if (best != nullptr) {
    out.critical_path.length_ns = best->value;
    out.critical_path.breakdown = best->bd;
    out.critical_path.steps = best->steps;
    // Causal validation: within a process `when` must be monotone; across
    // a message hop the sender's clock at the send must happen-before (or
    // equal, for a self-send) the receiver's clock at delivery.
    bool valid = true;
    for (std::size_t i = 0; i + 1 < best->steps.size(); ++i) {
      const auto& a = best->steps[i];
      const auto& b = best->steps[i + 1];
      if (a.to_ns > b.to_ns) valid = false;
      if (b.via_message) {
        const auto& ca = best->clocks[i];
        const auto& cb = best->clocks[i + 1];
        if (!trace::VectorClock::happens_before(ca, cb) && !(ca == cb)) {
          valid = false;
        }
      }
    }
    out.critical_path.causally_valid = valid;
  }
  return out;
}

std::string profile_table(const RunProfile& profile) {
  auto ms = [](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  util::Table t({"process", "span_ms", "useful_ms", "wasted_ms",
                 "rollback_ms", "verify_ms", "stall_ms"});
  for (const auto& p : profile.per_process) {
    t.row(p.name, ms(p.span_ns), ms(p.breakdown[TimeCategory::kUseful]),
          ms(p.breakdown[TimeCategory::kWasted]),
          ms(p.breakdown[TimeCategory::kRollback]),
          ms(p.breakdown[TimeCategory::kVerify]),
          ms(p.breakdown[TimeCategory::kStall]));
  }
  t.row("TOTAL", ms(profile.total_process_ns),
        ms(profile.global[TimeCategory::kUseful]),
        ms(profile.global[TimeCategory::kWasted]),
        ms(profile.global[TimeCategory::kRollback]),
        ms(profile.global[TimeCategory::kVerify]),
        ms(profile.global[TimeCategory::kStall]));
  std::string s = "Time accounting (" +
                  std::string(profile.dual_clock ? "wall" : "virtual") +
                  " clock, span " + ms(profile.run_span_ns) + " ms):\n" +
                  t.to_string();
  const auto& cp = profile.critical_path;
  s += "Critical path: " + ms(cp.length_ns) + " ms over " +
       std::to_string(cp.steps.size()) + " steps (useful " +
       ms(cp.breakdown[TimeCategory::kUseful]) + ", verify " +
       ms(cp.breakdown[TimeCategory::kVerify]) + ", stall " +
       ms(cp.breakdown[TimeCategory::kStall]) + " ms; causally " +
       (cp.causally_valid ? "valid" : "INVALID") + ")\n";
  if (cp.length_ns > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "Speedup upper bound (useful/path): %.2fx\n",
                  static_cast<double>(
                      profile.global[TimeCategory::kUseful]) /
                      static_cast<double>(cp.length_ns));
    s += buf;
  }
  if (profile.unmatched_wasted_ns > 0) {
    s += "note: " + ms(profile.unmatched_wasted_ns) +
         " ms discarded work had no recorded compute to attribute\n";
  }
  return s;
}

}  // namespace ocsp::obs
