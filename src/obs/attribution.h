// Causal profiler, part 2: abort attribution and per-site scorecards.
//
// build_attribution() walks the recorded abort cascade backwards: every
// kAbort event either is a root (a value fault, time fault, or timeout at
// the guessing site itself) or carries a `guess_from` edge naming the
// already-aborted guess that collateral-damaged it.  Following those edges
// to a fixpoint attributes every cascade abort — and every nanosecond of
// kWorkDiscarded compute — to the originating mis-guess's fork site.
//
// The result is one scorecard per (process, fork site): how often it
// guessed, how often the guess verified, how many downstream aborts its
// mis-guesses caused, how much virtual time those cost, and how much
// compute its successful speculation overlapped with S1 — a per-site
// profit/loss statement.  SAFE-elided sites appear with their own column
// (forks that paid zero speculation cost) so guard elision shows up as
// profit, not as a blind spot.
//
// Reconciliation is exact by construction: root_abort_events +
// cascade_abort_events == RunRecorder::count(kAbort), which obs_test ties
// to SpecStats (total_aborts() + aborts_cascade).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "util/ids.h"

namespace ocsp::obs {

struct SiteScorecard {
  ProcessId process = kNoProcess;
  std::string name;  ///< process display name
  std::string site;  ///< fork-site label ("(anonymous)" when unlabeled)

  std::uint64_t forks = 0;        ///< all kFork events at this site
  std::uint64_t speculative = 0;  ///< guesses made
  std::uint64_t safe_elided = 0;  ///< SAFE fast-path forks (zero cost)
  std::uint64_t sequential = 0;   ///< pessimistic executions

  std::uint64_t hits = 0;    ///< kGuessVerified
  std::uint64_t misses = 0;  ///< kGuessFailed
  std::uint64_t commits = 0;
  /// Commits whose verification forgave a mismatch under commute
  /// verification (kCommuteCommit); subset of `commits`, and of `misses` —
  /// a forgiven miss still records kGuessFailed for the predictors.
  std::uint64_t commute_commits = 0;

  /// Root aborts originating here (value/time fault, timeout).
  std::uint64_t aborts_root = 0;
  /// Subset of `aborts_root` caused by fork/join-wait timeouts — the
  /// liveness mechanism firing rather than a wrong guess.
  std::uint64_t aborts_timeout = 0;
  /// Cascade aborts whose root cause traces back to this site.
  std::uint64_t aborts_caused = 0;
  /// Discarded compute (ns) attributed to this site's mis-guesses,
  /// anywhere downstream.
  std::int64_t wasted_downstream_ns = 0;
  /// Overlap (ns) the fork bought.  For speculative forks: compute the
  /// right thread completed before the guess committed (elapsed time would
  /// count the verification wait, which is overhead).  For SAFE forks,
  /// which never verify and never abort, the full fork->join elapsed span
  /// counts — a fanned-out call overlaps channel waits, not compute.
  std::int64_t saved_ns = 0;
  /// Checkpoint bytes SAFE elision never materialized.
  std::uint64_t elided_bytes = 0;

  /// Adaptive-governor activity at this site (kGovernorDemote/Promote).
  std::uint64_t governor_demotions = 0;
  std::uint64_t governor_promotions = 0;
  /// Site ended the run demoted to sequential.
  bool governor_demoted = false;

  std::int64_t net_ns() const { return saved_ns - wasted_downstream_ns; }
};

struct AttributionReport {
  std::uint64_t abort_events = 0;          ///< == count(kAbort)
  std::uint64_t root_abort_events = 0;     ///< reason != kCascade
  std::uint64_t cascade_abort_events = 0;  ///< reason == kCascade
  /// Cascade events whose root could not be resolved to a sited guess.
  std::uint64_t unattributed_cascades = 0;
  /// Root events whose guess has no known fork site.
  std::uint64_t unattributed_roots = 0;
  std::int64_t wasted_total_ns = 0;
  std::int64_t unattributed_wasted_ns = 0;
  /// Liveness / robustness activity (run-wide; these events carry no fork
  /// site): retransmissions and duplicate suppressions from the reliable
  /// transport, injected faults, and crash/recovery cycles.
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Sorted by net profit, best first.
  std::vector<SiteScorecard> sites;
};

AttributionReport build_attribution(
    const RunRecorder& recorder,
    const std::vector<std::string>& process_names);

std::string attribution_table(const AttributionReport& report);

}  // namespace ocsp::obs
