#include "obs/merge.h"

namespace ocsp::obs {

std::shared_ptr<RunRecorder> merge_recorders(
    const std::vector<const RunRecorder*>& parts) {
  auto merged = std::make_shared<RunRecorder>();
  std::vector<std::size_t> next(parts.size(), 0);
  for (;;) {
    std::size_t best = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (next[i] >= parts[i]->events().size()) continue;
      // Strict < keeps the lowest part index on same-time ties.
      if (best == parts.size() ||
          parts[i]->events()[next[i]].when <
              parts[best]->events()[next[best]].when) {
        best = i;
      }
    }
    if (best == parts.size()) break;
    merged->record(parts[best]->events()[next[best]++]);
  }
  return merged;
}

}  // namespace ocsp::obs
