// RunRecorder: the structured event sink of a run.
//
// One recorder per Runtime; every process, the network, and the scheduler
// funnel their Events here.  Events are stored in recording order (which,
// on the deterministic kernel, is a total order consistent with virtual
// time) and counted per kind so reconciliation against SpecStats is O(1).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace ocsp::obs {

class RunRecorder {
 public:
  /// Recording is on by default; disabling makes record() a cheap no-op
  /// (counters included) for perf-sensitive sweeps.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Install a wall-clock source (ns since run start).  When set, every
  /// recorded event without an explicit wall_ns gets stamped — the
  /// dual-clock mode real executors use.  Virtual-only runs leave it unset
  /// and events keep wall_ns == -1.
  void set_wall_clock(std::function<std::int64_t()> clock) {
    wall_clock_ = std::move(clock);
  }
  bool dual_clock() const { return static_cast<bool>(wall_clock_); }

  void record(Event e) {
    if (!enabled_) return;
    if (wall_clock_ && e.wall_ns < 0) e.wall_ns = wall_clock_();
    ++counts_[static_cast<std::size_t>(e.kind)];
    if (e.kind == EventKind::kAbort) {
      ++abort_counts_[static_cast<std::size_t>(e.reason)];
    }
    events_.push_back(std::move(e));
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t count(EventKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  std::size_t abort_count(AbortReason r) const {
    return abort_counts_[static_cast<std::size_t>(r)];
  }

  void clear() {
    events_.clear();
    counts_.fill(0);
    abort_counts_.fill(0);
  }

 private:
  bool enabled_ = true;
  std::function<std::int64_t()> wall_clock_;
  std::vector<Event> events_;
  std::array<std::size_t, kEventKindCount> counts_{};
  std::array<std::size_t, kAbortReasonCount> abort_counts_{};
};

}  // namespace ocsp::obs
