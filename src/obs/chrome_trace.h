// Chrome trace-event JSON exporter (loadable in Perfetto or
// chrome://tracing).
//
// Track layout: one Chrome "process" (pid) per OCSP process, named via
// process_name metadata; within it, tid n is the speculative thread x_n
// and tid 0 additionally carries the message lanes.  Guess lifetimes
// become duration slices from fork to resolution, colored and tagged by
// outcome (commit / abort+reason); rollbacks, cycle detections, and
// external releases/discards are instant events; every network message —
// data and control, PRECEDENCE included — becomes a flow arrow between a
// 1 us send slice on the source track and a matching delivery slice on the
// destination track.
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.h"

namespace ocsp::obs {

/// Render the recorded run as a Chrome trace-event JSON document.
/// `process_names[i]` labels the track of ProcessId i.
std::string chrome_trace_json(const RunRecorder& recorder,
                              const std::vector<std::string>& process_names);

/// Write chrome_trace_json() to `path`.  Returns false (and logs an error)
/// when the file cannot be written.
bool write_chrome_trace(const std::string& path, const RunRecorder& recorder,
                        const std::vector<std::string>& process_names);

}  // namespace ocsp::obs
