#include "obs/bench_compare.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace ocsp::obs {

namespace {

struct Ctx {
  const BenchDiffOptions* options;
  BenchDiffResult* result;

  /// Explicit per-metric override, or a negative sentinel.
  double override_for(const std::string& path,
                      const std::string& leaf) const {
    auto it = options->metric_rel_tol.find(path);
    if (it != options->metric_rel_tol.end()) return it->second;
    it = options->metric_rel_tol.find(leaf);
    if (it != options->metric_rel_tol.end()) return it->second;
    return -1.0;
  }

  void mismatch(const std::string& where, const std::string& what) {
    result->mismatches.push_back(where + ": " + what);
  }

  /// Integers compare exactly (the simulated protocol is deterministic)
  /// unless a per-metric tolerance was given; floats compare relatively.
  void compare_number(const std::string& where, const std::string& leaf,
                      double base, double got, bool integral) {
    const double override_tol = override_for(where, leaf);
    bool equal;
    if (base == got) {
      equal = true;
    } else if (integral && override_tol < 0) {
      equal = false;
    } else {
      const double tol =
          override_tol >= 0 ? override_tol : options->float_rel_tol;
      const double scale = std::max(std::abs(base), std::abs(got));
      equal = std::abs(base - got) <= tol * std::max(scale, 1e-12);
    }
    if (!equal) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "baseline %.17g, got %.17g", base,
                    got);
      mismatch(where, buf);
    }
  }
};

bool looks_integral(double v) {
  return v == std::floor(v) && std::abs(v) < 9.0e15;
}

/// Structural comparison of two JSON values under `path`.  Numbers compare
/// with the metric tolerance machinery; everything else compares exactly.
void compare_value(Ctx& ctx, const std::string& path,
                   const std::string& leaf, const util::JsonValue& base,
                   const util::JsonValue& got) {
  using T = util::JsonValue::Type;
  if (base.type != got.type) {
    ctx.mismatch(path, "type changed");
    return;
  }
  switch (base.type) {
    case T::kNull:
      break;
    case T::kBool:
      if (base.boolean != got.boolean) ctx.mismatch(path, "bool changed");
      break;
    case T::kNumber:
      ctx.compare_number(path, leaf, base.number, got.number,
                         looks_integral(base.number) &&
                             looks_integral(got.number));
      break;
    case T::kString:
      if (base.string != got.string) {
        ctx.mismatch(path, "\"" + base.string + "\" -> \"" + got.string +
                               "\"");
      }
      break;
    case T::kArray: {
      if (base.array.size() != got.array.size()) {
        ctx.mismatch(path, "array length " +
                               std::to_string(base.array.size()) + " -> " +
                               std::to_string(got.array.size()));
        return;
      }
      for (std::size_t i = 0; i < base.array.size(); ++i) {
        compare_value(ctx, path + "[" + std::to_string(i) + "]", leaf,
                      base.array[i], got.array[i]);
      }
      break;
    }
    case T::kObject: {
      for (const auto& [k, bv] : base.object) {
        const util::JsonValue* gv = got.find(k);
        if (gv == nullptr) {
          ctx.mismatch(path + "/" + k, "missing in fresh run");
          continue;
        }
        compare_value(ctx, path + "/" + k, k, bv, *gv);
      }
      for (const auto& [k, gv] : got.object) {
        if (base.find(k) == nullptr) {
          ctx.mismatch(path + "/" + k, "new metric not in baseline");
        }
      }
      break;
    }
  }
}

/// First entry per benchmark name; google-benchmark emits one entry per
/// timing iteration and the iteration count is nondeterministic, while the
/// simulated run behind every same-name entry is identical.
std::map<std::string, const util::JsonValue*> dedupe(
    const util::JsonValue& doc, Ctx& ctx, const char* label) {
  std::map<std::string, const util::JsonValue*> out;
  const util::JsonValue* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    ctx.mismatch(label, "no benchmarks array");
    return out;
  }
  std::size_t dropped = 0;
  for (const auto& entry : benchmarks->array) {
    const util::JsonValue* name = entry.find("name");
    if (name == nullptr || !name->is_string()) {
      ctx.mismatch(label, "benchmark entry without name");
      continue;
    }
    if (!out.emplace(name->string, &entry).second) ++dropped;
  }
  if (dropped > 0) {
    ctx.result->notes.push_back(std::string(label) + ": deduplicated " +
                                std::to_string(dropped) +
                                " repeated entries");
  }
  return out;
}

}  // namespace

BenchDiffResult diff_bench_json(const util::JsonValue& baseline,
                                const util::JsonValue& fresh,
                                const BenchDiffOptions& options) {
  BenchDiffResult result;
  Ctx ctx{&options, &result};

  for (const auto* doc : {&baseline, &fresh}) {
    const util::JsonValue* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string != "ocsp-bench-v1") {
      ctx.mismatch(doc == &baseline ? "baseline" : "fresh",
                   "not an ocsp-bench-v1 document");
    }
  }
  if (!result.ok()) return result;

  const util::JsonValue* bv = baseline.find("schema_version");
  const util::JsonValue* fv = fresh.find("schema_version");
  const double bver = bv != nullptr && bv->is_number() ? bv->number : 1;
  const double fver = fv != nullptr && fv->is_number() ? fv->number : 1;
  if (bver != fver) {
    ctx.mismatch("schema_version", "baseline " + std::to_string(bver) +
                                       ", fresh " + std::to_string(fver));
    return result;
  }

  auto base_entries = dedupe(baseline, ctx, "baseline");
  auto fresh_entries = dedupe(fresh, ctx, "fresh");
  for (const auto& [name, entry] : base_entries) {
    auto it = fresh_entries.find(name);
    if (it == fresh_entries.end()) {
      ctx.mismatch(name, "benchmark missing from fresh run");
      continue;
    }
    compare_value(ctx, name, "", *entry, *it->second);
  }
  for (const auto& [name, entry] : fresh_entries) {
    if (base_entries.find(name) == base_entries.end()) {
      ctx.mismatch(name, "benchmark not in baseline");
    }
  }
  return result;
}

}  // namespace ocsp::obs
