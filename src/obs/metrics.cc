#include "obs/metrics.h"

#include "util/check.h"

namespace ocsp::obs {

std::uint64_t MetricsRegistry::counter_or(const std::string& name,
                                          std::uint64_t fallback) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second;
}

util::Histogram& MetricsRegistry::histogram(const std::string& name,
                                            double lo, double hi,
                                            std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, util::Histogram(lo, hi, buckets)).first;
  } else {
    OCSP_CHECK_MSG(it->second.lo() == lo && it->second.hi() == hi &&
                       it->second.bucket_count() == buckets,
                   ("histogram shape mismatch: " + name).c_str());
  }
  return it->second;
}

const util::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, acc] : other.accumulators_) {
    accumulators_[name].merge(acc);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  // Gauges are derived values; merging them (sum? mean?) would be wrong for
  // ratios like guess_accuracy, so callers recompute them after the merge.
}

void MetricsRegistry::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.key(name).value(v);
  w.end_object();
  w.key("accumulators").begin_object();
  for (const auto& [name, acc] : accumulators_) {
    w.key(name).begin_object();
    w.key("count").value(static_cast<std::uint64_t>(acc.count()));
    w.key("mean").value(acc.mean());
    w.key("stddev").value(acc.stddev());
    w.key("min").value(acc.min());
    w.key("max").value(acc.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("lo").value(h.lo());
    w.key("hi").value(h.hi());
    w.key("total").value(h.total());
    w.key("p50").value(h.p50());
    w.key("p99").value(h.p99());
    w.key("p999").value(h.p999());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      w.value(h.bucket(i));
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  util::JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace ocsp::obs
