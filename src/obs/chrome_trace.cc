#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "sim/time.h"
#include "util/json.h"
#include "util/logging.h"

namespace ocsp::obs {

namespace {

double us(sim::Time t) { return sim::to_micros(t); }

const char* message_category(const Event& e) {
  if (e.control == ControlType::kPrecedence) return "precedence";
  if (e.control != ControlType::kNone) return "control";
  return "data";
}

void common_fields(util::JsonWriter& w, const char* name, const char* cat,
                   const char* ph, double ts, ProcessId pid,
                   std::uint32_t tid) {
  w.key("name").value(name);
  w.key("cat").value(cat);
  w.key("ph").value(ph);
  w.key("ts").value(ts);
  w.key("pid").value(static_cast<std::uint64_t>(pid));
  w.key("tid").value(static_cast<std::uint64_t>(tid));
}

void instant(util::JsonWriter& w, const char* name, const char* cat,
             const Event& e, std::uint32_t tid) {
  w.begin_object();
  common_fields(w, name, cat, "i", us(e.when), e.process, tid);
  w.key("s").value("t");  // thread-scoped instant
  w.key("args").begin_object();
  if (!e.detail.empty()) w.key("detail").value(e.detail);
  if (e.guess.valid()) w.key("guess").value(e.guess.to_string());
  if (e.reason != AbortReason::kNone) {
    w.key("reason").value(to_string(e.reason));
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const RunRecorder& recorder,
                              const std::vector<std::string>& process_names) {
  const auto& events = recorder.events();
  sim::Time last_time = 0;
  for (const auto& e : events) last_time = std::max(last_time, e.when);

  // Guess lifetime reconstruction: start at kGuessMade, end at the first
  // commit/abort naming the same (owner, incarnation, index).
  std::map<GuessRef, const Event*> starts;
  std::map<GuessRef, const Event*> ends;
  std::map<MsgId, const Event*> sends;
  for (const auto& e : events) {
    switch (e.kind) {
      case EventKind::kGuessMade:
        starts.emplace(e.guess, &e);
        break;
      case EventKind::kCommit:
      case EventKind::kAbort:
        if (e.guess.valid()) ends.emplace(e.guess, &e);
        break;
      case EventKind::kMsgSent:
        sends.emplace(e.msg_id, &e);
        break;
      default:
        break;
    }
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("generator").value("ocsp-obs");
  w.end_object();
  w.key("traceEvents").begin_array();

  // One track per process: process_name metadata keyed by pid.
  for (std::size_t i = 0; i < process_names.size(); ++i) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(i));
    w.key("tid").value(std::uint64_t{0});
    w.key("args").begin_object().key("name").value(process_names[i]);
    w.end_object();
    w.end_object();
  }

  // Interval slices: one per guess, colored by outcome.
  for (const auto& [guess, start] : starts) {
    auto end_it = ends.find(guess);
    const Event* end = end_it == ends.end() ? nullptr : end_it->second;
    const sim::Time end_time = end ? end->when : last_time;
    const char* outcome = "unresolved";
    const char* cname = "generic_work";
    const char* reason = nullptr;
    if (end && end->kind == EventKind::kCommit) {
      outcome = "commit";
      cname = "good";
    } else if (end) {
      outcome = "abort";
      cname = "terrible";
      reason = to_string(end->reason);
    }
    w.begin_object();
    const std::string name = guess.to_string() +
                             (start->detail.empty() ? "" : " " + start->detail);
    common_fields(w, name.c_str(), "interval", "X", us(start->when),
                  guess.owner, guess.index);
    const double dur = us(end_time) - us(start->when);
    w.key("dur").value(dur > 0.001 ? dur : 0.001);
    w.key("cname").value(cname);
    w.key("args").begin_object();
    w.key("outcome").value(outcome);
    if (reason) w.key("reason").value(reason);
    if (!start->detail.empty()) w.key("site").value(start->detail);
    w.key("incarnation").value(
        static_cast<std::uint64_t>(guess.incarnation));
    w.end_object();
    w.end_object();
  }

  for (const auto& e : events) {
    switch (e.kind) {
      case EventKind::kRollback:
        instant(w, "rollback", "rollback", e, e.thread);
        break;
      case EventKind::kCdgCycleDetected:
        instant(w, "cdg-cycle", "timefault", e, 0);
        break;
      case EventKind::kExternalReleased:
        instant(w, "external-release", "external", e, e.thread);
        break;
      case EventKind::kExternalDiscarded:
        instant(w, "external-discard", "external", e, e.thread);
        break;
      case EventKind::kMsgDelivered: {
        auto send_it = sends.find(e.msg_id);
        if (send_it == sends.end()) break;  // delivery without a recorded send
        const Event& s = *send_it->second;
        const char* cat = message_category(s);
        const char* name = s.detail.empty() ? cat : s.detail.c_str();
        // A 1 us slice at each endpoint anchors the flow arrow.
        w.begin_object();
        common_fields(w, name, cat, "X", us(s.when), s.process, 0);
        w.key("dur").value(1.0);
        w.end_object();
        w.begin_object();
        common_fields(w, name, cat, "X", us(e.when), e.process, 0);
        w.key("dur").value(1.0);
        w.end_object();
        w.begin_object();
        common_fields(w, name, cat, "s", us(s.when), s.process, 0);
        w.key("id").value(static_cast<std::uint64_t>(e.msg_id));
        w.end_object();
        w.begin_object();
        common_fields(w, name, cat, "f", us(e.when), e.process, 0);
        w.key("bp").value("e");
        w.key("id").value(static_cast<std::uint64_t>(e.msg_id));
        w.end_object();
        break;
      }
      default:
        break;
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path, const RunRecorder& recorder,
                        const std::vector<std::string>& process_names) {
  const std::string json = chrome_trace_json(recorder, process_names);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    OCSP_ELOG << "cannot write trace file: " << path;
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace ocsp::obs
