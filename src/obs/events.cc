#include "obs/events.h"

#include <sstream>

namespace ocsp::obs {

std::string GuessRef::to_string() const {
  if (!valid()) return "g(-)";
  std::ostringstream os;
  os << "g(P" << owner << "." << incarnation << "." << index << ")";
  return os.str();
}

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kIntervalBegin:
      return "interval-begin";
    case EventKind::kFork:
      return "fork";
    case EventKind::kJoin:
      return "join";
    case EventKind::kCommit:
      return "commit";
    case EventKind::kAbort:
      return "abort";
    case EventKind::kRollback:
      return "rollback";
    case EventKind::kGuessMade:
      return "guess-made";
    case EventKind::kGuessVerified:
      return "guess-verified";
    case EventKind::kGuessFailed:
      return "guess-failed";
    case EventKind::kControlSent:
      return "control-sent";
    case EventKind::kControlReceived:
      return "control-received";
    case EventKind::kCdgEdgeAdded:
      return "cdg-edge";
    case EventKind::kCdgCycleDetected:
      return "cdg-cycle";
    case EventKind::kExternalBuffered:
      return "external-buffered";
    case EventKind::kExternalReleased:
      return "external-released";
    case EventKind::kExternalDiscarded:
      return "external-discarded";
    case EventKind::kMsgSent:
      return "msg-sent";
    case EventKind::kMsgDelivered:
      return "msg-delivered";
    case EventKind::kCheckpointTaken:
      return "checkpoint";
    case EventKind::kComputeDone:
      return "compute-done";
    case EventKind::kWorkDiscarded:
      return "work-discarded";
    case EventKind::kSafeForkElided:
      return "safe-fork-elided";
    case EventKind::kThreadBlocked:
      return "thread-blocked";
    case EventKind::kThreadResolved:
      return "thread-resolved";
    case EventKind::kProcessCompleted:
      return "process-completed";
    case EventKind::kCommuteCommit:
      return "commute-commit";
    case EventKind::kFaultInjected:
      return "fault-injected";
    case EventKind::kRetransmit:
      return "retransmit";
    case EventKind::kDuplicateSuppressed:
      return "duplicate-suppressed";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRecovery:
      return "recovery";
    case EventKind::kGovernorDemote:
      return "governor-demote";
    case EventKind::kGovernorPromote:
      return "governor-promote";
  }
  return "?";
}

const char* to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kValueFault:
      return "value-fault";
    case AbortReason::kTimeFault:
      return "time-fault";
    case AbortReason::kTimeout:
      return "timeout";
    case AbortReason::kCascade:
      return "cascade";
    case AbortReason::kCrash:
      return "crash";
  }
  return "?";
}

const char* to_string(ControlType c) {
  switch (c) {
    case ControlType::kNone:
      return "none";
    case ControlType::kCommit:
      return "COMMIT";
    case ControlType::kAbort:
      return "ABORT";
    case ControlType::kPrecedence:
      return "PRECEDENCE";
  }
  return "?";
}

std::string to_string(const Event& e) {
  std::ostringstream os;
  os << "t=" << e.when << " P" << e.process << " " << to_string(e.kind);
  if (e.guess.valid()) os << " " << e.guess.to_string();
  if (e.reason != AbortReason::kNone) os << " reason=" << to_string(e.reason);
  if (e.control != ControlType::kNone) os << " " << to_string(e.control);
  if (!e.detail.empty()) os << " " << e.detail;
  return os.str();
}

}  // namespace ocsp::obs
