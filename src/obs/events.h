// Typed event taxonomy of the observability layer.
//
// Every protocol-relevant occurrence — interval lifecycle, guess lifecycle,
// control traffic, CDG mutations, external-output buffering, message
// sends/deliveries — is recorded as a structured Event instead of a
// free-form timeline label.  The taxonomy is deliberately flat: one struct
// with kind-specific fields, so the recorder stays a plain vector and
// exporters can pattern-match on `kind` without a visitor hierarchy.
//
// The obs layer depends only on util/sim (ids, virtual time); guesses are
// mirrored as GuessRef rather than spec::GuessId so the speculation layer
// can depend on obs without a cycle.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "util/ids.h"

namespace ocsp::obs {

enum class EventKind : std::uint8_t {
  kIntervalBegin,      ///< a fork opened a new speculative interval (S2)
  kFork,               ///< fork executed (speculative or sequential)
  kJoin,               ///< left thread reached its join
  kCommit,             ///< a guess committed (recorded by its owner)
  kAbort,              ///< a guess aborted; `reason` says why
  kRollback,           ///< a rollback restored an earlier state index
  kGuessMade,          ///< predictor produced guessed values at a fork
  kGuessVerified,      ///< join found every guessed value correct
  kGuessFailed,        ///< join found at least one guessed value wrong
  kControlSent,        ///< COMMIT/ABORT/PRECEDENCE distribution initiated
  kControlReceived,    ///< control message processed at a receiver
  kCdgEdgeAdded,       ///< PRECEDENCE added an edge to a local CDG
  kCdgCycleDetected,   ///< a CDG edge closed a cycle (time fault)
  kExternalBuffered,   ///< external output held back by a non-empty guard
  kExternalReleased,   ///< external output released (committed)
  kExternalDiscarded,  ///< buffered external output destroyed by an abort
  kMsgSent,            ///< network accepted a message for delivery
  kMsgDelivered,       ///< network delivered a message
  kCheckpointTaken,    ///< state snapshot stored; a = bytes materialized,
                       ///< b = bytes structurally shared (COW)
  kComputeDone,        ///< a Compute statement finished; a = duration (ns)
  kWorkDiscarded,      ///< an abort/rollback threw away prior compute;
                       ///< a = discarded ns, guess = killed thread's own
                       ///< guess, guess_from = the aborted guess that
                       ///< triggered the kill
  kSafeForkElided,     ///< SAFE fast-path fork: guess/guard/checkpoint
                       ///< machinery skipped; a = state bytes not snapshotted
  kThreadBlocked,      ///< program body finished but the guard is non-empty
                       ///< (phase kDoneWaitGuard)
  kThreadResolved,     ///< a kThreadBlocked thread's guard emptied
  kProcessCompleted,   ///< the process ran to completion
  kCommuteCommit,      ///< join forgave a guess mismatch under commute
                       ///< verification (variables dead / boolean-only in
                       ///< the right thread); a = variables forgiven
  kFaultInjected,      ///< fault plan hit a message; a = 1 drop / 2 corrupt
                       ///< / 3 duplicate, detail = cause
  kRetransmit,         ///< reliable transport re-sent an unacked frame;
                       ///< a = attempt number
  kDuplicateSuppressed,  ///< receiver forgave a duplicate frame (dedup)
  kCrash,              ///< fault plan crashed this process
  kRecovery,           ///< crashed process restarted; a = own guesses
                       ///< aborted to restore the committed state
  kGovernorDemote,     ///< abort-rate breaker demoted a fork site to
                       ///< sequential execution; detail = site
  kGovernorPromote,    ///< breaker re-enabled speculation at a site
};
inline constexpr std::size_t kEventKindCount = 33;

enum class AbortReason : std::uint8_t {
  kNone,
  kValueFault,  ///< verifier found a wrong guessed value (4.2.5)
  kTimeFault,   ///< happens-before cycle: self-check, CDG cycle, or
                ///< future-thread rule (4.2.3, 4.2.8)
  kTimeout,     ///< liveness timeout on the left thread or join wait (3.3)
  kCascade,     ///< dependency on a remotely/locally aborted guess (4.2.7)
  kCrash,       ///< process crash discarded the uncommitted speculation
};
inline constexpr std::size_t kAbortReasonCount = 6;

enum class ControlType : std::uint8_t { kNone, kCommit, kAbort, kPrecedence };

/// Owner-qualified guess reference; mirrors spec::GuessId.
struct GuessRef {
  ProcessId owner = kNoProcess;
  std::uint32_t incarnation = 0;
  std::uint32_t index = 0;

  auto operator<=>(const GuessRef&) const = default;
  bool valid() const { return owner != kNoProcess; }
  std::string to_string() const;
};

struct Event {
  EventKind kind = EventKind::kIntervalBegin;
  sim::Time when = 0;
  /// Optional wall-clock timestamp (ns since the run started); -1 when the
  /// run is purely virtual.  Real executors (exec::ThreadedRuntime) stamp
  /// it so the same profiler answers simulator and hardware runs.
  std::int64_t wall_ns = -1;
  ProcessId process = kNoProcess;  ///< recording process
  ProcessId peer = kNoProcess;     ///< other endpoint (messages)
  std::uint32_t thread = 0;        ///< thread index within `process`
  std::uint32_t interval = 0;      ///< interval within `thread`
  std::uint32_t incarnation = 0;   ///< recording process's incarnation
  GuessRef guess;                  ///< primary subject guess
  GuessRef guess_from;             ///< CDG edge source (kCdgEdgeAdded)
  AbortReason reason = AbortReason::kNone;
  ControlType control = ControlType::kNone;
  MsgId msg_id = 0;
  std::uint64_t a = 0;  ///< kind-specific: fan-out, threads killed, ...
  std::uint64_t b = 0;  ///< kind-specific: messages requeued, dwell ns, ...
  std::string detail;   ///< fork site, message description, fine reason
};

const char* to_string(EventKind k);
const char* to_string(AbortReason r);
const char* to_string(ControlType c);
std::string to_string(const Event& e);

}  // namespace ocsp::obs
