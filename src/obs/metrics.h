// MetricsRegistry: named counters, gauges, accumulators, and histograms.
//
// Each SpeculativeProcess populates a registry while it runs (histograms
// that need per-event resolution) and exports its SpecStats counters into
// it on demand; Runtime::metrics() merges the per-process registries plus
// kernel- and network-level gauges into one run-wide view.  merge() is the
// per-process→global step: counters add, accumulators combine (Welford),
// histograms add bucketwise (same-shape CHECKed), gauges are derived
// values recomputed after merging and are therefore not merged.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.h"
#include "util/stats.h"

namespace ocsp::obs {

class MetricsRegistry {
 public:
  /// Get-or-create a counter.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  std::uint64_t counter_or(const std::string& name,
                           std::uint64_t fallback = 0) const;

  /// Gauges hold derived values (ratios, peaks); recompute after merge().
  double& gauge(const std::string& name) { return gauges_[name]; }

  util::Accumulator& accumulator(const std::string& name) {
    return accumulators_[name];
  }

  /// Get-or-create a fixed-shape histogram; CHECKs the shape matches when
  /// the name already exists.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);
  const util::Histogram* find_histogram(const std::string& name) const;

  void merge(const MetricsRegistry& other);

  /// {"counters":{...},"gauges":{...},"accumulators":{...},
  ///  "histograms":{...}} — the compact metrics-snapshot format.
  void write_json(util::JsonWriter& w) const;
  std::string to_json() const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, util::Accumulator>& accumulators() const {
    return accumulators_;
  }
  const std::map<std::string, util::Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, util::Accumulator> accumulators_;
  std::map<std::string, util::Histogram> histograms_;
};

// Canonical histogram shapes.  Every producer must create these through the
// helpers so per-process instances stay mergeable.
inline util::Histogram& rollback_distance_hist(MetricsRegistry& m) {
  return m.histogram("rollback_distance", 0, 32, 32);
}
inline util::Histogram& speculation_depth_hist(MetricsRegistry& m) {
  return m.histogram("speculation_depth", 0, 32, 32);
}
inline util::Histogram& abort_cascade_depth_hist(MetricsRegistry& m) {
  return m.histogram("abort_cascade_depth", 0, 32, 32);
}
inline util::Histogram& control_fanout_hist(MetricsRegistry& m) {
  return m.histogram("control_fanout", 0, 32, 32);
}
/// External-output dwell time between buffering and release, microseconds.
inline util::Histogram& external_dwell_hist(MetricsRegistry& m) {
  return m.histogram("external_dwell_us", 0, 100000, 50);
}

/// Recompute the derived checkpoint-sharing gauge — the fraction of
/// state-copy bytes that were structurally shared instead of materialized —
/// from the (merged) byte counters.  Gauges are not merged, so every
/// merge point must call this after combining counters.
inline void update_sharing_ratio_gauge(MetricsRegistry& m) {
  const std::uint64_t copied = m.counter_or("checkpoint_bytes_copied");
  const std::uint64_t shared = m.counter_or("checkpoint_bytes_shared");
  if (copied + shared > 0) {
    m.gauge("checkpoint_sharing_ratio") =
        static_cast<double>(shared) / static_cast<double>(copied + shared);
  }
}

}  // namespace ocsp::obs
