// ocsp-prof-v1: the machine-readable form of the causal profile.
//
// One document per profiled run: the time-accounting partition (global and
// per process), the critical path, and the abort-attribution scorecards.
// Schema changes bump kProfSchemaVersion; consumers (bench_diff, CI's JSON
// check) key on {"schema": "ocsp-prof-v1", "schema_version": N}.
#pragma once

#include <string>

#include "obs/attribution.h"
#include "obs/profile.h"
#include "util/json.h"

namespace ocsp::obs {

inline constexpr int kProfSchemaVersion = 1;

/// Write one profile object (schema envelope included) to `w`.
void write_prof_json(const RunProfile& profile,
                     const AttributionReport& attribution,
                     util::JsonWriter& w);

std::string prof_json(const RunProfile& profile,
                      const AttributionReport& attribution);

}  // namespace ocsp::obs
