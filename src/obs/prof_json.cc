#include "obs/prof_json.h"

namespace ocsp::obs {

namespace {

void write_breakdown(const TimeBreakdown& bd, util::JsonWriter& w) {
  w.begin_object();
  for (std::size_t i = 0; i < kTimeCategoryCount; ++i) {
    const auto c = static_cast<TimeCategory>(i);
    w.key(std::string(to_string(c)) + "_ns").value(bd[c]);
  }
  w.key("total_ns").value(bd.total());
  w.end_object();
}

}  // namespace

void write_prof_json(const RunProfile& profile,
                     const AttributionReport& attribution,
                     util::JsonWriter& w) {
  w.begin_object();
  w.key("schema").value("ocsp-prof-v1");
  w.key("schema_version").value(kProfSchemaVersion);
  w.key("clock").value(profile.dual_clock ? "wall" : "virtual");

  w.key("time_accounting").begin_object();
  w.key("run_span_ns").value(profile.run_span_ns);
  w.key("total_process_ns").value(profile.total_process_ns);
  w.key("unmatched_wasted_ns").value(profile.unmatched_wasted_ns);
  w.key("global");
  write_breakdown(profile.global, w);
  w.key("per_process").begin_array();
  for (const auto& p : profile.per_process) {
    w.begin_object();
    w.key("process").value(p.name);
    w.key("id").value(static_cast<std::uint64_t>(p.process));
    w.key("span_ns").value(p.span_ns);
    w.key("breakdown");
    write_breakdown(p.breakdown, w);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const auto& cp = profile.critical_path;
  w.key("critical_path").begin_object();
  w.key("length_ns").value(cp.length_ns);
  w.key("causally_valid").value(cp.causally_valid);
  w.key("breakdown");
  write_breakdown(cp.breakdown, w);
  if (cp.length_ns > 0) {
    w.key("speedup_bound")
        .value(static_cast<double>(profile.global[TimeCategory::kUseful]) /
               static_cast<double>(cp.length_ns));
  }
  w.key("steps").begin_array();
  for (const auto& s : cp.steps) {
    w.begin_object();
    w.key("process").value(static_cast<std::uint64_t>(s.process));
    w.key("from_ns").value(s.from_ns);
    w.key("to_ns").value(s.to_ns);
    w.key("via_message").value(s.via_message);
    if (s.via_message) w.key("msg_id").value(s.msg_id);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("abort_attribution").begin_object();
  w.key("abort_events").value(attribution.abort_events);
  w.key("root_abort_events").value(attribution.root_abort_events);
  w.key("cascade_abort_events").value(attribution.cascade_abort_events);
  w.key("unattributed_roots").value(attribution.unattributed_roots);
  w.key("unattributed_cascades").value(attribution.unattributed_cascades);
  w.key("wasted_total_ns").value(attribution.wasted_total_ns);
  w.key("unattributed_wasted_ns").value(attribution.unattributed_wasted_ns);
  w.key("liveness").begin_object();
  w.key("retransmissions").value(attribution.retransmissions);
  w.key("duplicates_suppressed").value(attribution.duplicates_suppressed);
  w.key("faults_injected").value(attribution.faults_injected);
  w.key("crashes").value(attribution.crashes);
  w.key("recoveries").value(attribution.recoveries);
  w.end_object();
  w.key("sites").begin_array();
  for (const auto& s : attribution.sites) {
    w.begin_object();
    w.key("process").value(s.name);
    w.key("site").value(s.site);
    w.key("forks").value(s.forks);
    w.key("speculative").value(s.speculative);
    w.key("safe_elided").value(s.safe_elided);
    w.key("sequential").value(s.sequential);
    w.key("hits").value(s.hits);
    w.key("misses").value(s.misses);
    w.key("commits").value(s.commits);
    w.key("commute_commits").value(s.commute_commits);
    w.key("aborts_root").value(s.aborts_root);
    w.key("aborts_timeout").value(s.aborts_timeout);
    w.key("aborts_caused").value(s.aborts_caused);
    w.key("governor_demotions").value(s.governor_demotions);
    w.key("governor_promotions").value(s.governor_promotions);
    w.key("governor_demoted").value(s.governor_demoted);
    w.key("wasted_downstream_ns").value(s.wasted_downstream_ns);
    w.key("saved_ns").value(s.saved_ns);
    w.key("elided_bytes").value(s.elided_bytes);
    w.key("net_ns").value(s.net_ns());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
}

std::string prof_json(const RunProfile& profile,
                      const AttributionReport& attribution) {
  util::JsonWriter w;
  write_prof_json(profile, attribution, w);
  return w.str();
}

}  // namespace ocsp::obs
