// Bench regression gate: compare two ocsp-bench-v1 documents.
//
// The committed BENCH_*.json baselines pin the protocol's *virtual-time*
// behaviour (counters, completion times, histogram shapes), which is fully
// deterministic — so the default comparison is exact for integers and
// near-exact (1e-9 relative) for floats.  google-benchmark repeats entries
// under the same name a nondeterministic number of times, so entries are
// deduplicated by name before comparing; wall-clock fields never enter the
// documents in the first place.
//
// Per-metric tolerance bands (--tol name=rel on the CLI) loosen individual
// metrics when a workload is intentionally noisy, without giving up the
// exact default for everything else.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace ocsp::obs {

struct BenchDiffOptions {
  /// Relative tolerance for floating-point metrics with no override.
  double float_rel_tol = 1e-9;
  /// Per-metric relative tolerance overrides.  Keys match either the full
  /// metric path ("counters/net_bytes_sent") or the bare leaf name
  /// ("net_bytes_sent", "virt_ms").
  std::map<std::string, double> metric_rel_tol;
};

struct BenchDiffResult {
  /// One line per regressed/changed metric; empty means the gate passes.
  std::vector<std::string> mismatches;
  /// Informational notes (deduplicated entries, ignored fields).
  std::vector<std::string> notes;
  bool ok() const { return mismatches.empty(); }
};

/// Compare `fresh` against `baseline`.  Both must be parsed ocsp-bench-v1
/// documents; a malformed document produces a mismatch entry rather than a
/// crash.  The "binary" field is ignored (paths differ across checkouts).
BenchDiffResult diff_bench_json(const util::JsonValue& baseline,
                                const util::JsonValue& fresh,
                                const BenchDiffOptions& options = {});

}  // namespace ocsp::obs
