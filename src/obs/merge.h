// Merging per-shard RunRecorder streams into one run-wide event log.
//
// The parallel executor gives every shard its own recorder so workers never
// contend on a shared sink; exporters and the profiler want one stream.
#pragma once

#include <memory>
#include <vector>

#include "obs/recorder.h"

namespace ocsp::obs {

/// K-way stable merge of per-part event streams by (when, part index):
/// virtual-time order first, part index for same-time ties, and each part's
/// own recording order within equal keys.  Every part must already be
/// when-monotone (true of any recorder fed by one deterministic scheduler).
/// wall_ns stamps are copied verbatim — the merged recorder has no wall
/// clock installed — so dual-clock profiling works on the merged log
/// exactly as on a sequential run's.
std::shared_ptr<RunRecorder> merge_recorders(
    const std::vector<const RunRecorder*>& parts);

}  // namespace ocsp::obs
