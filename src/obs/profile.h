// Causal profiler, part 1: time accounting and critical-path extraction.
//
// build_profile() post-processes a RunRecorder stream into
//
//   (a) a time-accounting breakdown: every instant of every process's span
//       (first event .. last event) is classified into exactly one of five
//       categories — useful committed compute, wasted (later-discarded)
//       compute, rollback/restore cost, verification/control-protocol
//       overhead, or channel stall — so the per-process categories sum to
//       the span *exactly* and the global totals sum to the total virtual
//       process time.  "Where did the time go?" becomes a partition, not a
//       collection of overlapping counters.
//
//   (b) the critical path of the committed run: the longest dependency
//       chain through program order, fork-spawn edges, and message
//       send->deliver edges, with its own per-category breakdown.  A
//       committed speculative join adds *no* left->right edge — that
//       missing edge is the paper's win — so the path length is an honest
//       lower bound on completion time and useful/length an honest upper
//       bound on achievable speedup.
//
// All accounting runs on the event `when` clock: virtual nanoseconds on
// simulator runs, wall nanoseconds on dual-clock executors
// (exec::ThreadedRuntime), so the same profiler answers both.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "util/ids.h"

namespace ocsp::obs {

enum class TimeCategory : std::uint8_t {
  kUseful,    ///< compute that survived to commit
  kWasted,    ///< compute discarded by an abort or rollback
  kRollback,  ///< state restoration; the simulator's cost model charges
              ///< zero virtual time for it, so this is nonzero only on
              ///< wall-clock (dual-clock) runs
  kVerify,    ///< verification / control-protocol wait (guard resolution,
              ///< in-doubt join windows)
  kStall,     ///< waiting on a channel (receive/reply) or idle
};
inline constexpr std::size_t kTimeCategoryCount = 5;
const char* to_string(TimeCategory c);

struct TimeBreakdown {
  std::array<std::int64_t, kTimeCategoryCount> ns{};

  std::int64_t& operator[](TimeCategory c) {
    return ns[static_cast<std::size_t>(c)];
  }
  std::int64_t operator[](TimeCategory c) const {
    return ns[static_cast<std::size_t>(c)];
  }
  std::int64_t total() const;
  void add(const TimeBreakdown& other);
};

struct ProcessTimeProfile {
  ProcessId process = kNoProcess;
  std::string name;
  /// first event .. last event of this process.
  std::int64_t span_ns = 0;
  /// Exact partition of the span: breakdown.total() == span_ns.
  TimeBreakdown breakdown;
};

struct CriticalPathStep {
  ProcessId process = kNoProcess;
  std::uint32_t thread = 0;
  std::int64_t from_ns = 0;
  std::int64_t to_ns = 0;
  /// Step entered through a message edge (send at `from_ns` on the sender,
  /// delivery at `to_ns` here); the hop's latency is accounted as stall.
  bool via_message = false;
  MsgId msg_id = 0;
};

struct CriticalPath {
  std::int64_t length_ns = 0;
  /// Exact partition of the path: breakdown.total() == length_ns.
  TimeBreakdown breakdown;
  std::vector<CriticalPathStep> steps;
  /// Vector-clock check over the extracted steps: every adjacent pair is
  /// causally ordered (same-process program order or happens-before across
  /// a message hop).  False means the extraction itself is broken.
  bool causally_valid = false;
};

struct RunProfile {
  bool dual_clock = false;
  /// First event .. last event across all processes.
  std::int64_t run_span_ns = 0;
  /// Sum of per-process spans ("total virtual process time").
  std::int64_t total_process_ns = 0;
  /// Sum of the per-process breakdowns; global.total() == total_process_ns.
  TimeBreakdown global;
  std::vector<ProcessTimeProfile> per_process;
  CriticalPath critical_path;
  /// kWorkDiscarded nanoseconds that could not be matched to recorded
  /// compute segments (replay-reconstructed compute has no kComputeDone of
  /// its own); should be 0 on checkpoint-strategy runs.
  std::int64_t unmatched_wasted_ns = 0;
};

/// Post-process a recorded run.  `process_names` maps ProcessId to a
/// display name (ids beyond the vector render as "P<id>").
RunProfile build_profile(const RunRecorder& recorder,
                         const std::vector<std::string>& process_names);

/// Human-readable report: global + per-process breakdown table and the
/// critical-path summary.
std::string profile_table(const RunProfile& profile);

}  // namespace ocsp::obs
