#include "obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "util/table.h"

namespace ocsp::obs {

namespace {

struct GuessKey {
  ProcessId owner;
  std::uint32_t incarnation;
  std::uint32_t index;
  auto operator<=>(const GuessKey&) const = default;
};

GuessKey key_of(const GuessRef& g) {
  return GuessKey{g.owner, g.incarnation, g.index};
}

struct SiteKey {
  ProcessId process;
  std::string site;
  auto operator<=>(const SiteKey&) const = default;
};

/// Open speculation window: right-thread compute accumulates here until
/// the guess resolves (commit credits it, abort drops it — the abort's
/// cost is already counted through kWorkDiscarded).
struct SpecWindow {
  SiteKey site;
  ProcessId process;
  std::uint32_t thread;
  std::int64_t compute_ns = 0;
  /// Fork time, for SAFE windows: SAFE forks never verify and never
  /// abort, so the whole fork->join elapsed span is overlap won (the
  /// fan-out case overlaps channel waits, not compute).  Speculative
  /// windows credit compute only — their elapsed span includes the
  /// verification wait, which is overhead, not profit.
  std::int64_t opened_when = -1;
};

}  // namespace

AttributionReport build_attribution(
    const RunRecorder& recorder,
    const std::vector<std::string>& process_names) {
  AttributionReport out;
  std::map<SiteKey, SiteScorecard> sites;
  auto card = [&](ProcessId p, const std::string& site) -> SiteScorecard& {
    SiteKey key{p, site.empty() ? "(anonymous)" : site};
    auto [it, inserted] = sites.try_emplace(key);
    if (inserted) {
      it->second.process = p;
      it->second.name = static_cast<std::size_t>(p) < process_names.size()
                            ? process_names[p]
                            : "P" + std::to_string(p);
      it->second.site = key.site;
    }
    return it->second;
  };

  std::map<GuessKey, SiteKey> guess_site;  // guess -> originating fork site
  std::map<GuessKey, GuessKey> cause_of;   // cascade edge: aborted <- cause
  std::set<GuessKey> roots;                // guesses aborted at the root
  auto note_site = [&](const GuessRef& g, ProcessId p,
                       const std::string& site) {
    if (!g.valid()) return;
    guess_site.try_emplace(key_of(g),
                           SiteKey{p, site.empty() ? "(anonymous)" : site});
  };

  /// Resolve a guess to the root of its abort cascade (cycle-safe).
  auto root_of = [&](GuessKey g) {
    std::set<GuessKey> seen;
    while (seen.insert(g).second) {
      auto it = cause_of.find(g);
      if (it == cause_of.end()) break;
      g = it->second;
    }
    return g;
  };

  std::map<GuessKey, SpecWindow> spec_windows;
  // SAFE windows per (process, site), oldest first: the matching join
  // carries the site label but not the right thread's index.
  std::map<SiteKey, std::deque<SpecWindow>> safe_windows;

  // Pass 1: fork/guess bookkeeping and cascade edges.  Events are in
  // recording order, so a cause edge is always seen no later than any
  // event that needs it resolved — but cross-process cascade records
  // ("remote-abort") may precede the owner's own record, so attribution
  // runs in a second pass once every edge is known.
  for (const Event& e : recorder.events()) {
    switch (e.kind) {
      case EventKind::kFork: {
        SiteScorecard& c = card(e.process, e.detail);
        ++c.forks;
        if (e.a == 1) {
          ++c.speculative;
        } else if (e.a == 2) {
          ++c.safe_elided;
        } else {
          ++c.sequential;
        }
        note_site(e.guess, e.process, e.detail);
        break;
      }
      case EventKind::kGuessMade: {
        note_site(e.guess, e.process, e.detail);
        SpecWindow w;
        w.site = SiteKey{e.process,
                         e.detail.empty() ? "(anonymous)" : e.detail};
        w.process = e.process;
        w.thread = e.thread;
        spec_windows[key_of(e.guess)] = std::move(w);
        break;
      }
      case EventKind::kSafeForkElided: {
        SiteScorecard& c = card(e.process, e.detail);
        c.elided_bytes += e.a;
        SpecWindow w;
        w.site = SiteKey{e.process,
                         e.detail.empty() ? "(anonymous)" : e.detail};
        w.process = e.process;
        w.thread = e.thread;
        w.opened_when = static_cast<std::int64_t>(e.when);
        safe_windows[w.site].push_back(std::move(w));
        break;
      }
      case EventKind::kComputeDone: {
        for (auto& [g, w] : spec_windows) {
          if (w.process == e.process && w.thread == e.thread) {
            w.compute_ns += static_cast<std::int64_t>(e.a);
          }
        }
        for (auto& [sk, q] : safe_windows) {
          if (sk.process != e.process) continue;
          for (auto& w : q) {
            if (w.thread == e.thread) {
              w.compute_ns += static_cast<std::int64_t>(e.a);
            }
          }
        }
        break;
      }
      case EventKind::kGuessVerified:
        ++card(e.process, e.detail).hits;
        break;
      case EventKind::kGuessFailed:
        ++card(e.process, e.detail).misses;
        break;
      case EventKind::kCommuteCommit:
        ++card(e.process, e.detail).commute_commits;
        break;
      case EventKind::kCommit: {
        ++card(e.process, e.detail).commits;
        auto it = spec_windows.find(key_of(e.guess));
        if (it != spec_windows.end()) {
          auto sc = sites.find(it->second.site);
          if (sc != sites.end()) sc->second.saved_ns += it->second.compute_ns;
          spec_windows.erase(it);
        }
        break;
      }
      case EventKind::kJoin: {
        // A SAFE join carries the site but no guess; close the oldest open
        // SAFE window of that (process, site) and credit its overlap.
        if (!e.guess.valid() && e.detail != "sequential") {
          SiteKey key{e.process, e.detail};
          auto q = safe_windows.find(key);
          if (q != safe_windows.end() && !q->second.empty()) {
            const SpecWindow& w = q->second.front();
            auto sc = sites.find(key);
            if (sc != sites.end()) {
              const std::int64_t elapsed =
                  w.opened_when >= 0
                      ? static_cast<std::int64_t>(e.when) - w.opened_when
                      : w.compute_ns;
              sc->second.saved_ns += std::max(elapsed, w.compute_ns);
            }
            q->second.pop_front();
          }
        }
        break;
      }
      case EventKind::kAbort: {
        if (e.reason == AbortReason::kCascade) {
          if (e.guess_from.valid()) {
            cause_of.try_emplace(key_of(e.guess), key_of(e.guess_from));
          }
        } else {
          roots.insert(key_of(e.guess));
        }
        // The guess's speculative overlap never materializes.
        spec_windows.erase(key_of(e.guess));
        break;
      }
      case EventKind::kGovernorDemote: {
        SiteScorecard& c = card(e.process, e.detail);
        ++c.governor_demotions;
        c.governor_demoted = true;
        break;
      }
      case EventKind::kGovernorPromote: {
        SiteScorecard& c = card(e.process, e.detail);
        ++c.governor_promotions;
        c.governor_demoted = false;
        break;
      }
      case EventKind::kRetransmit:
        ++out.retransmissions;
        break;
      case EventKind::kDuplicateSuppressed:
        ++out.duplicates_suppressed;
        break;
      case EventKind::kFaultInjected:
        ++out.faults_injected;
        break;
      case EventKind::kCrash:
        ++out.crashes;
        break;
      case EventKind::kRecovery:
        ++out.recoveries;
        break;
      default:
        break;
    }
  }
  // Windows still open at end of run: the overlap happened even if the
  // resolution never arrived (run cut off at the deadline); credit it.
  for (const auto& [g, w] : spec_windows) {
    auto sc = sites.find(w.site);
    if (sc != sites.end()) sc->second.saved_ns += w.compute_ns;
  }
  for (const auto& [sk, q] : safe_windows) {
    auto sc = sites.find(sk);
    if (sc == sites.end()) continue;
    for (const auto& w : q) sc->second.saved_ns += w.compute_ns;
  }

  // Pass 2: attribute every abort event and every discarded nanosecond.
  auto site_of_root = [&](GuessKey root) -> SiteScorecard* {
    auto it = guess_site.find(root);
    if (it == guess_site.end()) return nullptr;
    auto sc = sites.find(it->second);
    return sc == sites.end() ? nullptr : &sc->second;
  };
  for (const Event& e : recorder.events()) {
    if (e.kind == EventKind::kAbort) {
      ++out.abort_events;
      if (e.reason == AbortReason::kCascade) {
        ++out.cascade_abort_events;
        SiteScorecard* sc = site_of_root(root_of(key_of(e.guess)));
        if (sc != nullptr) {
          ++sc->aborts_caused;
        } else {
          ++out.unattributed_cascades;
        }
      } else {
        ++out.root_abort_events;
        SiteScorecard* sc = site_of_root(key_of(e.guess));
        if (sc != nullptr) {
          ++sc->aborts_root;
          if (e.reason == AbortReason::kTimeout) ++sc->aborts_timeout;
        } else {
          ++out.unattributed_roots;
        }
      }
    } else if (e.kind == EventKind::kWorkDiscarded) {
      const std::int64_t ns = static_cast<std::int64_t>(e.a);
      out.wasted_total_ns += ns;
      SiteScorecard* sc = nullptr;
      if (e.guess_from.valid()) {
        sc = site_of_root(root_of(key_of(e.guess_from)));
      }
      if (sc == nullptr && e.guess.valid()) {
        sc = site_of_root(root_of(key_of(e.guess)));
      }
      if (sc != nullptr) {
        sc->wasted_downstream_ns += ns;
      } else {
        out.unattributed_wasted_ns += ns;
      }
    }
  }

  out.sites.reserve(sites.size());
  for (auto& [key, sc] : sites) out.sites.push_back(std::move(sc));
  std::sort(out.sites.begin(), out.sites.end(),
            [](const SiteScorecard& a, const SiteScorecard& b) {
              if (a.net_ns() != b.net_ns()) return a.net_ns() > b.net_ns();
              if (a.process != b.process) return a.process < b.process;
              return a.site < b.site;
            });
  return out;
}

std::string attribution_table(const AttributionReport& report) {
  auto ms = [](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return std::string(buf);
  };
  util::Table t({"process", "site", "forks", "spec", "safe", "seq", "hits",
                 "misses", "forgiven", "roots", "t/o", "caused", "gov",
                 "wasted_ms", "saved_ms", "net_ms"});
  for (const auto& s : report.sites) {
    // Governor column: "<demotions>d/<promotions>p", "!" while demoted.
    std::string gov = "-";
    if (s.governor_demotions > 0 || s.governor_promotions > 0) {
      gov = std::to_string(s.governor_demotions) + "d/" +
            std::to_string(s.governor_promotions) + "p";
      if (s.governor_demoted) gov += "!";
    }
    t.row(s.name, s.site, s.forks, s.speculative, s.safe_elided,
          s.sequential, s.hits, s.misses, s.commute_commits, s.aborts_root,
          s.aborts_timeout, s.aborts_caused, gov,
          ms(s.wasted_downstream_ns), ms(s.saved_ns), ms(s.net_ns()));
  }
  std::string out = "Speculation scorecards (best net profit first):\n" +
                    t.to_string();
  out += "Aborts: " + std::to_string(report.abort_events) + " events (" +
         std::to_string(report.root_abort_events) + " roots, " +
         std::to_string(report.cascade_abort_events) + " cascade";
  if (report.unattributed_cascades > 0 || report.unattributed_roots > 0) {
    out += ", " +
           std::to_string(report.unattributed_roots +
                          report.unattributed_cascades) +
           " unattributed";
  }
  out += "); wasted " + ms(report.wasted_total_ns) + " ms";
  if (report.unattributed_wasted_ns > 0) {
    out += " (" + ms(report.unattributed_wasted_ns) + " ms unattributed)";
  }
  out += "\n";
  if (report.retransmissions > 0 || report.duplicates_suppressed > 0 ||
      report.faults_injected > 0 || report.crashes > 0) {
    out += "Liveness: " + std::to_string(report.faults_injected) +
           " faults injected, " + std::to_string(report.retransmissions) +
           " retransmissions, " +
           std::to_string(report.duplicates_suppressed) +
           " duplicates suppressed, " + std::to_string(report.crashes) +
           " crashes (" + std::to_string(report.recoveries) +
           " recoveries)\n";
  }
  return out;
}

}  // namespace ocsp::obs
