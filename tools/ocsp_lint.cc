// ocsp_lint — static interference analysis over CSP programs.
//
// Classifies every fork site (declared hint or already-inserted fork) of
// the built-in workloads as SAFE / SPECULATIVE / REJECT and prints the
// findings the classifier produced along the way.  Exit status is nonzero
// iff any linted program carries an error-severity finding, so the binary
// doubles as a CI gate.
//
// Usage:
//   ocsp_lint                    lint every built-in workload
//   ocsp_lint --program=NAME     lint one program (including the
//                                deliberately broken `broken_fixture`)
//   ocsp_lint --list             list the available program names
//   ocsp_lint --json=PATH        additionally write a machine-readable
//                                report ({"schema":"ocsp-lint-v2",...})
//   ocsp_lint --rerun-after-transforms
//                                build each workload with its transforms
//                                applied (fork insertion / call streaming),
//                                run transform::reclassify with the
//                                cross-process commutativity context, and
//                                lint the result — elidable-site findings
//                                become applied upgrades here
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/classify.h"
#include "analysis/commute.h"
#include "core/workloads.h"
#include "csp/program.h"
#include "transform/transform.h"
#include "util/json.h"

namespace ocsp {
namespace {

using csp::Value;

struct LintTarget {
  std::string name;
  baseline::Scenario scenario;
  bool fixture = false;  ///< excluded from the default (CI-clean) run
};

/// A program exercising every refusal the classifier knows: a hint whose
/// halves are certain to interfere, an automatic hint over an opaque native
/// statement, a span wider than the statements before it, and a hint with
/// no enclosing sequence position.
csp::StmtPtr broken_fixture() {
  using namespace csp;
  return seq({
      call("S", "Op", {lit(Value(1))}, "a"),
      hint({}, "same-target"),  // S2 below also must-calls S
      call("S", "Op", {lit(Value(2))}, "b"),
      native("mystery", [](Env&, util::Rng&) {}),
      hint({}, "opaque"),  // automatic mode cannot see through the native
      call("T", "Op", {lit(Value(3))}, "c"),
      hint({}, "too-wide", /*span=*/99),
      if_(lit(Value(true)), hint({}, "misplaced")),
      print(var("c")),
  });
}

/// `transformed` selects the post-transform trees: workloads that lint
/// their declared hints by default (db_fs, safe_fanout) expand them, and
/// the commute registry streams its calls.
std::vector<LintTarget> registry(bool transformed) {
  std::vector<LintTarget> out;

  core::PutLineParams putline;
  out.push_back({"putline", core::putline_scenario(putline)});

  core::DbFsParams dbfs;
  dbfs.transform = transformed;  // default: lint the declared hint
  out.push_back({"db_fs", core::db_fs_scenario(dbfs)});

  core::PipelineParams pipeline;
  out.push_back({"pipeline", core::pipeline_scenario(pipeline)});

  core::WriteThroughParams wt;
  out.push_back({"write_through", core::write_through_scenario(wt)});

  core::MutualParams mutual;
  out.push_back({"mutual", core::mutual_scenario(mutual)});

  core::SharedServerParams shared;
  out.push_back({"shared_server", core::shared_server_scenario(shared)});

  core::SafeFanoutParams fanout;
  fanout.transform = transformed;
  out.push_back({"safe_fanout", core::safe_fanout_scenario(fanout)});

  // The reclassify pass is what the rerun mode demonstrates, so the
  // scenario builder must not have applied it already.
  core::CommuteRegistryParams reg;
  reg.stream = transformed;
  reg.reclassify = false;
  out.push_back({"commute_registry", core::commute_registry_scenario(reg)});

  core::CommuteRegistryParams abelian = reg;
  abelian.mutate_ops = false;
  out.push_back({"commute_registry_abelian",
                 core::commute_registry_scenario(abelian)});

  baseline::Scenario broken;
  broken.add("X", broken_fixture());
  out.push_back({"broken_fixture", std::move(broken), /*fixture=*/true});
  return out;
}

int run(int argc, char** argv) {
  bool list = false;
  bool rerun = false;
  std::string only;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--rerun-after-transforms") {
      rerun = true;
    } else if (arg.rfind("--program=", 0) == 0) {
      only = arg.substr(std::strlen("--program="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ocsp_lint [--list] [--program=NAME] "
                  "[--json=PATH] [--rerun-after-transforms]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ocsp_lint: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<LintTarget> targets = registry(rerun);
  if (list) {
    for (const auto& t : targets) {
      std::printf("%s%s\n", t.name.c_str(),
                  t.fixture ? " (fixture, lint explicitly)" : "");
    }
    return 0;
  }

  std::vector<analysis::ProgramReport> reports;
  bool found = only.empty();
  for (const auto& t : targets) {
    if (only.empty() ? t.fixture : t.name != only) continue;
    found = true;
    for (const auto& p : t.scenario.processes) {
      csp::StmtPtr program = p.program;
      analysis::CommuteContext ctx;
      std::vector<analysis::Finding> applied;
      if (rerun) {
        // Reclassify with the cross-process context, then lint what the
        // runtime would actually execute.
        ctx = core::scenario_commute_context(t.scenario, p.name);
        transform::ReclassifyResult rr =
            transform::reclassify(program, {&ctx});
        program = rr.program;
        applied = std::move(rr.findings);
      }
      analysis::ProgramReport rep = analysis::analyze_program(
          program, t.name + "/" + p.name, rerun ? &ctx : nullptr);
      rep.findings.insert(rep.findings.end(),
                          std::make_move_iterator(applied.begin()),
                          std::make_move_iterator(applied.end()));
      // Processes without a single fork site (plain native services) have
      // nothing to report; keep the output focused on the clients.
      if (rep.sites.empty() && rep.findings.empty()) continue;
      reports.push_back(std::move(rep));
    }
  }
  if (!found) {
    std::fprintf(stderr, "ocsp_lint: no program named %s (try --list)\n",
                 only.c_str());
    return 2;
  }

  bool errors = false;
  for (const auto& rep : reports) {
    std::printf("%s", rep.to_text().c_str());
    errors |= rep.has_errors();
  }

  if (!json_path.empty()) {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("ocsp-lint-v2");
    w.key("rerun_after_transforms").value(rerun);
    w.key("errors").value(errors);
    w.key("programs").begin_array();
    for (const auto& rep : reports) rep.write_json(w);
    w.end_array();
    w.end_object();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ocsp_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    const std::string text = w.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  return errors ? 1 : 0;
}

}  // namespace
}  // namespace ocsp

int main(int argc, char** argv) { return ocsp::run(argc, argv); }
