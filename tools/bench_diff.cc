// bench_diff: regression gate over committed ocsp-bench-v1 baselines.
//
// Usage:
//   bench_diff [--tol metric=rel]... baseline.json fresh.json
//
// Exit codes: 0 metrics match within tolerance, 1 regression/mismatch,
// 2 usage or I/O error.  The default comparison is exact for integer
// metrics (the simulated protocol is deterministic); `--tol` loosens a
// single metric by name ("net_bytes_sent") or full path
// ("counters/net_bytes_sent") without widening anything else.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_compare.h"
#include "util/json.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tol metric=rel]... baseline.json fresh.json\n",
               argv0);
  return 2;
}

std::optional<ocsp::util::JsonValue> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = ocsp::util::json_parse(text.str());
  if (!doc) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  ocsp::obs::BenchDiffOptions options;
  std::string baseline_path;
  std::string fresh_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0]);
      const double rel = std::atof(spec.c_str() + eq + 1);
      if (rel < 0) return usage(argv[0]);
      options.metric_rel_tol[spec.substr(0, eq)] = rel;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) return usage(argv[0]);

  const auto baseline = load(baseline_path);
  const auto fresh = load(fresh_path);
  if (!baseline || !fresh) return 2;

  const auto result = ocsp::obs::diff_bench_json(*baseline, *fresh, options);
  for (const auto& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  if (result.ok()) {
    std::printf("bench_diff: %s matches %s\n", fresh_path.c_str(),
                baseline_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "bench_diff: %zu mismatch(es) vs %s\n",
               result.mismatches.size(), baseline_path.c_str());
  for (const auto& m : result.mismatches) {
    std::fprintf(stderr, "  %s\n", m.c_str());
  }
  return 1;
}
