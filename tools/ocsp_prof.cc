// ocsp_prof: run a canonical workload and print its causal profile.
//
// The profile answers three questions the raw counters cannot:
//   - where did the virtual time go?  (exact partition: useful / wasted /
//     rollback / verify / stall, per process and globally)
//   - what bounds the speedup?  (critical path of the committed run)
//   - which fork site pays for the aborts?  (per-site scorecards with the
//     cascade walked back to the originating mis-guess)
//
// Usage:
//   ocsp_prof [--workload=fig5|safe_fanout|putline|pipeline|dbfs|mutual
//                         |commute_registry|storm|chaos|parallel]
//             [--pessimistic] [--scale=N] [--seed=N] [--workers=N]
//             [--json[=path]]
//
// `storm` runs the abort-storm workload with the adaptive governor enabled
// (per-site scorecards show the demote/promote cycles); `chaos` runs
// putline under a seeded fault plan with the reliable transport on, so the
// liveness counters (faults injected, retransmissions, duplicates
// suppressed, crashes) are populated; `parallel` runs the compute-fanout
// workload on exec::ParallelRuntime with --workers threads — the profile is
// built from the merged dual-clock recorder, so the same report shows where
// both the virtual time and the real wall time went.
//
// Default output is the human-readable report; --json emits one
// ocsp-prof-v1 document (to stdout, or to the given path).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "exec/parallel.h"
#include "fault/plan.h"
#include "obs/attribution.h"
#include "obs/prof_json.h"
#include "obs/profile.h"

namespace {

struct Options {
  std::string workload = "fig5";
  bool speculation = true;
  bool json = false;
  std::string json_path;
  int scale = 1;
  std::uint64_t seed = 42;
  int workers = 4;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=fig5|safe_fanout|putline|pipeline|dbfs|mutual|commute_registry|storm|chaos|parallel]"
      " [--pessimistic] [--scale=N] [--seed=N] [--workers=N] [--json[=path]]\n",
      argv0);
  return 2;
}

ocsp::baseline::Scenario make_scenario(const Options& o) {
  using namespace ocsp;
  if (o.workload == "fig5") {
    core::WriteThroughParams p;
    p.force_fault = true;
    p.transactions = o.scale;
    p.net.latency = sim::microseconds(200);
    p.seed = o.seed;
    return core::write_through_scenario(p);
  }
  if (o.workload == "safe_fanout") {
    core::SafeFanoutParams p;
    p.servers = 4 * o.scale;
    p.net.latency = sim::microseconds(300);
    p.seed = o.seed;
    return core::safe_fanout_scenario(p);
  }
  if (o.workload == "putline") {
    core::PutLineParams p;
    p.lines = 8 * o.scale;
    p.seed = o.seed;
    return core::putline_scenario(p);
  }
  if (o.workload == "pipeline") {
    core::PipelineParams p;
    p.calls = 8 * o.scale;
    p.seed = o.seed;
    return core::pipeline_scenario(p);
  }
  if (o.workload == "dbfs") {
    core::DbFsParams p;
    p.transactions = 4 * o.scale;
    p.seed = o.seed;
    return core::db_fs_scenario(p);
  }
  if (o.workload == "commute_registry") {
    core::CommuteRegistryParams p;
    p.clients = 2 * o.scale;
    p.net.latency = sim::microseconds(300);
    p.seed = o.seed;
    return core::commute_registry_scenario(p);
  }
  if (o.workload == "mutual") {
    core::MutualParams p;
    p.crossing = true;
    p.seed = o.seed;
    return core::mutual_scenario(p);
  }
  if (o.workload == "storm") {
    core::AbortStormParams p;
    p.calls = 30 * o.scale;
    p.seed = o.seed;
    p.spec.governor_enabled = true;
    return core::abort_storm_scenario(p);
  }
  if (o.workload == "chaos") {
    core::PutLineParams p;
    p.lines = 8 * o.scale;
    p.seed = o.seed;
    p.spec.control_retry = true;
    auto scenario = core::putline_scenario(p);
    scenario.options.reliable.enabled = true;
    scenario.options.fault_plan =
        fault::make_chaos_plan(o.seed, {}, /*num_processes=*/2);
    return scenario;
  }
  std::fprintf(stderr, "ocsp_prof: unknown workload '%s'\n",
               o.workload.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--workload=")) {
      opts.workload = v;
    } else if (arg == "--pessimistic") {
      opts.speculation = false;
    } else if (const char* v2 = val("--scale=")) {
      opts.scale = std::atoi(v2);
      if (opts.scale < 1) opts.scale = 1;
    } else if (const char* v3 = val("--seed=")) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(v3));
    } else if (const char* v5 = val("--workers=")) {
      opts.workers = std::atoi(v5);
      if (opts.workers < 1) opts.workers = 1;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (const char* v4 = val("--json=")) {
      opts.json = true;
      opts.json_path = v4;
    } else {
      return usage(argv[0]);
    }
  }

  ocsp::baseline::RunResult result;
  if (opts.workload == "parallel") {
    // Compute-fanout on the sharded executor.  The merged recorder carries
    // both clocks, so the profile's wall column reflects the real threads.
    ocsp::core::ComputeFanoutParams p;
    p.pairs = 4 * opts.scale;
    p.miss_period = 4;
    p.seed = opts.seed;
    auto par = ocsp::exec::run_scenario_parallel(
        ocsp::core::compute_fanout_scenario(p), opts.workers,
        opts.speculation, /*compute_scale=*/2.0, ocsp::sim::kTimeNever,
        /*compute_sleep=*/true);
    result = std::move(par.result);
  } else {
    auto scenario = make_scenario(opts);
    result = ocsp::baseline::run_scenario(scenario, opts.speculation);
  }
  if (!result.recorder) {
    std::fprintf(stderr, "ocsp_prof: run produced no event recorder\n");
    return 1;
  }

  const auto profile =
      ocsp::obs::build_profile(*result.recorder, result.process_names);
  const auto attribution =
      ocsp::obs::build_attribution(*result.recorder, result.process_names);

  if (opts.json) {
    const std::string doc = ocsp::obs::prof_json(profile, attribution);
    if (opts.json_path.empty()) {
      std::printf("%s\n", doc.c_str());
    } else {
      std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "ocsp_prof: cannot write %s\n",
                     opts.json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("ocsp_prof: wrote %s\n", opts.json_path.c_str());
    }
    return 0;
  }

  std::printf("workload %s (%s, scale %d, seed %llu",
              opts.workload.c_str(),
              opts.speculation ? "optimistic" : "pessimistic", opts.scale,
              static_cast<unsigned long long>(opts.seed));
  if (opts.workload == "parallel") std::printf(", workers %d", opts.workers);
  std::printf(")\n\n");
  std::printf("%s\n", ocsp::obs::profile_table(profile).c_str());
  std::printf("%s", ocsp::obs::attribution_table(attribution).c_str());
  return 0;
}
