file(REMOVE_RECURSE
  "CMakeFiles/db_update.dir/db_update.cpp.o"
  "CMakeFiles/db_update.dir/db_update.cpp.o.d"
  "db_update"
  "db_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
