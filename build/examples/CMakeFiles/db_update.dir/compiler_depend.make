# Empty compiler generated dependencies file for db_update.
# This may be replaced when dependencies are built.
