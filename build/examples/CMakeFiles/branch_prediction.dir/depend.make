# Empty dependencies file for branch_prediction.
# This may be replaced when dependencies are built.
