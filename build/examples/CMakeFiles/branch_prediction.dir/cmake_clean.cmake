file(REMOVE_RECURSE
  "CMakeFiles/branch_prediction.dir/branch_prediction.cpp.o"
  "CMakeFiles/branch_prediction.dir/branch_prediction.cpp.o.d"
  "branch_prediction"
  "branch_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
