file(REMOVE_RECURSE
  "CMakeFiles/mutual_speculation.dir/mutual_speculation.cpp.o"
  "CMakeFiles/mutual_speculation.dir/mutual_speculation.cpp.o.d"
  "mutual_speculation"
  "mutual_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
