# Empty compiler generated dependencies file for mutual_speculation.
# This may be replaced when dependencies are built.
