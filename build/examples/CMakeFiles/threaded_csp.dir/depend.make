# Empty dependencies file for threaded_csp.
# This may be replaced when dependencies are built.
