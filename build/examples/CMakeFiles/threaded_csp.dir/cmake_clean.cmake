file(REMOVE_RECURSE
  "CMakeFiles/threaded_csp.dir/threaded_csp.cpp.o"
  "CMakeFiles/threaded_csp.dir/threaded_csp.cpp.o.d"
  "threaded_csp"
  "threaded_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
