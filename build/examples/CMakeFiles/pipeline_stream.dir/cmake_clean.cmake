file(REMOVE_RECURSE
  "CMakeFiles/pipeline_stream.dir/pipeline_stream.cpp.o"
  "CMakeFiles/pipeline_stream.dir/pipeline_stream.cpp.o.d"
  "pipeline_stream"
  "pipeline_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
