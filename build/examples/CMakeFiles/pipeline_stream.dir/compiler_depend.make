# Empty compiler generated dependencies file for pipeline_stream.
# This may be replaced when dependencies are built.
