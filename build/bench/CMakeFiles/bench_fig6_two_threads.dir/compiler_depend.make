# Empty compiler generated dependencies file for bench_fig6_two_threads.
# This may be replaced when dependencies are built.
