# Empty dependencies file for bench_fig2_sequential.
# This may be replaced when dependencies are built.
