file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sequential.dir/bench_fig2_sequential.cc.o"
  "CMakeFiles/bench_fig2_sequential.dir/bench_fig2_sequential.cc.o.d"
  "bench_fig2_sequential"
  "bench_fig2_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
