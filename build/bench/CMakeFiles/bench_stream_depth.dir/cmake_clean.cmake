file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_depth.dir/bench_stream_depth.cc.o"
  "CMakeFiles/bench_stream_depth.dir/bench_stream_depth.cc.o.d"
  "bench_stream_depth"
  "bench_stream_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
