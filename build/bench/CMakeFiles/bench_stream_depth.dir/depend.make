# Empty dependencies file for bench_stream_depth.
# This may be replaced when dependencies are built.
