file(REMOVE_RECURSE
  "CMakeFiles/bench_liveness_limit.dir/bench_liveness_limit.cc.o"
  "CMakeFiles/bench_liveness_limit.dir/bench_liveness_limit.cc.o.d"
  "bench_liveness_limit"
  "bench_liveness_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_liveness_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
