# Empty dependencies file for bench_liveness_limit.
# This may be replaced when dependencies are built.
