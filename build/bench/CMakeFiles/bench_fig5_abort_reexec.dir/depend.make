# Empty dependencies file for bench_fig5_abort_reexec.
# This may be replaced when dependencies are built.
