file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_abort_reexec.dir/bench_fig5_abort_reexec.cc.o"
  "CMakeFiles/bench_fig5_abort_reexec.dir/bench_fig5_abort_reexec.cc.o.d"
  "bench_fig5_abort_reexec"
  "bench_fig5_abort_reexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_abort_reexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
