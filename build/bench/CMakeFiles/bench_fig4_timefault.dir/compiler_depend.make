# Empty compiler generated dependencies file for bench_fig4_timefault.
# This may be replaced when dependencies are built.
