file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_timefault.dir/bench_fig4_timefault.cc.o"
  "CMakeFiles/bench_fig4_timefault.dir/bench_fig4_timefault.cc.o.d"
  "bench_fig4_timefault"
  "bench_fig4_timefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_timefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
