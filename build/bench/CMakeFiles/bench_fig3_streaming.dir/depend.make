# Empty dependencies file for bench_fig3_streaming.
# This may be replaced when dependencies are built.
