file(REMOVE_RECURSE
  "CMakeFiles/bench_value_fault_rate.dir/bench_value_fault_rate.cc.o"
  "CMakeFiles/bench_value_fault_rate.dir/bench_value_fault_rate.cc.o.d"
  "bench_value_fault_rate"
  "bench_value_fault_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_fault_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
