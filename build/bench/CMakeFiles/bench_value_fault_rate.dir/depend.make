# Empty dependencies file for bench_value_fault_rate.
# This may be replaced when dependencies are built.
