# Empty compiler generated dependencies file for bench_rollback_strategy.
# This may be replaced when dependencies are built.
