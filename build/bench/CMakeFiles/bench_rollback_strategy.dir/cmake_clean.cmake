file(REMOVE_RECURSE
  "CMakeFiles/bench_rollback_strategy.dir/bench_rollback_strategy.cc.o"
  "CMakeFiles/bench_rollback_strategy.dir/bench_rollback_strategy.cc.o.d"
  "bench_rollback_strategy"
  "bench_rollback_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollback_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
