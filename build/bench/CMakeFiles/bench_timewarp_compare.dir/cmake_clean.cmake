file(REMOVE_RECURSE
  "CMakeFiles/bench_timewarp_compare.dir/bench_timewarp_compare.cc.o"
  "CMakeFiles/bench_timewarp_compare.dir/bench_timewarp_compare.cc.o.d"
  "bench_timewarp_compare"
  "bench_timewarp_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timewarp_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
