# Empty compiler generated dependencies file for bench_timewarp_compare.
# This may be replaced when dependencies are built.
