# Empty compiler generated dependencies file for bench_fig7_mutual_abort.
# This may be replaced when dependencies are built.
