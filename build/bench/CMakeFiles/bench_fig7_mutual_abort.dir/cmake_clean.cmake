file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mutual_abort.dir/bench_fig7_mutual_abort.cc.o"
  "CMakeFiles/bench_fig7_mutual_abort.dir/bench_fig7_mutual_abort.cc.o.d"
  "bench_fig7_mutual_abort"
  "bench_fig7_mutual_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mutual_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
