file(REMOVE_RECURSE
  "CMakeFiles/bench_state_footprint.dir/bench_state_footprint.cc.o"
  "CMakeFiles/bench_state_footprint.dir/bench_state_footprint.cc.o.d"
  "bench_state_footprint"
  "bench_state_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
