file(REMOVE_RECURSE
  "libocsp_csp.a"
)
