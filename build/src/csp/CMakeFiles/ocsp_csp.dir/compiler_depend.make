# Empty compiler generated dependencies file for ocsp_csp.
# This may be replaced when dependencies are built.
