file(REMOVE_RECURSE
  "CMakeFiles/ocsp_csp.dir/env.cc.o"
  "CMakeFiles/ocsp_csp.dir/env.cc.o.d"
  "CMakeFiles/ocsp_csp.dir/expr.cc.o"
  "CMakeFiles/ocsp_csp.dir/expr.cc.o.d"
  "CMakeFiles/ocsp_csp.dir/machine.cc.o"
  "CMakeFiles/ocsp_csp.dir/machine.cc.o.d"
  "CMakeFiles/ocsp_csp.dir/program.cc.o"
  "CMakeFiles/ocsp_csp.dir/program.cc.o.d"
  "CMakeFiles/ocsp_csp.dir/service.cc.o"
  "CMakeFiles/ocsp_csp.dir/service.cc.o.d"
  "CMakeFiles/ocsp_csp.dir/value.cc.o"
  "CMakeFiles/ocsp_csp.dir/value.cc.o.d"
  "libocsp_csp.a"
  "libocsp_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
