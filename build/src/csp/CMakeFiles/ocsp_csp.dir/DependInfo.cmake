
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csp/env.cc" "src/csp/CMakeFiles/ocsp_csp.dir/env.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/env.cc.o.d"
  "/root/repo/src/csp/expr.cc" "src/csp/CMakeFiles/ocsp_csp.dir/expr.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/expr.cc.o.d"
  "/root/repo/src/csp/machine.cc" "src/csp/CMakeFiles/ocsp_csp.dir/machine.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/machine.cc.o.d"
  "/root/repo/src/csp/program.cc" "src/csp/CMakeFiles/ocsp_csp.dir/program.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/program.cc.o.d"
  "/root/repo/src/csp/service.cc" "src/csp/CMakeFiles/ocsp_csp.dir/service.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/service.cc.o.d"
  "/root/repo/src/csp/value.cc" "src/csp/CMakeFiles/ocsp_csp.dir/value.cc.o" "gcc" "src/csp/CMakeFiles/ocsp_csp.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ocsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
