file(REMOVE_RECURSE
  "CMakeFiles/ocsp.dir/workloads.cc.o"
  "CMakeFiles/ocsp.dir/workloads.cc.o.d"
  "libocsp.a"
  "libocsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
