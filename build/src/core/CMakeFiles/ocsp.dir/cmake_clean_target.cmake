file(REMOVE_RECURSE
  "libocsp.a"
)
