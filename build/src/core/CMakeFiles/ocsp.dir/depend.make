# Empty dependencies file for ocsp.
# This may be replaced when dependencies are built.
