file(REMOVE_RECURSE
  "libocsp_sim.a"
)
