file(REMOVE_RECURSE
  "CMakeFiles/ocsp_sim.dir/scheduler.cc.o"
  "CMakeFiles/ocsp_sim.dir/scheduler.cc.o.d"
  "libocsp_sim.a"
  "libocsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
