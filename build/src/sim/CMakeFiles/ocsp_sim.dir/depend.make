# Empty dependencies file for ocsp_sim.
# This may be replaced when dependencies are built.
