# Empty compiler generated dependencies file for ocsp_exec.
# This may be replaced when dependencies are built.
