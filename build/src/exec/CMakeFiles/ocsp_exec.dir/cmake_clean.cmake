file(REMOVE_RECURSE
  "CMakeFiles/ocsp_exec.dir/threaded.cc.o"
  "CMakeFiles/ocsp_exec.dir/threaded.cc.o.d"
  "libocsp_exec.a"
  "libocsp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
