file(REMOVE_RECURSE
  "libocsp_exec.a"
)
