file(REMOVE_RECURSE
  "CMakeFiles/ocsp_trace.dir/causality.cc.o"
  "CMakeFiles/ocsp_trace.dir/causality.cc.o.d"
  "CMakeFiles/ocsp_trace.dir/events.cc.o"
  "CMakeFiles/ocsp_trace.dir/events.cc.o.d"
  "CMakeFiles/ocsp_trace.dir/timeline.cc.o"
  "CMakeFiles/ocsp_trace.dir/timeline.cc.o.d"
  "CMakeFiles/ocsp_trace.dir/vector_clock.cc.o"
  "CMakeFiles/ocsp_trace.dir/vector_clock.cc.o.d"
  "libocsp_trace.a"
  "libocsp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
