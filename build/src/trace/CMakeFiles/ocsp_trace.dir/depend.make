# Empty dependencies file for ocsp_trace.
# This may be replaced when dependencies are built.
