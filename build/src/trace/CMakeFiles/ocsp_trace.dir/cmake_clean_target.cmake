file(REMOVE_RECURSE
  "libocsp_trace.a"
)
