# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("csp")
subdirs("trace")
subdirs("speculation")
subdirs("transform")
subdirs("baseline")
subdirs("exec")
subdirs("core")
