file(REMOVE_RECURSE
  "libocsp_util.a"
)
