file(REMOVE_RECURSE
  "CMakeFiles/ocsp_util.dir/logging.cc.o"
  "CMakeFiles/ocsp_util.dir/logging.cc.o.d"
  "CMakeFiles/ocsp_util.dir/rng.cc.o"
  "CMakeFiles/ocsp_util.dir/rng.cc.o.d"
  "CMakeFiles/ocsp_util.dir/stats.cc.o"
  "CMakeFiles/ocsp_util.dir/stats.cc.o.d"
  "CMakeFiles/ocsp_util.dir/table.cc.o"
  "CMakeFiles/ocsp_util.dir/table.cc.o.d"
  "libocsp_util.a"
  "libocsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
