# Empty dependencies file for ocsp_util.
# This may be replaced when dependencies are built.
