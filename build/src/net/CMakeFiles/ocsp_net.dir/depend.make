# Empty dependencies file for ocsp_net.
# This may be replaced when dependencies are built.
