file(REMOVE_RECURSE
  "libocsp_net.a"
)
