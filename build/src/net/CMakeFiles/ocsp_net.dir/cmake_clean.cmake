file(REMOVE_RECURSE
  "CMakeFiles/ocsp_net.dir/latency.cc.o"
  "CMakeFiles/ocsp_net.dir/latency.cc.o.d"
  "CMakeFiles/ocsp_net.dir/network.cc.o"
  "CMakeFiles/ocsp_net.dir/network.cc.o.d"
  "libocsp_net.a"
  "libocsp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
