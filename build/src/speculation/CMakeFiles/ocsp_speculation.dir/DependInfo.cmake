
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/speculation/cdg.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/cdg.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/cdg.cc.o.d"
  "/root/repo/src/speculation/guard_set.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/guard_set.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/guard_set.cc.o.d"
  "/root/repo/src/speculation/guess.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/guess.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/guess.cc.o.d"
  "/root/repo/src/speculation/history.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/history.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/history.cc.o.d"
  "/root/repo/src/speculation/messages.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/messages.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/messages.cc.o.d"
  "/root/repo/src/speculation/predictor.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/predictor.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/predictor.cc.o.d"
  "/root/repo/src/speculation/process.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process.cc.o.d"
  "/root/repo/src/speculation/process_arrival.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_arrival.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_arrival.cc.o.d"
  "/root/repo/src/speculation/process_control.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_control.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_control.cc.o.d"
  "/root/repo/src/speculation/process_fork.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_fork.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/process_fork.cc.o.d"
  "/root/repo/src/speculation/runtime.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/runtime.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/runtime.cc.o.d"
  "/root/repo/src/speculation/stats.cc" "src/speculation/CMakeFiles/ocsp_speculation.dir/stats.cc.o" "gcc" "src/speculation/CMakeFiles/ocsp_speculation.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/csp/CMakeFiles/ocsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ocsp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocsp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocsp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ocsp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
