file(REMOVE_RECURSE
  "libocsp_speculation.a"
)
