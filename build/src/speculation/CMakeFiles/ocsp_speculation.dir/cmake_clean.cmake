file(REMOVE_RECURSE
  "CMakeFiles/ocsp_speculation.dir/cdg.cc.o"
  "CMakeFiles/ocsp_speculation.dir/cdg.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/guard_set.cc.o"
  "CMakeFiles/ocsp_speculation.dir/guard_set.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/guess.cc.o"
  "CMakeFiles/ocsp_speculation.dir/guess.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/history.cc.o"
  "CMakeFiles/ocsp_speculation.dir/history.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/messages.cc.o"
  "CMakeFiles/ocsp_speculation.dir/messages.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/predictor.cc.o"
  "CMakeFiles/ocsp_speculation.dir/predictor.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/process.cc.o"
  "CMakeFiles/ocsp_speculation.dir/process.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/process_arrival.cc.o"
  "CMakeFiles/ocsp_speculation.dir/process_arrival.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/process_control.cc.o"
  "CMakeFiles/ocsp_speculation.dir/process_control.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/process_fork.cc.o"
  "CMakeFiles/ocsp_speculation.dir/process_fork.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/runtime.cc.o"
  "CMakeFiles/ocsp_speculation.dir/runtime.cc.o.d"
  "CMakeFiles/ocsp_speculation.dir/stats.cc.o"
  "CMakeFiles/ocsp_speculation.dir/stats.cc.o.d"
  "libocsp_speculation.a"
  "libocsp_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
