# Empty compiler generated dependencies file for ocsp_speculation.
# This may be replaced when dependencies are built.
