file(REMOVE_RECURSE
  "libocsp_baseline.a"
)
