file(REMOVE_RECURSE
  "CMakeFiles/ocsp_baseline.dir/scenario.cc.o"
  "CMakeFiles/ocsp_baseline.dir/scenario.cc.o.d"
  "CMakeFiles/ocsp_baseline.dir/timewarp.cc.o"
  "CMakeFiles/ocsp_baseline.dir/timewarp.cc.o.d"
  "libocsp_baseline.a"
  "libocsp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
