# Empty compiler generated dependencies file for ocsp_baseline.
# This may be replaced when dependencies are built.
