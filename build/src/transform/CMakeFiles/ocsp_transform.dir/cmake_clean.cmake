file(REMOVE_RECURSE
  "CMakeFiles/ocsp_transform.dir/analysis.cc.o"
  "CMakeFiles/ocsp_transform.dir/analysis.cc.o.d"
  "CMakeFiles/ocsp_transform.dir/fork_insertion.cc.o"
  "CMakeFiles/ocsp_transform.dir/fork_insertion.cc.o.d"
  "CMakeFiles/ocsp_transform.dir/streaming.cc.o"
  "CMakeFiles/ocsp_transform.dir/streaming.cc.o.d"
  "libocsp_transform.a"
  "libocsp_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsp_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
