file(REMOVE_RECURSE
  "libocsp_transform.a"
)
