# Empty compiler generated dependencies file for ocsp_transform.
# This may be replaced when dependencies are built.
