# Empty dependencies file for csp_value_test.
# This may be replaced when dependencies are built.
