file(REMOVE_RECURSE
  "CMakeFiles/csp_value_test.dir/csp_value_test.cc.o"
  "CMakeFiles/csp_value_test.dir/csp_value_test.cc.o.d"
  "csp_value_test"
  "csp_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
