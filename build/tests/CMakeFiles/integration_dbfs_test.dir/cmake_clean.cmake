file(REMOVE_RECURSE
  "CMakeFiles/integration_dbfs_test.dir/integration_dbfs_test.cc.o"
  "CMakeFiles/integration_dbfs_test.dir/integration_dbfs_test.cc.o.d"
  "integration_dbfs_test"
  "integration_dbfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_dbfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
