# Empty dependencies file for integration_mutual_test.
# This may be replaced when dependencies are built.
