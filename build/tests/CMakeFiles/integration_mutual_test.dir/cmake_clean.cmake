file(REMOVE_RECURSE
  "CMakeFiles/integration_mutual_test.dir/integration_mutual_test.cc.o"
  "CMakeFiles/integration_mutual_test.dir/integration_mutual_test.cc.o.d"
  "integration_mutual_test"
  "integration_mutual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_mutual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
