# Empty dependencies file for threaded_exec_test.
# This may be replaced when dependencies are built.
