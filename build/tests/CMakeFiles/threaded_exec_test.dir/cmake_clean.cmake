file(REMOVE_RECURSE
  "CMakeFiles/threaded_exec_test.dir/threaded_exec_test.cc.o"
  "CMakeFiles/threaded_exec_test.dir/threaded_exec_test.cc.o.d"
  "threaded_exec_test"
  "threaded_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
