# Empty compiler generated dependencies file for spec_structures_test.
# This may be replaced when dependencies are built.
