file(REMOVE_RECURSE
  "CMakeFiles/spec_structures_test.dir/spec_structures_test.cc.o"
  "CMakeFiles/spec_structures_test.dir/spec_structures_test.cc.o.d"
  "spec_structures_test"
  "spec_structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
