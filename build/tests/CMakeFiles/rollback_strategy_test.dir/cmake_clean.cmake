file(REMOVE_RECURSE
  "CMakeFiles/rollback_strategy_test.dir/rollback_strategy_test.cc.o"
  "CMakeFiles/rollback_strategy_test.dir/rollback_strategy_test.cc.o.d"
  "rollback_strategy_test"
  "rollback_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
