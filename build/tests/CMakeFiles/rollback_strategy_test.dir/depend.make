# Empty dependencies file for rollback_strategy_test.
# This may be replaced when dependencies are built.
