# Empty dependencies file for timewarp_test.
# This may be replaced when dependencies are built.
