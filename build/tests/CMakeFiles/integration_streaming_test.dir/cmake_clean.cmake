file(REMOVE_RECURSE
  "CMakeFiles/integration_streaming_test.dir/integration_streaming_test.cc.o"
  "CMakeFiles/integration_streaming_test.dir/integration_streaming_test.cc.o.d"
  "integration_streaming_test"
  "integration_streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
