file(REMOVE_RECURSE
  "CMakeFiles/integration_timefault_test.dir/integration_timefault_test.cc.o"
  "CMakeFiles/integration_timefault_test.dir/integration_timefault_test.cc.o.d"
  "integration_timefault_test"
  "integration_timefault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_timefault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
