# Empty compiler generated dependencies file for csp_machine_test.
# This may be replaced when dependencies are built.
