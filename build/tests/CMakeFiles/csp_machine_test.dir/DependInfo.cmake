
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/csp_machine_test.cc" "tests/CMakeFiles/csp_machine_test.dir/csp_machine_test.cc.o" "gcc" "tests/CMakeFiles/csp_machine_test.dir/csp_machine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ocsp.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ocsp_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ocsp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/speculation/CMakeFiles/ocsp_speculation.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ocsp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ocsp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocsp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/csp/CMakeFiles/ocsp_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ocsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
