file(REMOVE_RECURSE
  "CMakeFiles/csp_machine_test.dir/csp_machine_test.cc.o"
  "CMakeFiles/csp_machine_test.dir/csp_machine_test.cc.o.d"
  "csp_machine_test"
  "csp_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
