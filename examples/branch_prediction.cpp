// Branch prediction across processes — the other application named in
// section 1: "executing the likely outcome of a test in parallel with
// making the test".
//
// The client asks a remote oracle whether each work item passes a check
// (the test, S1) and then dispatches to the appropriate worker operation
// (the outcome, S2).  The hint tells the runtime to guess "pass" and start
// the likely branch while the oracle round trip is still in flight; a
// wrong guess value-faults, rolls the speculative work back, and takes the
// other branch.
//
// Build and run:   ./build/examples/branch_prediction
#include <cstdio>

#include "baseline/scenario.h"
#include "csp/service.h"
#include "transform/transform.h"
#include "util/table.h"

using namespace ocsp;
using csp::lit;
using csp::Value;
using csp::var;

namespace {

baseline::Scenario make_scenario(int items, double pass_rate,
                                 std::uint64_t seed) {
  std::map<std::string, csp::PredictorSpec> preds;
  preds.emplace("pass", csp::PredictorSpec::always(Value(true)));

  csp::StmtPtr client = csp::seq({
      csp::assign("i", lit(Value(0))),
      csp::while_(
          csp::lt(var("i"), lit(Value(items))),
          csp::seq({
              csp::call("Oracle", "Check", {var("i")}, "pass"),
              csp::hint(preds, "branch"),
              csp::if_(var("pass"),
                       csp::call("Worker", "Process", {var("i")}, "r"),
                       csp::call("Worker", "Reject", {var("i")}, "r")),
              csp::print(csp::list_of({var("i"), var("pass"), var("r")})),
              csp::assign("i", csp::add(var("i"), lit(Value(1)))),
          })),
      csp::print(lit(Value("all-items-done"))),
  });
  client = transform::insert_forks(client).program;

  std::map<std::string, csp::NativeHandler> oracle;
  oracle["Check"] = [pass_rate](const csp::ValueList&, csp::Env&,
                                util::Rng& rng) {
    return Value(rng.bernoulli(pass_rate));
  };
  csp::ServiceConfig oracle_cfg;
  oracle_cfg.service_time = sim::microseconds(200);  // an expensive test

  std::map<std::string, csp::NativeHandler> worker;
  worker["Process"] = [](const csp::ValueList& args, csp::Env& state,
                         util::Rng&) {
    state.set("processed",
              Value(state.get_or("processed", Value(0)).as_int() + 1));
    return Value(args[0].as_int() * 2);
  };
  worker["Reject"] = [](const csp::ValueList&, csp::Env& state,
                        util::Rng&) {
    state.set("rejected",
              Value(state.get_or("rejected", Value(0)).as_int() + 1));
    return Value(-1);
  };
  csp::ServiceConfig worker_cfg;
  worker_cfg.service_time = sim::microseconds(100);

  baseline::Scenario scenario;
  scenario.options.seed = seed;
  scenario.options.default_link.latency =
      net::fixed_latency(sim::microseconds(800));
  scenario.add("X", std::move(client));
  scenario.add("Oracle", csp::native_service(std::move(oracle), oracle_cfg));
  scenario.add("Worker", csp::native_service(std::move(worker), worker_cfg));
  return scenario;
}

}  // namespace

int main() {
  std::printf("Branch prediction across processes\n\n");
  util::Table table({"pass rate", "sequential ms", "speculative ms",
                     "speedup", "mispredicts", "traces match"});
  for (double rate : {1.0, 0.9, 0.7, 0.5, 0.1}) {
    auto scenario = make_scenario(/*items=*/12, rate, /*seed=*/11);
    auto pessimistic = baseline::run_scenario(scenario, false);
    auto optimistic = baseline::run_scenario(scenario, true);
    std::string why;
    const bool match =
        trace::compare_traces(pessimistic.trace, optimistic.trace, &why);
    table.row(rate, sim::to_millis(pessimistic.last_completion),
              sim::to_millis(optimistic.last_completion),
              static_cast<double>(pessimistic.last_completion) /
                  static_cast<double>(optimistic.last_completion),
              optimistic.stats.aborts_value_fault, match);
    if (!match) {
      std::printf("mismatch at rate %.1f: %s\n", rate, why.c_str());
      return 1;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "High pass rates hide the oracle round trip almost entirely; as the\n"
      "prediction degrades, rollbacks eat the win — but correctness never\n"
      "depends on the guess (section 1: \"whether we guess right or wrong,\n"
      "our results are correct\").\n");
  return 0;
}
