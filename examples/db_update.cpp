// The paper's running example (section 2, Figure 1):
//
//   /* S1 */  OK = Update(Item, Value);   -- database server
//   /* S2 */  if OK  Write(File, "Did it") -- filesystem server
//
// The compiler is told to parallelize S1 and S2 with the guess OK = true.
// This example shows both outcomes: the success path where the speculative
// Write overlaps the Update round trip and commits, and the failure path
// where Update returns false, the guess aborts, and the Write is undone as
// if it never happened.
//
// Build and run:   ./build/examples/db_update
#include <cstdio>

#include "core/workloads.h"

using namespace ocsp;

namespace {

void run_case(const char* label, double fail_probability) {
  core::DbFsParams params;
  params.transactions = 6;
  params.net.latency = sim::milliseconds(1);
  params.db_service_time = sim::microseconds(100);
  params.fs_service_time = sim::microseconds(100);
  params.update_fail_probability = fail_probability;

  auto scenario = core::db_fs_scenario(params);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);

  std::printf("%s (P[Update fails] = %.0f%%)\n", label,
              fail_probability * 100);
  std::printf("  sequential : %8.2f ms\n",
              sim::to_millis(pessimistic.last_completion));
  std::printf("  optimistic : %8.2f ms  (commits=%llu, value-faults=%llu, "
              "rollbacks=%llu)\n",
              sim::to_millis(optimistic.last_completion),
              static_cast<unsigned long long>(optimistic.stats.commits),
              static_cast<unsigned long long>(
                  optimistic.stats.aborts_value_fault),
              static_cast<unsigned long long>(optimistic.stats.rollbacks));
  std::string why;
  std::printf("  traces match: %s\n\n",
              trace::compare_traces(pessimistic.trace, optimistic.trace, &why)
                  ? "yes"
                  : why.c_str());
}

}  // namespace

int main() {
  std::printf("Database+filesystem example (paper section 2)\n\n");
  run_case("all updates succeed", 0.0);
  run_case("updates sometimes fail", 0.4);
  run_case("updates always fail", 1.0);

  std::printf(
      "Note how the failure runs stay correct: the speculative Write is\n"
      "rolled back before anything external observes it (section 3.1's\n"
      "external-message buffering).\n");
  return 0;
}
