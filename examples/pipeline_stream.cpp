// Deep call streaming through a chain of relay services.
//
// Three configurations per chain depth:
//   * sequential    — every call blocks end-to-end (Figure 2 at depth).
//   * client-stream — only the client speculates; each relay still
//     serializes on its downstream round trip, so the win is capped at
//     roughly one chain traversal.
//   * relay-stream  — the relays speculate too, replying with a guessed
//     echo before their downstream call returns.  Guesses chain
//     transitively (each reply's guard tag carries the relay's guess), and
//     the data flood traverses the chain in a single pass; what remains is
//     the commit cascade, one control-message hop per dependent guess.
//
// Build and run:   ./build/examples/pipeline_stream
// Pass --trace-out=<path> to export the depth-4 relay-stream run as a
// Chrome trace-event JSON (load it in Perfetto or chrome://tracing).
#include <cstdio>
#include <string>

#include "core/workloads.h"
#include "obs/chrome_trace.h"
#include "util/table.h"

using namespace ocsp;

namespace {

baseline::RunResult run(int depth, bool stream, bool stream_relays) {
  core::PipelineParams params;
  params.calls = 12;
  params.chain_depth = depth;
  params.net.latency = sim::microseconds(500);
  params.service_time = sim::microseconds(20);
  params.stream = stream;
  params.stream_relays = stream_relays;
  return baseline::run_scenario(core::pipeline_scenario(params), stream);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--trace-out=";
    if (arg.rfind(prefix, 0) == 0) trace_out = arg.substr(prefix.size());
  }

  std::printf("Pipelined call streaming through relay chains (12 calls)\n\n");
  util::Table table({"chain depth", "sequential ms", "client-stream ms",
                     "relay-stream ms", "best speedup", "aborts"});
  baseline::RunResult traced;
  for (int depth : {1, 2, 4, 8}) {
    auto sequential = run(depth, false, false);
    auto client_only = run(depth, true, false);
    auto full = run(depth, true, true);
    if (depth == 4) traced = full;
    table.row(depth, sim::to_millis(sequential.last_completion),
              sim::to_millis(client_only.last_completion),
              sim::to_millis(full.last_completion),
              static_cast<double>(sequential.last_completion) /
                  static_cast<double>(full.last_completion),
              full.stats.total_aborts());

    std::string why;
    if (!trace::compare_traces(sequential.trace, full.trace, &why)) {
      std::printf("TRACE MISMATCH at depth %d: %s\n", depth, why.c_str());
      return 1;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out, *traced.recorder,
                                 traced.process_names)) {
      return 1;
    }
    std::printf("Wrote Chrome trace of the depth-4 relay-stream run to %s\n\n",
                trace_out.c_str());
  }
  std::printf(
      "Relay streaming is the paper's speculation applied transitively:\n"
      "every reply is guarded by the relay's own guess, PRECEDENCE chains\n"
      "publish the ordering, and the commit cascade resolves the whole\n"
      "pipeline without a single abort.\n");
  return 0;
}
