// Running the same CSP programs on real OS threads.
//
// The speculation protocol runs on the deterministic simulator, but the
// CSP substrate itself is executor-agnostic: this example runs a small
// banking workload on exec::ThreadedRuntime (one std::jthread per process,
// blocking mailboxes) and cross-checks its committed trace against the
// simulator's pessimistic run — same programs, same seeds, same events.
//
// Build and run:   ./build/examples/threaded_csp
#include <cstdio>

#include "baseline/scenario.h"
#include "csp/service.h"
#include "exec/threaded.h"

using namespace ocsp;
using csp::lit;
using csp::Value;
using csp::var;

namespace {

baseline::Scenario bank_scenario() {
  // A teller moves money between two accounts and prints the audit trail.
  csp::StmtPtr teller = csp::seq({
      csp::call("Bank", "Deposit", {lit(Value("alice")), lit(Value(100))},
                "a"),
      csp::call("Bank", "Deposit", {lit(Value("bob")), lit(Value(40))}, "b"),
      csp::call("Bank", "Transfer",
                {lit(Value("alice")), lit(Value("bob")), lit(Value(25))},
                "t"),
      csp::call("Bank", "Balance", {lit(Value("alice"))}, "alice"),
      csp::call("Bank", "Balance", {lit(Value("bob"))}, "bob"),
      csp::print(csp::list_of({lit(Value("final")), var("alice"),
                               var("bob")})),
  });

  std::map<std::string, csp::NativeHandler> handlers;
  auto balance_of = [](csp::Env& state, const std::string& who) {
    return state.get_or("acct:" + who, Value(0)).as_int();
  };
  handlers["Deposit"] = [balance_of](const csp::ValueList& args,
                                     csp::Env& state, util::Rng&) {
    const std::string who = args[0].as_string();
    const auto v = balance_of(state, who) + args[1].as_int();
    state.set("acct:" + who, Value(v));
    return Value(v);
  };
  handlers["Transfer"] = [balance_of](const csp::ValueList& args,
                                      csp::Env& state, util::Rng&) {
    const std::string from = args[0].as_string();
    const std::string to = args[1].as_string();
    const auto amount = args[2].as_int();
    if (balance_of(state, from) < amount) return Value(false);
    state.set("acct:" + from, Value(balance_of(state, from) - amount));
    state.set("acct:" + to, Value(balance_of(state, to) + amount));
    return Value(true);
  };
  handlers["Balance"] = [balance_of](const csp::ValueList& args,
                                     csp::Env& state, util::Rng&) {
    return Value(balance_of(state, args[0].as_string()));
  };

  baseline::Scenario scenario;
  scenario.options.default_link.latency =
      net::fixed_latency(sim::microseconds(200));
  scenario.add("Teller", std::move(teller));
  scenario.add("Bank", csp::native_service(std::move(handlers)));
  return scenario;
}

}  // namespace

int main() {
  auto scenario = bank_scenario();

  // 1. Deterministic simulator, pessimistic.
  auto simulated = baseline::run_scenario(scenario, false);
  std::printf("simulated run   : completed=%s, %zu committed events\n",
              simulated.all_completed ? "yes" : "no",
              simulated.trace.total_events());

  // 2. Real threads, same programs and seeds.
  exec::ThreadedOptions opts;
  opts.seed = scenario.options.seed;
  exec::ThreadedRuntime threaded(opts);
  for (std::size_t i = 0; i < scenario.processes.size(); ++i) {
    const auto& p = scenario.processes[i];
    threaded.add_process(p.name, p.program, p.env,
                         /*serves_forever=*/i != 0);
  }
  const bool ok = threaded.run();
  auto threaded_trace = threaded.committed_trace();
  std::printf("threaded run    : completed=%s, %zu committed events\n",
              ok ? "yes" : "no", threaded_trace.total_events());

  std::printf("\nteller's committed events (threaded executor):\n");
  for (const auto& e : threaded_trace.for_process(0)) {
    std::printf("  %s\n", trace::to_string(e).c_str());
  }

  std::string why;
  const bool same =
      trace::compare_traces(simulated.trace, threaded_trace, &why);
  std::printf("\ncross-executor traces identical: %s%s%s\n",
              same ? "yes" : "NO", same ? "" : " — ",
              same ? "" : why.c_str());
  return same && ok ? 0 : 1;
}
