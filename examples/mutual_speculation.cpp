// Mutual speculation between two processes — Figures 6 and 7.
//
// In the Figure 6 configuration, Z's speculative thread inherits X's guess
// through a message, so z1 can only commit after PRECEDENCE(z1,{x1}) is
// published and COMMIT(x1) cascades through.  In the Figure 7
// configuration the speculative sends cross, closing the causal cycle
// x1 -> z1 -> x1: both processes detect the time fault, abort, roll their
// servers back, and re-execute.
//
// Build and run:   ./build/examples/mutual_speculation
// Pass --trace-out=<path> to export the Figure 7 (crossing) run as a
// Chrome trace-event JSON.
#include <cstdio>
#include <string>

#include "core/workloads.h"
#include "obs/chrome_trace.h"

using namespace ocsp;

namespace {

int run_case(const char* label, bool crossing, const std::string& trace_out) {
  core::MutualParams params;
  params.crossing = crossing;
  params.net.latency = sim::microseconds(200);
  params.service_time = sim::microseconds(20);

  auto scenario = core::mutual_scenario(params);
  auto rt = baseline::make_runtime(scenario, true);
  rt->run();

  auto stats = rt->total_stats();
  std::printf("%s\n", label);
  std::printf("  commits=%llu time-faults=%llu rollbacks=%llu "
              "precedence-msgs=%llu\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts_time_fault),
              static_cast<unsigned long long>(stats.rollbacks),
              static_cast<unsigned long long>(stats.precedence_sent));
  std::printf("  protocol timeline:\n");
  for (const auto& e : rt->timeline().entries()) {
    using K = trace::TimelineEntry::Kind;
    if (e.kind == K::kFork || e.kind == K::kCommit || e.kind == K::kAbort ||
        e.kind == K::kRollback || e.kind == K::kJoin) {
      std::printf("    %s\n", trace::to_string(e).c_str());
    }
  }
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out, rt->recorder(),
                                 rt->process_names())) {
      return 1;
    }
    std::printf("  wrote Chrome trace to %s\n", trace_out.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--trace-out=";
    if (arg.rfind(prefix, 0) == 0) trace_out = arg.substr(prefix.size());
  }

  std::printf("Mutual speculation (paper Figures 6 and 7)\n\n");
  if (run_case("Figure 6: dependent guesses, PRECEDENCE then commit cascade",
               /*crossing=*/false, {}) != 0) {
    return 1;
  }
  // The crossing case shows the full event vocabulary (CDG cycle, abort,
  // rollback, re-execution), so it is the one exported.
  return run_case("Figure 7: crossing speculations close a cycle; both abort",
                  /*crossing=*/true, trace_out);
}
