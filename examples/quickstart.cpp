// Quickstart: the PutLine example from section 1 of the paper.
//
// A client process X writes lines to a window-manager process Y.  Run
// sequentially, each PutLine call blocks for a full round trip (Figure 2);
// with the call streaming transformation the runtime forks an optimistic
// thread per call and the round trips overlap (Figure 3).
//
// Build and run:   ./build/examples/quickstart
#include <cstdio>

#include "core/workloads.h"

using namespace ocsp;

int main() {
  core::PutLineParams params;
  params.lines = 16;
  params.net.latency = sim::milliseconds(2);  // a LAN-ish round trip
  params.service_time = sim::microseconds(50);
  params.client_compute = sim::microseconds(20);

  auto scenario = core::putline_scenario(params);

  std::printf("PutLine quickstart: %d lines, one-way latency %.1f ms\n\n",
              params.lines, sim::to_millis(params.net.latency));

  auto pessimistic = baseline::run_scenario(scenario, /*speculation=*/false);
  std::printf("sequential (Figure 2):   %8.2f ms   (%llu messages)\n",
              sim::to_millis(pessimistic.last_completion),
              static_cast<unsigned long long>(
                  pessimistic.network.messages_delivered));

  auto optimistic = baseline::run_scenario(scenario, /*speculation=*/true);
  std::printf("call-streamed (Figure 3): %7.2f ms   (%llu messages)\n",
              sim::to_millis(optimistic.last_completion),
              static_cast<unsigned long long>(
                  optimistic.network.messages_delivered));

  std::printf("\nspeedup: %.2fx\n",
              static_cast<double>(pessimistic.last_completion) /
                  static_cast<double>(optimistic.last_completion));
  std::printf("protocol: %s\n", optimistic.stats.to_string().c_str());

  std::string why;
  const bool same =
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why);
  std::printf("\ncommitted traces identical (Theorem 1): %s%s%s\n",
              same ? "yes" : "NO", same ? "" : " — ", same ? "" : why.c_str());
  return same ? 0 : 1;
}
