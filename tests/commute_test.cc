// Unit tests for the commutativity-summary lattice (analysis/commute.h):
// lattice laws over every level triple, op/footprint compatibility,
// summary inference from service_loop dispatch arms, the use-class
// analysis behind the verification relaxation, the classifier's
// cross-process SAFE widening, and the transform::reclassify pass that
// applies both.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "analysis/commute.h"
#include "analysis/effects.h"
#include "csp/service.h"
#include "csp/visit.h"
#include "transform/transform.h"

namespace ocsp::analysis {
namespace {

using csp::arg;
using csp::assign;
using csp::call;
using csp::CommLevel;
using csp::if_;
using csp::lit;
using csp::OpCommSpec;
using csp::print;
using csp::reply;
using csp::send;
using csp::seq;
using csp::Value;
using csp::var;
using csp::VerifyMode;
using csp::while_;

constexpr std::array<CommLevel, 4> kLevels = {
    CommLevel::kNone, CommLevel::kPure, CommLevel::kAbelian,
    CommLevel::kMutate};

// ---- Lattice laws ---------------------------------------------------------

TEST(CommLattice, JoinMeetAreBoundsAndMonotone) {
  // The level set is tiny, so check the lattice laws over EVERY pair and
  // the monotonicity laws over EVERY triple — stronger than sampling.
  for (CommLevel a : kLevels) {
    EXPECT_TRUE(comm_leq(a, a));
    EXPECT_EQ(comm_join(a, a), a);
    EXPECT_EQ(comm_meet(a, a), a);
    for (CommLevel b : kLevels) {
      // join is an upper bound, meet a lower bound, both commutative.
      EXPECT_TRUE(comm_leq(a, comm_join(a, b)));
      EXPECT_TRUE(comm_leq(b, comm_join(a, b)));
      EXPECT_TRUE(comm_leq(comm_meet(a, b), a));
      EXPECT_TRUE(comm_leq(comm_meet(a, b), b));
      EXPECT_EQ(comm_join(a, b), comm_join(b, a));
      EXPECT_EQ(comm_meet(a, b), comm_meet(b, a));
      // antisymmetry
      if (comm_leq(a, b) && comm_leq(b, a)) {
        EXPECT_EQ(a, b);
      }
      for (CommLevel c : kLevels) {
        // transitivity
        if (comm_leq(a, b) && comm_leq(b, c)) {
          EXPECT_TRUE(comm_leq(a, c));
        }
        // join/meet monotone in each argument
        if (comm_leq(a, b)) {
          EXPECT_TRUE(comm_leq(comm_join(a, c), comm_join(b, c)));
          EXPECT_TRUE(comm_leq(comm_meet(a, c), comm_meet(b, c)));
        }
      }
    }
  }
}

TEST(CommLattice, CompatIsSymmetricAndAntitone) {
  for (CommLevel a : kLevels) {
    for (CommLevel b : kLevels) {
      EXPECT_EQ(level_compat(a, b), level_compat(b, a));
      // Lowering either side never turns a compatible pair incompatible.
      for (CommLevel c : kLevels) {
        if (comm_leq(c, a) && level_compat(a, b)) {
          EXPECT_TRUE(level_compat(c, b))
              << to_string(c) << " vs " << to_string(b);
        }
      }
    }
  }
  // The diamond's defining facts.
  EXPECT_TRUE(level_compat(CommLevel::kPure, CommLevel::kPure));
  EXPECT_TRUE(level_compat(CommLevel::kAbelian, CommLevel::kAbelian));
  EXPECT_FALSE(level_compat(CommLevel::kPure, CommLevel::kAbelian));
  EXPECT_FALSE(level_compat(CommLevel::kAbelian, CommLevel::kMutate));
  EXPECT_TRUE(level_compat(CommLevel::kNone, CommLevel::kMutate));
}

TEST(CommLattice, OpsCommuteByDisjointnessOrCompatLevels) {
  const OpCommSpec add{{"count"}, CommLevel::kAbelian, csp::FoldOp::kAdd};
  const OpCommSpec note{{"notes"}, CommLevel::kAbelian, csp::FoldOp::kAdd};
  const OpCommSpec stamp{{"stamps"}, CommLevel::kMutate};
  const OpCommSpec peek{{"count"}, CommLevel::kPure};
  EXPECT_TRUE(ops_commute(add, add));        // abelian on the same group
  EXPECT_TRUE(ops_commute(add, note));       // disjoint groups
  EXPECT_TRUE(ops_commute(add, stamp));      // disjoint groups
  EXPECT_FALSE(ops_commute(stamp, stamp));   // mutate never self-commutes
  EXPECT_FALSE(ops_commute(add, peek));      // reader sees partial sums
  EXPECT_TRUE(ops_commute(peek, peek));      // pure reads commute
}

TEST(CommLattice, AbelianCompatRequiresIdenticalFolds) {
  // Each of `x += a` and `x *= b` folds commutatively with itself, but
  // (x+a)*b != x*b+a: mixing operator families on one group is
  // order-observable, so the specs must not commute.
  const OpCommSpec add{{"count"}, CommLevel::kAbelian, csp::FoldOp::kAdd};
  const OpCommSpec scale{{"count"}, CommLevel::kAbelian, csp::FoldOp::kMul};
  const OpCommSpec any{{"count"}, CommLevel::kAbelian, csp::FoldOp::kNone};
  const OpCommSpec conj{{"flags"}, CommLevel::kAbelian, csp::FoldOp::kAnd};
  const OpCommSpec disj{{"flags"}, CommLevel::kAbelian, csp::FoldOp::kOr};
  EXPECT_TRUE(ops_commute(add, add));
  EXPECT_TRUE(ops_commute(scale, scale));
  EXPECT_FALSE(ops_commute(add, scale));
  EXPECT_FALSE(ops_commute(scale, add));     // symmetric
  EXPECT_FALSE(ops_commute(conj, disj));     // (x&&a)||b != (x||b)&&a
  // A declared abelian summary without a fold licenses nothing...
  EXPECT_FALSE(ops_commute(any, any));
  EXPECT_FALSE(ops_commute(any, add));
  // ...unless the groups are disjoint anyway.
  EXPECT_TRUE(ops_commute(scale, conj));
}

// ---- Summary inference ----------------------------------------------------

csp::StmtPtr registry_program(bool with_stamp = true) {
  std::map<std::string, csp::StmtPtr> handlers;
  handlers["Add"] = seq({
      assign("count", csp::add(var("count"), arg(0))),
      reply(lit(Value(true))),
  });
  handlers["Note"] = assign("notes", csp::add(var("notes"), arg(0)));
  handlers["Bump"] = assign("count", csp::add(var("count"), lit(Value(1))));
  if (with_stamp) {
    handlers["Stamp"] = seq({
        assign("stamps", csp::add(var("stamps"), lit(Value(1)))),
        reply(var("stamps")),
    });
  }
  return csp::service_loop(std::move(handlers));
}

TEST(InferSummaries, RegistryArmsSpanTheLattice) {
  const csp::CommDecls decls = infer_summaries(registry_program());
  // Bump folds a numeric literal: abelian with no call-site help needed.
  ASSERT_EQ(decls.count("Bump"), 1u);
  EXPECT_EQ(decls.at("Bump").level, CommLevel::kAbelian);
  EXPECT_EQ(decls.at("Bump").fold, csp::FoldOp::kAdd);
  EXPECT_EQ(decls.at("Bump").groups, std::vector<std::string>{"count"});

  // Add/Note fold __args[0] with `+`.  Standalone inference cannot rule
  // out a string argument — value_add concatenates strings, which does
  // not commute — so without caller knowledge both demote to kMutate.
  ASSERT_EQ(decls.count("Add"), 1u);
  EXPECT_EQ(decls.at("Add").level, CommLevel::kMutate);
  ASSERT_EQ(decls.count("Note"), 1u);
  EXPECT_EQ(decls.at("Note").level, CommLevel::kMutate);

  // With every call site proven numeric the arms span the lattice.
  InferContext typed_ctx;
  typed_ctx.numeric_args["Add"].insert(0);
  typed_ctx.numeric_args["Note"].insert(0);
  const csp::CommDecls typed = infer_summaries(registry_program(), typed_ctx);
  EXPECT_EQ(typed.at("Add").level, CommLevel::kAbelian);
  EXPECT_EQ(typed.at("Add").fold, csp::FoldOp::kAdd);
  EXPECT_EQ(typed.at("Add").groups, std::vector<std::string>{"count"});
  EXPECT_EQ(typed.at("Note").level, CommLevel::kAbelian);  // one-way op

  ASSERT_EQ(typed.count("Stamp"), 1u);
  // The abelian update is spoiled by the non-constant reply: callers can
  // observe the order through the returned total.
  EXPECT_EQ(typed.at("Stamp").level, CommLevel::kMutate);
}

TEST(InferSummaries, FoldOperatorsAndMixedBodies) {
  std::map<std::string, csp::StmtPtr> handlers;
  handlers["Scale"] = assign("count", csp::mul(var("count"), arg(0)));
  handlers["Mixed"] = seq({
      assign("count", csp::add(var("count"), lit(Value(1)))),
      assign("flags", csp::or_(var("flags"), arg(0))),
  });
  const csp::CommDecls decls = infer_summaries(csp::service_loop(handlers));
  // `*` rejects non-numeric operands at runtime instead of silently
  // concatenating, so it needs no call-site proof.
  ASSERT_EQ(decls.count("Scale"), 1u);
  EXPECT_EQ(decls.at("Scale").level, CommLevel::kAbelian);
  EXPECT_EQ(decls.at("Scale").fold, csp::FoldOp::kMul);
  // One spec carries one fold: a body mixing operator families demotes.
  ASSERT_EQ(decls.count("Mixed"), 1u);
  EXPECT_EQ(decls.at("Mixed").level, CommLevel::kMutate);
}

TEST(InferSummaries, DownstreamEffectsDisqualifyAnArm) {
  std::map<std::string, csp::StmtPtr> handlers;
  handlers["Relay"] = seq({
      call("Z", "Fwd", {arg(0)}, "f"),
      reply(var("f")),
  });
  handlers["Log"] = print(arg(0));
  const csp::CommDecls decls = infer_summaries(csp::service_loop(handlers));
  EXPECT_EQ(decls.count("Relay"), 0u);  // downstream call: not local
  EXPECT_EQ(decls.count("Log"), 0u);    // external output
}

TEST(BuildCommuteContext, DeclarationsWinOverInference) {
  // Inference says Stamp is kMutate; a declaration can assert better
  // (e.g. the native implementation is known commutative).
  csp::CommDecls declared;
  declared["Stamp"] =
      OpCommSpec{{"stamps"}, CommLevel::kAbelian, csp::FoldOp::kAdd};
  const CommuteContext ctx = build_commute_context(
      {{"R", registry_program(), declared},
       {"C", seq({call("R", "Stamp", {}, "s"), print(var("s"))}), {}}},
      "C");
  const OpCommSpec* spec = ctx.summaries.lookup("R", "Stamp");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->level, CommLevel::kAbelian);
  // Peer op tracking: C itself is excluded later, but its ops are known.
  ASSERT_EQ(ctx.peer_ops.count("C"), 1u);
  EXPECT_EQ(ctx.peer_ops.at("C").at("R"), std::set<std::string>{"Stamp"});
}

// ---- Use-class analysis ---------------------------------------------------

TEST(UseClass, OrderedKillsAndBooleanContexts) {
  // Dead: never read again.
  EXPECT_EQ(use_of(seq({send("S", "Op", {lit(Value(1))})}), "v"),
            UseClass::kUnused);
  // Boolean-only: an If condition.
  EXPECT_EQ(use_of(if_(var("v"), assign("x", lit(Value(1)))), "v"),
            UseClass::kBooleanOnly);
  // Value use: printed.
  EXPECT_EQ(use_of(print(var("v")), "v"), UseClass::kValueUsed);
  // A must-write kills later reads on the path...
  EXPECT_EQ(use_of(seq({assign("v", lit(Value(0))), print(var("v"))}), "v"),
            UseClass::kUnused);
  EXPECT_EQ(use_of(seq({call("S", "Op", {}, "v"), print(var("v"))}), "v"),
            UseClass::kUnused);
  // ...but a read before the kill still counts.
  EXPECT_EQ(use_of(seq({if_(var("v"), csp::nop()), assign("v", lit(Value(0))),
                        print(var("v"))}),
                   "v"),
            UseClass::kBooleanOnly);
  // Loop bodies join conservatively (zero iterations possible: no kill).
  EXPECT_EQ(
      use_of(seq({while_(var("go"), seq({call("S", "Op", {}, "v"),
                                         if_(var("v"), csp::nop())})),
                  print(var("v"))}),
             "v"),
      UseClass::kValueUsed);
  EXPECT_EQ(use_join(UseClass::kUnused, UseClass::kBooleanOnly),
            UseClass::kBooleanOnly);
  EXPECT_EQ(verify_mode_for(UseClass::kUnused), VerifyMode::kDead);
  EXPECT_EQ(verify_mode_for(UseClass::kBooleanOnly), VerifyMode::kBoolean);
  EXPECT_EQ(verify_mode_for(UseClass::kValueUsed), VerifyMode::kExact);
}

// ---- Cross-process SAFE widening ------------------------------------------

CommuteContext two_client_ctx(const csp::StmtPtr& c0, const csp::StmtPtr& c1,
                              bool with_stamp = true) {
  return build_commute_context(
      {{"R", registry_program(with_stamp), {}}, {"C0", c0, {}},
       {"C1", c1, {}}},
      "C0");
}

TEST(ClassifyWidening, SharedAbelianTargetClassifiesSafeWithContext) {
  auto left = call("R", "Add", {lit(Value(1))}, "a");
  auto right = seq({send("R", "Note", {lit(Value(2))}),
                    print(lit(Value("done")))});
  const CommuteContext ctx = two_client_ctx(seq({left, right}),
                                            send("R", "Note", {lit(Value(3))}));
  std::vector<Finding> findings;
  SiteReport strict = classify_split(left, right, CommEffects{}, {}, "site",
                                     false, findings, nullptr);
  EXPECT_EQ(strict.cls, ForkClass::kSpeculative);  // shared target R

  findings.clear();
  SiteReport widened = classify_split(left, right, CommEffects{}, {}, "site",
                                      false, findings, &ctx);
  EXPECT_EQ(widened.cls, ForkClass::kSafe);
  EXPECT_EQ(widened.commuting_targets, std::vector<std::string>{"R"});
  const Finding* safe = nullptr;
  for (const auto& f : findings) {
    if (f.code == "commute-safe") safe = &f;
  }
  ASSERT_NE(safe, nullptr);
  EXPECT_FALSE(safe->commutativity.empty());
}

TEST(ClassifyWidening, NonCommutingPeerOpBreaksTheProof) {
  auto left = call("R", "Add", {lit(Value(1))}, "a");
  auto right = seq({send("R", "Note", {lit(Value(2))}),
                    print(lit(Value("done")))});
  // The peer hammers Stamp (kMutate on {stamps}): disjoint from the
  // halves' groups, so the proof still goes through...
  const CommuteContext stamp_peer = two_client_ctx(
      seq({left, right}), call("R", "Stamp", {}, "s"));
  std::vector<Finding> findings;
  EXPECT_EQ(classify_split(left, right, CommEffects{}, {}, "site", false,
                           findings, &stamp_peer)
                .cls,
            ForkClass::kSafe);
  // ...but a peer writing the same group ({count}, mutating) kills it.
  csp::CommDecls declared;
  declared["Smash"] = OpCommSpec{{"count"}, CommLevel::kMutate};
  const CommuteContext smash_peer = build_commute_context(
      {{"R", registry_program(), declared},
       {"C0", seq({left, right}), {}},
       {"C1", send("R", "Smash", {}), {}}},
      "C0");
  findings.clear();
  EXPECT_EQ(classify_split(left, right, CommEffects{}, {}, "site", false,
                           findings, &smash_peer)
                .cls,
            ForkClass::kSpeculative);
}

TEST(ClassifyWidening, MixedFoldsOnSharedGroupStaySpeculative) {
  // Add (`count += 1`) and Scale (`count *= 2`) are each abelian on
  // {count}, but (x+a)*b != x*b+a: a split firing them from opposite
  // halves must not be widened to SAFE.
  std::map<std::string, csp::StmtPtr> handlers;
  handlers["Add"] = seq({
      assign("count", csp::add(var("count"), lit(Value(1)))),
      reply(lit(Value(true))),
  });
  handlers["Scale"] = seq({
      assign("count", csp::mul(var("count"), lit(Value(2)))),
      reply(lit(Value(true))),
  });
  csp::StmtPtr svc = csp::service_loop(std::move(handlers));

  auto left = call("R", "Add", {}, "a");
  auto mixed = seq({send("R", "Scale", {}), print(lit(Value("done")))});
  auto uniform = seq({send("R", "Add", {}), print(lit(Value("done")))});
  const CommuteContext mixed_ctx = build_commute_context(
      {{"R", svc, {}}, {"C0", seq({left, mixed}), {}}}, "C0");
  const CommuteContext uniform_ctx = build_commute_context(
      {{"R", svc, {}}, {"C0", seq({left, uniform}), {}}}, "C0");

  std::vector<Finding> findings;
  EXPECT_EQ(classify_split(left, mixed, CommEffects{}, {}, "site", false,
                           findings, &mixed_ctx)
                .cls,
            ForkClass::kSpeculative);
  findings.clear();
  EXPECT_EQ(classify_split(left, uniform, CommEffects{}, {}, "site", false,
                           findings, &uniform_ctx)
                .cls,
            ForkClass::kSafe);
}

TEST(BuildCommuteContext, CallSiteTypesGateAdditiveFolds) {
  // Every site numeric — a literal and a loop counter the caller-side
  // fixpoint proves — keeps Note abelian.
  const CommuteContext numeric_ctx = build_commute_context(
      {{"R", registry_program(), {}},
       {"C0", send("R", "Note", {lit(Value(1))}), {}},
       {"C1",
        seq({assign("i", lit(Value(0))),
             while_(csp::lt(var("i"), lit(Value(3))),
                    seq({send("R", "Note", {var("i")}),
                         assign("i", csp::add(var("i"), lit(Value(1))))}))}),
        {}}},
      "C0");
  ASSERT_NE(numeric_ctx.summaries.lookup("R", "Note"), nullptr);
  EXPECT_EQ(numeric_ctx.summaries.lookup("R", "Note")->level,
            CommLevel::kAbelian);
  EXPECT_EQ(numeric_ctx.summaries.lookup("R", "Note")->fold,
            csp::FoldOp::kAdd);

  // One string-passing site demotes the op: value_add would concatenate,
  // and "ab" vs "ba" is an observable reordering.
  const CommuteContext string_ctx = build_commute_context(
      {{"R", registry_program(), {}},
       {"C0", send("R", "Note", {lit(Value(1))}), {}},
       {"C1", send("R", "Note", {lit(Value("ab"))}), {}}},
      "C0");
  ASSERT_NE(string_ctx.summaries.lookup("R", "Note"), nullptr);
  EXPECT_EQ(string_ctx.summaries.lookup("R", "Note")->level,
            CommLevel::kMutate);

  // A computed-target site could reach any process: it taints the op name.
  const CommuteContext dyn_ctx = build_commute_context(
      {{"R", registry_program(), {}},
       {"C0", send("R", "Note", {lit(Value(1))}), {}},
       {"C1", csp::send_dyn(lit(Value("R")), "Note", {lit(Value(2))}), {}}},
      "C0");
  ASSERT_NE(dyn_ctx.summaries.lookup("R", "Note"), nullptr);
  EXPECT_EQ(dyn_ctx.summaries.lookup("R", "Note")->level, CommLevel::kMutate);

  // A variable fed by a call reply is unproven: the reply could be
  // anything, so the argument does not type as numeric.
  const CommuteContext reply_ctx = build_commute_context(
      {{"R", registry_program(), {}},
       {"C0",
        seq({call("Q", "Get", {}, "v"), send("R", "Note", {var("v")})}),
        {}}},
      "C0");
  ASSERT_NE(reply_ctx.summaries.lookup("R", "Note"), nullptr);
  EXPECT_EQ(reply_ctx.summaries.lookup("R", "Note")->level,
            CommLevel::kMutate);
}

TEST(ClassifyWidening, MixedOpsReportPartialCommute) {
  auto left = call("R", "Stamp", {}, "s");  // kMutate: cannot commute
  auto right = seq({call("R", "Stamp", {}, "t"), print(var("t"))});
  const CommuteContext ctx =
      two_client_ctx(seq({left, right}), send("R", "Note", {lit(Value(1))}));
  std::vector<Finding> findings;
  SiteReport rep = classify_split(left, right, CommEffects{}, {}, "site",
                                  false, findings, &ctx);
  EXPECT_EQ(rep.cls, ForkClass::kSpeculative);
  EXPECT_TRUE(rep.commuting_targets.empty());
}

// ---- transform::reclassify ------------------------------------------------

csp::StmtPtr streamed_client(bool with_stamp) {
  std::vector<csp::StmtPtr> body;
  body.push_back(call("R", "Add", {lit(Value(1))}, "a"));
  if (with_stamp) {
    body.push_back(call("R", "Stamp", {}, "s"));
    body.push_back(if_(var("s"), assign("x", csp::add(var("x"),
                                                      lit(Value(1))))));
  }
  body.push_back(send("R", "Note", {var("i")}));
  body.push_back(assign("i", csp::add(var("i"), lit(Value(1)))));
  csp::StmtPtr client = seq({
      assign("i", lit(Value(0))),
      assign("x", lit(Value(0))),
      while_(csp::lt(var("i"), lit(Value(3))), seq(std::move(body))),
      print(var("x")),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(true));
  };
  return transform::stream_calls(client, opts).program;
}

std::size_t count_mode(const csp::StmtPtr& program, csp::ForkMode mode) {
  std::size_t n = 0;
  csp::visit_preorder(program.get(), [&](const csp::Stmt& s) {
    if (s.kind == csp::StmtKind::kFork &&
        static_cast<const csp::ForkStmt&>(s).mode == mode) {
      ++n;
    }
  });
  return n;
}

TEST(Reclassify, UpgradesAbelianForksToSafe) {
  csp::StmtPtr client = streamed_client(/*with_stamp=*/false);
  const CommuteContext ctx =
      two_client_ctx(client, client, /*with_stamp=*/false);
  ASSERT_GT(count_mode(client, csp::ForkMode::kSpeculative), 0u);

  transform::ReclassifyResult r = transform::reclassify(client, {&ctx});
  EXPECT_GT(r.upgraded, 0u);
  EXPECT_EQ(count_mode(r.program, csp::ForkMode::kSpeculative), 0u);
  EXPECT_GT(count_mode(r.program, csp::ForkMode::kSafe), 0u);
  bool saw = false;
  for (const auto& f : r.findings) saw |= f.code == "upgraded-to-safe";
  EXPECT_TRUE(saw);

  // Idempotent: a second run finds nothing left to do.
  transform::ReclassifyResult again =
      transform::reclassify(r.program, {&ctx});
  EXPECT_EQ(again.upgraded, 0u);
  EXPECT_EQ(again.annotated, 0u);
  EXPECT_EQ(again.program, r.program);  // shared, not copied
}

TEST(Reclassify, AnnotatesVerifyModesOnContendedForks) {
  csp::StmtPtr client = streamed_client(/*with_stamp=*/true);
  const CommuteContext ctx = two_client_ctx(client, client);
  transform::ReclassifyResult r = transform::reclassify(client, {&ctx});
  EXPECT_GT(r.annotated, 0u);

  std::map<std::string, VerifyMode> modes;
  csp::visit_preorder(r.program.get(), [&](const csp::Stmt& s) {
    if (s.kind != csp::StmtKind::kFork) return;
    for (const auto& [v, m] : static_cast<const csp::ForkStmt&>(s).verify) {
      modes[v] = m;
    }
  });
  // Add's reply is never read; Stamp's only drives a branch.
  ASSERT_EQ(modes.count("a"), 1u);
  EXPECT_EQ(modes.at("a"), VerifyMode::kDead);
  ASSERT_EQ(modes.count("s"), 1u);
  EXPECT_EQ(modes.at("s"), VerifyMode::kBoolean);
}

TEST(Reclassify, NullContextIsANoOp) {
  csp::StmtPtr client = streamed_client(/*with_stamp=*/true);
  transform::ReclassifyResult r = transform::reclassify(client, {});
  EXPECT_EQ(r.program, client);
  EXPECT_EQ(r.upgraded, 0u);
  EXPECT_EQ(r.annotated, 0u);
}

}  // namespace
}  // namespace ocsp::analysis
