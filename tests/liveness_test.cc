// Liveness machinery of section 3.3: the left-thread timeout, the retry
// limit L with pessimistic fallback, and the control-plane retry needed on
// lossy links ("the broadcast must be live in the sense that if repeated
// broadcasts are made, a message will eventually be delivered").
#include <gtest/gtest.h>

#include "core/workloads.h"
#include "speculation/messages.h"
#include "transform/transform.h"

namespace ocsp {
namespace {

using csp::lit;
using csp::Value;
using csp::var;

// A client whose streamed call is *always* mispredicted: the echo server
// returns the argument, the predictor insists on -1.
baseline::Scenario always_wrong_scenario(int calls, int retry_limit) {
  csp::StmtPtr client = csp::seq({
      csp::assign("i", lit(Value(0))),
      csp::assign("r", lit(Value(0))),
      csp::while_(csp::lt(var("i"), lit(Value(calls))),
                  csp::seq({
                      csp::call("S", "Echo", {var("i")}, "r"),
                      csp::assign("i", csp::add(var("i"), lit(Value(1)))),
                  })),
      csp::print(csp::list_of({lit(Value("done")), var("r")})),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(-1));
  };
  client = transform::stream_calls(client, opts).program;

  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Echo"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return args[0];
  };
  csp::ServiceConfig sc;
  sc.service_time = sim::microseconds(10);

  baseline::Scenario scenario;
  scenario.options.default_link.latency =
      net::fixed_latency(sim::microseconds(100));
  scenario.options.spec.retry_limit = retry_limit;
  scenario.add("X", std::move(client));
  scenario.add("S", csp::native_service(std::move(handlers), sc));
  return scenario;
}

TEST(Liveness, RetryLimitFallsBackToPessimistic) {
  auto scenario = always_wrong_scenario(10, /*retry_limit=*/2);
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  // Every speculative attempt value-faults; after L=2 consecutive aborts
  // the site must execute pessimistically.
  EXPECT_GE(result.stats.aborts_value_fault, 2u);
  EXPECT_GE(result.stats.sequential_forks, 6u) << result.stats.to_string();
}

TEST(Liveness, RetryLimitPreservesTrace) {
  auto scenario = always_wrong_scenario(6, 1);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
}

TEST(Liveness, SlowServerTriggersForkTimeoutAbort) {
  core::PutLineParams p;
  p.lines = 2;
  p.net.latency = sim::microseconds(100);
  p.service_time = sim::milliseconds(20);  // reply far beyond the timeout
  p.spec.fork_timeout = sim::milliseconds(5);
  auto scenario = core::putline_scenario(p);
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GE(result.stats.aborts_timeout, 1u) << result.stats.to_string();
  // Trace must still match the sequential run.
  auto pessimistic = baseline::run_scenario(scenario, false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pessimistic.trace, result.trace, &why))
      << why;
}

baseline::Scenario lossy_control_scenario(bool retry) {
  core::PutLineParams p;
  p.lines = 5;
  p.net.latency = sim::microseconds(200);
  p.spec.control_retry = retry;
  p.spec.control_retry_interval = sim::milliseconds(2);
  p.spec.control_retry_limit = 30;
  // Give up reasonably fast when a guard can never resolve.
  p.spec.join_wait_timeout = sim::milliseconds(50);
  auto scenario = core::putline_scenario(p);
  net::LinkConfig lossy = core::make_link(p.net);
  lossy.drop_probability = 0.7;
  lossy.drop_filter = [](const net::Message& m) {
    return dynamic_cast<const spec::ControlMessage*>(&m) != nullptr;
  };
  scenario.links.push_back({"X", "Y", lossy});
  return scenario;
}

TEST(Liveness, LossyControlPlaneWithRetryCompletes) {
  auto scenario = lossy_control_scenario(/*retry=*/true);
  auto result =
      baseline::run_scenario(scenario, true, sim::seconds(30));
  EXPECT_TRUE(result.all_completed) << result.stats.to_string();
}

TEST(Liveness, LossyControlPlaneRunsStayCorrect) {
  auto scenario = lossy_control_scenario(/*retry=*/true);
  auto pessimistic = baseline::run_scenario(scenario, false, sim::seconds(30));
  auto optimistic = baseline::run_scenario(scenario, true, sim::seconds(30));
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
}

TEST(Liveness, ControlRetryExhaustionStallsPeerFlushButNeverCorrupts) {
  // Loss so heavy that all copies of a control broadcast are likely lost
  // within a 2-message retry budget.  In putline the client owns every
  // guess and resolves it locally, so exhaustion does not abort the owner;
  // the failure mode is on the *receiver*: the server never learns COMMIT
  // for some guesses, so its guarded events stay buffered.  Degradation
  // must be graceful — what the server did flush is a faithful prefix of
  // the sequential run, and the owner's trace is untouched.
  auto scenario = lossy_control_scenario(/*retry=*/true);
  scenario.options.spec.control_retry_limit = 2;
  for (auto& link : scenario.links) link.config.drop_probability = 0.9;
  auto result = baseline::run_scenario(scenario, true, sim::seconds(30));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  auto pessimistic =
      baseline::run_scenario(scenario, false, sim::seconds(30));
  ASSERT_TRUE(pessimistic.all_completed);
  // The owner (process 0) commits locally; its observable sequence is exact.
  std::string why;
  EXPECT_TRUE(trace::compare_process_trace(pessimistic.trace, result.trace,
                                           ProcessId{0}, &why))
      << why;
  // The receiver (process 1) stalls once the budget is exhausted: fewer
  // events flush than in the sequential run...
  const auto& ref = pessimistic.trace.for_process(ProcessId{1});
  const auto& got = result.trace.for_process(ProcessId{1});
  EXPECT_LT(got.size(), ref.size())
      << "a 2-copy budget at 90% loss should strand at least one COMMIT";
  // ...but every event that did flush matches the sequential run in order
  // and value (prefix property — exhaustion truncates, never corrupts).
  ASSERT_LE(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "event " << i << ": "
                              << trace::to_string(got[i]) << " vs "
                              << trace::to_string(ref[i]);
  }
  // Restoring an adequate budget on the very same lossy link recovers full
  // trace equality (LossyControlPlaneRunsStayCorrect covers the default).
  scenario.options.spec.control_retry_limit = 30;
  auto recovered = baseline::run_scenario(scenario, true, sim::seconds(30));
  ASSERT_TRUE(recovered.all_completed) << recovered.stats.to_string();
  EXPECT_TRUE(trace::compare_traces(pessimistic.trace, recovered.trace, &why))
      << why;
}

TEST(Liveness, RetryLimitFallsBackUnderSustainedDataLoss) {
  // Data-plane loss with the reliable transport on: retransmissions keep
  // every call alive, but the retransmit delay blows repeated fork
  // timeouts at the streamed site until retry limit L demotes it.
  core::PutLineParams p;
  p.lines = 8;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(100);
  p.spec.fork_timeout = sim::milliseconds(2);
  p.spec.retry_limit = 2;
  p.spec.control_retry = true;
  p.spec.control_retry_interval = sim::milliseconds(2);
  auto scenario = core::putline_scenario(p);
  scenario.options.reliable.enabled = true;
  scenario.options.reliable.rto_initial = sim::milliseconds(4);
  scenario.options.fault_plan.enabled = true;
  scenario.options.fault_plan.data.drop = 0.6;
  auto result = baseline::run_scenario(scenario, true, sim::seconds(30));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_GT(result.metrics.counter_or("retransmissions"), 0u);
  EXPECT_GE(result.stats.aborts_timeout, 1u) << result.stats.to_string();
  EXPECT_GE(result.stats.sequential_forks, 1u) << result.stats.to_string();
  // The fault-free sequential run is the Theorem 1 reference.
  auto reference =
      baseline::run_scenario(core::putline_scenario(p), false);
  ASSERT_TRUE(reference.all_completed);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(reference.trace, result.trace, &why))
      << why;
}

TEST(Liveness, SpeculationDisabledNeverForksSpeculatively) {
  core::PutLineParams p;
  p.lines = 4;
  auto result = baseline::run_scenario(core::putline_scenario(p), false);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.stats.sequential_forks, result.stats.forks);
  EXPECT_EQ(result.stats.checkpoints, 0u + result.stats.checkpoints);
  EXPECT_EQ(result.stats.commits, 0u);
  EXPECT_EQ(result.stats.control_sent, 0u);
}

}  // namespace
}  // namespace ocsp
