// Happens-before validation of committed traces: hand-built positive and
// negative cases for the checker itself, then every canonical workload's
// optimistic committed trace — including the heavy-rollback scenarios —
// must pass it.
#include <gtest/gtest.h>

#include "core/workloads.h"
#include "trace/causality.h"

namespace ocsp {
namespace {

using trace::CommittedTrace;
using trace::ObservableEvent;

ObservableEvent mk(ObservableEvent::Kind kind, ProcessId p, ProcessId peer,
                   std::string op, csp::Value data) {
  ObservableEvent e;
  e.kind = kind;
  e.process = p;
  e.peer = peer;
  e.op = std::move(op);
  e.data = std::move(data);
  return e;
}

TEST(Causality, AcceptsSimpleExchange) {
  CommittedTrace t;
  t.append(mk(ObservableEvent::Kind::kSend, 0, 1, "Hi", csp::Value(1)));
  t.append(mk(ObservableEvent::Kind::kReceive, 1, 0, "Hi", csp::Value(1)));
  t.append(mk(ObservableEvent::Kind::kSend, 1, 0, "Yo", csp::Value(2)));
  t.append(mk(ObservableEvent::Kind::kReceive, 0, 1, "Yo", csp::Value(2)));
  auto report = trace::check_causality(t);
  EXPECT_TRUE(report) << report.why;
  EXPECT_EQ(report.matched_messages, 2u);
}

TEST(Causality, RejectsDanglingReceive) {
  CommittedTrace t;
  t.append(mk(ObservableEvent::Kind::kReceive, 1, 0, "Hi", csp::Value(1)));
  auto report = trace::check_causality(t);
  EXPECT_FALSE(report);
  EXPECT_NE(report.why.find("no progress"), std::string::npos);
}

TEST(Causality, RejectsPayloadMismatch) {
  CommittedTrace t;
  t.append(mk(ObservableEvent::Kind::kSend, 0, 1, "Hi", csp::Value(1)));
  t.append(mk(ObservableEvent::Kind::kReceive, 1, 0, "Hi", csp::Value(2)));
  auto report = trace::check_causality(t);
  EXPECT_FALSE(report);
  EXPECT_NE(report.why.find("does not match"), std::string::npos);
}

TEST(Causality, RejectsCrossCycle) {
  // P0 receives from P1 before sending to it, and vice versa: a cycle.
  CommittedTrace t;
  t.append(mk(ObservableEvent::Kind::kReceive, 0, 1, "B", csp::Value(2)));
  t.append(mk(ObservableEvent::Kind::kSend, 0, 1, "A", csp::Value(1)));
  t.append(mk(ObservableEvent::Kind::kReceive, 1, 0, "A", csp::Value(1)));
  t.append(mk(ObservableEvent::Kind::kSend, 1, 0, "B", csp::Value(2)));
  auto report = trace::check_causality(t);
  EXPECT_FALSE(report);
}

TEST(Causality, LocalEventsCounted) {
  CommittedTrace t;
  t.append(mk(ObservableEvent::Kind::kExternalOutput, 0, kNoProcess, "",
              csp::Value("x")));
  t.append(mk(ObservableEvent::Kind::kCallReturn, 0, 1, "", csp::Value(1)));
  auto report = trace::check_causality(t);
  EXPECT_TRUE(report) << report.why;
  EXPECT_EQ(report.local_events, 2u);
}

// ---- Every workload's committed optimistic trace is causally sound -------

void expect_causal(const baseline::Scenario& scenario) {
  auto result = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  auto report = trace::check_causality(result.trace);
  EXPECT_TRUE(report) << report.why;
  EXPECT_GT(report.matched_messages, 0u);
}

TEST(Causality, PutLineWithFaults) {
  core::PutLineParams p;
  p.lines = 10;
  p.fail_probability = 0.3;
  expect_causal(core::putline_scenario(p));
}

TEST(Causality, WriteThroughTimeFault) {
  core::WriteThroughParams p;
  p.force_fault = true;
  p.transactions = 3;
  expect_causal(core::write_through_scenario(p));
}

TEST(Causality, MutualCycleAfterConvergence) {
  core::MutualParams p;
  p.crossing = true;
  expect_causal(core::mutual_scenario(p));
}

TEST(Causality, RelayPipeline) {
  core::PipelineParams p;
  p.calls = 6;
  p.chain_depth = 3;
  p.stream_relays = true;
  expect_causal(core::pipeline_scenario(p));
}

TEST(Causality, ReplayStrategyRuns) {
  core::DbFsParams p;
  p.transactions = 6;
  p.update_fail_probability = 0.5;
  p.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  expect_causal(core::db_fs_scenario(p));
}

}  // namespace
}  // namespace ocsp
