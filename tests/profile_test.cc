// Causal-profiler tests: the time-accounting breakdown must be an exact
// partition of every process's span, abort attribution must reconcile
// event-for-event with SpecStats, the critical path must be causally valid
// and bounded by the run, SAFE-elided sites must show up as zero-cost
// profit, and the ocsp-prof-v1 export must round-trip through the JSON
// parser.  These are the acceptance invariants of the profiling subsystem.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/scenario.h"
#include "core/workloads.h"
#include "exec/threaded.h"
#include "obs/attribution.h"
#include "obs/prof_json.h"
#include "obs/profile.h"
#include "util/json.h"

namespace ocsp {
namespace {

using obs::EventKind;
using obs::TimeCategory;

baseline::RunResult run_fig5(bool speculation = true) {
  core::WriteThroughParams p;
  p.force_fault = true;  // X->Z fast, Y->Z slow: the guaranteed mis-guess
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(10);
  return baseline::run_scenario(core::write_through_scenario(p),
                                speculation);
}

baseline::RunResult run_safe_fanout() {
  core::SafeFanoutParams p;
  p.servers = 4;
  p.net.latency = sim::microseconds(300);
  return baseline::run_scenario(core::safe_fanout_scenario(p), true);
}

void expect_exact_partition(const obs::RunProfile& profile) {
  std::int64_t span_sum = 0;
  obs::TimeBreakdown global_check;
  for (const auto& p : profile.per_process) {
    EXPECT_EQ(p.breakdown.total(), p.span_ns)
        << "process " << p.name << " breakdown does not partition its span";
    EXPECT_GE(p.span_ns, 0);
    span_sum += p.span_ns;
    global_check.add(p.breakdown);
  }
  EXPECT_EQ(span_sum, profile.total_process_ns);
  EXPECT_EQ(profile.global.total(), profile.total_process_ns);
  for (std::size_t i = 0; i < obs::kTimeCategoryCount; ++i) {
    EXPECT_EQ(profile.global.ns[i], global_check.ns[i]);
    EXPECT_GE(profile.global.ns[i], 0);
  }
}

// ---- Time accounting ------------------------------------------------------

TEST(Profile, Fig5BreakdownSumsToTotalProcessTime) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);

  EXPECT_FALSE(profile.dual_clock);
  EXPECT_FALSE(profile.per_process.empty());
  expect_exact_partition(profile);

  // force_fault makes the write-through guess wrong: discarded compute must
  // surface as wasted time, and the re-execution as useful time.
  EXPECT_GT(profile.global[TimeCategory::kWasted], 0);
  EXPECT_GT(profile.global[TimeCategory::kUseful], 0);
  EXPECT_GT(profile.global[TimeCategory::kStall], 0);
  // Every discarded nanosecond matched a recorded compute segment.
  EXPECT_EQ(profile.unmatched_wasted_ns, 0);
}

TEST(Profile, PessimisticRunWastesNothing) {
  const auto result = run_fig5(/*speculation=*/false);
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);
  expect_exact_partition(profile);
  EXPECT_EQ(profile.global[TimeCategory::kWasted], 0);
  EXPECT_EQ(profile.global[TimeCategory::kVerify], 0);
  EXPECT_GT(profile.global[TimeCategory::kUseful], 0);
}

// ---- Critical path --------------------------------------------------------

TEST(Profile, CriticalPathIsCausallyValidAndBounded) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);
  const auto& cp = profile.critical_path;

  EXPECT_TRUE(cp.causally_valid);
  EXPECT_GT(cp.length_ns, 0);
  EXPECT_LE(cp.length_ns, profile.run_span_ns);
  EXPECT_EQ(cp.breakdown.total(), cp.length_ns);
  ASSERT_FALSE(cp.steps.empty());
  for (std::size_t i = 1; i < cp.steps.size(); ++i) {
    EXPECT_LE(cp.steps[i - 1].to_ns, cp.steps[i].to_ns);
  }
  // The speedup bound the path implies must be a genuine upper bound on 1.
  EXPECT_GE(profile.global[TimeCategory::kUseful], cp.length_ns == 0
                ? 0
                : cp.breakdown[TimeCategory::kUseful]);
}

// ---- Abort attribution ----------------------------------------------------

TEST(Attribution, Fig5ReconcilesExactlyWithSpecStats) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto report =
      obs::build_attribution(*result.recorder, result.process_names);

  // Every kAbort event is attributed as either root or cascade...
  EXPECT_EQ(report.abort_events, result.recorder->count(EventKind::kAbort));
  EXPECT_EQ(report.root_abort_events + report.cascade_abort_events,
            report.abort_events);
  // ...and the split reconciles exactly with the legacy counters.
  EXPECT_EQ(report.root_abort_events, result.stats.total_aborts());
  EXPECT_EQ(report.cascade_abort_events, result.stats.aborts_cascade);
  EXPECT_GT(report.abort_events, 0u);

  // Per-site scorecards cover every attributed event.
  std::uint64_t site_roots = 0;
  std::uint64_t site_cascades = 0;
  std::int64_t site_wasted = 0;
  for (const auto& s : report.sites) {
    EXPECT_EQ(s.forks, s.speculative + s.safe_elided + s.sequential)
        << "site " << s.name << ":" << s.site;
    site_roots += s.aborts_root;
    site_cascades += s.aborts_caused;
    site_wasted += s.wasted_downstream_ns;
  }
  EXPECT_EQ(site_roots + report.unattributed_roots,
            report.root_abort_events);
  EXPECT_EQ(site_cascades + report.unattributed_cascades,
            report.cascade_abort_events);
  EXPECT_EQ(report.unattributed_roots, 0u);
  EXPECT_EQ(report.unattributed_cascades, 0u);
  EXPECT_EQ(site_wasted + report.unattributed_wasted_ns,
            report.wasted_total_ns);

  // The forced mis-guess must show a site in the red: downstream waste
  // rooted at it.  (The fault is raised remotely against the guess, so it
  // surfaces as a root abort, not as a join-time kGuessFailed miss.)
  bool found_loss = false;
  for (const auto& s : report.sites) {
    if (s.misses + s.aborts_root > 0 && s.wasted_downstream_ns > 0) {
      found_loss = true;
    }
  }
  EXPECT_TRUE(found_loss);
}

TEST(Attribution, WastedTimeMatchesProfileWastedCategory) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);
  const auto report =
      obs::build_attribution(*result.recorder, result.process_names);
  // Both walks read the same kWorkDiscarded events; totals must agree.
  EXPECT_EQ(report.wasted_total_ns,
            profile.global[TimeCategory::kWasted] +
                profile.unmatched_wasted_ns);
}

TEST(Attribution, SafeElidedSitesScoreAsZeroCostProfit) {
  const auto result = run_safe_fanout();
  ASSERT_TRUE(result.recorder);
  const auto report =
      obs::build_attribution(*result.recorder, result.process_names);

  std::uint64_t elided = 0;
  std::int64_t safe_saved = 0;
  for (const auto& s : report.sites) {
    elided += s.safe_elided;
    if (s.safe_elided > 0) {
      safe_saved += s.saved_ns;
      EXPECT_EQ(s.aborts_root, 0u);
      EXPECT_EQ(s.wasted_downstream_ns, 0);
      EXPECT_GE(s.net_ns(), 0);
    }
  }
  EXPECT_EQ(elided, result.stats.safe_forks);
  EXPECT_GT(elided, 0u);
  // The fan-out win: each elided fork's fork->join window overlaps the
  // other calls' round trips.  (elided_bytes is legitimately 0 here — the
  // fan-out client's env is empty at fork time.)
  EXPECT_GT(safe_saved, 0);
}

// ---- Dual clock -----------------------------------------------------------

TEST(Profile, ThreadedRuntimeRecordsDualClock) {
  core::PutLineParams p;
  p.lines = 4;
  auto scenario = core::putline_scenario(p);
  exec::ThreadedOptions opts;
  opts.seed = scenario.options.seed;
  exec::ThreadedRuntime rt(opts);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < scenario.processes.size(); ++i) {
    const auto& proc = scenario.processes[i];
    rt.add_process(proc.name, proc.program, proc.env, i != 0);
    names.push_back(proc.name);
  }
  ASSERT_TRUE(rt.run());

  const obs::RunRecorder& rec = rt.recorder();
  EXPECT_TRUE(rec.dual_clock());
  ASSERT_FALSE(rec.events().empty());
  for (const auto& e : rec.events()) {
    EXPECT_GE(e.wall_ns, 0) << "event missing wall-clock stamp";
  }
  EXPECT_GT(rec.count(EventKind::kMsgSent), 0u);
  EXPECT_GT(rec.count(EventKind::kMsgDelivered), 0u);
  EXPECT_GT(rec.count(EventKind::kComputeDone), 0u);
  EXPECT_GT(rec.count(EventKind::kProcessCompleted), 0u);

  const auto profile = obs::build_profile(rec, names);
  EXPECT_TRUE(profile.dual_clock);
  expect_exact_partition(profile);
}

// ---- JSON export ----------------------------------------------------------

TEST(ProfJson, RoundTripsWithSchemaVersion) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);
  const auto report =
      obs::build_attribution(*result.recorder, result.process_names);

  const std::string text = obs::prof_json(profile, report);
  const auto doc = util::json_parse(text);
  ASSERT_TRUE(doc.has_value()) << "prof_json emitted invalid JSON";

  const auto* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "ocsp-prof-v1");
  const auto* version = doc->find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, obs::kProfSchemaVersion);

  const auto* accounting = doc->find("time_accounting");
  ASSERT_NE(accounting, nullptr);
  const auto* global = accounting->find("global");
  ASSERT_NE(global, nullptr);
  const auto* total = global->find("total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(total->number),
            profile.total_process_ns);

  const auto* attribution = doc->find("abort_attribution");
  ASSERT_NE(attribution, nullptr);
  const auto* aborts = attribution->find("abort_events");
  ASSERT_NE(aborts, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(aborts->number),
            report.abort_events);
  const auto* sites = attribution->find("sites");
  ASSERT_NE(sites, nullptr);
  EXPECT_EQ(sites->array.size(), report.sites.size());
}

TEST(ProfJson, TablesRenderNonEmpty) {
  const auto result = run_fig5();
  ASSERT_TRUE(result.recorder);
  const auto profile =
      obs::build_profile(*result.recorder, result.process_names);
  const auto report =
      obs::build_attribution(*result.recorder, result.process_names);
  const std::string prof_table = obs::profile_table(profile);
  const std::string attr_table = obs::attribution_table(report);
  EXPECT_NE(prof_table.find("useful"), std::string::npos);
  EXPECT_NE(prof_table.find("Critical path"), std::string::npos);
  EXPECT_NE(attr_table.find("site"), std::string::npos);
}

}  // namespace
}  // namespace ocsp
