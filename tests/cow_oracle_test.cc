// Differential tests for the two state strategies: kDeepCopy (the
// historical O(|state|) checkpoint, kept as the cost-model oracle) and
// kCow (structural-sharing checkpoints).  The strategies may only differ
// in the *cost* they account — committed traces, protocol counters, and
// the environments captured at surviving checkpoints must be identical.
#include <gtest/gtest.h>

#include <string>

#include "core/workloads.h"
#include "util/rng.h"

namespace ocsp {
namespace {

using spec::SpecStats;
using spec::StateStrategy;

/// Strip the strategy-dependent byte accounting so the remaining counters
/// can be compared exactly across strategies.
SpecStats without_byte_counters(SpecStats s) {
  s.checkpoint_bytes_copied = 0;
  s.checkpoint_bytes_shared = 0;
  s.rollback_restore_bytes = 0;
  return s;
}

/// Run `scenario` optimistically under both strategies and check the
/// oracle properties.  `label` tags failures with the workload.
template <typename Params, typename Build>
void expect_strategies_agree(Params params, Build build,
                             const std::string& label) {
  params.spec.state = StateStrategy::kDeepCopy;
  auto deep = baseline::run_scenario(build(params), true);
  params.spec.state = StateStrategy::kCow;
  auto cow = baseline::run_scenario(build(params), true);

  ASSERT_TRUE(deep.all_completed) << label << ": " << deep.stats.to_string();
  ASSERT_TRUE(cow.all_completed) << label << ": " << cow.stats.to_string();

  std::string why;
  EXPECT_TRUE(trace::compare_traces(deep.trace, cow.trace, &why))
      << label << ": " << why;
  EXPECT_EQ(without_byte_counters(deep.stats),
            without_byte_counters(cow.stats))
      << label << ":\n  deep: " << deep.stats.to_string()
      << "\n  cow:  " << cow.stats.to_string();
  // Virtual-time behaviour is identical too: the strategies differ only in
  // real (host) cost, never in simulated outcome.
  EXPECT_EQ(deep.last_completion, cow.last_completion) << label;

  // Cost accounting sanity: both strategies visit the same copy sites with
  // the same payloads, so the bytes the deep oracle materializes are
  // exactly the bytes COW shares instead; the deep oracle shares nothing.
  EXPECT_EQ(cow.stats.checkpoint_bytes_shared,
            deep.stats.checkpoint_bytes_copied)
      << label;
  EXPECT_EQ(deep.stats.checkpoint_bytes_shared, 0u) << label;
}

TEST(CowOracle, PutLineCleanRun) {
  core::PutLineParams p;
  p.lines = 10;
  expect_strategies_agree(p, core::putline_scenario, "putline");
}

TEST(CowOracle, PutLineWithFailuresAndRollbacks) {
  core::PutLineParams p;
  p.lines = 12;
  p.fail_probability = 0.3;  // wrong guesses force rollback + restore
  p.seed = 99;
  expect_strategies_agree(p, core::putline_scenario, "putline-faults");
}

TEST(CowOracle, DbFsWithUpdateFailures) {
  core::DbFsParams p;
  p.transactions = 6;
  p.update_fail_probability = 0.4;
  expect_strategies_agree(p, core::db_fs_scenario, "db_fs");
}

TEST(CowOracle, PipelineChainedGuesses) {
  core::PipelineParams p;
  p.calls = 6;
  p.chain_depth = 3;
  p.stream_relays = true;
  expect_strategies_agree(p, core::pipeline_scenario, "pipeline");
}

TEST(CowOracle, WriteThroughTimeFault) {
  core::WriteThroughParams p;
  p.force_fault = true;  // Figure 4 happens-before cycle: abort + rollback
  expect_strategies_agree(p, core::write_through_scenario, "write_through");
}

TEST(CowOracle, MutualCrossingAborts) {
  core::MutualParams p;
  p.crossing = true;  // Figure 7: both speculations must abort
  expect_strategies_agree(p, core::mutual_scenario, "mutual");
}

TEST(CowOracle, SharedServerInterleaving) {
  core::SharedServerParams p;
  p.calls_per_client = 5;
  expect_strategies_agree(p, core::shared_server_scenario, "shared_server");
}

TEST(CowOracle, SafeFanoutElidedPath) {
  core::SafeFanoutParams p;
  p.servers = 6;
  expect_strategies_agree(p, core::safe_fanout_scenario, "safe_fanout");
}

TEST(CowOracle, CommuteRegistryForgivenJoins) {
  core::CommuteRegistryParams p;
  p.clients = 3;
  p.iterations = 5;
  expect_strategies_agree(p, core::commute_registry_scenario,
                          "commute_registry");
}

TEST(CowOracle, CommuteRegistryAbelianSafeUpgrades) {
  core::CommuteRegistryParams p;
  p.mutate_ops = false;
  expect_strategies_agree(p, core::commute_registry_scenario,
                          "commute_registry_abelian");
}

// The environments captured at checkpoints must be equal across the
// strategies at every surviving checkpoint index — COW snapshots see
// exactly the state the deep copies froze.
TEST(CowOracle, CheckpointEnvsMatchAcrossStrategies) {
  core::PutLineParams p;
  p.lines = 10;
  p.fail_probability = 0.25;
  p.seed = 7;

  p.spec.state = StateStrategy::kDeepCopy;
  auto deep_rt = baseline::make_runtime(core::putline_scenario(p), true);
  deep_rt->run(sim::seconds(120));
  p.spec.state = StateStrategy::kCow;
  auto cow_rt = baseline::make_runtime(core::putline_scenario(p), true);
  cow_rt->run(sim::seconds(120));

  ASSERT_TRUE(deep_rt->all_clients_completed());
  ASSERT_TRUE(cow_rt->all_clients_completed());
  ASSERT_EQ(deep_rt->process_count(), cow_rt->process_count());
  for (ProcessId id : deep_rt->all_process_ids()) {
    const auto deep_cps = deep_rt->process(id).checkpoint_envs();
    const auto cow_cps = cow_rt->process(id).checkpoint_envs();
    ASSERT_EQ(deep_cps.size(), cow_cps.size())
        << deep_rt->process(id).name();
    for (std::size_t i = 0; i < deep_cps.size(); ++i) {
      EXPECT_TRUE(deep_cps[i].first == cow_cps[i].first)
          << deep_rt->process(id).name() << " checkpoint " << i;
      EXPECT_EQ(deep_cps[i].second, cow_cps[i].second)
          << deep_rt->process(id).name() << " checkpoint " << i;
    }
  }
}

// Randomized sweep in the style of safe_elision_test's oracle property:
// across lines, failure rates, latencies, and seeds, deep-copy and COW
// runs commit identical traces and identical protocol counters, and both
// match the pessimistic sequential trace (Theorem 1).
TEST(CowOracle, PropertyStrategiesAgreeAcrossRandomRuns) {
  util::Rng rng(20260805);
  for (int trial = 0; trial < 20; ++trial) {
    core::PutLineParams p;
    p.lines = static_cast<int>(rng.uniform_int(2, 16));
    p.fail_probability = rng.uniform01() * 0.5;
    p.net.latency = sim::microseconds(rng.uniform_int(50, 800));
    p.net.jitter = sim::microseconds(rng.uniform_int(0, 60));
    p.service_time = sim::microseconds(rng.uniform_int(1, 40));
    p.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));

    auto pessimistic = baseline::run_scenario(core::putline_scenario(p), false);
    ASSERT_TRUE(pessimistic.all_completed) << "trial " << trial;

    p.spec.state = StateStrategy::kDeepCopy;
    auto deep = baseline::run_scenario(core::putline_scenario(p), true);
    p.spec.state = StateStrategy::kCow;
    auto cow = baseline::run_scenario(core::putline_scenario(p), true);
    ASSERT_TRUE(deep.all_completed) << "trial " << trial;
    ASSERT_TRUE(cow.all_completed) << "trial " << trial;

    std::string why;
    EXPECT_TRUE(trace::compare_traces(pessimistic.trace, deep.trace, &why))
        << "trial " << trial << " (deep vs sequential): " << why;
    EXPECT_TRUE(trace::compare_traces(deep.trace, cow.trace, &why))
        << "trial " << trial << " (deep vs cow): " << why;
    EXPECT_EQ(without_byte_counters(deep.stats),
              without_byte_counters(cow.stats))
        << "trial " << trial << ":\n  deep: " << deep.stats.to_string()
        << "\n  cow:  " << cow.stats.to_string();
  }
}

}  // namespace
}  // namespace ocsp
