// Unit tests for the trace layer: committed-trace comparison (the Theorem 1
// oracle), the physical timeline, and vector clocks.
#include <gtest/gtest.h>

#include "trace/events.h"
#include "trace/timeline.h"
#include "trace/vector_clock.h"

namespace ocsp::trace {
namespace {

ObservableEvent out_event(ProcessId p, csp::Value v) {
  ObservableEvent e;
  e.kind = ObservableEvent::Kind::kExternalOutput;
  e.process = p;
  e.data = std::move(v);
  return e;
}

ObservableEvent send_event(ProcessId p, ProcessId peer, std::string op,
                           csp::Value v) {
  ObservableEvent e;
  e.kind = ObservableEvent::Kind::kSend;
  e.process = p;
  e.peer = peer;
  e.op = std::move(op);
  e.data = std::move(v);
  return e;
}

TEST(CommittedTrace, AppendsPerProcess) {
  CommittedTrace t;
  t.append(out_event(0, csp::Value(1)));
  t.append(out_event(1, csp::Value(2)));
  t.append(out_event(0, csp::Value(3)));
  EXPECT_EQ(t.for_process(0).size(), 2u);
  EXPECT_EQ(t.for_process(1).size(), 1u);
  EXPECT_EQ(t.for_process(9).size(), 0u);
  EXPECT_EQ(t.total_events(), 3u);
  EXPECT_EQ(t.processes(), (std::vector<ProcessId>{0, 1}));
}

TEST(CompareTraces, EqualTracesMatch) {
  CommittedTrace a, b;
  for (auto* t : {&a, &b}) {
    t->append(send_event(0, 1, "Op", csp::Value(5)));
    t->append(out_event(1, csp::Value("x")));
  }
  std::string why;
  EXPECT_TRUE(compare_traces(a, b, &why)) << why;
}

TEST(CompareTraces, DataDifferenceDetected) {
  CommittedTrace a, b;
  a.append(out_event(0, csp::Value(1)));
  b.append(out_event(0, csp::Value(2)));
  std::string why;
  EXPECT_FALSE(compare_traces(a, b, &why));
  EXPECT_NE(why.find("event 0 differs"), std::string::npos);
}

TEST(CompareTraces, OrderDifferenceDetected) {
  CommittedTrace a, b;
  a.append(out_event(0, csp::Value(1)));
  a.append(out_event(0, csp::Value(2)));
  b.append(out_event(0, csp::Value(2)));
  b.append(out_event(0, csp::Value(1)));
  EXPECT_FALSE(compare_traces(a, b));
}

TEST(CompareTraces, CountDifferenceDetected) {
  CommittedTrace a, b;
  a.append(out_event(0, csp::Value(1)));
  std::string why;
  EXPECT_FALSE(compare_traces(a, b, &why));
}

TEST(CompareTraces, OpAndPeerMatter) {
  CommittedTrace a, b;
  a.append(send_event(0, 1, "A", csp::Value(1)));
  b.append(send_event(0, 2, "A", csp::Value(1)));
  EXPECT_FALSE(compare_traces(a, b));
  CommittedTrace c, d;
  c.append(send_event(0, 1, "A", csp::Value(1)));
  d.append(send_event(0, 1, "B", csp::Value(1)));
  EXPECT_FALSE(compare_traces(c, d));
}

TEST(Timeline, RecordsAndCounts) {
  Timeline tl;
  tl.record({TimelineEntry::Kind::kFork, 10, 0, kNoProcess, "x1"});
  tl.record({TimelineEntry::Kind::kAbort, 20, 0, kNoProcess, "x1"});
  tl.record({TimelineEntry::Kind::kAbort, 30, 1, kNoProcess, "z1"});
  tl.note(40, 0, "done");
  EXPECT_EQ(tl.count(TimelineEntry::Kind::kAbort), 2u);
  EXPECT_EQ(tl.count(TimelineEntry::Kind::kFork), 1u);
  EXPECT_EQ(tl.entries().size(), 4u);
  const std::string s = tl.to_string();
  EXPECT_NE(s.find("fork"), std::string::npos);
  EXPECT_NE(s.find("abort"), std::string::npos);
  tl.clear();
  EXPECT_TRUE(tl.entries().empty());
}

TEST(VectorClock, TickAndGet) {
  VectorClock c;
  EXPECT_EQ(c.get(0), 0u);
  c.tick(0);
  c.tick(0);
  c.tick(1);
  EXPECT_EQ(c.get(0), 2u);
  EXPECT_EQ(c.get(1), 1u);
}

TEST(VectorClock, HappensBefore) {
  VectorClock a, b;
  a.tick(0);
  b = a;
  b.tick(1);
  EXPECT_TRUE(VectorClock::happens_before(a, b));
  EXPECT_FALSE(VectorClock::happens_before(b, a));
  EXPECT_FALSE(VectorClock::happens_before(a, a));
}

TEST(VectorClock, ConcurrentClocks) {
  VectorClock a, b;
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(VectorClock::concurrent(a, b));
  EXPECT_FALSE(VectorClock::concurrent(a, a));
}

TEST(VectorClock, MergeIsPointwiseMax) {
  VectorClock a, b;
  a.tick(0);
  a.tick(0);
  b.tick(0);
  b.tick(1);
  a.merge(b);
  EXPECT_EQ(a.get(0), 2u);
  EXPECT_EQ(a.get(1), 1u);
}

TEST(VectorClock, MessagePassingScenario) {
  // P0 does e1, sends to P1; P1 receives (merge+tick), does e2.
  VectorClock p0, p1;
  p0.tick(0);  // e1
  VectorClock msg = p0;
  p1.merge(msg);
  p1.tick(1);  // receive
  p1.tick(1);  // e2
  EXPECT_TRUE(VectorClock::happens_before(p0, p1));
}

}  // namespace
}  // namespace ocsp::trace
