// Integration tests for call streaming: the scenarios of Figures 1-3.
//
// The PutLine workload runs (a) pessimistically — every call blocks for its
// return, reproducing Figure 2's serial time line — and (b) optimistically
// with call streaming, reproducing Figure 3.  The tests assert the three
// things the paper claims: the committed traces are identical (Theorem 1),
// the streamed run commits one guess per streamed call with no aborts, and
// the streamed run finishes earlier by roughly the hidden round trips.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

core::PutLineParams base_params() {
  core::PutLineParams p;
  p.lines = 8;
  p.net.latency = sim::microseconds(500);
  p.service_time = sim::microseconds(10);
  p.client_compute = sim::microseconds(5);
  return p;
}

TEST(StreamingIntegration, PessimisticBaselineCompletes) {
  auto result =
      baseline::run_scenario(core::putline_scenario(base_params()), false);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.stats.total_aborts(), 0u);
  EXPECT_EQ(result.stats.rollbacks, 0u);
  // 8 round trips of ~1ms plus service and compute time.
  EXPECT_GE(result.last_completion, sim::microseconds(8000));
}

TEST(StreamingIntegration, OptimisticRunCompletes) {
  auto result =
      baseline::run_scenario(core::putline_scenario(base_params()), true);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.stats.total_aborts(), 0u) << result.stats.to_string();
  // One fork per streamed call; each commits.
  EXPECT_EQ(result.stats.forks, 8u);
  EXPECT_EQ(result.stats.commits, 8u);
}

TEST(StreamingIntegration, TracesMatchTheorem1) {
  auto scenario = core::putline_scenario(base_params());
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
  EXPECT_GT(pessimistic.trace.total_events(), 0u);
}

TEST(StreamingIntegration, StreamingHidesRoundTrips) {
  auto scenario = core::putline_scenario(base_params());
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  // Figure 2 pays 8 full round trips; Figure 3 pays roughly one.  Require
  // at least a 3x improvement at this latency/compute ratio.
  EXPECT_LT(optimistic.last_completion * 3, pessimistic.last_completion)
      << "optimistic=" << optimistic.last_completion
      << " pessimistic=" << pessimistic.last_completion;
}

TEST(StreamingIntegration, ValueFaultRollsBackAndMatchesTrace) {
  auto params = base_params();
  params.lines = 6;
  params.fail_probability = 0.5;  // deterministic seeded stream
  auto scenario = core::putline_scenario(params);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why << "\npessimistic:\n"
      << pessimistic.trace.to_string() << "\noptimistic:\n"
      << optimistic.trace.to_string();
}

}  // namespace
}  // namespace ocsp
