// Protocol-level unit tests for SpeculativeProcess: orphan rejection,
// delivery eligibility, guard acquisition, external-output buffering,
// incarnation bumps, and completion detection — exercised through small
// purpose-built runtimes rather than the canonical workloads.
#include <gtest/gtest.h>

#include "baseline/scenario.h"
#include "csp/service.h"
#include "speculation/runtime.h"
#include "transform/transform.h"

namespace ocsp::spec {
namespace {

using csp::lit;
using csp::Value;
using csp::var;

csp::StmtPtr echo_server(sim::Time service = sim::microseconds(10)) {
  std::map<std::string, csp::NativeHandler> handlers;
  handlers["Echo"] = [](const csp::ValueList& args, csp::Env&, util::Rng&) {
    return args[0];
  };
  csp::ServiceConfig sc;
  sc.service_time = service;
  return csp::native_service(std::move(handlers), sc);
}

RuntimeOptions fast_net() {
  RuntimeOptions opts;
  opts.default_link.latency = net::fixed_latency(sim::microseconds(100));
  return opts;
}

// A two-call streamed client with an always-wrong guess on the first call.
csp::StmtPtr wrong_guess_client() {
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {var("a")}, "b"),
      csp::print(var("b")),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(-99));
  };
  return transform::stream_calls(prog, opts).program;
}

TEST(Process, GuardAcquisitionVisibleOnServer) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {lit(Value(2))}, "b"),
      csp::print(var("b")),
  });
  rt.add_process("X", transform::stream_calls(prog).program);
  const ProcessId server = rt.add_process("S", echo_server());
  rt.run(sim::microseconds(150));  // server received both calls by now
  const ThreadCtx* t0 = rt.process(server).thread(0);
  ASSERT_NE(t0, nullptr);
  // The second call carried {x1}; the server must have acquired it.
  EXPECT_EQ(t0->guard.size(), 1u) << t0->guard.to_string();
  EXPECT_TRUE(t0->guard.contains_owner(0));
  rt.run();
  // After the commits cascade the guard empties again.
  EXPECT_TRUE(rt.process(server).thread(0)->guard.empty());
}

TEST(Process, WrongGuessIsObservedByServerThenRolledBack) {
  Runtime rt(fast_net());
  rt.add_process("X", wrong_guess_client());
  const ProcessId server = rt.add_process("S", echo_server());
  rt.run();
  const auto& stats = rt.process(0).stats();
  // Both streamed calls guess -99 and both echoes disagree.
  EXPECT_EQ(stats.aborts_value_fault, 2u);
  // The server processed the mispredicted Echo(-99) speculatively, rolled
  // back, and re-served the corrected Echo(1).
  EXPECT_GE(rt.process(server).stats().rollbacks, 1u);
  // Committed trace shows only the corrected value.
  bool saw_wrong = false;
  for (const auto& e : rt.process(server).committed_events()) {
    if (e.kind == trace::ObservableEvent::Kind::kReceive &&
        e.data == Value(csp::ValueList{Value(-99)})) {
      saw_wrong = true;
    }
  }
  EXPECT_FALSE(saw_wrong);
  EXPECT_TRUE(rt.process(0).completed());
}

TEST(Process, OrphanMessagesAreDiscarded) {
  Runtime rt(fast_net());
  rt.add_process("X", wrong_guess_client());
  rt.add_process("S", echo_server());
  rt.run();
  EXPECT_GE(rt.total_stats().orphans_discarded, 1u);
}

TEST(Process, ExternalOutputBufferedUntilCommit) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(7))}, "a"),
      csp::print(var("a")),  // runs speculatively in the right thread
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::always(Value(7));  // exact guess
  };
  rt.add_process("X", transform::stream_calls(prog, opts).program);
  rt.add_process("S", echo_server());
  rt.run();
  const auto& stats = rt.process(0).stats();
  EXPECT_EQ(stats.externals_buffered, 1u);
  EXPECT_EQ(stats.externals_released, 1u);
  EXPECT_EQ(stats.externals_discarded, 0u);
  // The physical release happened at/after the commit, not at the print.
  sim::Time commit_at = 0, release_at = 0;
  for (const auto& e : rt.timeline().entries()) {
    if (e.kind == trace::TimelineEntry::Kind::kCommit) commit_at = e.when;
    if (e.kind == trace::TimelineEntry::Kind::kExternalRelease) {
      release_at = e.when;
    }
  }
  EXPECT_GE(release_at, commit_at);
}

TEST(Process, MispredictedExternalNeverReleased) {
  Runtime rt(fast_net());
  // The right thread prints the *guessed* value; the guess is wrong, so
  // that output must be discarded, and the re-execution's output released.
  rt.add_process("X", wrong_guess_client());
  rt.add_process("S", echo_server());
  rt.run();
  const auto& stats = rt.process(0).stats();
  EXPECT_GE(stats.externals_discarded, 1u);
  // Exactly one committed output with the correct value 1.
  int outputs = 0;
  for (const auto& e : rt.process(0).committed_events()) {
    if (e.kind == trace::ObservableEvent::Kind::kExternalOutput) {
      ++outputs;
      EXPECT_EQ(e.data, Value(1));
    }
  }
  EXPECT_EQ(outputs, 1);
}

TEST(Process, IncarnationBumpsOnOwnAbort) {
  Runtime rt(fast_net());
  rt.add_process("X", wrong_guess_client());
  rt.add_process("S", echo_server());
  rt.run();
  EXPECT_GE(rt.process(0).current_incarnation(), 1u);
  // A clean run (exact guesses) never bumps.
  Runtime rt2(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {lit(Value(2))}, "b"),
      csp::print(var("b")),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt& c) {
    // Exact guess for an echo server: the call's own argument.
    return csp::PredictorSpec::from_expr(c.args[0]);
  };
  rt2.add_process("X", transform::stream_calls(prog, opts).program);
  rt2.add_process("S", echo_server());
  rt2.run();
  EXPECT_EQ(rt2.process(0).current_incarnation(), 0u);
}

TEST(Process, CompletionRequiresEmptyGuards) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::print(var("a")),
  });
  rt.add_process("X", transform::stream_calls(prog).program);
  rt.add_process("S", echo_server());
  // Stop before the return arrives: the right thread is done with the
  // program but guarded, so the process must not be complete.
  rt.run(sim::microseconds(50));
  EXPECT_FALSE(rt.process(0).completed());
  rt.run();
  EXPECT_TRUE(rt.process(0).completed());
  EXPECT_GT(rt.process(0).completion_time(), sim::microseconds(50));
}

TEST(Process, ServerNeverCompletes) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({csp::print(lit(Value("hi")))});
  rt.add_process("X", prog);
  rt.add_process("S", echo_server());
  rt.run();
  EXPECT_TRUE(rt.process(0).completed());
  EXPECT_FALSE(rt.process(1).completed());
  EXPECT_TRUE(rt.all_clients_completed());
}

TEST(Process, LiveThreadCountReflectsForkChain) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {lit(Value(2))}, "b"),
      csp::call("S", "Echo", {lit(Value(3))}, "c"),
      csp::print(var("c")),
  });
  rt.add_process("X", transform::stream_calls(prog).program);
  rt.add_process("S", echo_server());
  rt.run(sim::microseconds(10));
  // Three left threads awaiting replies plus the rightmost continuation.
  EXPECT_EQ(rt.process(0).live_thread_count(), 4u);
  rt.run();
  EXPECT_EQ(rt.process(0).live_thread_count(), 0u);
}

TEST(Process, StatsBooksBalance) {
  Runtime rt(fast_net());
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {var("a")}, "b"),
      csp::call("S", "Echo", {var("b")}, "c"),
      csp::print(var("c")),
  });
  transform::StreamingOptions opts;
  opts.predictor = [](const csp::CallStmt&) {
    return csp::PredictorSpec::from_expr(csp::lit(Value(1)));
  };
  rt.add_process("X", transform::stream_calls(prog, opts).program);
  rt.add_process("S", echo_server());
  rt.run();
  const auto& s = rt.process(0).stats();
  // Every speculative fork either committed or aborted.
  EXPECT_EQ(s.commits + s.total_aborts(), s.forks - s.sequential_forks);
  EXPECT_EQ(s.joins, s.forks);
}

TEST(Runtime, FindResolvesNames) {
  Runtime rt(fast_net());
  rt.add_process("alpha", csp::seq({csp::nop()}));
  rt.add_process("beta", echo_server());
  EXPECT_EQ(rt.find("alpha"), 0u);
  EXPECT_EQ(rt.find("beta"), 1u);
  EXPECT_EQ(rt.process_count(), 2u);
  EXPECT_EQ(rt.all_process_ids().size(), 2u);
}

TEST(Runtime, PerProcessSpecOverride) {
  RuntimeOptions opts = fast_net();
  opts.spec.speculation_enabled = true;
  Runtime rt(opts);
  SpecConfig off = opts.spec;
  off.speculation_enabled = false;
  csp::StmtPtr prog = csp::seq({
      csp::call("S", "Echo", {lit(Value(1))}, "a"),
      csp::call("S", "Echo", {lit(Value(2))}, "b"),
      csp::print(var("b")),
  });
  rt.add_process("X", transform::stream_calls(prog).program, {}, off);
  rt.add_process("S", echo_server());
  rt.run();
  EXPECT_TRUE(rt.process(0).completed());
  EXPECT_EQ(rt.process(0).stats().sequential_forks,
            rt.process(0).stats().forks);
}

}  // namespace
}  // namespace ocsp::spec
