// exec::ParallelRuntime vs the deterministic simulator.
//
// Theorem 1's oracle, executor edition: the committed trace of a parallel
// run must be *exactly* the sequential simulator's, for every registry
// workload, across seeds and worker counts.  The sequential reference runs
// with RuntimeOptions::per_link_net = true — the same deterministic
// schedule the sharded executor computes — so equality is required
// bit-for-bit, not merely up to reordering.
//
// The GVT tests assert the fencing invariants directly from the window
// audit trail: no drained straggler ever lands below the GVT that fenced
// it, GVT advances strictly, fossil collection stays below the fence, and
// a single shard reproduces the sequential recorder stream byte for byte.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/workloads.h"
#include "exec/parallel.h"
#include "net/message.h"
#include "trace/events.h"

namespace ocsp {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};
constexpr sim::Time kDeadline = sim::seconds(120);

struct Workload {
  std::string name;
  std::function<baseline::Scenario(std::uint64_t seed)> build;
};

// Every registry workload the parallel executor supports (no fault plans,
// no reliable transport), sized for a sweep.
std::vector<Workload> registry_workloads() {
  std::vector<Workload> w;
  w.push_back({"putline", [](std::uint64_t seed) {
                 core::PutLineParams p;
                 p.lines = 6;
                 p.fail_probability = 0.2;
                 p.net.jitter = sim::microseconds(120);
                 p.seed = seed;
                 return core::putline_scenario(p);
               }});
  w.push_back({"db_fs", [](std::uint64_t seed) {
                 core::DbFsParams p;
                 p.transactions = 4;
                 p.update_fail_probability = 0.3;
                 p.seed = seed;
                 return core::db_fs_scenario(p);
               }});
  w.push_back({"pipeline", [](std::uint64_t seed) {
                 core::PipelineParams p;
                 p.calls = 5;
                 p.chain_depth = 3;
                 p.stream_relays = true;
                 p.seed = seed;
                 return core::pipeline_scenario(p);
               }});
  w.push_back({"write_through", [](std::uint64_t seed) {
                 core::WriteThroughParams p;
                 p.force_fault = true;
                 p.transactions = 2;
                 p.seed = seed;
                 return core::write_through_scenario(p);
               }});
  w.push_back({"mutual_fig6", [](std::uint64_t seed) {
                 core::MutualParams p;
                 p.crossing = false;
                 p.seed = seed;
                 return core::mutual_scenario(p);
               }});
  w.push_back({"mutual_fig7", [](std::uint64_t seed) {
                 core::MutualParams p;
                 p.crossing = true;
                 p.seed = seed;
                 return core::mutual_scenario(p);
               }});
  w.push_back({"shared_server", [](std::uint64_t seed) {
                 core::SharedServerParams p;
                 p.clients = 3;
                 p.calls_per_client = 4;
                 p.net.jitter = sim::microseconds(80);
                 p.seed = seed;
                 return core::shared_server_scenario(p);
               }});
  w.push_back({"safe_fanout", [](std::uint64_t seed) {
                 core::SafeFanoutParams p;
                 p.servers = 5;
                 p.seed = seed;
                 return core::safe_fanout_scenario(p);
               }});
  w.push_back({"commute_registry", [](std::uint64_t seed) {
                 core::CommuteRegistryParams p;
                 p.clients = 2;
                 p.iterations = 4;
                 p.seed = seed;
                 return core::commute_registry_scenario(p);
               }});
  w.push_back({"abort_storm", [](std::uint64_t seed) {
                 core::AbortStormParams p;
                 p.calls = 15;
                 p.hit_period = 3;
                 p.seed = seed;
                 return core::abort_storm_scenario(p);
               }});
  w.push_back({"compute_fanout", [](std::uint64_t seed) {
                 core::ComputeFanoutParams p;
                 p.pairs = 4;
                 p.calls = 4;
                 p.miss_period = 3;  // some aborts in the mix
                 p.seed = seed;
                 return core::compute_fanout_scenario(p);
               }});
  // Lossy control plane: exercises the per-link drop draws (consumed
  // before the latency sample) and the blind control re-broadcast.
  w.push_back({"lossy_control", [](std::uint64_t seed) {
                 core::PutLineParams p;
                 p.lines = 5;
                 p.seed = seed;
                 p.spec.control_retry = true;
                 auto scenario = core::putline_scenario(p);
                 scenario.options.default_link.drop_probability = 0.25;
                 scenario.options.default_link.drop_filter =
                     [](const net::Message& m) { return m.control_plane(); };
                 return scenario;
               }});
  return w;
}

baseline::RunResult sequential_reference(baseline::Scenario scenario,
                                         bool speculation) {
  scenario.options.per_link_net = true;
  return baseline::run_scenario(scenario, speculation, kDeadline);
}

void expect_same_run(const std::string& label,
                     const baseline::RunResult& ref,
                     const exec::ParallelRunResult& par) {
  std::string why;
  EXPECT_TRUE(trace::compare_traces(ref.trace, par.result.trace, &why))
      << label << ": " << why;
  EXPECT_EQ(ref.last_completion, par.result.last_completion) << label;
  EXPECT_EQ(ref.all_completed, par.result.all_completed) << label;
  // Protocol counters must agree action for action.  (Stats are not
  // compared wholesale: checkpoints_fossil_collected is the parallel
  // executor's own and stays zero sequentially.)
  EXPECT_EQ(ref.stats.forks, par.result.stats.forks) << label;
  EXPECT_EQ(ref.stats.joins, par.result.stats.joins) << label;
  EXPECT_EQ(ref.stats.commits, par.result.stats.commits) << label;
  EXPECT_EQ(ref.stats.total_aborts(), par.result.stats.total_aborts())
      << label;
  EXPECT_EQ(ref.stats.rollbacks, par.result.stats.rollbacks) << label;
  EXPECT_EQ(ref.stats.control_sent, par.result.stats.control_sent) << label;
  EXPECT_EQ(ref.network.messages_sent, par.result.network.messages_sent)
      << label;
  EXPECT_EQ(ref.network.messages_delivered,
            par.result.network.messages_delivered)
      << label;
  EXPECT_EQ(ref.network.messages_dropped,
            par.result.network.messages_dropped)
      << label;
}

// The tentpole oracle: every workload, eight seeds, every worker count.
TEST(ParallelOracle, CommittedTracesMatchSimulatorEverywhere) {
  for (const auto& workload : registry_workloads()) {
    for (std::uint64_t seed : kSeeds) {
      const baseline::Scenario scenario = workload.build(seed);
      const baseline::RunResult ref = sequential_reference(scenario, true);
      for (int workers : kWorkerCounts) {
        const auto par = exec::run_scenario_parallel(
            scenario, workers, /*speculation=*/true, /*compute_scale=*/0.0,
            kDeadline);
        expect_same_run(workload.name + " seed=" + std::to_string(seed) +
                            " workers=" + std::to_string(workers),
                        ref, par);
      }
    }
  }
}

// Speculation disabled must also shard soundly (the pessimistic baseline
// exercises a different fork path).
TEST(ParallelOracle, PessimisticRunsMatchSimulator) {
  for (const auto& workload : registry_workloads()) {
    const baseline::Scenario scenario = workload.build(/*seed=*/3);
    const baseline::RunResult ref = sequential_reference(scenario, false);
    for (int workers : {1, 4}) {
      const auto par = exec::run_scenario_parallel(
          scenario, workers, /*speculation=*/false, /*compute_scale=*/0.0,
          kDeadline);
      expect_same_run(workload.name + " pessimistic workers=" +
                          std::to_string(workers),
                      ref, par);
    }
  }
}

// A nonzero compute_scale burns real time but must not move virtual time.
TEST(ParallelOracle, ComputeScaleIsTraceInvisible) {
  core::ComputeFanoutParams p;
  p.pairs = 4;
  p.calls = 3;
  p.compute = sim::microseconds(50);
  const baseline::Scenario scenario = core::compute_fanout_scenario(p);
  const baseline::RunResult ref = sequential_reference(scenario, true);
  const auto par = exec::run_scenario_parallel(scenario, 4, true,
                                               /*compute_scale=*/0.05,
                                               kDeadline);
  expect_same_run("compute_scale", ref, par);
}

// With no deadline the executor must report the sequential scheduler's
// post-drain clock — the time of the last event that actually fired — not
// the end of the final GVT window.
TEST(ParallelOracle, NoDeadlineFinishTimeMatchesSequentialClock) {
  core::SharedServerParams p;
  p.clients = 3;
  p.calls_per_client = 4;
  p.net.jitter = sim::microseconds(80);
  const baseline::Scenario scenario = core::shared_server_scenario(p);
  baseline::Scenario seq = scenario;
  seq.options.per_link_net = true;
  const auto ref = baseline::run_scenario(seq, true);  // drain, no deadline
  for (int workers : {1, 4}) {
    const auto par = exec::run_scenario_parallel(scenario, workers, true, 0.0);
    EXPECT_EQ(ref.finished_at, par.result.finished_at)
        << "workers=" << workers;
    // Sanity: the clamp really bites — the last window extends past the
    // last event by construction (its end is gvt + lookahead).
    ASSERT_FALSE(par.windows.empty());
    EXPECT_LE(par.result.finished_at, par.windows.back().end);
  }
}

// ---------------------------------------------------------------------------
// GVT fencing invariants
// ---------------------------------------------------------------------------

exec::ParallelRunResult run_windows_probe(int workers) {
  core::SharedServerParams p;
  p.clients = 4;
  p.calls_per_client = 6;
  p.net.jitter = sim::microseconds(100);
  return exec::run_scenario_parallel(core::shared_server_scenario(p),
                                     workers, true, 0.0, kDeadline);
}

TEST(ParallelGvt, FenceNeverCommitsPastAStraggler) {
  const auto run = run_windows_probe(4);
  ASSERT_FALSE(run.windows.empty());
  ASSERT_GT(run.lookahead, 0);
  sim::Time prev_end = 0;
  sim::Time prev_gvt = 0;
  bool first = true;
  for (const auto& w : run.windows) {
    // GVT is a true lower bound: nothing drained at this fence was due
    // before it, and nothing sent in the previous window could be either.
    EXPECT_GE(w.min_drained_delivery, w.gvt);
    EXPECT_GE(w.min_drained_delivery, prev_end);
    EXPECT_GE(w.gvt, prev_end);
    // Strict monotonicity (bounded-lag: every window advances GVT by at
    // least the lookahead).
    if (!first) {
      EXPECT_GE(w.gvt, prev_gvt + run.lookahead);
    }
    EXPECT_EQ(w.end, w.gvt + run.lookahead);
    // The fossil fence never outruns GVT.
    EXPECT_LE(w.fossil_floor, w.gvt);
    first = false;
    prev_end = w.end;
    prev_gvt = w.gvt;
  }
  const auto& m = run.result.metrics;
  EXPECT_EQ(m.counter_or("gvt_windows"), run.windows.size());
  EXPECT_EQ(m.counter_or("gvt_advances"), run.windows.size());
}

TEST(ParallelGvt, FossilCollectionStaysBelowTheFence) {
  // Heavily speculative run so checkpoints actually accumulate and get
  // fossil-collected at the fences.
  core::AbortStormParams p;
  p.calls = 30;
  p.hit_period = 4;
  auto scenario = core::abort_storm_scenario(p);
  const auto run =
      exec::run_scenario_parallel(scenario, 2, true, 0.0, kDeadline);
  std::uint64_t freed = 0;
  for (const auto& w : run.windows) {
    freed += w.checkpoints_freed;
    EXPECT_LE(w.fossil_floor, w.gvt);
  }
  EXPECT_EQ(freed, run.result.stats.checkpoints_fossil_collected);
  // The safety proof for "freed only below the fence" is the oracle sweep
  // above (fossil collection on + traces still exact); here also pin that
  // the run both collected something and still committed everything.
  EXPECT_GT(run.result.stats.checkpoints, 0u);
  EXPECT_TRUE(run.result.all_completed);
}

TEST(ParallelGvt, SpeculationFloorHoldsReplayBases) {
  // Direct unit probe of the fossil collector: run sequentially to a
  // mid-run deadline, then collect at the speculation floor and check no
  // surviving-checkpoint invariant is violated.
  core::AbortStormParams p;
  p.calls = 20;
  p.hit_period = 3;
  auto scenario = core::abort_storm_scenario(p);
  scenario.options.per_link_net = true;
  auto rt = baseline::make_runtime(scenario, true);
  rt->run(sim::milliseconds(2));
  for (ProcessId id : rt->all_process_ids()) {
    auto& proc = rt->process(id);
    const sim::Time floor = proc.speculation_floor();
    const sim::Time fence =
        std::min(floor, rt->scheduler().now());
    const auto before = proc.checkpoint_times();
    const std::size_t freed = proc.fossil_collect(fence);
    const auto after = proc.checkpoint_times();
    EXPECT_EQ(before.size() - freed, after.size());
    // Everything freed was strictly below the fence: all survivors at or
    // above it are the originals.
    std::size_t above_before = 0, above_after = 0;
    for (sim::Time t : before) above_before += t >= fence ? 1 : 0;
    for (sim::Time t : after) above_after += t >= fence ? 1 : 0;
    EXPECT_EQ(above_before, above_after);
    // Collecting twice at the same fence is a no-op.
    EXPECT_EQ(proc.fossil_collect(fence), 0u);
  }
  // The rest of the run must still be correct after collection.
  rt->run(kDeadline);
  const baseline::RunResult ref =
      sequential_reference(core::abort_storm_scenario(p), true);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(ref.trace, rt->committed_trace(), &why))
      << why;
}

// ---------------------------------------------------------------------------
// Shards=1 bit-for-bit oracle
// ---------------------------------------------------------------------------

// Serialize every Event field except wall_ns (virtual runs leave it -1,
// dual-clock runs stamp real time).
std::string serialize_events(const obs::RunRecorder& rec) {
  std::ostringstream os;
  for (const auto& e : rec.events()) {
    os << static_cast<int>(e.kind) << '|' << e.when << '|' << e.process
       << '|' << e.peer << '|' << e.thread << '|' << e.interval << '|'
       << e.incarnation << '|' << e.guess.to_string() << '|'
       << e.guess_from.to_string() << '|' << static_cast<int>(e.reason)
       << '|' << static_cast<int>(e.control) << '|' << e.msg_id << '|'
       << e.a << '|' << e.b << '|' << e.detail << '\n';
  }
  return os.str();
}

TEST(ParallelGvt, SingleShardReproducesSimulatorEventOrderBitForBit) {
  for (const auto& workload : registry_workloads()) {
    const baseline::Scenario scenario = workload.build(/*seed=*/7);

    baseline::Scenario seq = scenario;
    seq.options.per_link_net = true;
    auto rt = baseline::make_runtime(seq, true);
    rt->run(kDeadline);

    exec::ParallelOptions options;
    options.seed = scenario.options.seed;
    options.workers = 1;
    options.default_link = scenario.options.default_link;
    options.spec = scenario.options.spec;
    options.spec.speculation_enabled = true;
    exec::ParallelRuntime prt(options);
    for (const auto& proc : scenario.processes) {
      prt.add_process(proc.name, proc.program, proc.env);
    }
    for (const auto& link : scenario.links) {
      prt.set_link(prt.find(link.src), prt.find(link.dst), link.config);
    }
    prt.run(kDeadline);

    EXPECT_EQ(serialize_events(rt->recorder()),
              serialize_events(*prt.shard_recorder(0)))
        << workload.name;
  }
}

TEST(ParallelGvt, MergedRecorderKeepsWallStampsAndAllEvents) {
  const auto run = run_windows_probe(4);
  ASSERT_TRUE(run.result.recorder);
  const auto& events = run.result.recorder->events();
  ASSERT_FALSE(events.empty());
  sim::Time prev = 0;
  bool any_wall = false;
  for (const auto& e : events) {
    EXPECT_GE(e.when, prev);  // merged stream is virtual-time ordered
    prev = e.when;
    any_wall = any_wall || e.wall_ns >= 0;
  }
  EXPECT_TRUE(any_wall);  // dual-clock stamps survived the merge
}

}  // namespace
}  // namespace ocsp
