// Observability-layer tests: the structured recorder must reconcile
// exactly with the legacy SpecStats counters, the Chrome trace exporter
// must emit a well-formed document with the shapes the ISSUE promises
// (per-process tracks, commit/abort-tagged slices, PRECEDENCE flows), and
// the metrics snapshot must carry the canonical counters and histograms.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/workloads.h"
#include "obs/chrome_trace.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/json.h"

namespace ocsp {
namespace {

using obs::AbortReason;
using obs::EventKind;

spec::Runtime& run_write_through(std::unique_ptr<spec::Runtime>& holder,
                                 bool force_fault) {
  core::WriteThroughParams p;
  p.force_fault = force_fault;
  p.net.latency = sim::microseconds(100);
  p.service_time = sim::microseconds(10);
  holder = baseline::make_runtime(core::write_through_scenario(p), true);
  holder->run();
  return *holder;
}

spec::Runtime& run_mutual_crossing(std::unique_ptr<spec::Runtime>& holder) {
  core::MutualParams p;
  p.crossing = true;
  p.net.latency = sim::microseconds(200);
  p.service_time = sim::microseconds(20);
  holder = baseline::make_runtime(core::mutual_scenario(p), true);
  holder->run();
  return *holder;
}

baseline::RunResult run_relay_stream_pipeline() {
  core::PipelineParams p;
  p.calls = 8;
  p.chain_depth = 3;
  p.net.latency = sim::microseconds(500);
  p.service_time = sim::microseconds(20);
  p.stream = true;
  p.stream_relays = true;
  return baseline::run_scenario(core::pipeline_scenario(p), true);
}

// ---- Recorder vs SpecStats reconciliation ---------------------------------

void expect_reconciled(const spec::Runtime& rt) {
  const spec::SpecStats stats = rt.total_stats();
  const obs::RunRecorder& rec = rt.recorder();
  EXPECT_EQ(rec.count(EventKind::kFork), stats.forks);
  EXPECT_EQ(rec.count(EventKind::kIntervalBegin), stats.forks);
  EXPECT_EQ(rec.count(EventKind::kJoin), stats.joins);
  EXPECT_EQ(rec.count(EventKind::kCommit), stats.commits);
  EXPECT_EQ(rec.count(EventKind::kRollback), stats.rollbacks);
  EXPECT_EQ(rec.abort_count(AbortReason::kValueFault),
            stats.aborts_value_fault);
  EXPECT_EQ(rec.abort_count(AbortReason::kTimeFault), stats.aborts_time_fault);
  EXPECT_EQ(rec.abort_count(AbortReason::kTimeout), stats.aborts_timeout);
  EXPECT_EQ(rec.abort_count(AbortReason::kCascade), stats.aborts_cascade);
  // total_aborts() counts primary faults only; cascades are tracked apart.
  EXPECT_EQ(rec.count(EventKind::kAbort),
            stats.total_aborts() + stats.aborts_cascade);
  EXPECT_EQ(rec.count(EventKind::kCommuteCommit), stats.commute_commits);
}

TEST(ObsReconciliation, CleanWriteThroughRun) {
  std::unique_ptr<spec::Runtime> rt;
  expect_reconciled(run_write_through(rt, /*force_fault=*/false));
  EXPECT_GT(rt->recorder().count(EventKind::kCommit), 0u);
}

TEST(ObsReconciliation, TimeFaultRunCountsEveryAbort) {
  std::unique_ptr<spec::Runtime> rt;
  expect_reconciled(run_write_through(rt, /*force_fault=*/true));
  EXPECT_GT(rt->recorder().abort_count(AbortReason::kTimeFault), 0u);
  EXPECT_GT(rt->recorder().count(EventKind::kRollback), 0u);
}

TEST(ObsReconciliation, MutualCrossingRun) {
  std::unique_ptr<spec::Runtime> rt;
  expect_reconciled(run_mutual_crossing(rt));
  EXPECT_GT(rt->recorder().count(EventKind::kCdgCycleDetected) +
                rt->recorder().abort_count(AbortReason::kTimeFault),
            0u);
}

TEST(ObsReconciliation, GuessLifecycleMatchesVerifierCounts) {
  std::unique_ptr<spec::Runtime> rt_holder;
  const spec::Runtime& rt = run_write_through(rt_holder, true);
  const obs::RunRecorder& rec = rt.recorder();
  // Every speculative join verdict is either a verification or a failure,
  // and verdicts never outnumber the guesses that were made.
  EXPECT_LE(rec.count(EventKind::kGuessVerified) +
                rec.count(EventKind::kGuessFailed),
            rec.count(EventKind::kGuessMade));
  EXPECT_GT(rec.count(EventKind::kGuessMade), 0u);
}

// ---- Chrome trace export --------------------------------------------------

struct TraceShape {
  std::size_t process_name_meta = 0;
  std::size_t commit_slices = 0;
  std::size_t abort_slices = 0;
  std::size_t precedence_flows = 0;
  std::size_t flow_starts = 0;
  std::size_t flow_ends = 0;
};

TraceShape shape_of(const util::JsonValue& doc) {
  TraceShape s;
  const util::JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return s;
  for (const auto& e : events->array) {
    const util::JsonValue* ph = e.find("ph");
    const util::JsonValue* name = e.find("name");
    if (ph == nullptr) continue;
    if (ph->string == "M" && name != nullptr &&
        name->string == "process_name") {
      ++s.process_name_meta;
    }
    if (ph->string == "X") {
      const util::JsonValue* args = e.find("args");
      const util::JsonValue* outcome =
          args != nullptr ? args->find("outcome") : nullptr;
      if (outcome != nullptr && outcome->string == "commit") {
        ++s.commit_slices;
      }
      if (outcome != nullptr && outcome->string == "abort") {
        ++s.abort_slices;
      }
    }
    if (ph->string == "s") {
      ++s.flow_starts;
      const util::JsonValue* cat = e.find("cat");
      if (cat != nullptr && cat->string == "precedence") {
        ++s.precedence_flows;
      }
    }
    if (ph->string == "f") ++s.flow_ends;
  }
  return s;
}

TEST(ObsChromeTrace, RelayStreamTrackSlicesAndPrecedenceFlows) {
  baseline::RunResult result = run_relay_stream_pipeline();
  ASSERT_TRUE(result.all_completed);
  ASSERT_TRUE(result.recorder != nullptr);
  ASSERT_FALSE(result.process_names.empty());

  const std::string text =
      obs::chrome_trace_json(*result.recorder, result.process_names);
  auto doc = util::json_parse(text);
  ASSERT_TRUE(doc.has_value()) << "exporter emitted invalid JSON";
  ASSERT_TRUE(doc->is_object());
  ASSERT_TRUE(doc->find("traceEvents") != nullptr);

  const TraceShape s = shape_of(*doc);
  // One named track per process.
  EXPECT_EQ(s.process_name_meta, result.process_names.size());
  // Relay streaming commits a chain of guesses without aborting.
  EXPECT_GT(s.commit_slices, 0u);
  // Dependent guesses publish PRECEDENCE, exported as flow arrows.
  EXPECT_GT(s.precedence_flows, 0u);
  // Flow starts and finishes are emitted in matched pairs.
  EXPECT_EQ(s.flow_starts, s.flow_ends);
}

TEST(ObsChromeTrace, FaultRunTagsAbortSlices) {
  std::unique_ptr<spec::Runtime> rt;
  run_write_through(rt, /*force_fault=*/true);
  const std::string text =
      obs::chrome_trace_json(rt->recorder(), rt->process_names());
  auto doc = util::json_parse(text);
  ASSERT_TRUE(doc.has_value());
  const TraceShape s = shape_of(*doc);
  // The faulted guess aborts; re-execution is sequential (no new guess),
  // so the trace carries abort-tagged slices but need not carry commits.
  EXPECT_GT(s.abort_slices, 0u);
}

TEST(ObsChromeTrace, SafeFanoutDocumentRoundTripsWellFormed) {
  // Round-trip every exported event through the JSON parser: each entry
  // must be an object with a phase, a pid, and (for non-metadata phases) a
  // numeric timestamp.  The SAFE-fanout run exercises the elided-fork
  // events through the exporter as well.
  core::SafeFanoutParams p;
  p.servers = 4;
  p.net.latency = sim::microseconds(300);
  baseline::RunResult result =
      baseline::run_scenario(core::safe_fanout_scenario(p), true);
  ASSERT_TRUE(result.all_completed);
  ASSERT_TRUE(result.recorder != nullptr);
  EXPECT_GT(result.recorder->count(obs::EventKind::kSafeForkElided), 0u);

  const std::string text =
      obs::chrome_trace_json(*result.recorder, result.process_names);
  auto doc = util::json_parse(text);
  ASSERT_TRUE(doc.has_value()) << "exporter emitted invalid JSON";
  const util::JsonValue* events = doc->find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_FALSE(events->array.empty());
  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const util::JsonValue* ph = e.find("ph");
    ASSERT_TRUE(ph != nullptr && ph->is_string());
    ASSERT_TRUE(e.find("pid") != nullptr);
    if (ph->string != "M") {
      const util::JsonValue* ts = e.find("ts");
      ASSERT_TRUE(ts != nullptr && ts->is_number());
      EXPECT_GE(ts->number, 0.0);
    }
  }
  const TraceShape s = shape_of(*doc);
  EXPECT_EQ(s.process_name_meta, result.process_names.size());
  EXPECT_EQ(s.flow_starts, s.flow_ends);
}

// ---- Metrics snapshot -----------------------------------------------------

TEST(ObsMetrics, RunWideSnapshotCarriesCanonicalSeries) {
  std::unique_ptr<spec::Runtime> rt_holder;
  const spec::Runtime& rt = run_write_through(rt_holder, true);
  const obs::MetricsRegistry m = rt.metrics();
  const spec::SpecStats stats = rt.total_stats();

  EXPECT_EQ(m.counter_or("commits"), stats.commits);
  EXPECT_EQ(m.counter_or("aborts_time_fault"), stats.aborts_time_fault);
  EXPECT_EQ(m.counter_or("aborts_cascade"), stats.aborts_cascade);
  EXPECT_EQ(m.counter_or("rollbacks"), stats.rollbacks);
  EXPECT_EQ(m.counter_or("messages_redelivered"),
            stats.messages_redelivered);
  EXPECT_GT(m.counter_or("net_messages_delivered"), 0u);

  const util::Histogram* rollback = m.find_histogram("rollback_distance");
  ASSERT_TRUE(rollback != nullptr);
  EXPECT_EQ(rollback->total(), stats.rollbacks);
  ASSERT_TRUE(m.find_histogram("speculation_depth") != nullptr);
  EXPECT_GT(m.find_histogram("speculation_depth")->total(), 0u);

  EXPECT_TRUE(m.gauges().count("guess_accuracy") > 0);
}

TEST(ObsMetrics, SnapshotJsonParsesWithTopLevelSections) {
  std::unique_ptr<spec::Runtime> rt_holder;
  const spec::Runtime& rt = run_write_through(rt_holder, true);
  auto doc = util::json_parse(rt.metrics().to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  for (const char* section :
       {"counters", "gauges", "accumulators", "histograms"}) {
    const util::JsonValue* v = doc->find(section);
    ASSERT_TRUE(v != nullptr) << section;
    EXPECT_TRUE(v->is_object()) << section;
  }
  const util::JsonValue* counters = doc->find("counters");
  EXPECT_TRUE(counters->find("commits") != nullptr);
}

TEST(ObsMetrics, PerProcessViewsMergeToRunTotals) {
  std::unique_ptr<spec::Runtime> rt_holder;
  const spec::Runtime& rt = run_write_through(rt_holder, true);
  obs::MetricsRegistry merged;
  for (ProcessId id : rt.all_process_ids()) {
    merged.merge(rt.process_metrics(id));
  }
  const spec::SpecStats stats = rt.total_stats();
  EXPECT_EQ(merged.counter_or("commits"), stats.commits);
  EXPECT_EQ(merged.counter_or("forks"), stats.forks);
  EXPECT_EQ(merged.counter_or("aborts_time_fault"), stats.aborts_time_fault);
}

TEST(ObsMetrics, PredictorAccuracySeriesPresentOnSpeculativeRun) {
  baseline::RunResult result = run_relay_stream_pipeline();
  bool found = false;
  for (const auto& [name, value] : result.metrics.counters()) {
    if (name.rfind("predictor/", 0) == 0 &&
        name.find("/hits") != std::string::npos && value > 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result.metrics.to_json();
}

// ---- Recorder basics ------------------------------------------------------

TEST(ObsRecorder, DisabledRecorderDropsEverything) {
  obs::RunRecorder rec;
  rec.set_enabled(false);
  obs::Event e;
  e.kind = EventKind::kAbort;
  e.reason = AbortReason::kValueFault;
  rec.record(e);
  EXPECT_EQ(rec.count(EventKind::kAbort), 0u);
  EXPECT_EQ(rec.abort_count(AbortReason::kValueFault), 0u);
  EXPECT_TRUE(rec.events().empty());

  rec.set_enabled(true);
  rec.record(e);
  EXPECT_EQ(rec.count(EventKind::kAbort), 1u);
  EXPECT_EQ(rec.abort_count(AbortReason::kValueFault), 1u);
  rec.clear();
  EXPECT_EQ(rec.count(EventKind::kAbort), 0u);
  EXPECT_TRUE(rec.events().empty());
}

}  // namespace
}  // namespace ocsp
