// Integration tests for deep call streaming through a chain of relays
// (the right-branching fork structure of section 3.2 at depth) and for the
// shared-server workload (independent clients, partial order).
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

TEST(PipelineIntegration, StreamedPipelineCompletesAndCommits) {
  core::PipelineParams p;
  p.calls = 6;
  p.chain_depth = 3;
  p.net.latency = sim::microseconds(200);
  auto result = baseline::run_scenario(core::pipeline_scenario(p), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.forks, 6u);
  EXPECT_EQ(result.stats.commits, 6u);
  EXPECT_EQ(result.stats.total_aborts(), 0u) << result.stats.to_string();
}

TEST(PipelineIntegration, TraceMatchesPessimistic) {
  core::PipelineParams p;
  p.calls = 5;
  p.chain_depth = 2;
  p.net.latency = sim::microseconds(150);
  auto scenario = core::pipeline_scenario(p);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed);
  std::string why;
  EXPECT_TRUE(
      trace::compare_traces(pessimistic.trace, optimistic.trace, &why))
      << why;
}

TEST(PipelineIntegration, DeeperChainsStillWin) {
  for (int depth : {1, 2, 4}) {
    core::PipelineParams p;
    p.calls = 6;
    p.chain_depth = depth;
    p.net.latency = sim::microseconds(300);
    auto scenario = core::pipeline_scenario(p);
    auto pess = baseline::run_scenario(scenario, false);
    auto opt = baseline::run_scenario(scenario, true);
    ASSERT_TRUE(pess.all_completed) << "depth " << depth;
    ASSERT_TRUE(opt.all_completed)
        << "depth " << depth << " " << opt.stats.to_string();
    EXPECT_LT(opt.last_completion, pess.last_completion) << "depth " << depth;
  }
}

TEST(PipelineIntegration, RelayStreamingChainsGuessesWithoutAborts) {
  core::PipelineParams p;
  p.calls = 8;
  p.chain_depth = 4;
  p.net.latency = sim::microseconds(500);
  p.stream_relays = true;
  auto scenario = core::pipeline_scenario(p);
  auto result = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  // Client forks plus one fork per relay per request.
  EXPECT_EQ(result.stats.forks, 8u * 4u);
  EXPECT_EQ(result.stats.total_aborts(), 0u) << result.stats.to_string();
  // The transitive dependencies force PRECEDENCE publications.
  EXPECT_GT(result.stats.precedence_sent, 0u);
  auto pess = baseline::run_scenario(scenario, false);
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, result.trace, &why)) << why;
}

TEST(PipelineIntegration, RelayStreamingBeatsClientOnlyAtDepth) {
  auto run = [](bool relays) {
    core::PipelineParams p;
    p.calls = 10;
    p.chain_depth = 6;
    p.net.latency = sim::microseconds(400);
    p.stream_relays = relays;
    return baseline::run_scenario(core::pipeline_scenario(p), true);
  };
  auto client_only = run(false);
  auto full = run(true);
  ASSERT_TRUE(client_only.all_completed);
  ASSERT_TRUE(full.all_completed) << full.stats.to_string();
  EXPECT_LT(full.last_completion, client_only.last_completion);
}

TEST(SharedServerIntegration, TwoClientsCompleteAndMatchTraces) {
  core::SharedServerParams p;
  p.clients = 2;
  p.calls_per_client = 5;
  p.net.latency = sim::microseconds(200);
  auto scenario = core::shared_server_scenario(p);
  auto pessimistic = baseline::run_scenario(scenario, false);
  auto optimistic = baseline::run_scenario(scenario, true);
  ASSERT_TRUE(pessimistic.all_completed);
  ASSERT_TRUE(optimistic.all_completed) << optimistic.stats.to_string();
  // The clients are independent: per-client observable sequences must be
  // identical even if the server saw a different interleaving.
  for (ProcessId c : {ProcessId{0}, ProcessId{1}}) {
    EXPECT_EQ(pessimistic.trace.for_process(c).size(),
              optimistic.trace.for_process(c).size());
  }
}

TEST(SharedServerIntegration, PartialOrderNeedsNoRollbacks) {
  // The two clients' request streams are causally unrelated; whichever
  // interleaving the server happens to see is legal, so no rollbacks
  // should occur (contrast with Time Warp's total order — bench C6).
  core::SharedServerParams p;
  p.clients = 3;
  p.calls_per_client = 4;
  p.net.latency = sim::microseconds(150);
  auto result = baseline::run_scenario(core::shared_server_scenario(p), true);
  ASSERT_TRUE(result.all_completed) << result.stats.to_string();
  EXPECT_EQ(result.stats.rollbacks, 0u) << result.stats.to_string();
  EXPECT_EQ(result.stats.total_aborts(), 0u);
}

}  // namespace
}  // namespace ocsp
