// Tests for the two rollback strategies of section 4.1.3.
//
// "A process may take a state checkpoint at each point prior to acquiring
// a new commit guard predicate [Time Warp style] ... Alternatively, a
// process may take less frequent checkpoints, and log input messages,
// restoring the state by resuming from the checkpoint and replaying the
// logged messages [Optimistic Recovery style].  The particular technique
// used for rollback is a performance tuning decision and does not affect
// the correctness of the transformation."
//
// These tests are that last sentence, executed: every workload must
// produce identical committed traces under both strategies, while the
// replay strategy takes measurably fewer checkpoints.
#include <gtest/gtest.h>

#include "core/workloads.h"

namespace ocsp {
namespace {

template <typename Params>
baseline::Scenario with_strategy(Params params, spec::RollbackStrategy s,
                                 auto builder) {
  params.spec.rollback = s;
  return builder(params);
}

struct StrategyOutcome {
  baseline::RunResult checkpointing;
  baseline::RunResult replaying;
};

template <typename Params>
StrategyOutcome run_both_strategies(Params params, auto builder) {
  params.spec.rollback = spec::RollbackStrategy::kCheckpointEveryInterval;
  auto a = baseline::run_scenario(builder(params), true, sim::seconds(60));
  params.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  auto b = baseline::run_scenario(builder(params), true, sim::seconds(60));
  return {a, b};
}

TEST(RollbackStrategy, ValueFaultWorkloadMatchesAcrossStrategies) {
  core::DbFsParams p;
  p.transactions = 8;
  p.update_fail_probability = 0.5;
  p.net.latency = sim::microseconds(300);
  auto out = run_both_strategies(p, core::db_fs_scenario);
  ASSERT_TRUE(out.checkpointing.all_completed)
      << out.checkpointing.stats.to_string();
  ASSERT_TRUE(out.replaying.all_completed)
      << out.replaying.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(out.checkpointing.trace,
                                    out.replaying.trace, &why))
      << why;
  // And both must match the pessimistic run.
  p.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  auto pess = baseline::run_scenario(core::db_fs_scenario(p), false);
  EXPECT_TRUE(trace::compare_traces(pess.trace, out.replaying.trace, &why))
      << why;
}

TEST(RollbackStrategy, TimeFaultWorkloadMatchesAcrossStrategies) {
  core::WriteThroughParams p;
  p.force_fault = true;
  p.transactions = 3;
  p.net.latency = sim::microseconds(150);
  auto out = run_both_strategies(p, core::write_through_scenario);
  ASSERT_TRUE(out.checkpointing.all_completed);
  ASSERT_TRUE(out.replaying.all_completed)
      << out.replaying.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(out.checkpointing.trace,
                                    out.replaying.trace, &why))
      << why;
  EXPECT_GT(out.replaying.stats.replays, 0u)
      << out.replaying.stats.to_string();
}

TEST(RollbackStrategy, MutualAbortMatchesAcrossStrategies) {
  core::MutualParams p;
  p.crossing = true;
  p.net.latency = sim::microseconds(100);
  auto out = run_both_strategies(p, core::mutual_scenario);
  ASSERT_TRUE(out.checkpointing.all_completed);
  ASSERT_TRUE(out.replaying.all_completed)
      << out.replaying.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(out.checkpointing.trace,
                                    out.replaying.trace, &why))
      << why;
}

TEST(RollbackStrategy, ReplayTakesFewerCheckpointsAtTheServer) {
  // The server side shows the strategies' real difference: it never forks,
  // so under the Time Warp style it checkpoints before every guess-tagged
  // acceptance, while under replay it checkpoints only once at creation
  // and keeps metadata records instead.
  auto server_checkpoints = [](spec::RollbackStrategy s) {
    core::PutLineParams p;
    p.lines = 24;
    p.net.latency = sim::microseconds(300);
    p.spec.rollback = s;
    auto rt = baseline::make_runtime(core::putline_scenario(p), true);
    rt->run(sim::seconds(60));
    EXPECT_TRUE(rt->process(0).completed());
    return rt->process(rt->find("Y")).stats().checkpoints;
  };
  const auto checkpointing =
      server_checkpoints(spec::RollbackStrategy::kCheckpointEveryInterval);
  const auto replaying =
      server_checkpoints(spec::RollbackStrategy::kReplayFromLog);
  EXPECT_LT(replaying, checkpointing);
  EXPECT_LE(replaying, 2u);          // creation only
  EXPECT_GE(checkpointing, 20u);     // ~one per tagged request
}

TEST(RollbackStrategy, NoFaultRunsNeverReplay) {
  core::PutLineParams p;
  p.lines = 8;
  p.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  auto result = baseline::run_scenario(core::putline_scenario(p), true);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.stats.replays, 0u);
  EXPECT_EQ(result.stats.rollbacks, 0u);
}

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StrategySweep, PutLineTraceEqualityUnderReplay) {
  const auto [seed, fail_pct] = GetParam();
  core::PutLineParams p;
  p.lines = 10;
  p.seed = static_cast<std::uint64_t>(seed) * 13 + 1;
  p.fail_probability = fail_pct / 100.0;
  p.net.latency = sim::microseconds(250);
  p.spec.rollback = spec::RollbackStrategy::kReplayFromLog;
  auto scenario = core::putline_scenario(p);
  auto pess = baseline::run_scenario(scenario, false, sim::seconds(60));
  auto opt = baseline::run_scenario(scenario, true, sim::seconds(60));
  ASSERT_TRUE(pess.all_completed);
  ASSERT_TRUE(opt.all_completed) << opt.stats.to_string();
  std::string why;
  EXPECT_TRUE(trace::compare_traces(pess.trace, opt.trace, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategySweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(0, 20, 50,
                                                              80)));

}  // namespace
}  // namespace ocsp
