// Unit tests for the static interference analyzer: communication-effect
// computation, fork-site classification, and the machine-readable report.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/classify.h"
#include "analysis/effects.h"
#include "transform/transform.h"
#include "util/json.h"

namespace ocsp::analysis {
namespace {

using csp::assign;
using csp::call;
using csp::call_dyn;
using csp::hint;
using csp::if_;
using csp::lit;
using csp::print;
using csp::seq;
using csp::send;
using csp::Value;
using csp::var;
using csp::while_;

const Finding* find_code(const std::vector<Finding>& findings,
                         const std::string& code) {
  for (const auto& f : findings) {
    if (f.code == code) return &f;
  }
  return nullptr;
}

// ---- Communication effects -----------------------------------------------

TEST(Effects, CallIsMayAndMustTarget) {
  CommEffects e = analyze_effects(call("S", "Op", {var("x")}, "r"));
  EXPECT_TRUE(e.may_call_targets.count("S"));
  EXPECT_TRUE(e.must_call_targets.count("S"));
  EXPECT_TRUE(e.reads.count("x"));
  EXPECT_TRUE(e.writes.count("r"));
  EXPECT_FALSE(e.opaque);
  EXPECT_FALSE(e.unknown_target);
}

TEST(Effects, IfWidensMayIntersectsMust) {
  // The same call on both branches stays a must; a branch-only send is
  // may-only.
  auto s = if_(var("c"),
               seq({call("S", "Op", {}, "r"), send("A", "Put", {})}),
               call("S", "Op", {}, "r"));
  CommEffects e = analyze_effects(s);
  EXPECT_TRUE(e.must_call_targets.count("S"));
  EXPECT_TRUE(e.may_send_targets.count("A"));
  EXPECT_FALSE(e.must_send_targets.count("A"));
  EXPECT_TRUE(e.reads.count("c"));
}

TEST(Effects, IfWithoutElseDropsMust) {
  CommEffects e = analyze_effects(if_(var("c"), call("S", "Op", {}, "r")));
  EXPECT_TRUE(e.may_call_targets.count("S"));
  EXPECT_TRUE(e.must_call_targets.empty());
}

TEST(Effects, WhileBodyIsMayOnly) {
  auto s = while_(var("c"), seq({call("S", "Op", {}, "r"), print(var("r"))}));
  CommEffects e = analyze_effects(s);
  EXPECT_TRUE(e.may_call_targets.count("S"));
  EXPECT_TRUE(e.must_call_targets.empty());
  EXPECT_TRUE(e.may_print);
  EXPECT_FALSE(e.must_print);
}

TEST(Effects, NativeIsOpaque) {
  CommEffects e =
      analyze_effects(csp::native("n", [](csp::Env&, util::Rng&) {}));
  EXPECT_TRUE(e.opaque);
  EXPECT_TRUE(e.targets_unknowable());
}

TEST(Effects, DynamicTargetIsUnknowableAndReadsItsExpression) {
  CommEffects e =
      analyze_effects(call_dyn(var("dest"), "Op", {var("x")}, "r"));
  EXPECT_TRUE(e.unknown_target);
  EXPECT_TRUE(e.targets_unknowable());
  EXPECT_TRUE(e.reads.count("dest"));
  EXPECT_TRUE(e.reads.count("x"));
}

// The minimal def/use pass must see the same destination-expression reads
// (it delegates to the effects analysis).
TEST(Effects, TransformAnalyzeSeesDynamicDestinationReads) {
  transform::Analysis a =
      transform::analyze(csp::send_dyn(var("who"), "Put", {var("p")}));
  EXPECT_TRUE(a.reads.count("who"));
  EXPECT_TRUE(a.reads.count("p"));
}

TEST(Effects, SeqMergesMustAcrossStatements) {
  CommEffects e = analyze_effects(
      seq({call("A", "Op", {}, "r"), send("B", "Put", {var("r")})}));
  EXPECT_TRUE(e.must_call_targets.count("A"));
  EXPECT_TRUE(e.must_send_targets.count("B"));
  // r is written before it is read; the read still registers (the effect
  // sets are flow-insensitive).
  EXPECT_TRUE(e.reads.count("r"));
}

// ---- Classification ------------------------------------------------------

TEST(Classify, DisjointHalvesAreSafe) {
  std::vector<Finding> findings;
  auto s1 = call("A", "Op", {lit(Value(1))}, "ra");
  auto s2 = seq({call("B", "Op", {lit(Value(2))}, "rb"), print(lit(Value(0)))});
  SiteReport rep =
      classify_split(s1, s2, CommEffects{}, {}, "site", true, findings);
  EXPECT_EQ(rep.cls, ForkClass::kSafe);
  EXPECT_TRUE(rep.passed.empty());
  EXPECT_FALSE(rep.has_anti_dependency);
  EXPECT_NE(find_code(findings, "proven-safe"), nullptr);
}

TEST(Classify, PassedVariableMakesSpeculative) {
  std::vector<Finding> findings;
  auto s1 = call("A", "Op", {}, "r");
  auto s2 = print(var("r"));
  SiteReport rep =
      classify_split(s1, s2, CommEffects{}, {}, "site", true, findings);
  EXPECT_EQ(rep.cls, ForkClass::kSpeculative);
  EXPECT_EQ(rep.passed, (std::vector<std::string>{"r"}));
}

TEST(Classify, SharedTargetRejectsAutomaticButWarnsDeclared) {
  auto s1 = call("S", "Op", {}, "a");
  auto s2 = call("S", "Op", {}, "b");

  std::vector<Finding> auto_findings;
  SiteReport auto_rep = classify_split(s1, s2, CommEffects{}, {}, "auto",
                                       true, auto_findings);
  EXPECT_EQ(auto_rep.cls, ForkClass::kReject);
  const Finding* f = find_code(auto_findings, "certain-time-fault");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);

  std::map<std::string, csp::PredictorSpec> declared;
  declared.emplace("a", csp::PredictorSpec::always(Value(0)));
  std::vector<Finding> decl_findings;
  SiteReport decl_rep = classify_split(s1, s2, CommEffects{}, declared,
                                       "declared", true, decl_findings);
  EXPECT_EQ(decl_rep.cls, ForkClass::kSpeculative);
  f = find_code(decl_findings, "certain-time-fault");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
}

TEST(Classify, AntiDependencyBlocksSafe) {
  std::vector<Finding> findings;
  auto s1 = call("A", "Op", {var("shared")}, "r");
  auto s2 = assign("shared", lit(Value(1)));
  SiteReport rep =
      classify_split(s1, s2, CommEffects{}, {}, "site", true, findings);
  EXPECT_EQ(rep.cls, ForkClass::kSpeculative);
  EXPECT_TRUE(rep.has_anti_dependency);
}

TEST(Classify, ContinuationWriteBlocksSafe) {
  // S1 reads a variable the continuation (e.g. the next loop iteration)
  // overwrites: running them concurrently races the read.
  std::vector<Finding> findings;
  auto s1 = call("A", "Op", {var("i")}, "r");
  auto s2 = call("B", "Op", {}, "s");
  CommEffects cont;
  cont.writes.insert("i");
  SiteReport rep = classify_split(s1, s2, cont, {}, "site", true, findings);
  EXPECT_EQ(rep.cls, ForkClass::kSpeculative);
}

TEST(Classify, UndeclaredPassedVariableWarns) {
  auto s1 = call("A", "Op", {}, "r");
  auto s2 = print(var("r"));
  std::map<std::string, csp::PredictorSpec> declared;
  declared.emplace("other", csp::PredictorSpec::always(Value(0)));
  std::vector<Finding> findings;
  SiteReport rep =
      classify_split(s1, s2, CommEffects{}, declared, "site", true, findings);
  EXPECT_EQ(rep.cls, ForkClass::kSpeculative);
  EXPECT_NE(find_code(findings, "undeclared-passed-variable"), nullptr);
}

// ---- Refusals through the fork-insertion pass ----------------------------

TEST(ForkInsertionDiagnostics, OpaqueAutomaticHintRefusedNotCrashed) {
  auto prog = seq({
      csp::native("mystery", [](csp::Env&, util::Rng&) {}),
      hint({}, "opq"),
      print(lit(Value(1))),
  });
  transform::ForkInsertionResult result = transform::insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 0u);
  EXPECT_EQ(result.rejected_sites, 1u);
  const Finding* f = find_code(result.findings, "opaque-fragment");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_FALSE(f->suggestion.empty());
}

TEST(ForkInsertionDiagnostics, MalformedSpanRefused) {
  auto prog = seq({
      call("A", "Op", {}, "r"),
      hint({}, "wide", /*span=*/5),
      print(lit(Value(1))),
  });
  transform::ForkInsertionResult result = transform::insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 0u);
  EXPECT_NE(find_code(result.findings, "malformed-span"), nullptr);
}

TEST(ForkInsertionDiagnostics, MisplacedHintRefused) {
  auto prog = seq({if_(var("c"), hint({}, "floating"))});
  transform::ForkInsertionResult result = transform::insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 0u);
  EXPECT_NE(find_code(result.findings, "misplaced-hint"), nullptr);
}

TEST(ForkInsertionDiagnostics, LoopCarriedAutomaticHintRefused) {
  // S1 writes x; the static S2 never reads it but the next iteration's call
  // argument does — invisible to the static split, so automatic mode must
  // refuse.
  auto prog = seq({
      while_(var("c"), seq({
                           call("S", "Op", {var("x")}, "x"),
                           hint({}, "lc"),
                           print(lit(Value(1))),
                       })),
  });
  transform::ForkInsertionResult result = transform::insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 0u);
  EXPECT_EQ(result.rejected_sites, 1u);
  EXPECT_NE(find_code(result.findings, "loop-carried-dependence"), nullptr);
}

TEST(ForkInsertionDiagnostics, SafeSiteElidesStateMachinery) {
  auto prog = seq({
      call("A", "Op", {lit(Value(1))}, "ra"),
      hint({}, "fan"),
      call("B", "Op", {lit(Value(2))}, "rb"),
      print(lit(Value(0))),
  });
  transform::ForkInsertionResult result = transform::insert_forks(prog);
  EXPECT_EQ(result.forks_inserted, 1u);
  EXPECT_EQ(result.safe_sites, 1u);
  ASSERT_EQ(result.program->kind, csp::StmtKind::kSeq);
  const auto& body =
      static_cast<const csp::SeqStmt&>(*result.program).body;
  ASSERT_FALSE(body.empty());
  ASSERT_EQ(body[0]->kind, csp::StmtKind::kFork);
  const auto& f = static_cast<const csp::ForkStmt&>(*body[0]);
  EXPECT_EQ(f.mode, csp::ForkMode::kSafe);
  EXPECT_TRUE(f.passed.empty());
  EXPECT_TRUE(f.predictors.empty());
  EXPECT_FALSE(f.needs_copy);
}

// ---- Whole-program reports -----------------------------------------------

TEST(ProgramReport, NestedHintInsideIfClassifies) {
  auto prog = seq({
      if_(var("c"), seq({
                        call("A", "Op", {}, "r"),
                        hint({}, "in-if"),
                        call("B", "Op", {}, "s"),
                    })),
  });
  ProgramReport rep = analyze_program(prog, "nested-if");
  ASSERT_EQ(rep.sites.size(), 1u);
  EXPECT_EQ(rep.sites[0].site, "in-if");
  EXPECT_EQ(rep.sites[0].cls, ForkClass::kSafe);
  EXPECT_FALSE(rep.has_errors());
}

TEST(ProgramReport, NestedHintInsideWhileSeesLaterIterations) {
  auto prog = seq({
      while_(var("c"), seq({
                           call("S", "Op", {var("x")}, "x"),
                           hint({}, "lc"),
                           print(lit(Value(1))),
                       })),
  });
  ProgramReport rep = analyze_program(prog, "loop");
  ASSERT_EQ(rep.sites.size(), 1u);
  EXPECT_EQ(rep.sites[0].cls, ForkClass::kReject);
  EXPECT_TRUE(rep.has_errors());
  EXPECT_NE(find_code(rep.findings, "loop-carried-dependence"), nullptr);
}

TEST(ProgramReport, ExistingForkIsWarnedNotRejected) {
  // The same interfering shape on an already-inserted fork (from_hint =
  // false) must stay a warning: the runtime survives it via retries.
  auto f = csp::fork(call("S", "Op", {}, "a"),
                     call("S", "Op", {}, "b"), {"a"},
                     {{"a", csp::PredictorSpec::always(Value(0))}}, "site");
  ProgramReport rep = analyze_program(seq({f}), "existing");
  ASSERT_EQ(rep.sites.size(), 1u);
  EXPECT_EQ(rep.sites[0].cls, ForkClass::kSpeculative);
  EXPECT_FALSE(rep.has_errors());
  const Finding* w = find_code(rep.findings, "certain-time-fault");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, Severity::kWarning);
}

TEST(ProgramReport, ElidableSpeculativeForkGetsInfoFinding) {
  auto f = csp::fork(call("A", "Op", {}, "ra"),
                     call("B", "Op", {}, "rb"), {}, {}, "elidable");
  ProgramReport rep = analyze_program(seq({f}), "elide");
  EXPECT_NE(find_code(rep.findings, "elidable-site"), nullptr);
  EXPECT_FALSE(rep.has_errors());
}

// The elidable-site finding must carry the concrete fork-mode change and
// survive the JSON round trip, so downstream tooling can apply it without
// re-deriving the classification.
TEST(ProgramReport, ElidableSiteSuggestedModeRoundTrips) {
  auto f = csp::fork(call("A", "Op", {}, "ra"),
                     call("B", "Op", {}, "rb"), {}, {}, "elidable");
  ProgramReport rep = analyze_program(seq({f}), "elide");
  const Finding* fd = find_code(rep.findings, "elidable-site");
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->suggested_mode, "safe");
  EXPECT_NE(fd->suggestion.find("reclassify"), std::string::npos);

  util::JsonWriter w;
  rep.write_json(w);
  auto parsed = util::json_parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  const util::JsonValue* findings = parsed->find("findings");
  ASSERT_NE(findings, nullptr);
  bool saw = false;
  for (const auto& j : findings->array) {
    if (j.find("code")->string != "elidable-site") continue;
    saw = true;
    EXPECT_EQ(j.find("suggested_mode")->string, "safe");
  }
  EXPECT_TRUE(saw);
}

TEST(ProgramReport, JsonRoundTrips) {
  auto prog = seq({
      call("A", "Op", {}, "ra"),
      hint({}, "safe-site"),
      call("B", "Op", {}, "rb"),
      print(var("rb")),
  });
  ProgramReport rep = analyze_program(prog, "roundtrip");
  util::JsonWriter w;
  rep.write_json(w);
  auto parsed = util::json_parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("program")->string, "roundtrip");
  const util::JsonValue* summary = parsed->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("sites")->number, 1.0);
  const util::JsonValue* sites = parsed->find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_EQ(sites->array.size(), 1u);
  EXPECT_EQ(sites->array[0].find("site")->string, "safe-site");
  const util::JsonValue* left = sites->array[0].find("left");
  ASSERT_NE(left, nullptr);
  ASSERT_EQ(left->find("calls")->array.size(), 1u);
  EXPECT_EQ(left->find("calls")->array[0].string, "A");
  const util::JsonValue* findings = parsed->find("findings");
  ASSERT_NE(findings, nullptr);
  for (const auto& f : findings->array) {
    EXPECT_TRUE(f.find("severity")->is_string());
    EXPECT_TRUE(f.find("code")->is_string());
  }
}

}  // namespace
}  // namespace ocsp::analysis
