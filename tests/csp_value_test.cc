// Unit tests for csp::Value and csp::Env.
#include <gtest/gtest.h>

#include "csp/env.h"
#include "csp/value.h"

namespace ocsp::csp {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), Value::Type::kNil);
  EXPECT_EQ(Value(true).type(), Value::Type::kBool);
  EXPECT_EQ(Value(7).type(), Value::Type::kInt);
  EXPECT_EQ(Value(1.5).type(), Value::Type::kReal);
  EXPECT_EQ(Value("hi").type(), Value::Type::kString);
  EXPECT_EQ(Value(ValueList{Value(1)}).type(), Value::Type::kList);

  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(1.5).as_real(), 1.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(ValueList{Value(1), Value(2)}).as_list().size(), 2u);
}

TEST(Value, IntPromotesToRealAccessor) {
  EXPECT_DOUBLE_EQ(Value(3).as_real(), 3.0);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_FALSE(Value(ValueList{}).truthy());
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_TRUE(Value(-1).truthy());
  EXPECT_TRUE(Value("x").truthy());
  EXPECT_TRUE(Value(ValueList{Value()}).truthy());
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_FALSE(Value(3) == Value(3.0));  // different types
  EXPECT_EQ(Value(ValueList{Value(1), Value("a")}),
            Value(ValueList{Value(1), Value("a")}));
}

TEST(Value, CompareNumericAndMixed) {
  EXPECT_LT(Value::compare(Value(1), Value(2)), 0);
  EXPECT_GT(Value::compare(Value(5), Value(2)), 0);
  EXPECT_EQ(Value::compare(Value(3), Value(3)), 0);
  EXPECT_LT(Value::compare(Value(1), Value(1.5)), 0);  // int vs real
  EXPECT_LT(Value::compare(Value("abc"), Value("abd")), 0);
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(value_add(Value(2), Value(3)), Value(5));
  EXPECT_EQ(value_add(Value("a"), Value("b")), Value("ab"));
  EXPECT_EQ(value_sub(Value(5), Value(3)), Value(2));
  EXPECT_EQ(value_mul(Value(4), Value(3)), Value(12));
  EXPECT_EQ(value_div(Value(7), Value(2)), Value(3));
  EXPECT_EQ(value_mod(Value(7), Value(3)), Value(1));
  EXPECT_EQ(value_add(Value(1), Value(0.5)), Value(1.5));
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value().to_string(), "nil");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("x").to_string(), "\"x\"");
  EXPECT_EQ(Value(ValueList{Value(1), Value(2)}).to_string(), "[1, 2]");
}

TEST(Env, SetGetHasErase) {
  Env env;
  EXPECT_FALSE(env.has("x"));
  env.set("x", Value(1));
  EXPECT_TRUE(env.has("x"));
  EXPECT_EQ(env.get("x"), Value(1));
  env.set("x", Value(2));
  EXPECT_EQ(env.get("x"), Value(2));
  env.erase("x");
  EXPECT_FALSE(env.has("x"));
}

TEST(Env, GetOrFallsBack) {
  Env env;
  EXPECT_EQ(env.get_or("missing", Value(9)), Value(9));
  env.set("missing", Value(1));
  EXPECT_EQ(env.get_or("missing", Value(9)), Value(1));
}

TEST(Env, CopyIsIndependent) {
  Env a;
  a.set("x", Value(1));
  Env b = a;  // checkpoint
  a.set("x", Value(2));
  a.set("y", Value(3));
  EXPECT_EQ(b.get("x"), Value(1));
  EXPECT_FALSE(b.has("y"));
  a = b;  // rollback
  EXPECT_EQ(a.get("x"), Value(1));
  EXPECT_FALSE(a.has("y"));
}

TEST(Env, EqualityAndNames) {
  Env a, b;
  a.set("x", Value(1));
  b.set("x", Value(1));
  EXPECT_EQ(a, b);
  b.set("y", Value(2));
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.names(), (std::set<std::string>{"x", "y"}));
}

}  // namespace
}  // namespace ocsp::csp
