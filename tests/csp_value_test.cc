// Unit tests for csp::Value and csp::Env.
#include <gtest/gtest.h>

#include "csp/env.h"
#include "csp/value.h"

namespace ocsp::csp {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), Value::Type::kNil);
  EXPECT_EQ(Value(true).type(), Value::Type::kBool);
  EXPECT_EQ(Value(7).type(), Value::Type::kInt);
  EXPECT_EQ(Value(1.5).type(), Value::Type::kReal);
  EXPECT_EQ(Value("hi").type(), Value::Type::kString);
  EXPECT_EQ(Value(ValueList{Value(1)}).type(), Value::Type::kList);

  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(1.5).as_real(), 1.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(ValueList{Value(1), Value(2)}).as_list().size(), 2u);
}

TEST(Value, IntPromotesToRealAccessor) {
  EXPECT_DOUBLE_EQ(Value(3).as_real(), 3.0);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_FALSE(Value(ValueList{}).truthy());
  EXPECT_TRUE(Value(true).truthy());
  EXPECT_TRUE(Value(-1).truthy());
  EXPECT_TRUE(Value("x").truthy());
  EXPECT_TRUE(Value(ValueList{Value()}).truthy());
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_FALSE(Value(3) == Value(3.0));  // different types
  EXPECT_EQ(Value(ValueList{Value(1), Value("a")}),
            Value(ValueList{Value(1), Value("a")}));
}

TEST(Value, CompareNumericAndMixed) {
  EXPECT_LT(Value::compare(Value(1), Value(2)), 0);
  EXPECT_GT(Value::compare(Value(5), Value(2)), 0);
  EXPECT_EQ(Value::compare(Value(3), Value(3)), 0);
  EXPECT_LT(Value::compare(Value(1), Value(1.5)), 0);  // int vs real
  EXPECT_LT(Value::compare(Value("abc"), Value("abd")), 0);
}

TEST(Value, Arithmetic) {
  EXPECT_EQ(value_add(Value(2), Value(3)), Value(5));
  EXPECT_EQ(value_add(Value("a"), Value("b")), Value("ab"));
  EXPECT_EQ(value_sub(Value(5), Value(3)), Value(2));
  EXPECT_EQ(value_mul(Value(4), Value(3)), Value(12));
  EXPECT_EQ(value_div(Value(7), Value(2)), Value(3));
  EXPECT_EQ(value_mod(Value(7), Value(3)), Value(1));
  EXPECT_EQ(value_add(Value(1), Value(0.5)), Value(1.5));
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value().to_string(), "nil");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("x").to_string(), "\"x\"");
  EXPECT_EQ(Value(ValueList{Value(1), Value(2)}).to_string(), "[1, 2]");
}

TEST(Value, CopySharesPayloadStorage) {
  const Value s("a long enough string to live on the heap");
  const Value s2 = s;  // O(1): refcount bump, same payload object
  EXPECT_TRUE(s.shares_storage_with(s2));
  EXPECT_EQ(&s.as_string(), &s2.as_string());

  const Value l(ValueList{Value(1), Value("x")});
  const Value l2 = l;
  EXPECT_TRUE(l.shares_storage_with(l2));
  EXPECT_EQ(&l.as_list(), &l2.as_list());

  // Inline scalars have no shared payload.
  EXPECT_FALSE(Value(1).shares_storage_with(Value(1)));
}

TEST(Value, MutatingACopyNeverChangesTheOriginal) {
  Value a("original");
  Value b = a;
  b = Value("rebound");  // the only mutation Values support is rebinding
  EXPECT_EQ(a, Value("original"));
  EXPECT_EQ(b, Value("rebound"));

  Value la(ValueList{Value(1), Value(2)});
  Value lb = la;
  lb = value_add(Value(1), Value(1));
  EXPECT_EQ(la, Value(ValueList{Value(1), Value(2)}));
}

TEST(Value, DeepCopySharesNothing) {
  const Value l(ValueList{Value("payload"), Value(ValueList{Value("deep")})});
  const Value c = l.deep_copy();
  EXPECT_EQ(l, c);
  EXPECT_FALSE(l.shares_storage_with(c));
  EXPECT_FALSE(l.as_list()[0].shares_storage_with(c.as_list()[0]));
  EXPECT_FALSE(l.as_list()[1].shares_storage_with(c.as_list()[1]));
}

TEST(Value, EqualityFastPathAndStructuralAgree) {
  const Value a("same text");
  const Value shared = a;                 // pointer-equal payload
  const Value rebuilt("same text");       // distinct payload, equal content
  EXPECT_EQ(a, shared);
  EXPECT_EQ(a, rebuilt);
  EXPECT_FALSE(a.shares_storage_with(rebuilt));
}

TEST(Value, ApproxBytesTracksPayload) {
  EXPECT_EQ(Value().approx_bytes(), 0u);
  EXPECT_EQ(Value(7).approx_bytes(), 0u);
  const Value s(std::string(100, 'x'));
  EXPECT_GE(s.approx_bytes(), 100u);
  const Value l(ValueList{s, s});
  EXPECT_GE(l.approx_bytes(), 2 * s.approx_bytes());
}

TEST(Env, SetGetHasErase) {
  Env env;
  EXPECT_FALSE(env.has("x"));
  env.set("x", Value(1));
  EXPECT_TRUE(env.has("x"));
  EXPECT_EQ(env.get("x"), Value(1));
  env.set("x", Value(2));
  EXPECT_EQ(env.get("x"), Value(2));
  env.erase("x");
  EXPECT_FALSE(env.has("x"));
}

TEST(Env, GetOrFallsBack) {
  Env env;
  EXPECT_EQ(env.get_or("missing", Value(9)), Value(9));
  env.set("missing", Value(1));
  EXPECT_EQ(env.get_or("missing", Value(9)), Value(1));
}

TEST(Env, CopyIsIndependent) {
  Env a;
  a.set("x", Value(1));
  Env b = a;  // checkpoint
  a.set("x", Value(2));
  a.set("y", Value(3));
  EXPECT_EQ(b.get("x"), Value(1));
  EXPECT_FALSE(b.has("y"));
  a = b;  // rollback
  EXPECT_EQ(a.get("x"), Value(1));
  EXPECT_FALSE(a.has("y"));
}

TEST(Env, EqualityAndNames) {
  Env a, b;
  a.set("x", Value(1));
  b.set("x", Value(1));
  EXPECT_EQ(a, b);
  b.set("y", Value(2));
  EXPECT_FALSE(a == b);
  EXPECT_EQ(b.names(), (std::set<std::string>{"x", "y"}));
}

TEST(Env, CopyIsStructurallyShared) {
  Env a;
  for (int i = 0; i < 32; ++i) {
    a.set("k" + std::to_string(i), Value(std::string(50, 'v')));
  }
  Env b = a;  // checkpoint: O(1) handle copy
  EXPECT_TRUE(a.shares_root_with(b));
  EXPECT_EQ(a, b);

  // One write path-copies O(log n) nodes; the rest stays shared and the
  // untouched values still alias the same payloads.
  b.set("k0", Value(99));
  EXPECT_FALSE(a.shares_root_with(b));
  EXPECT_EQ(a.get("k0"), Value(std::string(50, 'v')));
  EXPECT_TRUE(a.get("k31").shares_storage_with(b.get("k31")));
}

TEST(Env, DeepCopySharesNothing) {
  Env a;
  a.set("s", Value("payload"));
  a.set("l", Value(ValueList{Value("elem")}));
  const Env b = a.deep_copy();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.shares_root_with(b));
  EXPECT_FALSE(a.get("s").shares_storage_with(b.get("s")));
  EXPECT_FALSE(a.get("l").shares_storage_with(b.get("l")));
}

TEST(Env, ApproxBytesGrowsWithState) {
  Env env;
  EXPECT_EQ(env.approx_bytes(), 0u);
  env.set("a", Value(std::string(1000, 'x')));
  const std::size_t one = env.approx_bytes();
  EXPECT_GE(one, 1000u);
  env.set("b", Value(std::string(1000, 'y')));
  EXPECT_GT(env.approx_bytes(), one);
  env.erase("b");
  EXPECT_EQ(env.approx_bytes(), one);
}

}  // namespace
}  // namespace ocsp::csp
